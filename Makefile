PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-bench bench bench-smoke tables

test:
	$(PYTHON) -m pytest -x -q

test-bench:
	$(PYTHON) -m pytest -q --run-bench tests/test_analysis_bench.py

bench:
	$(PYTHON) -m repro bench

bench-smoke:
	$(PYTHON) -m repro bench --smoke

tables:
	$(PYTHON) -m repro all
