PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-bench bench bench-smoke bench-check trace-smoke \
        profile-smoke faults-smoke ctcheck-smoke serve-smoke \
        shard-smoke keys-smoke obs-serve-smoke docs docs-check tables

test:
	$(PYTHON) -m pytest -x -q

test-bench:
	$(PYTHON) -m pytest -q --run-bench tests/test_analysis_bench.py

bench:
	$(PYTHON) -m repro bench

bench-smoke:
	$(PYTHON) -m repro bench --smoke

# Fresh smoke run vs the last committed BENCH_iss.json record; exits
# non-zero on a >30% throughput regression or a trace/fast ladder
# speedup below TRACE_MIN_SPEEDUP (writes nothing).
bench-check:
	$(PYTHON) -m repro bench --check

# Superblock trace-engine gate: the directed three-way parity suite
# (reference vs fast vs trace — bit- and cycle-exact on every kernel),
# the SREG dead-flag property tests and the forced mid-superblock
# fallback cases, plus the three-way differential fuzz harness.
trace-smoke:
	$(PYTHON) -m pytest -q tests/test_avr_trace.py
	$(PYTHON) -m pytest -q tests/test_avr_fuzz.py -k trace

# Fast profiling sanity pass: ISS group/hotspot/routine attribution plus
# the traced Python mirror op, on small inputs.
profile-smoke:
	$(PYTHON) -m repro profile --smoke
	$(PYTHON) -m repro profile ladder --smoke --format chrome --out /dev/null
	$(PYTHON) -m repro profile scalarmult --smoke --format jsonl > /dev/null

# Fault-campaign gate (DESIGN.md §7): each --check runs its campaign
# twice and fails unless the JSONL is byte-identical, the hardened build
# reports 0 silent corruptions and the baseline reports > 0.  The ladder
# leg is the acceptance campaign: 200 seeded faults on the CA-mode
# assembly ladder under the ISS.
faults-smoke:
	$(PYTHON) -m repro faults ladder --mode ca --n 200 --seed 7 --check
	$(PYTHON) -m repro faults ecdh --smoke --check
	$(PYTHON) -m repro faults ecdsa --smoke --check

# Constant-time gate (DESIGN.md §9): every leg runs the taint checker
# over all three timing modes, twice (JSONL must be byte-identical) and
# under both execution engines (verdicts must agree).  The field
# multiplication, the masked-swap ladder and DAAA exponentiation must
# come back clean; the NAF foil must stay flagged — if it ever reports
# clean, the checker has lost its teeth.
ctcheck-smoke:
	$(PYTHON) -m repro ctcheck mul --check --expect clean
	$(PYTHON) -m repro ctcheck ladder --check --expect clean
	$(PYTHON) -m repro ctcheck daaa --check --expect clean
	$(PYTHON) -m repro ctcheck naf --check --expect flagged

# Regenerate the docs/ API reference from docstrings; docs-check is the
# CI form (fails on stale pages or broken relative links, writes nothing).
docs:
	$(PYTHON) -m repro docs

docs-check:
	$(PYTHON) -m repro docs --check

# Serving gate (DESIGN.md §8): a 200-request deterministic loadgen mix
# against 1- and 2-worker in-process servers — zero errors and a
# byte-stable JSONL summary under the fixed seed (each --check runs the
# stream twice and compares bytes) — then the serving benchmark, which
# enforces the fixed-base (>=1.5x) and served-throughput (>=2x) floors
# without touching the committed BENCH_serve.json.
serve-smoke:
	$(PYTHON) -m repro loadgen --workers 1 --n 200 --seed 7 --check \
	    --out /dev/null
	$(PYTHON) -m repro loadgen --workers 2 --n 200 --seed 7 --check \
	    --out /dev/null
	$(PYTHON) -m repro loadgen --bench --smoke --bench-output none

# Scale-out gate (DESIGN.md §8 "Scale-out"): the deterministic --check
# stream against a fresh 2-shard cluster (port-per-shard ingress,
# deterministic round-robin over 8 connections, comb tables attached
# from the shared store) — zero errors and byte-identical summaries
# across two runs, whatever the shard topology.
shard-smoke:
	$(PYTHON) -m repro loadgen --shards 2 --connections 8 --workers 1 \
	    --n 200 --seed 7 --check --out /dev/null

# Named-key gate (DESIGN.md §8 "Named keys", docs/tenancy.md): the
# deterministic --check stream with secret-bearing ops rewritten onto
# server-resident keys over two tenants, against a fresh 2-shard
# cluster (key setup lands through shard 0, resolution rides the shared
# journal everywhere) — then the targeted acceptance tests: the
# create/rotate/use round-trip with generation pinning, and the
# cluster scenario (cross-shard visibility, per-tenant counters in
# cluster stats, no secret on the wire, keys surviving a forced shard
# respawn).
keys-smoke:
	$(PYTHON) -m repro loadgen --shards 2 --tenants 2 --workers 1 \
	    --n 100 --seed 7 --check --out /dev/null
	$(PYTHON) -m pytest -q tests/test_serve_keys.py \
	    -k "cluster or generation_pinning or quota_shed"

# Observability gate for the serving stack (DESIGN.md §4/§8): a traced
# loadgen run must join every reply's trace id into a cross-process span
# tree, pass the Chrome-trace schema check, dump a slowlog, and the
# Prometheus stats endpoint must answer through the wire with the serve
# counter families present.
obs-serve-smoke:
	$(PYTHON) -m repro loadgen --workers 2 --n 50 --seed 7 --trace \
	    --slowlog /tmp/repro_slowlog.json --scrape --out /dev/null \
	    | grep -q "serve_requests_total"
	$(PYTHON) -c "import json; from repro.obs.export import \
	    validate_chrome; \
	    validate_chrome(json.load(open('/tmp/repro_slowlog.json'))); \
	    print('slowlog chrome trace valid')"

tables:
	$(PYTHON) -m repro all
