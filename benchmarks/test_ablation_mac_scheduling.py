"""Ablation: MAC-kernel scheduling (plain Algorithm 2 vs operand prefetch).

The paper's 552-cycle multiplication hides operand loads in the MAC slots
(hence its 83 MOVWs and only 31 NOPs).  This benchmark quantifies what that
scheduling buys over the naive Algorithm-2 pattern.
Output: ``_output/ablation_mac_scheduling.txt``.
"""

import pytest

from conftest import save_table
from repro.avr.timing import Mode
from repro.kernels import KernelRunner, OpfConstants, generate_opf_mul_mac
from repro.model.paper_data import ISE_MUL_INSTRUCTION_MIX, TABLE1_RUNTIMES

CONSTANTS = OpfConstants(u=65356, k=144)


def _measure(optimized):
    runner = KernelRunner(generate_opf_mul_mac(CONSTANTS,
                                               optimized=optimized),
                          Mode.ISE)
    profiler = runner.attach_profiler()
    _, cycles = runner.run(0x1234, 0x5678)
    return cycles, profiler.mix(), runner.code_bytes


class TestScheduling:
    def test_compare_and_save(self, benchmark, output_dir):
        def both():
            return _measure(False), _measure(True)

        (plain_cyc, plain_mix, plain_size), (opt_cyc, opt_mix, opt_size) = \
            benchmark(both)
        paper = TABLE1_RUNTIMES["multiplication"]["ISE"]
        lines = [
            "ISE multiplication scheduling ablation:",
            f"{'schedule':<22}{'cycles':>8}{'NOP':>6}{'MOVW':>6}"
            f"{'code bytes':>12}",
            f"{'plain Algorithm 2':<22}{plain_cyc:>8}"
            f"{plain_mix.get('NOP', 0):>6}{plain_mix.get('MOVW', 0):>6}"
            f"{plain_size:>12}",
            f"{'operand prefetch':<22}{opt_cyc:>8}"
            f"{opt_mix.get('NOP', 0):>6}{opt_mix.get('MOVW', 0):>6}"
            f"{opt_size:>12}",
            f"{'paper (Section IV-A)':<22}{paper:>8}"
            f"{ISE_MUL_INSTRUCTION_MIX['nop']:>6}"
            f"{ISE_MUL_INSTRUCTION_MIX['movw']:>6}{'~':>12}",
        ]
        save_table(output_dir, "ablation_mac_scheduling.txt",
                   "\n".join(lines))
        assert opt_cyc < plain_cyc
        # The prefetch schedule trades NOPs for MOVWs — exactly the paper's
        # instruction-mix signature.
        assert opt_mix["MOVW"] > plain_mix["MOVW"]
        assert opt_mix["NOP"] < plain_mix["NOP"]

    def test_optimized_within_13_percent_of_paper(self, benchmark):
        cycles, _, _ = benchmark.pedantic(lambda: _measure(True),
                                          rounds=1, iterations=1)
        paper = TABLE1_RUNTIMES["multiplication"]["ISE"]
        assert cycles / paper < 1.15

    def test_prefetch_saves_at_least_five_percent(self, benchmark):
        def ratio():
            plain, _, _ = _measure(False)
            opt, _, _ = _measure(True)
            return plain / opt

        r = benchmark.pedantic(ratio, rounds=1, iterations=1)
        assert r > 1.05
