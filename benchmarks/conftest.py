"""Shared helpers for the table-regeneration benchmarks.

Every benchmark writes its rendered table to ``benchmarks/_output/`` so the
paper-vs-measured artifacts survive the run (EXPERIMENTS.md points there).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_table(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n")
