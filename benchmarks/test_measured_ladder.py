"""The flagship measurement: a full 160-bit scalar multiplication executed
instruction-by-instruction on the simulated ASIP, in all three modes.

This replaces the model estimate for the Montgomery rows of Tables II/III
with a direct measurement — the closest this reproduction gets to the
paper's own experiment.  Output: ``_output/measured_ladder.txt``.

(~30 s of host time: the CA run alone is 6M simulated cycles.)
"""

import pytest

from conftest import save_table
from repro.avr.timing import Mode
from repro.curves.params import make_montgomery
from repro.kernels import LadderKernel, OpfConstants
from repro.model.paper_data import table3_row
from repro.scalarmult import montgomery_ladder_x

CONSTANTS = OpfConstants(u=65356, k=144)
SCALAR = 0xB3A5C99D06A1527E4D5EF9232D8F1C07355A9E11  # fixed full-length


@pytest.fixture(scope="module")
def reference_x():
    suite = make_montgomery(functional=True)
    out = montgomery_ladder_x(suite.curve, SCALAR, suite.base, bits=160)
    return suite.curve.x_affine(out).to_int(), suite.base.x.to_int()


class TestMeasuredLadder:
    @pytest.mark.parametrize("mode", list(Mode), ids=lambda m: m.value)
    def test_full_160_bit(self, benchmark, mode, reference_x, output_dir):
        expected_x, base_x = reference_x
        ladder = LadderKernel(CONSTANTS, mode, scalar_bytes=20)

        def run():
            return ladder.run(SCALAR, base_x)

        x_out, z_out, cycles = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
        p = CONSTANTS.p
        got = x_out * pow(z_out % p, -1, p) % p
        assert got == expected_x
        paper = table3_row("montgomery", mode.value).point_mult_cycles
        delta = 100 * (cycles / paper - 1)
        benchmark.extra_info["measured_cycles"] = cycles
        benchmark.extra_info["paper_cycles"] = paper
        benchmark.extra_info["delta_pct"] = round(delta, 1)
        assert abs(delta) < 25, (mode, cycles, paper)
        save_table(
            output_dir, f"measured_ladder_{mode.value.lower()}.txt",
            "\n".join([
                f"Full 160-bit Montgomery-ladder scalar multiplication, "
                f"{mode.value} mode, MEASURED on the ISS:",
                f"  cycles        : {cycles:,}",
                f"  paper Table III: {paper:,}",
                f"  delta         : {delta:+.1f}%",
                f"  instructions  : {ladder.core.instructions_retired:,}",
                f"  program size  : {ladder.code_bytes:,} bytes",
            ]),
        )

    def test_coz_ladder_weierstrass_ca(self, benchmark, output_dir):
        """The second measured row: the co-Z ladder over the Weierstraß
        curve in CA mode vs Table II's 8,824 kCycles."""
        from repro.curves.params import make_weierstrass
        from repro.kernels import CozLadderKernel

        suite = make_weierstrass(functional=True)
        bx, by = suite.base.x.to_int(), suite.base.y.to_int()
        ladder = CozLadderKernel(CONSTANTS, Mode.CA, curve_a=-3,
                                 scalar_bytes=20)

        def run():
            return ladder.run(SCALAR | (1 << 159), bx, by)

        state, cycles = benchmark.pedantic(run, rounds=1, iterations=1)
        ref = suite.curve.affine_scalar_mult(SCALAR | (1 << 159),
                                             suite.base)
        assert ladder.affine_consistency(
            state, (ref.x.to_int(), ref.y.to_int())
        )
        paper = 8_824_000
        delta = 100 * (cycles / paper - 1)
        benchmark.extra_info["measured_cycles"] = cycles
        benchmark.extra_info["delta_pct"] = round(delta, 1)
        assert abs(delta) < 20
        save_table(output_dir, "measured_coz_ladder.txt", "\n".join([
            "Full 160-bit co-Z ladder (Weierstraß, CA), MEASURED:",
            f"  cycles         : {cycles:,}",
            f"  paper Table II : {paper:,}",
            f"  delta          : {delta:+.1f}%",
        ]))

    def test_summary(self, benchmark, reference_x, output_dir):
        """Cross-mode summary with paper comparison and speed-up factors."""
        _, base_x = reference_x

        def run_all():
            out = {}
            for mode in Mode:
                ladder = LadderKernel(CONSTANTS, mode, scalar_bytes=20)
                out[mode.value] = ladder.run(SCALAR, base_x)[2]
            return out

        cycles = benchmark.pedantic(run_all, rounds=1, iterations=1)
        lines = ["Measured 160-bit ladder, all modes:",
                 f"{'mode':<6}{'measured':>12}{'paper':>12}{'delta':>9}"]
        for mode in ("CA", "FAST", "ISE"):
            paper = table3_row("montgomery", mode).point_mult_cycles
            lines.append(
                f"{mode:<6}{cycles[mode]:>12,}{paper:>12,}"
                f"{100 * (cycles[mode] / paper - 1):>8.1f}%"
            )
        ca_ise = cycles["CA"] / cycles["ISE"]
        lines.append("")
        lines.append(f"CA -> ISE point-multiplication speed-up: "
                     f"{ca_ise:.2f}x (paper: 4.27x)")
        save_table(output_dir, "measured_ladder.txt", "\n".join(lines))
        # Paper Section V-C: point mults improve ~3.9-4.5x; ours with the
        # leaner adds and heavier muls lands slightly above.
        assert 3.8 < ca_ise < 5.6
