"""Figure 1: behavioural validation of the (32 x 4)-bit MAC unit datapath.

Figure 1 is an architecture diagram, not a results plot; the reproducible
content is the datapath behaviour it depicts, which these benchmarks drive
on the simulator:

* a (32 x 4)-bit multiply feeding a barrel shifter with offsets 0..28,
* a 72-bit accumulator living in R0-R8,
* eight MACs forming a full (32 x 32)-bit multiply-accumulate,
* single-cycle issue that never stalls the integer pipeline.

Output: ``_output/fig1_mac_behaviour.txt``.
"""

import random

import pytest

from conftest import save_table
from repro.avr import AvrCore, Mode, ProgramMemory, assemble

ALG2 = """
    .equ MACCR = 0x28
    ldi r20, 0x82
    out MACCR, r20
    ldi r28, 0x60
    ldi r29, 0x00
    ldi r30, 0x70
    ldi r31, 0x00
    ldd r16, Y+0
    ldd r17, Y+1
    ldd r18, Y+2
    ldd r19, Y+3
    ldd r24, Z+0
    nop
    ldd r24, Z+1
    nop
    ldd r24, Z+2
    nop
    ldd r24, Z+3
    nop
    nop
    break
"""


def _run_mac_mul(a: int, b: int):
    core = AvrCore(ProgramMemory(), mode=Mode.ISE)
    assemble(ALG2).load_into(core.program)
    core.data.load_bytes(0x60, a.to_bytes(4, "little"))
    core.data.load_bytes(0x70, b.to_bytes(4, "little"))
    core.run()
    return core


class TestFig1Behaviour:
    def test_32x32_multiply_via_8_macs(self, benchmark):
        rng = random.Random(0xF16)

        def run():
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            core = _run_mac_mul(a, b)
            assert core.data.reg_window(0, 9) == a * b
            assert core.mac.mac_ops == 8
            return core.cycles

        cycles = benchmark(run)
        benchmark.extra_info["cycles_per_32x32"] = cycles

    def test_mac_issue_is_cycle_free(self, benchmark, output_dir):
        """The MAC rides its trigger instruction: same cycle count with the
        unit enabled or disabled (the paper's non-stalling claim)."""
        def compare():
            on = _run_mac_mul(0xDEADBEEF, 0x12345678).cycles
            off_src = ALG2.replace("ldi r20, 0x82", "ldi r20, 0x00")
            core = AvrCore(ProgramMemory(), mode=Mode.ISE)
            assemble(off_src).load_into(core.program)
            core.data.load_bytes(0x60, (0xDEADBEEF).to_bytes(4, "little"))
            core.data.load_bytes(0x70, (0x12345678).to_bytes(4, "little"))
            core.run()
            return on, core.cycles

        on, off = benchmark(compare)
        assert on == off
        save_table(output_dir, "fig1_mac_behaviour.txt", "\n".join([
            "Fig. 1 MAC-unit behavioural validation",
            f"  (32x32) multiply-accumulate: 8 nibble MACs, {on} cycles of",
            "  straight-line code; enabling the MAC adds 0 cycles",
            "  (non-stalling issue).",
            "  Barrel-shift offsets 0,4,...,28 and the 72-bit R0-R8",
            "  accumulator are asserted by the accompanying benchmarks.",
        ]))

    def test_barrel_shifter_offsets(self, benchmark):
        def sweep():
            results = []
            for i in range(8):
                core = AvrCore(ProgramMemory(), mode=Mode.ISE)
                core.data.set_reg_window(16, 4, 1)
                core.mac.counter = i
                core.mac.issue_nibble(core.data, 1)
                results.append(core.data.reg_window(0, 9))
            return results

        results = benchmark(sweep)
        assert results == [1 << (4 * i) for i in range(8)]

    def test_accumulator_width_72_bits(self, benchmark):
        def saturate():
            core = AvrCore(ProgramMemory(), mode=Mode.ISE)
            core.data.set_reg_window(16, 4, 0xFFFFFFFF)
            for _ in range(16):  # two full 32x32 products of all-ones
                for i in range(8):
                    core.mac.issue_nibble(core.data,
                                          (0xFFFFFFFF >> (4 * i)) & 0xF)
            return core.data.reg_window(0, 9)

        acc = benchmark(saturate)
        assert acc < (1 << 72)
        assert acc == (16 * 0xFFFFFFFF * 0xFFFFFFFF) % (1 << 72)

    def test_loads_overlap_mac_slots(self, benchmark):
        """Operand prefetch during MAC slots (the paper's scheduling)."""
        src = """
            .equ MACCR = 0x28
            ldi r20, 0x82
            out MACCR, r20
            ldi r28, 0x60
            ldi r29, 0x00
            ldi r30, 0x70
            ldi r31, 0x00
            ldd r16, Y+0
            ldd r17, Y+1
            ldd r18, Y+2
            ldd r19, Y+3
            ldd r24, Z+0
            ldd r10, Y+4
            ldd r24, Z+1
            ldd r11, Y+5
            ldd r24, Z+2
            ldd r12, Y+6
            ldd r24, Z+3
            ldd r13, Y+7
            nop
            break
        """

        def run():
            core = AvrCore(ProgramMemory(), mode=Mode.ISE)
            assemble(src).load_into(core.program)
            core.data.load_bytes(0x60, (0xCAFEBABE1122334455).to_bytes(
                9, "little"))
            core.data.load_bytes(0x70, (0x87654321).to_bytes(4, "little"))
            core.run()
            return core

        core = benchmark(run)
        a = int.from_bytes((0xCAFEBABE1122334455).to_bytes(9, "little")[:4],
                           "little")
        assert core.data.reg_window(0, 9) == a * 0x87654321
        # The prefetched bytes arrived in the scratch registers.
        assert core.data.reg(10) == (0xCAFEBABE1122334455 >> 32) & 0xFF
