"""Table II: point multiplication on a standard ATmega128 (CA mode).

The reproduced quantity is the *estimated cycle count*: instrumented
field-operation counts of the real scalar-multiplication algorithms, priced
with Table I per-operation costs.  Output: ``_output/table2.txt`` plus a
variant priced with our own measured kernel cycles
(``_output/table2_measured.txt``).
"""

import pytest

from conftest import save_table
from repro.analysis import generate_table2
from repro.model import CONSTANT_METHODS, HIGHSPEED_METHODS, measure_point_mult
from repro.model.paper_data import TABLE2

CURVES = [row.curve for row in TABLE2]


class TestHighSpeedRows:
    @pytest.mark.parametrize("row", TABLE2, ids=lambda r: r.curve)
    def test_row(self, benchmark, row):
        m = benchmark(measure_point_mult, row.curve,
                      HIGHSPEED_METHODS[row.curve])
        est = m.kcycles["CA"]
        benchmark.extra_info["estimated_kcycles"] = round(est)
        benchmark.extra_info["paper_kcycles"] = row.highspeed_kcycles
        assert abs(est / row.highspeed_kcycles - 1) < 0.10


class TestConstantRows:
    @pytest.mark.parametrize("row", TABLE2, ids=lambda r: r.curve)
    def test_row(self, benchmark, row):
        m = benchmark(measure_point_mult, row.curve,
                      CONSTANT_METHODS[row.curve])
        est = m.kcycles["CA"]
        benchmark.extra_info["estimated_kcycles"] = round(est)
        benchmark.extra_info["paper_kcycles"] = row.constant_kcycles
        assert abs(est / row.constant_kcycles - 1) < 0.10


class TestTable2Shape:
    def test_winners_and_orderings(self, benchmark, output_dir):
        def build():
            hs = {c: measure_point_mult(c, HIGHSPEED_METHODS[c]).cycles["CA"]
                  for c in CURVES}
            ct = {c: measure_point_mult(c, CONSTANT_METHODS[c]).cycles["CA"]
                  for c in CURVES}
            return hs, ct

        hs, ct = benchmark.pedantic(build, rounds=1, iterations=1)
        # GLV fastest high-speed; Montgomery fastest constant-time.
        assert hs["glv"] == min(hs.values())
        assert ct["montgomery"] == min(ct.values())
        # The Montgomery curve's two columns coincide.
        assert hs["montgomery"] == ct["montgomery"]
        # Constant-time never beats high-speed for the same curve.
        for curve in CURVES:
            assert ct[curve] >= hs[curve] * 0.999
        # secp160r1 is slightly slower than the OPF Weierstraß curve.
        assert hs["secp160r1"] > hs["weierstrass"]
        # All non-Montgomery low-leakage rows cluster at 8.2-8.8 MCycles
        # in the paper; accept the same band widened by our tolerance.
        for curve in ("secp160r1", "weierstrass", "edwards", "glv"):
            assert 7.5e6 < ct[curve] < 9.6e6, curve

    def test_full_table_regeneration(self, benchmark, output_dir):
        table = benchmark.pedantic(generate_table2, rounds=1, iterations=1)
        save_table(output_dir, "table2.txt", table.render())
        assert len(table.rows) == 5

    def test_measured_cost_variant(self, benchmark, output_dir):
        table = benchmark.pedantic(
            lambda: generate_table2(source="measured"), rounds=1,
            iterations=1,
        )
        save_table(output_dir, "table2_measured.txt", table.render())
        # With our (slower) kernels the estimates shift up uniformly but
        # the winners cannot change.
        values = {row[0]: row[2] for row in table.rows}
        assert values["glv"] == min(values.values())
