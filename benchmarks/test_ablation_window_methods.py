"""Ablation: window methods vs the paper's low-memory choice.

Section V-B: "no comb methods with pre-calculated points are used" because
the paper targets memory-constrained nodes and ECDH-style unknown base
points.  Width-w NAF (which does work for unknown points) quantifies the
same trade-off: each window bit doubles the RAM table for a shrinking cycle
gain.  Output: ``_output/ablation_window_methods.txt``.
"""

import random

import pytest

from conftest import save_table
from repro.avr.timing import Mode
from repro.curves.params import make_weierstrass
from repro.model import costs_for, price
from repro.model.paper_data import RAM_BYTES
from repro.scalarmult import adapter_for, scalar_mult_naf, scalar_mult_wnaf
from repro.scalarmult.window import wnaf_table_ram_bytes


def _measure():
    rng = random.Random(0xAB1A)
    scalars = [rng.getrandbits(160) | (1 << 159) for _ in range(4)]
    costs = costs_for(Mode.CA, "paper")
    rows = []
    # Baseline: plain NAF (no table).
    totals = []
    for k in scalars:
        suite = make_weierstrass()
        scalar_mult_naf(adapter_for(suite.curve, suite.base), k)
        totals.append(price(suite.field.counter, costs))
    rows.append(("NAF (paper)", 0, sum(totals) / len(totals)))
    for width in (3, 4, 5, 6):
        totals = []
        for k in scalars:
            suite = make_weierstrass()
            scalar_mult_wnaf(suite.curve, k, suite.base, width)
            totals.append(price(suite.field.counter, costs))
        rows.append((f"wNAF w={width}", wnaf_table_ram_bytes(width),
                     sum(totals) / len(totals)))
    return rows


@pytest.fixture(scope="module")
def rows():
    return _measure()


class TestWindowAblation:
    def test_measure_and_save(self, benchmark, output_dir, rows):
        benchmark.pedantic(_measure, rounds=1, iterations=1)
        base_ram = RAM_BYTES["weierstrass"]
        lines = ["Window-method ablation on the OPF Weierstraß curve "
                 "(CA mode):",
                 f"{'method':<14}{'table RAM':>10}{'kCycles':>10}"
                 f"{'vs NAF':>8}{'total RAM':>11}"]
        naf_cycles = rows[0][2]
        for name, ram, cycles in rows:
            lines.append(
                f"{name:<14}{ram:>10}{cycles / 1000:>10,.0f}"
                f"{100 * (cycles / naf_cycles - 1):>7.1f}%"
                f"{base_ram + ram:>11}"
            )
        lines.append("")
        lines.append(f"The paper's whole Weierstraß implementation uses "
                     f"{base_ram} B of RAM; a w=6 window")
        lines.append("table alone would add "
                     f"{wnaf_table_ram_bytes(6)} B for a <10% speed-up — "
                     "the trade the paper declines.")
        save_table(output_dir, "ablation_window_methods.txt",
                   "\n".join(lines))

    def test_window_gain_is_modest(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        naf = rows[0][2]
        best = min(cycles for _, _, cycles in rows[1:])
        assert 0.88 < best / naf < 1.0  # < 12% gain

    def test_ram_grows_geometrically(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rams = [ram for _, ram, _ in rows[1:]]
        for previous, current in zip(rams, rams[1:]):
            assert current == 2 * previous

    def test_w6_table_dwarfs_paper_ram_budget(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert wnaf_table_ram_bytes(6) > 0.5 * RAM_BYTES["weierstrass"]
