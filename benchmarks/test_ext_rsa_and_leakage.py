"""Extensions: the MAC unit on RSA, and the timing-leakage quantification.

* RSA: Section IV-A claims the MAC unit "is in principle suitable to speed
  up … even RSA"; the benchmark measures the claim via the counted
  Montgomery exponentiation engine.
* Leakage: Table II's high-speed/constant-round split, quantified with
  TVLA-style statistics.  Outputs: ``_output/ext_rsa.txt``,
  ``_output/ext_leakage.txt``.
"""

import random

import pytest

from conftest import save_table
from repro.analysis.leakage import (
    fixed_vs_random_t,
    leakage_report,
    random_traces,
    scalar_weight_correlation,
)
from repro.avr.timing import Mode
from repro.model import measure_point_mult
from repro.model.inversion_model import (
    estimate_inversion_cycles,
    fermat_inversion_cycles,
    inversion_cycle_spread,
)
from repro.model.paper_data import TABLE1_RUNTIMES
from repro.protocols.rsa import (
    MontgomeryModExp,
    estimate_modexp_cycles,
    generate_keypair,
    rsa_private_op_estimate,
)

P160 = 65356 * (1 << 144) + 1


class TestRsaExtension:
    def test_counted_exponentiation(self, benchmark, output_dir):
        key = generate_keypair(512, rng=random.Random(8))

        def private_op():
            engine = MontgomeryModExp(key.n)
            engine.counter.reset()
            engine.modexp(0xC0FFEE, key.d)
            return engine.counter.mul

        word_muls = benchmark(private_op)
        lines = ["RSA on the ASIP (counted Montgomery exponentiation):",
                 f"  RSA-512 private op: {word_muls:,} word muls"]
        for mode in Mode:
            est = estimate_modexp_cycles(word_muls, mode)
            lines.append(f"    {mode.value:<5}: {est / 1e6:8.2f} MCycles")
        ca = estimate_modexp_cycles(word_muls, Mode.CA)
        ise = estimate_modexp_cycles(word_muls, Mode.ISE)
        lines.append(f"  MAC speed-up on RSA: {ca / ise:.2f}x "
                     "(ECC field mul: ~6x)")
        ecc = measure_point_mult("montgomery", "ladder").cycles["CA"]
        rsa1024 = rsa_private_op_estimate(1024, Mode.CA)
        lines.append(f"  RSA-1024 private op vs 160-bit ECDH ladder (CA): "
                     f"{rsa1024 / ecc:.0f}x more cycles")
        save_table(output_dir, "ext_rsa.txt", "\n".join(lines))
        assert 5.0 < ca / ise < 7.5

    def test_rsa_1024_estimates(self, benchmark):
        est = benchmark(rsa_private_op_estimate, 1024, Mode.ISE)
        assert 40e6 < est < 100e6  # ~66 MCycles: ~3.3 s at 20 MHz


class TestLeakageExtension:
    def test_report_and_save(self, benchmark, output_dir):
        report = benchmark.pedantic(lambda: leakage_report(n=8),
                                    rounds=1, iterations=1)
        lines = ["Timing-leakage quantification (8 random scalars each):",
                 f"{'method':<30}{'category':<16}{'regular':>8}"
                 f"{'spread':>9}"]
        for name, entry in report.items():
            lines.append(f"{name:<30}{entry['category']:<16}"
                         f"{str(entry['regular']):>8}"
                         f"{entry['spread'] * 100:>8.2f}%")
        t_naf = fixed_vs_random_t("weierstrass", "naf", n=6)
        t_ladder = fixed_vs_random_t("montgomery", "ladder", n=6)
        lines.append("")
        lines.append(f"TVLA fixed-vs-random |t|: NAF {abs(t_naf):.1f} "
                     f"(leaks, threshold 4.5), ladder {abs(t_ladder):.1f}")
        save_table(output_dir, "ext_leakage.txt", "\n".join(lines))
        constant = [e for e in report.values()
                    if e["category"] == "constant-round"]
        assert all(e["regular"] for e in constant)

    def test_naf_weight_correlation(self, benchmark):
        traces = benchmark.pedantic(
            lambda: random_traces("weierstrass", "naf", n=10),
            rounds=1, iterations=1,
        )
        assert scalar_weight_correlation(traces) > 0.9


class TestInversionModelExtension:
    def test_model_vs_table1(self, benchmark, output_dir):
        def run():
            return {mode: estimate_inversion_cycles(P160, mode)
                    for mode in Mode}

        estimates = benchmark(run)
        lines = ["Traced Kaliski inversion model vs Table I:",
                 f"{'mode':<6}{'model':>10}{'paper':>10}{'ratio':>8}"]
        for mode, est in estimates.items():
            paper = TABLE1_RUNTIMES["inversion"][mode.value]
            lines.append(f"{mode.value:<6}{est:>10,.0f}{paper:>10,}"
                         f"{est / paper:>8.2f}")
        fermat = fermat_inversion_cycles(Mode.CA, 3314)
        lines.append("")
        lines.append(f"A Fermat inversion would cost {fermat / 1e3:,.0f} "
                     "kCycles — the paper's 189k implies binary EEA.")
        lo, hi, _ = inversion_cycle_spread(P160, Mode.CA)
        lines.append(f"Operand dependence (the paper's residual leak): "
                     f"{lo:,.0f}..{hi:,.0f} cycles "
                     f"({100 * (hi - lo) / lo:.1f}% spread)")
        save_table(output_dir, "ext_inversion_model.txt", "\n".join(lines))
        for mode, est in estimates.items():
            paper = TABLE1_RUNTIMES["inversion"][mode.value]
            assert 0.4 < est / paper < 1.1
