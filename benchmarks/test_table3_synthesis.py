"""Table III: cycles, area (GE), power, energy and SARP per curve x mode.

Cycles come from the instrumented scalar multiplications; GE from the
calibrated area model; power from the calibrated power model; SARP from the
self-normalised measurement set.  Output: ``_output/table3.txt``.
"""

import pytest

from conftest import save_table
from repro.analysis import generate_table3
from repro.avr.timing import Mode
from repro.model import measure_point_mult
from repro.model.opcost import CONSTANT_METHODS, HIGHSPEED_METHODS
from repro.model.paper_data import TABLE3, table3_row
from repro.model.sarp import paper_sarp_check

MODES = ("CA", "FAST", "ISE")
CURVES = ("weierstrass", "edwards", "montgomery", "glv")


@pytest.fixture(scope="module")
def table3():
    return generate_table3()


class TestCycles:
    @pytest.mark.parametrize("curve", CURVES)
    def test_mode_scaling(self, benchmark, curve):
        method = (CONSTANT_METHODS[curve] if curve == "montgomery"
                  else HIGHSPEED_METHODS[curve])
        m = benchmark(measure_point_mult, curve, method)
        for mode in MODES:
            paper = table3_row(curve, mode).point_mult_cycles
            est = m.cycles[mode]
            benchmark.extra_info[f"{mode}_delta_pct"] = round(
                100 * (est / paper - 1), 1
            )
            assert abs(est / paper - 1) < 0.12, (curve, mode)


class TestAreaAndSarp:
    def test_area_model_residuals(self, benchmark):
        from repro.model import calibration_report

        report = benchmark(calibration_report)
        for row in report:
            assert abs(row["error_pct"]) < 5.0

    def test_paper_sarp_recomputation(self, benchmark):
        values = benchmark(paper_sarp_check)
        for (curve, mode), (recomputed, printed) in values.items():
            assert recomputed == pytest.approx(printed, abs=0.02)

    def test_full_table(self, benchmark, output_dir):
        table = benchmark.pedantic(generate_table3, rounds=1, iterations=1)
        save_table(output_dir, "table3.txt", table.render())
        assert len(table.rows) == 12


class TestTable3Shape:
    def test_sarp_winners(self, table3, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        sarps = {(r[0], r[1]): r[7] for r in table3.rows}
        for mode in ("CA", "FAST"):
            best = max(v for (c, m), v in sarps.items() if m == mode)
            assert sarps[("glv", mode)] == best
        ise = sorted(((v, c) for (c, m), v in sarps.items() if m == "ISE"),
                     reverse=True)
        assert {ise[0][1], ise[1][1]} == {"edwards", "montgomery"}

    def test_energy_band(self, table3, benchmark):
        """CA-mode energies sit in the paper's 455-969 uJ range."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ca_energy = [r[9] for r in table3.rows if r[1] == "CA"]
        assert 400 < min(ca_energy) < 560
        assert 850 < max(ca_energy) < 1100

    def test_glv_has_largest_rom(self, benchmark):
        """Section V-C: the GLV program memory is ~43% above Edwards'."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rom = {(r.curve, r.mode): r.rom_bytes for r in TABLE3}
        assert rom[("glv", "CA")] / rom[("edwards", "CA")] == pytest.approx(
            1.43, abs=0.02
        )
        for mode in MODES:
            roms = {c: rom[(c, mode)] for c in CURVES}
            assert roms["glv"] == max(roms.values())
