"""Table V: comparison with related ATmega128 software implementations.

Our two rows (Montgomery/OPF and GLV/OPF in CA mode) are re-derived live
and substituted into the comparison.  Output: ``_output/table5.txt``.
"""

import pytest

from conftest import save_table
from repro.analysis import generate_table5
from repro.model import measure_point_mult
from repro.model.paper_data import TABLE5_RELATED


class TestTable5:
    def test_rederive_our_rows(self, benchmark, output_dir):
        def derive():
            mon = measure_point_mult("montgomery", "ladder").kcycles["CA"]
            glv = measure_point_mult("glv", "glv-jsf").kcycles["CA"]
            return {"Montgomery, OPF": mon, "GLV, OPF": glv}

        measured = benchmark(derive)
        benchmark.extra_info.update(
            {k: round(v) for k, v in measured.items()}
        )
        table = generate_table5(measured=measured)
        save_table(output_dir, "table5.txt", table.render())

    def test_glv_beats_all_published_work(self, benchmark):
        """Section V-D: the pure-software GLV row outperforms all related
        prime-field ECC software on the ATmega128."""
        glv = benchmark.pedantic(
            lambda: measure_point_mult("glv", "glv-jsf").kcycles["CA"],
            rounds=1, iterations=1,
        )
        assert all(glv < r.kcycles for r in TABLE5_RELATED)

    def test_montgomery_competitive_with_best_constant_time(self, benchmark):
        mon = benchmark.pedantic(
            lambda: measure_point_mult("montgomery", "ladder").kcycles["CA"],
            rounds=1, iterations=1,
        )
        # Beats everything except Grossschaedl et al.'s GLV/OPF result.
        slower = [r for r in TABLE5_RELATED if r.kcycles > mon]
        assert len(slower) >= 5
