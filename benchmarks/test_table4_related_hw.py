"""Table IV: comparison with related lightweight ECC hardware.

The related-work rows are published numbers (static data); our row's
runtime is re-derived live: the Montgomery-curve scalar multiplication in
ISE mode.  Output: ``_output/table4.txt``.
"""

import pytest

from conftest import save_table
from repro.analysis import generate_table4
from repro.model import measure_point_mult
from repro.model.paper_data import TABLE4_OUR_WORK, TABLE4_RELATED


class TestTable4:
    def test_our_row_rederived(self, benchmark, output_dir):
        m = benchmark(measure_point_mult, "montgomery", "ladder")
        kcycles = m.cycles["ISE"] / 1000.0
        benchmark.extra_info["ise_kcycles"] = round(kcycles)
        # Paper row: 1,300 kCycles.
        assert abs(kcycles / TABLE4_OUR_WORK.runtime_kcycles - 1) < 0.10
        table = generate_table4(measured_mon_ise_kcycles=kcycles)
        save_table(output_dir, "table4.txt", table.render())

    def test_positioning_claims(self, benchmark):
        """Section V-D: most dedicated cores beat the ASIP on raw
        runtime/area, but the ASIP is the only C-programmable one."""
        m = benchmark.pedantic(
            lambda: measure_point_mult("montgomery", "ladder"),
            rounds=1, iterations=1,
        )
        ours_runtime = m.cycles["ISE"] / 1000.0
        faster = [r for r in TABLE4_RELATED
                  if r.runtime_kcycles < ours_runtime]
        assert len(faster) >= 3  # Fuerbass, Hein, Lee
        smaller = [r for r in TABLE4_RELATED
                   if r.area_ge < TABLE4_OUR_WORK.area_ge]
        assert len(smaller) >= 3

    def test_gfp_vs_gf2m_split(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        gf2m = [r for r in TABLE4_RELATED if r.field_type == "GF(2^m)"]
        gfp = [r for r in TABLE4_RELATED if r.field_type == "GF(p)"]
        assert len(gf2m) == 3 and len(gfp) == 2
