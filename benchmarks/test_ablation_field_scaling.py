"""Ablation: field-size scalability (the paper's flexibility argument).

Section V-D: dedicated ECC cores "can not handle different fields or
families of curve"; the ASIP can, by recompiling software.  This benchmark
regenerates the Table I multiplication row for OPF sizes from 128 to 256
bits using the *same* kernel generators, in CA and ISE modes.
Output: ``_output/ablation_field_scaling.txt``.
"""

import pytest

from conftest import save_table
from repro.avr.timing import Mode
from repro.kernels import (
    KernelRunner,
    OpfConstants,
    generate_modadd,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)

SIZES = [(40961, 112), (65356, 144), (40963, 176), (50001, 208),
         (60001, 240)]


def _measure_all():
    rows = []
    for u, k in SIZES:
        constants = OpfConstants(u=u, k=k)
        nb = constants.operand_bytes
        add = KernelRunner(generate_modadd(constants),
                           Mode.CA).run(1, 2, operand_bytes=nb)[1]
        ca = KernelRunner(generate_opf_mul_comba(constants),
                          Mode.CA).run(3, 5, operand_bytes=nb)[1]
        ise = KernelRunner(generate_opf_mul_mac(constants),
                           Mode.ISE).run(3, 5, operand_bytes=nb)[1]
        rows.append((constants.bits, constants.num_words, add, ca, ise,
                     ca / ise))
    return rows


@pytest.fixture(scope="module")
def rows():
    return _measure_all()


class TestScaling:
    def test_measure_and_save(self, benchmark, output_dir, rows):
        benchmark.pedantic(_measure_all, rounds=1, iterations=1)
        lines = ["OPF field-operation scaling across operand sizes:",
                 f"{'bits':>5}{'s':>3}{'add CA':>8}{'mul CA':>9}"
                 f"{'mul ISE':>9}{'CA/ISE':>8}"]
        for bits, s, add, ca, ise, ratio in rows:
            lines.append(f"{bits:>5}{s:>3}{add:>8}{ca:>9}{ise:>9}"
                         f"{ratio:>8.2f}")
        lines.append("")
        lines.append("The MAC unit's advantage grows with the field size "
                     "(the s^2 products dominate).")
        save_table(output_dir, "ablation_field_scaling.txt",
                   "\n".join(lines))
        assert len(rows) == len(SIZES)

    def test_mul_grows_quadratically(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        by_s = {s: ca for _, s, _, ca, _, _ in rows}
        # cycles ~ c * (s^2 + s): the per-block cost is roughly constant.
        per_block = {s: by_s[s] / (s * s + s) for s in by_s}
        values = list(per_block.values())
        assert max(values) / min(values) < 1.25

    def test_add_grows_linearly(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        per_byte = {bits: add / (bits // 8)
                    for bits, _, add, _, _, _ in rows if bits <= 160}
        values = list(per_byte.values())
        assert max(values) / min(values) < 1.35

    def test_ise_ratio_increases(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ratios = [ratio for *_, ratio in rows]
        assert ratios == sorted(ratios)
        assert ratios[0] > 4.5 and ratios[-1] > 7.0

    def test_192_bit_context(self, benchmark, rows):
        """Table IV includes a 192-bit GF(p) design (Wenger et al. [25]);
        our generators cover that size out of the box."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        bits = [b for b, *_ in rows]
        assert 192 in bits
