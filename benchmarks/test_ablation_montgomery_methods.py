"""Ablation: why FIPS + OPF?  (the paper's core algorithmic design choice)

Compares the Montgomery-multiplication organisations (SOS / CIOS / FIPS /
OPF-FIPS) by word-multiplication count and by priced AVR cycles, plus the
OPF-vs-generalized-Mersenne reduction contrast the paper draws in
Section II-A.  Output: ``_output/ablation_montgomery_methods.txt``.
"""

import pytest

from conftest import save_table
from repro.mpa import (
    MontgomeryContext,
    WordOpCounter,
    cios_montgomery,
    fips_montgomery,
    fips_montgomery_opf,
    sos_montgomery,
    to_words,
)

P = 65356 * (1 << 144) + 1
CTX = MontgomeryContext.create(P)

METHODS = [
    ("SOS", sos_montgomery),
    ("CIOS", cios_montgomery),
    ("FIPS", fips_montgomery),
    ("FIPS-OPF", fips_montgomery_opf),
]

#: Measured CA cycles of one 32x32 MAC block (kernel cycles / 30 blocks).
BLOCK_CYCLES_CA = 3971 / 30.0


def _count(fn):
    counter = WordOpCounter()
    fn(to_words(0xAAAA, 5), to_words(0x5555, 5), CTX, counter)
    return counter


class TestMethodComparison:
    def test_word_mul_counts(self, benchmark, output_dir):
        def measure():
            return {name: _count(fn).mul for name, fn in METHODS}

        counts = benchmark(measure)
        assert counts["SOS"] == counts["CIOS"] == counts["FIPS"] == 55
        assert counts["FIPS-OPF"] == 30
        lines = ["Montgomery multiplication organisations (s = 5 words):",
                 f"{'method':<10}{'word muls':>10}{'est CA cycles':>16}"]
        for name, muls in counts.items():
            lines.append(f"{name:<10}{muls:>10}"
                         f"{muls * BLOCK_CYCLES_CA:>16,.0f}")
        lines.append("")
        lines.append("The OPF low-weight prime halves the multiplication "
                     "count (2s^2+s -> s^2+s),")
        lines.append("which is the paper's reason for pairing OPFs with "
                     "the MAC unit.")
        save_table(output_dir, "ablation_montgomery_methods.txt",
                   "\n".join(lines))

    def test_opf_reduction_is_linear(self, benchmark):
        def overhead():
            from repro.mpa import mul_product_scanning

            counter = WordOpCounter()
            mul_product_scanning(to_words(3, 5), to_words(5, 5),
                                 counter=counter)
            product_only = counter.mul
            return _count(fips_montgomery_opf).mul - product_only

        extra = benchmark(overhead)
        assert extra == 5  # exactly s extra word muls (paper Section III-B)

    def test_python_throughput(self, benchmark):
        """Wall-clock sanity: the OPF variant is also the fastest in the
        Python model (fewer big-int ops)."""
        a = to_words(0x1234567890ABCDEF, 5)
        b = to_words(0xFEDCBA0987654321, 5)

        result = benchmark(fips_montgomery_opf, a, b, CTX)
        assert result is not None
