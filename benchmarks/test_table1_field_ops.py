"""Table I: 160-bit OPF field-operation runtimes in CA / FAST / ISE.

Each benchmark executes the corresponding assembly kernel on the JAAVR
simulator (the *simulated* cycle count is the reproduced quantity; the
wall-clock time pytest-benchmark reports is merely the simulator's own
speed).  The rendered paper-vs-measured table lands in
``benchmarks/_output/table1.txt``.
"""

import pytest

from conftest import save_table
from repro.analysis import generate_table1
from repro.avr.timing import Mode
from repro.kernels import (
    KernelRunner,
    OpfConstants,
    generate_modadd,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)
from repro.model.paper_data import (
    ISE_MUL_INSTRUCTION_MIX,
    TABLE1_RUNTIMES,
)

CONSTANTS = OpfConstants(u=65356, k=144)
A = 0x7BCDEF0123456789ABCDEF0123456789ABCDEF01
B = 0x3FEDCBA9876543210FEDCBA9876543210FEDCBA9


def _bench_kernel(benchmark, source, mode, paper_cycles, tolerance):
    runner = KernelRunner(source, mode=mode)

    def run():
        return runner.run(A, B)

    result, cycles = benchmark(run)
    benchmark.extra_info["simulated_cycles"] = cycles
    benchmark.extra_info["paper_cycles"] = paper_cycles
    benchmark.extra_info["delta_pct"] = round(
        100 * (cycles / paper_cycles - 1), 1
    )
    assert abs(cycles / paper_cycles - 1) < tolerance
    return cycles


class TestTable1Kernels:
    def test_addition_ca(self, benchmark):
        cycles = _bench_kernel(benchmark, generate_modadd(CONSTANTS),
                               Mode.CA, TABLE1_RUNTIMES["addition"]["CA"],
                               0.25)
        assert cycles < 260

    def test_addition_fast(self, benchmark):
        _bench_kernel(benchmark, generate_modadd(CONSTANTS), Mode.FAST,
                      TABLE1_RUNTIMES["addition"]["FAST"], 0.10)

    def test_multiplication_ca(self, benchmark):
        _bench_kernel(benchmark, generate_opf_mul_comba(CONSTANTS), Mode.CA,
                      TABLE1_RUNTIMES["multiplication"]["CA"], 0.30)

    def test_multiplication_fast(self, benchmark):
        _bench_kernel(benchmark, generate_opf_mul_comba(CONSTANTS),
                      Mode.FAST,
                      TABLE1_RUNTIMES["multiplication"]["FAST"], 0.35)

    def test_multiplication_ise(self, benchmark):
        _bench_kernel(benchmark, generate_opf_mul_mac(CONSTANTS), Mode.ISE,
                      TABLE1_RUNTIMES["multiplication"]["ISE"], 0.30)


class TestTable1Shape:
    def test_speedup_factors(self, benchmark, output_dir):
        """Section V-A's headline ratios: ISE ~6x CA, ~4.6x FAST."""
        def measure():
            ca = KernelRunner(generate_opf_mul_comba(CONSTANTS),
                              Mode.CA).run(A, B)[1]
            fast = KernelRunner(generate_opf_mul_comba(CONSTANTS),
                                Mode.FAST).run(A, B)[1]
            ise = KernelRunner(generate_opf_mul_mac(CONSTANTS),
                               Mode.ISE).run(A, B)[1]
            return ca, fast, ise

        ca, fast, ise = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert 5.0 < ca / ise < 7.0       # paper: 6.0
        assert 4.0 < fast / ise < 5.6     # paper: 4.6
        assert 1.1 < ca / fast < 1.5      # paper: 1.31
        benchmark.extra_info["ca_over_ise"] = round(ca / ise, 2)
        benchmark.extra_info["fast_over_ise"] = round(fast / ise, 2)

    def test_full_table_regeneration(self, benchmark, output_dir):
        table = benchmark.pedantic(generate_table1, rounds=1, iterations=1)
        save_table(output_dir, "table1.txt", table.render())
        assert len(table.rows) == 12


class TestIseInstructionMix:
    def test_mix_against_paper(self, benchmark, output_dir):
        """Section IV-A's breakdown of the 552-cycle multiplication."""
        runner = KernelRunner(generate_opf_mul_mac(CONSTANTS), Mode.ISE)
        profiler = runner.attach_profiler()

        def run():
            runner.run(A, B)
            return profiler.mix()

        mix = benchmark(run)
        loads = mix.get("LDD", 0) + mix.get("LD", 0)
        lines = ["ISE multiplication instruction mix (ours vs paper):",
                 f"  loads:           {loads:4d}  (paper "
                 f"{ISE_MUL_INSTRUCTION_MIX['loads']}, "
                 f"{ISE_MUL_INSTRUCTION_MIX['mac_triggering_loads']} "
                 f"triggering MACs)",
                 f"  MAC-trigger lds: {runner.core.mac.mac_ops // 2:4d}  "
                 f"(paper {ISE_MUL_INSTRUCTION_MIX['mac_triggering_loads']})",
                 f"  stores:          {mix.get('ST', 0) + mix.get('STD', 0):4d}"
                 f"  (paper {ISE_MUL_INSTRUCTION_MIX['stores']})",
                 f"  MOVW:            {mix.get('MOVW', 0):4d}  "
                 f"(paper {ISE_MUL_INSTRUCTION_MIX['movw']})",
                 f"  NOP:             {mix.get('NOP', 0):4d}  "
                 f"(paper {ISE_MUL_INSTRUCTION_MIX['nop']})"]
        save_table(output_dir, "table1_instruction_mix.txt",
                   "\n".join(lines))
        # 30 products x 8 nibbles = 240 MACs from 120 trigger loads; the
        # paper's 100 reflect its tighter scheduling -- same order.
        assert 90 <= runner.core.mac.mac_ops // 2 <= 130
        assert loads >= 100
