#!/usr/bin/env python3
"""An IoT scenario: a sensor node bootstrapping security on the ASIP.

Models the paper's motivating application: a battery-powered sensor node
(MICAz-class, 7.3728 MHz) that

1. establishes a session key with a gateway via x-only ECDH on the
   Montgomery curve (constant-time ladder — the node's long-term key must
   not leak through timing),
2. signs its telemetry with ECDSA over secp160r1 (the standardized curve a
   gateway is likely to require),
3. verifies a firmware-update announcement from the gateway.

For every step the script reports estimated cycles, latency and energy on
the three JAAVR variants, using the calibrated power model.

    python examples/iot_sensor_node.py
"""

import random

from repro.avr.timing import Mode
from repro.curves.params import make_montgomery, make_secp160r1
from repro.model import costs_for, price
from repro.model.power import PowerModel, energy_uj
from repro.protocols import Ecdsa, XOnlyEcdh

MICAZ_HZ = 7.3728e6
ASIP_HZ = 20e6


def report(step: str, counts, power_curve: str) -> None:
    power_model = PowerModel()
    print(f"\n--- {step} ---")
    print(f"{'mode':<6}{'cycles':>12}{'ms@MICAz':>10}{'ms@20MHz':>10}"
          f"{'uJ@1MHz':>10}")
    for mode in (Mode.CA, Mode.FAST, Mode.ISE):
        cycles = price(counts, costs_for(mode, "paper"))
        power = power_model.estimate(power_curve, mode)
        print(f"{mode.value:<6}{cycles:>12,.0f}"
              f"{cycles / MICAZ_HZ * 1000:>10.1f}"
              f"{cycles / ASIP_HZ * 1000:>10.1f}"
              f"{energy_uj(power.total_uw, cycles):>10.0f}")


def main() -> None:
    rng = random.Random(73)

    # -- 1. key establishment ------------------------------------------------
    mont = make_montgomery()
    ecdh = XOnlyEcdh(mont.curve, mont.base)
    node = ecdh.generate_keypair(rng)
    mont.field.counter.reset()
    gateway = ecdh.generate_keypair(rng)
    session_key_material = ecdh.shared_secret(node, gateway.public_x)
    ecdh_counts = mont.field.counter.copy()
    print("=== Sensor-node security bootstrap on the ECC ASIP ===")
    print(f"session key material: {session_key_material:#042x}"[:60] + "...")
    # Two ladders ran since the reset (gateway keygen + shared secret);
    # report a single scalar multiplication.
    for attr in ("add", "sub", "neg", "mul", "sqr", "mul_small", "inv"):
        setattr(ecdh_counts, attr, getattr(ecdh_counts, attr) // 2)
    report("ECDH: one constant-time ladder (Montgomery curve)",
           ecdh_counts, "montgomery")

    # -- 2. telemetry signing ---------------------------------------------------
    secp = make_secp160r1()
    dsa = Ecdsa(secp.curve, secp.base, secp.order)
    node_key = rng.randrange(1, secp.order)
    node_pub = dsa.public_key(node_key)
    secp.field.counter.reset()
    telemetry = b"temp=21.5C;humidity=40%;battery=2.9V"
    signature = dsa.sign(node_key, telemetry)
    sign_counts = secp.field.counter.copy()
    report("ECDSA sign: telemetry frame (secp160r1, NAF)", sign_counts,
           "weierstrass")
    print(f"signature: r={signature.r:#x}")
    print(f"           s={signature.s:#x}")

    # -- 3. firmware-announcement verification -----------------------------------
    secp.field.counter.reset()
    ok = dsa.verify(node_pub, telemetry, signature)
    verify_counts = secp.field.counter.copy()
    report("ECDSA verify: double-scalar (Shamir) on secp160r1",
           verify_counts, "weierstrass")
    print(f"verification result: {ok}")

    print("\nTakeaway: on a stock ATmega128 the whole bootstrap costs "
          "~20 MCycles (~2.7 s\non a MICAz); with the MAC-unit ISE it drops "
          "under 5 MCycles — the difference\nbetween a node that can afford "
          "public-key crypto per session and one that cannot.")


if __name__ == "__main__":
    main()
