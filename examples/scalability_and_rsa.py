#!/usr/bin/env python3
"""The flexibility argument: one ASIP, many field sizes, and even RSA.

The paper's Section V-D concedes that dedicated ECC cores beat the ASIP on
raw runtime and area — its rebuttal is flexibility: the same hardware runs
any field size, any curve family, and other cryptosystems entirely.  This
example demonstrates all three on the simulator:

1. the same kernel generators produce correct, measured field arithmetic
   for 128- to 256-bit OPFs (the dedicated cores in Table IV are fixed at
   one field each);
2. the MAC unit's speed-up *grows* with the field size;
3. the identical hardware accelerates RSA by the same ~6x (the paper's
   "even RSA" remark), although 160-bit ECC remains ~25x cheaper than
   RSA-1024 at comparable security — the reason the paper is about ECC.

    python examples/scalability_and_rsa.py
"""

import random

from repro.avr.timing import Mode
from repro.kernels import (
    KernelRunner,
    OpfConstants,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)
from repro.model import measure_point_mult
from repro.protocols.rsa import (
    MontgomeryModExp,
    Rsa,
    estimate_modexp_cycles,
    generate_keypair,
)

SIZES = [(40961, 112), (65356, 144), (40963, 176), (50001, 208),
         (60001, 240)]


def field_scaling() -> None:
    print("=== One generator, five field sizes (measured on the ISS) ===\n")
    print(f"{'field':>7}  {'mul CA':>8}  {'mul ISE':>8}  {'speed-up':>9}")
    for u, k in SIZES:
        constants = OpfConstants(u=u, k=k)
        nb = constants.operand_bytes
        ca = KernelRunner(generate_opf_mul_comba(constants),
                          Mode.CA).run(3, 5, operand_bytes=nb)[1]
        ise = KernelRunner(generate_opf_mul_mac(constants),
                           Mode.ISE).run(3, 5, operand_bytes=nb)[1]
        print(f"{constants.bits:>4}bit  {ca:>8,}  {ise:>8,}  "
              f"{ca / ise:>8.2f}x")
    print("\nA dedicated datapath would need a redesign per row; the ASIP "
          "recompiles.")


def rsa_on_the_asip() -> None:
    print("\n=== 'Even RSA' (Section IV-A) ===\n")
    rng = random.Random(99)
    key = generate_keypair(512, rng=rng)
    rsa = Rsa(key)
    message = 0x49_6F_54  # "IoT"
    ciphertext = rsa.encrypt(message)
    engine = MontgomeryModExp(key.n)
    engine.modexp(ciphertext, key.d)
    word_muls = engine.counter.mul
    print(f"RSA-512 private operation: {word_muls:,} (32x32) word "
          "multiplications")
    print(f"{'mode':<6}{'MCycles':>10}{'seconds @ 20 MHz':>18}")
    for mode in Mode:
        cycles = estimate_modexp_cycles(word_muls, mode)
        print(f"{mode.value:<6}{cycles / 1e6:>10.2f}"
              f"{cycles / 20e6:>18.2f}")
    assert rsa.decrypt(ciphertext) == message

    ecc = measure_point_mult("montgomery", "ladder").cycles["CA"]
    rsa512_ca = estimate_modexp_cycles(word_muls, Mode.CA)
    print(f"\n160-bit ECDH ladder vs RSA-512 private op (CA): "
          f"{rsa512_ca / ecc:.1f}x — and RSA-1024,")
    print("the actual security match for 160-bit ECC, is ~8x heavier "
          "still.  Hence: ECC for the IoT.")


def main() -> None:
    field_scaling()
    rsa_on_the_asip()


if __name__ == "__main__":
    main()
