#!/usr/bin/env python3
"""Timing-leakage comparison: high-speed vs leakage-reduced methods.

The paper's "constant round" implementations trade speed for a regular
execution profile.  This script makes the difference observable: it runs
many random scalars through each method and reports how the *cycle
estimate* (equivalently, the field-operation trace) varies with the secret.

* NAF double-and-add and the GLV method leak scalar weight through their
  operation counts (the "irregular execution pattern" the paper warns
  about for GLV).
* The Montgomery ladder, the co-Z ladder and Edwards DAAA execute an
  identical operation sequence for every same-length scalar.
* The one residual leak the paper acknowledges: the Kaliski inversion in
  the final projective-to-affine conversion has an operand-dependent
  iteration count.

    python examples/side_channel_leakage.py

Timing leakage is the *passive* half of the implementation-attack story;
for the active half — transient faults and the countermeasures that
detect them — see ``fault_injection_demo.py``.
"""

import random
import statistics

from repro.avr.timing import Mode
from repro.curves.params import make_glv, make_montgomery, make_weierstrass
from repro.model import costs_for, price
from repro.model.opcost import run_method
from repro.curves.params import make_suite


def cycle_spread(curve_key: str, method: str, trials: int = 25):
    rng = random.Random(0x5CA1E)
    costs = costs_for(Mode.CA, "paper")
    samples = []
    for _ in range(trials):
        suite = make_suite(curve_key)
        k = rng.getrandbits(160) | (1 << 159)
        if suite.order:
            k %= suite.order
            k |= 1 << 158
        run_method(suite, method, k)
        samples.append(price(suite.field.counter, costs))
    return samples


def report(name: str, samples) -> None:
    spread = (max(samples) - min(samples)) / statistics.mean(samples)
    marker = "LEAKS " if spread > 1e-9 else "regular"
    print(f"  {name:<38} mean {statistics.mean(samples)/1000:>8,.0f} kCyc   "
          f"spread {spread * 100:6.3f}%   [{marker}]")


def main() -> None:
    print("=== Scalar-dependence of the execution profile "
          "(25 random 160-bit scalars each) ===\n")
    print("High-speed methods:")
    report("Weierstrass NAF double-and-add", cycle_spread("weierstrass", "naf"))
    report("GLV endomorphism + JSF", cycle_spread("glv", "glv-jsf"))
    print("\nLeakage-reduced methods:")
    report("Montgomery x-only ladder", cycle_spread("montgomery", "ladder"))
    report("Weierstrass co-Z ladder", cycle_spread("weierstrass",
                                                   "coz-ladder"))
    report("Edwards double-and-add-always", cycle_spread("edwards", "daaa"))

    print("\n=== The residual leak: Kaliski inversion iterations ===\n")
    suite = make_montgomery()
    rng = random.Random(1)
    for _ in range(8):
        suite.field.from_int(rng.randrange(2, suite.field.p)).invert()
    counts = suite.field.inversion_iteration_counts
    print(f"  phase-1 iteration counts over 8 random operands: {counts}")
    print("  -> the final projective-to-affine conversion is *not* "
          "constant time;\n     the paper notes the same for its "
          "'constant runtime' rows (Section V-B).")

    print("\n=== Why it matters: the ladder's cost is the price of "
          "regularity ===\n")
    naf = statistics.mean(cycle_spread("weierstrass", "naf"))
    ladder = statistics.mean(cycle_spread("weierstrass", "coz-ladder"))
    print(f"  co-Z ladder / NAF cost ratio: {ladder / naf:.2f}x "
          "(paper Table II: 8824/6983 = 1.26x)")


if __name__ == "__main__":
    main()
