#!/usr/bin/env python3
"""Drive the JAAVR simulator directly: assembler, MAC unit, kernels.

Shows the substrate underneath the benchmarks:

1. assembles and runs the paper's Algorithm 2 (a 32x32 multiply as eight
   load-triggered nibble MACs), with disassembly and cycle count;
2. runs the full 160-bit OPF Montgomery-multiplication kernels in all
   three modes and prints the Table I comparison, including the ISE
   kernel's instruction mix next to the paper's.

    python examples/avr_simulator_demo.py
"""

from repro.avr import AvrCore, Mode, ProgramMemory, assemble, disassemble
from repro.kernels import (
    KernelRunner,
    OpfConstants,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)

ALGORITHM_2 = """
    ; paper Algorithm 2: (R16:R19) x (word at Z) -> accumulate into R0-R8
    .equ MACCR = 0x28
    ldi r20, 0x82        ; enable load-triggered MACs, reset nibble counter
    out MACCR, r20
    ldi r28, 0x60
    ldi r29, 0x00        ; Y -> operand A
    ldi r30, 0x70
    ldi r31, 0x00        ; Z -> operand B
    ldd r16, Y+0
    ldd r17, Y+1
    ldd r18, Y+2
    ldd r19, Y+3
    ldd r24, Z+0
    nop                  ; MAC: acc += (A * L(B0)) << 0
    ldd r24, Z+1         ; MAC: acc += (A * H(B0)) << 4
    nop                  ; MAC: acc += (A * L(B1)) << 8
    ldd r24, Z+2
    nop
    ldd r24, Z+3
    nop
    nop
    break
"""


def demo_algorithm2() -> None:
    print("=== Algorithm 2: one (32 x 32)-bit MAC on the ISE core ===\n")
    program = assemble(ALGORITHM_2)
    for line in disassemble(program.words)[:12]:
        print("   ", line)
    print("    ...")

    a, b = 0xDEADBEEF, 0x12345678
    core = AvrCore(ProgramMemory(), mode=Mode.ISE)
    program.load_into(core.program)
    core.data.load_bytes(0x60, a.to_bytes(4, "little"))
    core.data.load_bytes(0x70, b.to_bytes(4, "little"))
    core.run()
    acc = core.data.reg_window(0, 9)
    print(f"\n  operands     : {a:#010x} x {b:#010x}")
    print(f"  accumulator  : {acc:#x} (R0..R8)")
    print(f"  expected     : {a * b:#x}")
    print(f"  nibble MACs  : {core.mac.mac_ops} (8 = one 32x32 multiply)")
    print(f"  cycles       : {core.cycles} "
          "(the MACs ride the load/NOP cycles)")
    assert acc == a * b


def demo_opf_kernels() -> None:
    print("\n=== 160-bit OPF Montgomery multiplication kernels ===\n")
    constants = OpfConstants(u=65356, k=144)
    a = 0x123456789ABCDEF0123456789ABCDEF012345678
    b = 0x0FEDCBA9876543210FEDCBA9876543210FEDCBA9
    paper = {"CA": 3314, "FAST": 2537, "ISE": 552}
    print(f"{'mode':<6}{'kernel':<8}{'cycles':>8}{'paper':>8}{'code bytes':>12}")
    runners = {}
    for mode in (Mode.CA, Mode.FAST):
        runner = KernelRunner(generate_opf_mul_comba(constants), mode=mode)
        _, cycles = runner.run(a, b)
        runners[mode.value] = runner
        print(f"{mode.value:<6}{'comba':<8}{cycles:>8}{paper[mode.value]:>8}"
              f"{runner.code_bytes:>12}")
    runner = KernelRunner(generate_opf_mul_mac(constants), mode=Mode.ISE)
    profiler = runner.attach_profiler()
    _, cycles = runner.run(a, b)
    print(f"{'ISE':<6}{'MAC':<8}{cycles:>8}{paper['ISE']:>8}"
          f"{runner.code_bytes:>12}")

    print("\nISE kernel instruction mix (paper: 204 loads / 40 st / "
          "83 movw / 40 swap / 31 nop):")
    for group, count in profiler.mix().items():
        print(f"    {group:<8}{count:>5}")


def main() -> None:
    demo_algorithm2()
    demo_opf_kernels()


if __name__ == "__main__":
    main()
