#!/usr/bin/env python3
"""Quickstart: ECDH over the paper's Montgomery curve, with cycle estimates.

Runs an x-coordinate-only Diffie-Hellman key exchange on the 160-bit OPF
Montgomery curve (the paper's constant-time workhorse), then prices one
scalar multiplication for each JAAVR mode — CA (a stock ATmega128), FAST,
and ISE (with the (32 x 4)-bit MAC unit).

    python examples/quickstart.py
"""

import random

from repro.avr.timing import Mode
from repro.curves.params import make_montgomery
from repro.model import costs_for, measure_point_mult, price
from repro.protocols import XOnlyEcdh


def main() -> None:
    rng = random.Random(2012)

    print("=== ECDH on the 160-bit OPF Montgomery curve ===")
    suite = make_montgomery()
    print(f"field : p = 65356 * 2^144 + 1  ({suite.field.p:#042x})")
    print(f"curve : {suite.curve.b_int:#x} y^2 = x^3 + "
          f"{suite.curve.a_int} x^2 + x   ((A+2)/4 = "
          f"{suite.curve.a24_small})")

    ecdh = XOnlyEcdh(suite.curve, suite.base)
    alice = ecdh.generate_keypair(rng)
    bob = ecdh.generate_keypair(rng)
    secret_a = ecdh.shared_secret(alice, bob.public_x)
    secret_b = ecdh.shared_secret(bob, alice.public_x)
    assert secret_a == secret_b
    print(f"\nAlice's public x : {alice.public_x:#042x}")
    print(f"Bob's   public x : {bob.public_x:#042x}")
    print(f"shared secret    : {secret_a:#042x}")
    print("key agreement    : OK (both sides derived the same secret)")

    print("\n=== Cost of one 160-bit scalar multiplication ===")
    m = measure_point_mult("montgomery", "ladder")
    c = m.counts
    print(f"field ops: {c.mul} mul, {c.sqr} sqr, {c.mul_small} small-mul, "
          f"{c.add} add, {c.sub} sub, {c.inv} inv")
    print(f"{'mode':<6}{'cycles':>12}{'ms @ 7.37 MHz (MICAz)':>24}"
          f"{'ms @ 20 MHz':>14}")
    for mode in (Mode.CA, Mode.FAST, Mode.ISE):
        cycles = price(c, costs_for(mode, "paper"))
        print(f"{mode.value:<6}{cycles:>12,.0f}"
              f"{cycles / 7.3728e6 * 1000:>24.1f}"
              f"{cycles / 20e6 * 1000:>14.1f}")
    print("\n(The ISE row is the paper's headline: ~1.3 MCycles for a "
          "leakage-reduced\n scalar multiplication, 65 ms on a 20 MHz "
          "IoT-class device.)")


if __name__ == "__main__":
    main()
