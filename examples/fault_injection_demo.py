#!/usr/bin/env python3
"""Fault injection walkthrough: glitch a ladder step, watch ECDH recover.

Side channels (see ``side_channel_leakage.py``) leak secrets passively;
fault attacks corrupt a computation *actively* and read secrets out of
the wrong answers.  This script demonstrates the fault model and the
countermeasures of DESIGN.md §7 at three levels:

1. **Algorithm level** — flip one bit of the Montgomery-ladder state at a
   chosen rung and show the bare ladder silently returning a wrong point
   while the coherence-checked ladder (Okeya-Sakurai y-recovery of the
   R1 - R0 = P invariant) refuses.
2. **Protocol level** — run the same glitch inside a hardened x-only ECDH
   derivation: the countermeasure trips, the bounded retry re-executes
   cleanly, and the caller receives the *correct* secret plus a record of
   what fired (`last_detection`).
3. **Simulator level** — strike the assembly ladder kernel's SRAM on the
   cycle-accurate ISS at a seeded trigger cycle and run the host-side
   validation chain that a hardened firmware would.

    python examples/fault_injection_demo.py

For statistics over hundreds of seeded faults (benign / detected /
silently-corrupted rates, per countermeasure), use the campaign CLI:

    python -m repro faults ladder --mode ca
    python -m repro faults ecdh --n 200 --format jsonl
"""

from repro.avr.timing import Mode
from repro.curves.params import MONTGOMERY_GX, OPF_K, OPF_U, make_montgomery
from repro.faults import FaultDetectedError, FaultInjector, FaultSpec, \
    LadderFault
from repro.kernels import LadderKernel, OpfConstants
from repro.kernels.ladder_kernel import SLOT_BASE
from repro.protocols import XOnlyEcdh
from repro.protocols.ecdh import XOnlyKeyPair
from repro.scalarmult import montgomery_ladder_x, montgomery_ladder_x_checked

BITS = 160
SCALAR = (1 << 158) | 0x1234567DEADBEEF12345  # full-width: every rung counts


def banner(title):
    print()
    print(title)
    print("-" * len(title))


def algorithm_level(curve, base):
    banner("1. One bit flip in the ladder state (rung 150, R0.x, bit 7)")
    fault = LadderFault(rung=150, register="r0", coord="x", bit=7)
    golden = montgomery_ladder_x(curve, SCALAR, base, bits=BITS)
    faulted = montgomery_ladder_x(curve, SCALAR, base, bits=BITS,
                                  step_hook=fault.hook())
    silent = faulted.x * golden.z != golden.x * faulted.z
    print(f"bare ladder:    returned a wrong point silently: {silent}")
    try:
        montgomery_ladder_x_checked(curve, SCALAR, base, bits=BITS,
                                    step_hook=fault.hook())
        print("checked ladder: MISSED the fault")
    except FaultDetectedError as exc:
        print(f"checked ladder: FaultDetectedError — {exc}")


def protocol_level(curve, base):
    banner("2. The same glitch inside a hardened ECDH derivation")
    fault = LadderFault(rung=150, register="r0", coord="x", bit=7)
    ecdh = XOnlyEcdh(curve, base)
    own = XOnlyKeyPair(private=SCALAR,
                       public_x=ecdh._ladder_x(SCALAR, base.x.to_int()))
    peer_x = ecdh._ladder_x((1 << 158) | 99, base.x.to_int())
    golden = ecdh.shared_secret(own, peer_x)
    recovered = ecdh.shared_secret(own, peer_x, fault_hook=fault.hook())
    print(f"countermeasure fired:  {ecdh.last_detection}")
    print(f"secret still correct:  {recovered == golden} "
          f"(detect-and-retry re-ran the ladder cleanly)")
    bare = XOnlyEcdh(curve, base, hardened=False)
    corrupted = bare.shared_secret(own, peer_x, fault_hook=fault.hook())
    print(f"unhardened baseline:   wrong secret emitted silently: "
          f"{corrupted != golden}")


def simulator_level(curve, base):
    banner("3. SRAM strike on the assembly ladder under the ISS (CA mode)")
    constants = OpfConstants(u=OPF_U, k=OPF_K)
    kernel = LadderKernel(constants, Mode.CA, scalar_bytes=2)
    k = 0xB5E3
    x, z, cycles = kernel.run(k, MONTGOMERY_GX)
    print(f"golden run: {cycles} cycles")
    spec = FaultSpec(cycle=cycles // 2, target="sram", kind="bitflip",
                     address=SLOT_BASE + 3, bit=2)
    kernel.reset_core()
    kernel.load_operands(k, MONTGOMERY_GX)
    log = FaultInjector(kernel.core, [spec],
                        max_steps=3 * cycles + 10_000).run()
    print(f"injected:   {spec.describe()} "
          f"(landed at pc={log[0].pc:#06x}, cycle {log[0].cycle})")
    state = kernel.output_state()
    p = constants.p
    wrong = (state["X1"] * z - x * state["Z1"]) % p != 0
    detector = kernel.validate_output(k, curve, base)
    print(f"output corrupted:      {wrong}")
    print(f"validation chain says: {detector!r}")


def main():
    suite = make_montgomery(functional=True)
    curve, base = suite.curve, suite.base
    print("Fault model demo on", suite.curve.name)
    algorithm_level(curve, base)
    protocol_level(curve, base)
    simulator_level(curve, base)
    print()
    print("Campaign statistics: python -m repro faults <target> --help")


if __name__ == "__main__":
    main()
