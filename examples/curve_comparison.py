#!/usr/bin/env python3
"""Compare all five curves across methods and processor modes.

Regenerates the paper's Table II (point multiplication on a standard
ATmega128) and the cycle columns of Table III (all three JAAVR modes),
showing our estimates next to the paper's numbers.

    python examples/curve_comparison.py
"""

from repro.analysis import generate_table2, generate_table3
from repro.model import CONSTANT_METHODS, HIGHSPEED_METHODS, measure_point_mult


def main() -> None:
    print(generate_table2().render())
    print()
    print(generate_table3().render())

    print("\n=== Decision guide (paper Section VI) ===")
    hs = {c: measure_point_mult(c, HIGHSPEED_METHODS[c]).cycles["CA"]
          for c in ("secp160r1", "weierstrass", "edwards", "montgomery",
                    "glv")}
    ct = {c: measure_point_mult(c, CONSTANT_METHODS[c]).cycles["CA"]
          for c in hs}
    fastest = min(hs, key=hs.get)
    safest = min(ct, key=ct.get)
    print(f"* raw speed           -> {fastest} curve "
          f"({hs[fastest] / 1000:,.0f} kCycles, GLV endomorphism + JSF)")
    print(f"* regular execution   -> {safest} curve "
          f"({ct[safest] / 1000:,.0f} kCycles, Montgomery ladder; its "
          "high-speed and constant-time variants coincide)")
    print("* best area-time (ISE)-> edwards/montgomery curves "
          "(SARP, see Table III)")


if __name__ == "__main__":
    main()
