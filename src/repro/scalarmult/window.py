"""Width-w NAF (window) scalar multiplication — the road not taken.

The paper deliberately avoids window/comb methods: "we decided to stick
with methods for point multiplication that require a minimal amount of
memory" (Section V-B).  This module implements the window method anyway so
the ablation benchmark can *quantify* that trade-off: each extra window bit
halves-ish the addition count but doubles the precomputed table, whose RAM
footprint is exactly what a sensor node lacks.

The table holds the odd multiples P, 3P, ..., (2^(w-1)-1)P in affine form
(mixed additions stay cheap), produced with one shared inversion via
Montgomery's batch-inversion trick.
"""

from __future__ import annotations

from typing import List, Optional

from ..curves.point import AffinePoint, MaybePoint
from ..curves.weierstrass import JacobianPoint, WeierstrassCurve
from ..field.element import FpElement
from .recoding import width_w_naf_digits


def batch_invert(elements: List[FpElement]) -> List[FpElement]:
    """Montgomery's trick: n inversions for 1 inversion + 3(n-1) muls."""
    if not elements:
        return []
    if any(e.is_zero() for e in elements):
        raise ZeroDivisionError("cannot batch-invert zero")
    prefix = [elements[0]]
    for e in elements[1:]:
        prefix.append(prefix[-1] * e)
    running = prefix[-1].invert()
    out: List[Optional[FpElement]] = [None] * len(elements)
    for i in range(len(elements) - 1, 0, -1):
        out[i] = running * prefix[i - 1]
        running = running * elements[i]
    out[0] = running
    return out  # type: ignore[return-value]


def precompute_odd_multiples(curve: WeierstrassCurve, base: AffinePoint,
                             width: int) -> List[AffinePoint]:
    """[P, 3P, 5P, ..., (2^(w-1)-1)P] in affine form (batch inversion)."""
    if width < 2:
        raise ValueError("width must be at least 2")
    count = 1 << (width - 2)      # number of odd multiples
    jacobians: List[JacobianPoint] = [curve.from_affine(base)]
    double_p = curve.double(curve.from_affine(base))
    for _ in range(count - 1):
        jacobians.append(curve.add(jacobians[-1], double_p))
    # Batch-convert to affine: invert all Z coordinates at once.
    z_invs = batch_invert([pt.z for pt in jacobians])
    table: List[AffinePoint] = []
    for pt, z_inv in zip(jacobians, z_invs):
        z2 = z_inv.square()
        table.append(AffinePoint(pt.x * z2, pt.y * z2 * z_inv))
    return table


def scalar_mult_wnaf(curve: WeierstrassCurve, k: int, base: AffinePoint,
                     width: int = 4) -> MaybePoint:
    """Width-w NAF double-and-add with a precomputed odd-multiple table."""
    if k < 0:
        raise ValueError("scalar must be non-negative")
    if k == 0:
        return None
    table = precompute_odd_multiples(curve, base, width)
    neg_table = [curve.affine_neg(p) for p in table]
    digits = width_w_naf_digits(k, width)
    result = curve.identity
    for digit in reversed(digits):
        result = curve.double(result)
        if digit > 0:
            result = curve.add_mixed(result, table[(digit - 1) // 2])
        elif digit < 0:
            result = curve.add_mixed(result, neg_table[(-digit - 1) // 2])
    return curve.to_affine(result)


def wnaf_table_ram_bytes(width: int, field_bytes: int = 20) -> int:
    """RAM the table costs: 2 coordinates per entry, plus the negatives'
    y coordinates if stored (we charge only the positive table — negation
    is computed on the fly in a RAM-tight implementation)."""
    if width < 2:
        raise ValueError("width must be at least 2")
    return (1 << (width - 2)) * 2 * field_bytes
