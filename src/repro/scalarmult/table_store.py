"""Shared-memory store of precomputed fixed-base comb tables.

One process (the shard supervisor of :mod:`repro.serve.shard`) builds
the comb tables for the warm curves once, serializes them into a single
``multiprocessing.shared_memory`` segment, and every shard's worker
processes **attach read-only**: on a cache miss they deserialize the
table from the segment instead of re-running the EC precomputation.
Today's value-keyed LRU (:class:`~repro.scalarmult.fixed_base
.FixedBaseCache`) stays as the in-process tier above this store — the
store removes the *build* cost (the `fixed_base_tables_built` counter
stays flat across worker-pool growth), while the per-process LRU keeps
deserialized tables hot and budget-bounded.

Segment layout (all integers big-endian, header JSON ASCII)::

    b"RCTS" | u32 version | u32 index_len | index JSON | blob...blob

The index maps a canonical key string — ``curve|p|base_x|base_y|width
|bits`` in lowercase hex — to the ``(offset, length)`` of its table
blob.  Each blob is self-delimiting::

    b"FBCT" | u32 header_len | header JSON | presence bitmap |
    packed big-endian affine coordinates | 32-byte sha256

The trailing digest covers everything before it, so a short or
corrupted segment is rejected with :class:`TableStoreError` at load
time rather than yielding wrong points.  The digest is an *integrity*
check (torn writes, size bugs), not an authenticity mechanism — the
segment is only ever attached by processes forked from its creator.

Attach-side detail: Python 3.11 auto-registers attached segments with
the ``resource_tracker`` (bpo-39959; 3.12 grew ``track=False``).  All
attachers here are fork-descendants sharing the creator's tracker, so
the duplicate registration is idempotent and only the creating
supervisor ever unlinks — see :func:`_untrack`.
"""

from __future__ import annotations

import hashlib
import json
import struct
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..curves.point import AffinePoint
from ..obs.metrics import METRICS
from .fixed_base import DEFAULT_WIDTH, FixedBaseTable, default_scalar_bits

__all__ = [
    "STORE_VERSION",
    "TableStore",
    "TableStoreError",
    "build_store",
    "deserialize_table",
    "serialize_table",
    "store_key",
]

STORE_VERSION = 1

_STORE_MAGIC = b"RCTS"
_TABLE_MAGIC = b"FBCT"
_U32 = struct.Struct(">I")
_DIGEST_LEN = hashlib.sha256().digest_size

_TABLES_LOADED = METRICS.counter(
    "fixed_base_tables_loaded",
    "comb tables deserialized from the shared store (vs built locally)")
_STORE_ERRORS = METRICS.counter(
    "fixed_base_store_errors",
    "corrupt/short shared-store loads that fell back to a local build")


class TableStoreError(ValueError):
    """The shared segment (or one blob in it) is corrupt or truncated."""


def store_key(curve, base: AffinePoint, width: int, bits: int) -> str:
    """Canonical index key; value-based like the LRU's cache key."""
    return "|".join((curve.name, format(curve.field.p, "x"),
                     format(base.x.to_int(), "x"),
                     format(base.y.to_int(), "x"),
                     format(width, "x"), format(bits, "x")))


# -- one table <-> bytes -----------------------------------------------------


def serialize_table(table: FixedBaseTable) -> bytes:
    """One comb table as a self-delimiting, digest-trailed byte blob."""
    field_bytes = (table.curve.field.p.bit_length() + 7) // 8
    header = {
        "curve": table.curve.name,
        "p": format(table.curve.field.p, "x"),
        "base_x": format(table.base.x.to_int(), "x"),
        "base_y": format(table.base.y.to_int(), "x"),
        "width": table.width,
        "bits": table.bits,
        "windows": table.windows,
        "row_len": (1 << table.width) - 1,
        "field_bytes": field_bytes,
    }
    header_json = json.dumps(header, sort_keys=True,
                             separators=(",", ":")).encode("ascii")
    entries = [p for row in table.rows for p in row]
    bitmap = bytearray((len(entries) + 7) // 8)
    coords = bytearray()
    for i, point in enumerate(entries):
        if point is None:
            continue  # infinity (small-order toy bases only)
        bitmap[i // 8] |= 1 << (i % 8)
        coords += point.x.to_int().to_bytes(field_bytes, "big")
        coords += point.y.to_int().to_bytes(field_bytes, "big")
    body = (_TABLE_MAGIC + _U32.pack(len(header_json)) + header_json
            + bytes(bitmap) + bytes(coords))
    return body + hashlib.sha256(body).digest()


def deserialize_table(blob: bytes, curve) -> FixedBaseTable:
    """Rebuild a :class:`FixedBaseTable` from :func:`serialize_table`
    output, without re-running the precomputation (and without ticking
    the ``fixed_base_tables_built`` counter).

    *curve* must be the caller's own suite curve for the blob's header
    ``(name, p)`` — table entries are lifted into that curve's field so
    the worker's op accounting sees its own field instance.
    """
    if len(blob) < len(_TABLE_MAGIC) + _U32.size + _DIGEST_LEN:
        raise TableStoreError("table blob is truncated")
    if blob[:len(_TABLE_MAGIC)] != _TABLE_MAGIC:
        raise TableStoreError("table blob has a bad magic")
    body, digest = blob[:-_DIGEST_LEN], blob[-_DIGEST_LEN:]
    if hashlib.sha256(body).digest() != digest:
        raise TableStoreError("table blob fails its sha256 digest")
    (header_len,) = _U32.unpack_from(blob, len(_TABLE_MAGIC))
    header_start = len(_TABLE_MAGIC) + _U32.size
    try:
        header = json.loads(blob[header_start:header_start + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TableStoreError(f"table header is not JSON: {exc}") from None
    if header.get("curve") != curve.name \
            or header.get("p") != format(curve.field.p, "x"):
        raise TableStoreError(
            f"table blob is for {header.get('curve')!r}, "
            f"not {curve.name!r}")
    windows, row_len = header["windows"], header["row_len"]
    field_bytes = header["field_bytes"]
    entry_count = windows * row_len
    bitmap_len = (entry_count + 7) // 8
    bitmap_start = header_start + header_len
    coords_start = bitmap_start + bitmap_len
    bitmap = body[bitmap_start:coords_start]
    if len(bitmap) != bitmap_len:
        raise TableStoreError("table bitmap is truncated")
    present = sum(bin(b).count("1") for b in bitmap)
    if len(body) - coords_start != present * 2 * field_bytes:
        raise TableStoreError("table coordinate section has a bad length")
    field = curve.field
    rows: List[List[Optional[AffinePoint]]] = []
    offset = coords_start
    for i in range(windows):
        row: List[Optional[AffinePoint]] = []
        for j in range(row_len):
            idx = i * row_len + j
            if bitmap[idx // 8] & (1 << (idx % 8)):
                x = int.from_bytes(body[offset:offset + field_bytes], "big")
                y = int.from_bytes(
                    body[offset + field_bytes:offset + 2 * field_bytes],
                    "big")
                offset += 2 * field_bytes
                row.append(AffinePoint(field.from_int(x), field.from_int(y)))
            else:
                row.append(None)
        rows.append(row)
    base = AffinePoint(field.from_int(int(header["base_x"], 16)),
                       field.from_int(int(header["base_y"], 16)))
    table = FixedBaseTable.from_rows(curve, base, header["width"],
                                     header["bits"], rows)
    # Cheap sanity past the digest: T[0][1] is 1 * 2^0 * G = G itself.
    first = table.rows[0][0]
    if first is None or first.x.to_int() != base.x.to_int() \
            or first.y.to_int() != base.y.to_int():
        raise TableStoreError("table row 0 does not start at the base point")
    return table


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Keep the resource tracker's books balanced on attach.

    Python 3.11's ``SharedMemory`` registers the segment with the
    resource tracker on *attach* as well as on create (bpo-39959).  In
    this codebase every attacher is a fork-descendant of the creator,
    so they all share ONE tracker process and its registry is a set:
    the duplicate attach-time REGISTER is idempotent, and the
    creator's eventual ``unlink()`` removes the single entry.  Sending
    an UNREGISTER here (the usual bpo-39959 workaround for *separate*
    process trees) would strip that shared entry and make the
    creator's unlink crash the tracker with a KeyError — so for the
    shared-tracker fork topology the correct bookkeeping is: do
    nothing."""


# -- the store ---------------------------------------------------------------


class TableStore:
    """A read-mostly shared-memory segment of serialized comb tables.

    The creator (:meth:`create`) writes once and later :meth:`unlink`\\ s;
    attachers (:meth:`attach`, typically pool workers after fork) only
    read.  :meth:`load` is keyed exactly like the in-process LRU, so
    :class:`~repro.scalarmult.fixed_base.FixedBaseCache` can consult the
    store transparently on a miss (see ``attach_store``).
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 index: Dict[str, Tuple[int, int]], owner: bool):
        self._shm = shm
        self._index = index
        self._owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name attachers pass to :meth:`attach`."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        return self._owner

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, tables: Sequence[FixedBaseTable],
               name: Optional[str] = None) -> "TableStore":
        """Serialize *tables* into a fresh shared segment (creator side)."""
        if not tables:
            raise ValueError("a table store needs at least one table")
        blobs: Dict[str, bytes] = {}
        for table in tables:
            key = store_key(table.curve, table.base, table.width, table.bits)
            blobs[key] = serialize_table(table)
        index: Dict[str, Tuple[int, int]] = {}
        offset = 0  # relative to the blob section; rebased below
        for key in sorted(blobs):
            index[key] = (offset, len(blobs[key]))
            offset += len(blobs[key])
        index_json = json.dumps(index, sort_keys=True,
                                separators=(",", ":")).encode("ascii")
        prefix_len = len(_STORE_MAGIC) + 2 * _U32.size + len(index_json)
        index = {key: (off + prefix_len, length)
                 for key, (off, length) in index.items()}
        total = prefix_len + offset
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        buf = shm.buf
        buf[:len(_STORE_MAGIC)] = _STORE_MAGIC
        pos = len(_STORE_MAGIC)
        buf[pos:pos + _U32.size] = _U32.pack(STORE_VERSION)
        pos += _U32.size
        buf[pos:pos + _U32.size] = _U32.pack(len(index_json))
        pos += _U32.size
        buf[pos:pos + len(index_json)] = index_json
        pos += len(index_json)
        for key in sorted(blobs):
            blob = blobs[key]
            buf[pos:pos + len(blob)] = blob
            pos += len(blob)
        return cls(shm, index, owner=True)

    @classmethod
    def attach(cls, name: str) -> "TableStore":
        """Open an existing segment read-only (worker side).

        Raises :class:`TableStoreError` when the segment is not a table
        store or its index is truncated; ``FileNotFoundError`` when no
        segment of that name exists.
        """
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        try:
            buf = bytes(shm.buf[:len(_STORE_MAGIC) + 2 * _U32.size])
            if len(buf) < len(_STORE_MAGIC) + 2 * _U32.size \
                    or buf[:len(_STORE_MAGIC)] != _STORE_MAGIC:
                raise TableStoreError(
                    f"segment {name!r} is not a comb-table store")
            (version,) = _U32.unpack_from(buf, len(_STORE_MAGIC))
            if version != STORE_VERSION:
                raise TableStoreError(
                    f"store version {version} != {STORE_VERSION}")
            (index_len,) = _U32.unpack_from(
                buf, len(_STORE_MAGIC) + _U32.size)
            index_start = len(_STORE_MAGIC) + 2 * _U32.size
            if shm.size < index_start + index_len:
                raise TableStoreError("store index is truncated")
            try:
                raw = json.loads(
                    bytes(shm.buf[index_start:index_start + index_len]))
                # The serialized index is relative to the blob section
                # (its own length can't appear inside itself); rebase
                # to absolute segment offsets, like the creator's copy.
                blob_base = index_start + index_len
                index = {key: (blob_base + int(off), int(length))
                         for key, (off, length) in raw.items()}
            except (json.JSONDecodeError, UnicodeDecodeError, TypeError,
                    ValueError) as exc:
                raise TableStoreError(
                    f"store index is not valid JSON: {exc}") from None
            for key, (off, length) in index.items():
                if off < 0 or length < 0 or off + length > shm.size:
                    raise TableStoreError(
                        f"store entry {key!r} points outside the segment")
        except TableStoreError:
            shm.close()
            raise
        return cls(shm, index, owner=False)

    def close(self) -> None:
        """Unmap this process's view (idempotent; the segment lives on)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; attach will then fail)."""
        if not self._owner:
            raise TableStoreError("only the creating process may unlink")
        self.close()
        self._shm.unlink()

    def __enter__(self) -> "TableStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- reads ---------------------------------------------------------------

    def keys(self) -> List[str]:
        return sorted(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def load(self, curve, base: AffinePoint, width: int = DEFAULT_WIDTH,
             bits: Optional[int] = None) -> Optional[FixedBaseTable]:
        """The stored table for this tuple, or ``None`` when absent.

        Deserializes into the *caller's* curve/field objects and ticks
        ``fixed_base_tables_loaded``; corruption raises
        :class:`TableStoreError` (and ticks
        ``fixed_base_store_errors``) so callers can degrade to a local
        build.
        """
        if self._closed:
            raise TableStoreError("store is closed")
        if bits is None:
            bits = default_scalar_bits(curve)
        entry = self._index.get(store_key(curve, base, width, bits))
        if entry is None:
            return None
        offset, length = entry
        try:
            table = deserialize_table(
                bytes(self._shm.buf[offset:offset + length]), curve)
        except TableStoreError:
            _STORE_ERRORS.inc()
            raise
        _TABLES_LOADED.inc()
        return table

    def stats(self) -> Dict[str, int]:
        return {"tables": len(self._index), "segment_bytes": self._shm.size}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TableStore({self.name!r}, tables={len(self._index)}, "
                f"bytes={self._shm.size}, owner={self._owner})")


def build_store(curve_keys: Sequence[str], width: int = DEFAULT_WIDTH,
                name: Optional[str] = None) -> TableStore:
    """Build the comb tables for *curve_keys* and serialize them into a
    fresh store (the shard supervisor's one-time setup).

    ``montgomery`` is skipped like ``WorkerState.warm`` does — the
    x-only ladder path consumes no comb table.
    """
    from ..curves.params import make_suite

    tables: List[FixedBaseTable] = []
    for key in dict.fromkeys(curve_keys):  # de-dup, keep order
        if key == "montgomery":
            continue
        suite = make_suite(key)
        tables.append(FixedBaseTable(suite.curve, suite.base, width=width))
    if not tables:
        raise ValueError(
            "no comb-capable curves among "
            f"{list(curve_keys)!r} (montgomery is ladder-only)")
    return TableStore.create(tables, name=name)
