"""Fixed-base scalar multiplication with cached radix-2^w comb tables.

The generic algorithms in :mod:`repro.scalarmult.algorithms` walk the
scalar bit by bit and pay ~n doublings per multiplication.  When the base
point is *fixed* (key generation, ECDSA/Schnorr nonce commitments, any
``k*G``), all doublings can be moved into a one-time precomputation: with
window width ``w`` and scalar length ``bits`` the table stores

    T[i][j] = j * 2^(w*i) * G        for j in 1 .. 2^w - 1

and evaluating ``k*G`` decomposes ``k`` into ``ceil(bits/w)`` radix-2^w
digits, costing one mixed addition per *nonzero* digit — no doublings at
all.  For a 160-bit scalar at w = 4 that is ~40 additions instead of
~160 doublings + ~53 additions, a measured 4-8x win (BENCH_serve.json).

The paper avoids such tables on the sensor node ("a minimal amount of
memory", Section V-B); the serving gateway of :mod:`repro.serve` is the
opposite regime — RAM is plentiful, the base point never changes, and
thousands of fixed-base operations amortize one table build.  Tables are
therefore cached per (curve, base, width, bits) in a process-wide LRU
cache with an explicit byte budget (:class:`FixedBaseCache`), built once
per worker process and shared by every request the worker serves.

Family support mirrors :mod:`repro.scalarmult.adapters`:

* Weierstraß/GLV — Jacobian accumulator, 8M + 3S mixed additions, table
  rows normalized to affine with one batched inversion per row.
* Twisted Edwards — extended accumulator, unified mixed additions (the
  complete law makes table evaluation exception-free by construction).
* Montgomery — full-point affine chord-and-tangent arithmetic (the
  reference path; x-only ladders cannot consume a comb).  Supported for
  completeness and cross-checking, but the ladder remains the production
  path for x-only ECDH.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..curves.edwards import TwistedEdwardsCurve
from ..curves.montgomery import MontgomeryCurve
from ..curves.point import AffinePoint, MaybePoint
from ..curves.weierstrass import WeierstrassCurve
from ..obs import trace as _trace
from ..obs.metrics import METRICS
from ..obs.trace import traced
from .window import batch_invert

__all__ = [
    "DEFAULT_WIDTH",
    "DEFAULT_BUDGET_BYTES",
    "FixedBaseTable",
    "FixedBaseCache",
    "TABLE_CACHE",
    "comb_table_ram_bytes",
    "default_scalar_bits",
    "scalar_mult_fixed_base",
]

#: Default comb width; 4 bits balances table RAM (~25 KiB per 160-bit
#: curve) against the addition count (one per nonzero 4-bit digit).
DEFAULT_WIDTH = 4

#: Default per-process table budget.  Generous for a gateway (a 160-bit
#: w=4 table is ~25 KiB; the budget holds all five curve families many
#: times over) yet bounded, so a misbehaving caller cannot grow tables
#: without limit.
DEFAULT_BUDGET_BYTES = 1 << 20

_TABLES_BUILT = METRICS.counter(
    "fixed_base_tables_built", "comb precomputation tables constructed")
_CACHE_HITS = METRICS.counter(
    "fixed_base_cache_hits", "fixed-base table cache hits")
_CACHE_EVICTIONS = METRICS.counter(
    "fixed_base_cache_evictions", "tables evicted to respect the budget")


def default_scalar_bits(curve) -> int:
    """Scalar length a table covers by default: the field size plus the
    Hasse slack (group order can exceed p by one bit) plus one."""
    return curve.field.p.bit_length() + 2


def comb_table_ram_bytes(width: int, bits: int, field_bytes: int = 20) -> int:
    """RAM a full comb table costs: 2 coordinates per entry.

    ``ceil(bits/width)`` windows of ``2^width - 1`` affine points each.
    The real table may be slightly smaller on low-order (toy) curves
    whose rows contain the point at infinity.
    """
    if width < 1 or width > 16:
        raise ValueError("comb width must be in 1..16")
    if bits < 1:
        raise ValueError("scalar length must be positive")
    windows = -(-bits // width)
    return windows * ((1 << width) - 1) * 2 * field_bytes


class FixedBaseTable:
    """One immutable comb table for a (curve, base, width, bits) tuple.

    Rows hold affine points (``None`` marks the point at infinity, which
    only occurs when the base has small order — toy curves); evaluation
    accumulates in the family's cheapest projective system.
    """

    def __init__(self, curve, base: AffinePoint,
                 width: int = DEFAULT_WIDTH, bits: Optional[int] = None):
        if width < 1 or width > 8:
            raise ValueError("comb width must be in 1..8")
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.width = width
        self.bits = bits if bits is not None else default_scalar_bits(curve)
        if self.bits < 1:
            raise ValueError("scalar length must be positive")
        self.windows = -(-self.bits // width)
        self._mask = (1 << width) - 1
        tr = _trace.CURRENT
        if tr is not None:
            with tr.span("fixed_base_precompute", kind="scalarmult",
                         counter=curve.field.counter, width=width,
                         bits=self.bits, windows=self.windows):
                self.rows = self._build()
        else:
            self.rows = self._build()
        _TABLES_BUILT.inc()

    @classmethod
    def from_rows(cls, curve, base: AffinePoint, width: int, bits: int,
                  rows: List[List[Optional[AffinePoint]]],
                  ) -> "FixedBaseTable":
        """A table around precomputed *rows* — the deserialization path
        of :mod:`repro.scalarmult.table_store`.

        Skips :meth:`_build` entirely and does **not** tick
        ``fixed_base_tables_built`` (the acceptance signal that workers
        attach the shared store instead of precomputing); the caller
        vouches for the rows (the store's sha256 digest does).
        """
        if width < 1 or width > 8:
            raise ValueError("comb width must be in 1..8")
        if bits < 1:
            raise ValueError("scalar length must be positive")
        table = cls.__new__(cls)
        table.curve = curve
        table.base = base
        table.width = width
        table.bits = bits
        table.windows = -(-bits // width)
        table._mask = (1 << width) - 1
        if len(rows) != table.windows \
                or any(len(row) != table._mask for row in rows):
            raise ValueError(
                f"rows must be {table.windows} windows of "
                f"{table._mask} entries")
        table.rows = rows
        return table

    # -- construction --------------------------------------------------------

    def _build(self) -> List[List[Optional[AffinePoint]]]:
        if isinstance(self.curve, MontgomeryCurve):
            return self._build_affine()
        if isinstance(self.curve, TwistedEdwardsCurve):
            return self._build_projective(edwards=True)
        if isinstance(self.curve, WeierstrassCurve):
            return self._build_projective(edwards=False)
        raise TypeError(
            f"no fixed-base strategy for {type(self.curve).__name__}")

    def _build_projective(self, edwards: bool) -> List[List[Optional[AffinePoint]]]:
        """Shared Weierstraß/Edwards build: projective rows, one batched
        inversion per row (plus the row's 2^w * G_i hand-off point)."""
        curve = self.curve
        count = self._mask  # entries per row: 1 .. 2^w - 1
        rows: List[List[Optional[AffinePoint]]] = []
        g: Optional[AffinePoint] = self.base  # affine 2^(w*i) * G
        for _ in range(self.windows):
            projs = []
            acc = curve.from_affine(g)
            projs.append(acc)
            for _j in range(count - 1):
                acc = curve.add_mixed(acc, g)
                projs.append(acc)
            # Hand-off point for the next row: 2^w * G_i.
            nxt = curve.from_affine(g)
            for _d in range(self.width):
                nxt = curve.double(nxt) if not edwards else curve.double(
                    nxt, compute_t=True)
            projs.append(nxt)
            affines = self._normalize(projs, edwards)
            rows.append(affines[:-1])
            g = affines[-1]
            if g is None and isinstance(curve, TwistedEdwardsCurve):
                g = curve.affine_identity()
        return rows

    def _normalize(self, projs, edwards: bool) -> List[Optional[AffinePoint]]:
        """Batch projective-to-affine: one inversion for the whole row."""
        live = [(i, p) for i, p in enumerate(projs) if not p.z.is_zero()]
        out: List[Optional[AffinePoint]] = [None] * len(projs)
        if not live:
            return out
        z_invs = batch_invert([p.z for _i, p in live])
        for (i, p), z_inv in zip(live, z_invs):
            if edwards:
                out[i] = AffinePoint(p.x * z_inv, p.y * z_inv)
            else:
                z2 = z_inv.square()
                out[i] = AffinePoint(p.x * z2, p.y * z2 * z_inv)
        return out

    def _build_affine(self) -> List[List[Optional[AffinePoint]]]:
        """Montgomery build via full-point affine reference arithmetic."""
        curve = self.curve
        count = self._mask
        rows: List[List[Optional[AffinePoint]]] = []
        g: MaybePoint = self.base
        for _ in range(self.windows):
            row: List[Optional[AffinePoint]] = []
            acc = g
            for _j in range(count):
                row.append(acc)
                acc = curve.affine_add(acc, g)
            rows.append(row)
            for _d in range(self.width):
                g = curve.affine_add(g, g)
        return rows

    # -- evaluation ----------------------------------------------------------

    def multiply(self, k: int) -> MaybePoint:
        """``k * base`` from the table: one mixed addition per nonzero
        radix-2^w digit of *k*, zero doublings."""
        if k < 0:
            raise ValueError("scalar must be non-negative")
        if k.bit_length() > self.bits:
            raise ValueError(
                f"scalar of {k.bit_length()} bits exceeds the table's "
                f"{self.bits}-bit coverage")
        curve = self.curve
        if isinstance(curve, MontgomeryCurve):
            acc_a: MaybePoint = None
            for i in range(self.windows):
                digit = (k >> (i * self.width)) & self._mask
                if digit:
                    acc_a = curve.affine_add(acc_a, self.rows[i][digit - 1])
            return acc_a
        acc = curve.identity
        if isinstance(curve, TwistedEdwardsCurve):
            for i in range(self.windows):
                digit = (k >> (i * self.width)) & self._mask
                if digit:
                    entry = self.rows[i][digit - 1]
                    if entry is not None:
                        acc = curve.add_mixed(acc, entry)
        else:
            for i in range(self.windows):
                digit = (k >> (i * self.width)) & self._mask
                if digit:
                    acc = curve.add_mixed(acc, self.rows[i][digit - 1])
        return curve.to_affine(acc)

    # -- sizing --------------------------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """Actual table footprint: 2 coordinates per stored affine point."""
        field_bytes = (self.curve.field.p.bit_length() + 7) // 8
        entries = sum(1 for row in self.rows for p in row if p is not None)
        return entries * 2 * field_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FixedBaseTable({self.curve.name}, w={self.width}, "
                f"bits={self.bits}, ram={self.ram_bytes}B)")


CacheKey = Tuple[str, int, int, int, int, int]


class FixedBaseCache:
    """Process-wide LRU table cache with an explicit byte budget.

    Keys are value-based — ``(curve.name, p, base.x, base.y, width,
    bits)`` — so two freshly constructed :class:`CurveSuite` objects for
    the same named curve share one table.  A single table larger than the
    budget is refused outright; otherwise least-recently-used tables are
    evicted until the new table fits.

    Fork-safety: the cache is plain process-local state.  Worker
    processes either inherit built tables copy-on-write (fork start
    method — free sharing) or build their own on first use; they never
    write back to the parent.

    With a :class:`~repro.scalarmult.table_store.TableStore` attached
    (:meth:`attach_store` — the shard supervisor's workers do this),
    the cache becomes the in-process tier of a two-level hierarchy:
    L1 hit -> shared-store deserialize -> local build, in that order.
    A corrupt store entry degrades to a local build instead of failing
    the request.
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES):
        if budget_bytes < 1:
            raise ValueError("budget must be positive")
        self.budget_bytes = budget_bytes
        self._tables: "OrderedDict[CacheKey, FixedBaseTable]" = OrderedDict()
        #: Optional read-only shared tier consulted on an LRU miss.
        self.store = None

    def attach_store(self, store) -> None:
        """Install (or with ``None``, detach) the shared-store tier."""
        self.store = store

    @staticmethod
    def _key(curve, base: AffinePoint, width: int, bits: int) -> CacheKey:
        return (curve.name, curve.field.p, base.x.to_int(), base.y.to_int(),
                width, bits)

    def get(self, curve, base: AffinePoint, width: int = DEFAULT_WIDTH,
            bits: Optional[int] = None) -> FixedBaseTable:
        """The cached table for this tuple, building it on first use."""
        if bits is None:
            bits = default_scalar_bits(curve)
        key = self._key(curve, base, width, bits)
        table = self._tables.get(key)
        if table is not None:
            self._tables.move_to_end(key)
            _CACHE_HITS.inc()
            return table
        if self.store is not None:
            try:
                table = self.store.load(curve, base, width=width, bits=bits)
            except ValueError:  # TableStoreError: corrupt entry/segment
                table = None
            if table is not None:
                # Over-budget loaded tables are served uncached rather
                # than refused: the store already paid the build.
                if table.ram_bytes <= self.budget_bytes:
                    self._admit(key, table)
                return table
        table = FixedBaseTable(curve, base, width=width, bits=bits)
        if table.ram_bytes > self.budget_bytes:
            raise ValueError(
                f"fixed-base table needs {table.ram_bytes} bytes, over the "
                f"{self.budget_bytes}-byte budget; lower the width")
        self._admit(key, table)
        return table

    def _admit(self, key: CacheKey, table: FixedBaseTable) -> None:
        """Insert under the byte budget, evicting LRU entries to fit."""
        while (self.ram_bytes + table.ram_bytes > self.budget_bytes
               and self._tables):
            self._tables.popitem(last=False)
            _CACHE_EVICTIONS.inc()
        self._tables[key] = table

    @property
    def ram_bytes(self) -> int:
        return sum(t.ram_bytes for t in self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def clear(self) -> None:
        self._tables.clear()

    def stats(self) -> Dict[str, int]:
        return {"tables": len(self._tables), "ram_bytes": self.ram_bytes,
                "budget_bytes": self.budget_bytes}


#: The process-wide cache (one per worker process after fork).
TABLE_CACHE = FixedBaseCache()

_fb_counter = lambda curve, *a, **kw: curve.field.counter  # noqa: E731
_fb_attrs = lambda curve, base, k, *a, **kw: (              # noqa: E731
    {"scalar_bits": k.bit_length()})


@traced("scalar_mult_fixed_base", kind="scalarmult",
        counter=_fb_counter, attrs_fn=_fb_attrs)
def scalar_mult_fixed_base(curve, base: AffinePoint, k: int,
                           width: int = DEFAULT_WIDTH,
                           bits: Optional[int] = None,
                           cache: Optional[FixedBaseCache] = TABLE_CACHE,
                           ) -> MaybePoint:
    """``k * base`` through a (cached) comb table.

    Pass ``cache=None`` to build a throwaway table (benchmarking the
    build itself); any scalar longer than the table's coverage raises
    ``ValueError`` — callers that may see oversized scalars (e.g. blinded
    ones) should catch it and fall back to a variable-base method.
    """
    if cache is None:
        return FixedBaseTable(curve, base, width=width, bits=bits).multiply(k)
    return cache.get(curve, base, width=width, bits=bits).multiply(k)
