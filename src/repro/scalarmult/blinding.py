"""Deterministic scalar blinding (a fault/DPA countermeasure).

Classic Coron-style scalar blinding computes ``k' = k + r * n`` for a fresh
random ``r`` and group order ``n``: ``k' * P == k * P``, but the bit pattern
the ladder consumes differs on every execution, so a fault (or power trace)
targeting a specific scalar bit no longer hits a fixed secret bit, and two
redundant executions walk *different* intermediate states.

On a real device ``r`` comes from the TRNG.  The reproduction derives it
**deterministically** (HMAC-SHA-256 over the scalar, order and a caller
context) so that campaigns, tests and RFC-6979-style deterministic
signatures stay bit-reproducible — the blinded scalar is still unknowable
without the secret, which is the property the countermeasure needs; only
the freshness-per-execution of true randomization is modelled away
(documented in DESIGN.md §7).
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["blind_scalar", "blinding_factor"]

_TAG = b"repro-scalar-blinding-v1"

#: Default blinding-factor width; 32 bits adds two 32-bit limbs of ladder
#: work, the usual embedded trade-off (a 160-bit order dwarfs 2^-32 bias).
DEFAULT_BITS = 32


def blinding_factor(k: int, order: int, context: bytes = b"",
                    bits: int = DEFAULT_BITS) -> int:
    """A deterministic, nonzero blinding multiplier ``r`` of *bits* bits."""
    if order <= 0:
        raise ValueError("order must be positive")
    if not 8 <= bits <= 256:
        raise ValueError("blinding width must be 8..256 bits")
    size = (max(k.bit_length(), order.bit_length()) + 7) // 8 or 1
    mac = hmac.new(_TAG + context,
                   k.to_bytes(size, "big") + order.to_bytes(size, "big"),
                   hashlib.sha256).digest()
    r = int.from_bytes(mac, "big") >> (256 - bits)
    return r | 1  # never zero


def blind_scalar(k: int, order: int, context: bytes = b"",
                 bits: int = DEFAULT_BITS) -> int:
    """Return ``k + r * order`` with a deterministic nonzero ``r``."""
    return k + blinding_factor(k, order, context, bits) * order
