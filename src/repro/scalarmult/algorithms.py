"""Generic scalar-multiplication algorithms over a group adapter.

These are the paper's "high-speed" and "constant round" methods that work on
any curve family exposing double / add-base / sub-base:

* :func:`scalar_mult_binary` — left-to-right double-and-add (reference).
* :func:`scalar_mult_naf` — signed-digit NAF double-and-add, the paper's
  high-speed method for secp160r1, Weierstraß and Edwards curves.
* :func:`scalar_mult_daaa` — Double-And-Add-Always with a fixed iteration
  count: every loop iteration performs exactly one doubling and one
  addition, discarding the addition when the scalar bit is 0.  This is the
  paper's leakage-reduced method for the Edwards curve (whose complete
  addition law makes the dummy addition exception-free).

The x-only Montgomery ladder and the co-Z ladder for Weierstraß curves live
in :mod:`repro.scalarmult.ladder`; the GLV method in
:mod:`repro.scalarmult.glv_mult`.
"""

from __future__ import annotations

from typing import Optional

from ..curves.point import MaybePoint
from ..obs.trace import traced
from .adapters import GroupAdapter
from .recoding import naf_digits

#: Tracing hooks shared by every scalar-multiplication entry point: the
#: span's counter is the adapter's field counter, and the scalar's bit
#: length is recorded (never the scalar itself).
_smul_counter = lambda adapter, k, *a, **kw: (  # noqa: E731
    adapter.curve.field.counter)
_smul_attrs = lambda adapter, k, *a, **kw: (    # noqa: E731
    {"scalar_bits": k.bit_length()})


@traced("scalar_mult_binary", kind="scalarmult",
        counter=_smul_counter, attrs_fn=_smul_attrs)
def scalar_mult_binary(adapter: GroupAdapter, k: int) -> MaybePoint:
    """Left-to-right binary double-and-add (n doublings, ~n/2 additions)."""
    if k < 0:
        raise ValueError("scalar must be non-negative")
    if k == 0:
        return adapter.to_affine(adapter.identity())
    result = adapter.identity()
    bits = bin(k)[2:]
    for i, bit in enumerate(bits):
        is_add = bit == "1"
        result = adapter.double(result, next_is_add=is_add)
        if is_add:
            result = adapter.add_base(result)
    return adapter.to_affine(result)


@traced("scalar_mult_naf", kind="scalarmult",
        counter=_smul_counter, attrs_fn=_smul_attrs)
def scalar_mult_naf(adapter: GroupAdapter, k: int) -> MaybePoint:
    """NAF double-and-add: n doublings, ~n/3 additions/subtractions."""
    if k < 0:
        raise ValueError("scalar must be non-negative")
    if k == 0:
        return adapter.to_affine(adapter.identity())
    digits = naf_digits(k)
    result = adapter.identity()
    for digit in reversed(digits):
        result = adapter.double(result, next_is_add=digit != 0)
        if digit == 1:
            result = adapter.add_base(result)
        elif digit == -1:
            result = adapter.sub_base(result)
    return adapter.to_affine(result)


@traced("scalar_mult_daaa", kind="scalarmult",
        counter=_smul_counter, attrs_fn=_smul_attrs)
def scalar_mult_daaa(adapter: GroupAdapter, k: int,
                     bits: Optional[int] = None) -> MaybePoint:
    """Double-And-Add-Always over a fixed number of iterations.

    Args:
        adapter: group adapter (Edwards adapters use their complete unified
            addition for the always-executed add).
        k: the scalar.
        bits: loop length; defaults to the scalar's bit length, but passing
            the group-order length makes the execution profile independent
            of the scalar — the paper's "constant round" property.
    """
    if k < 0:
        raise ValueError("scalar must be non-negative")
    length = bits if bits is not None else max(1, k.bit_length())
    if k.bit_length() > length:
        raise ValueError(f"scalar does not fit in {length} bits")
    result = adapter.identity()
    for i in range(length - 1, -1, -1):
        result = adapter.double(result, next_is_add=True)
        candidate = adapter.add_base(result)
        # Dummy addition: always computed, conditionally kept.
        if (k >> i) & 1:
            result = candidate
    return adapter.to_affine(result)
