"""Regular (constant-profile) ladders.

* :func:`montgomery_ladder_x` — the x-only Montgomery ladder on a Montgomery
  curve: per bit one differential addition (3M + 2S against the affine base)
  and one doubling (2M + 2S + one small-constant multiplication), i.e. the
  paper's 5.3 M + 4 S per bit.  The high-speed and constant-time variants
  coincide — exactly the property Table II shows for the Montgomery curve.

* :func:`coz_ladder` — Montgomery ladder on a Weierstraß (or GLV) curve with
  co-Z Jacobian formulas (Hutter, Joye and Sierra's register-light ladder):
  each rung is a conjugate co-Z addition (ZADDC) followed by a co-Z addition
  with update (ZADDU).  This is what the paper's "Mon" rows use for
  secp160r1, the OPF Weierstraß curve and the GLV curve.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..curves.montgomery import MontgomeryCurve, XZPoint
from ..curves.point import AffinePoint, MaybePoint
from ..curves.weierstrass import JacobianPoint, WeierstrassCurve
from ..faults.model import FaultDetectedError
from ..obs.trace import traced

#: Tracing hooks for the ladder entry points (curve-first signatures).
_ladder_counter = lambda curve, k, *a, **kw: (  # noqa: E731
    curve.field.counter)
_ladder_attrs = lambda curve, k, *a, **kw: (    # noqa: E731
    {"scalar_bits": k.bit_length()})


#: A fault-campaign seam: called after each rung as ``hook(rung, r0, r1)``
#: (rung counts processed bits MSB-first from 0); a non-None return value
#: replaces the ladder state.  See :mod:`repro.faults.pyfaults`.
StepHook = Callable[[int, XZPoint, XZPoint], Optional[Tuple[XZPoint,
                                                            XZPoint]]]


def _ladder_length(k: int, bits: Optional[int]) -> int:
    if k < 0:
        raise ValueError("scalar must be non-negative")
    length = bits if bits is not None else max(1, k.bit_length())
    if k.bit_length() > length:
        raise ValueError(f"scalar does not fit in {length} bits")
    return length


def _ladder_xz(curve: MontgomeryCurve, k: int, base: AffinePoint,
               length: int, step_hook: Optional[StepHook] = None,
               ) -> Tuple[XZPoint, XZPoint]:
    """The shared rung loop; returns both ladder outputs (R0, R1).

    The loop maintains R1 - R0 = P; the final pair therefore satisfies
    (R0, R1) = (k*P, (k+1)*P), which is what the coherence check below
    re-verifies via y-recovery.
    """
    f = curve.field
    base_xz = curve.xz_from_affine(base)
    r0 = XZPoint(f.one, f.zero)  # the point at infinity
    r1 = base_xz
    rung = 0
    for i in range(length - 1, -1, -1):
        if (k >> i) & 1:
            r0, r1 = curve.xadd(r0, r1, base_xz), curve.xdbl(r1)
        else:
            r0, r1 = curve.xdbl(r0), curve.xadd(r0, r1, base_xz)
        if step_hook is not None:
            faulted = step_hook(rung, r0, r1)
            if faulted is not None:
                r0, r1 = faulted
        rung += 1
    return r0, r1


@traced("montgomery_ladder_x", kind="scalarmult",
        counter=_ladder_counter, attrs_fn=_ladder_attrs)
def montgomery_ladder_x(curve: MontgomeryCurve, k: int, base: AffinePoint,
                        bits: Optional[int] = None,
                        step_hook: Optional[StepHook] = None) -> XZPoint:
    """x-only ladder: returns (X : Z) of k*P.

    With ``bits`` set (normally the group-order length) the ladder performs
    exactly that many add+double rungs regardless of the scalar value.
    ``step_hook`` is the fault-injection seam (see :data:`StepHook`).
    """
    length = _ladder_length(k, bits)
    r0, _r1 = _ladder_xz(curve, k, base, length, step_hook)
    return r0


def ladder_coherence_check(curve: MontgomeryCurve, base: AffinePoint,
                           r0: XZPoint, r1: XZPoint) -> bool:
    """Is (R0, R1) a coherent ladder output pair, i.e. R1 - R0 = P?

    A random fault anywhere in the ladder state destroys the differential
    invariant, after which Okeya-Sakurai y-recovery from (x(R0), x(R1))
    produces a point off the curve with overwhelming probability — this is
    the "ladder coherence" countermeasure of DESIGN.md §7.  Costs one
    y-recovery plus one curve-membership check (a handful of field ops and
    two inversions); no secret-dependent branching beyond the verdict.
    """
    if r0.is_infinity():
        # k*P = O requires (k+1)*P = P.
        if r1.is_infinity():
            return False
        return curve.x_affine(r1) == base.x
    if r1.is_infinity():
        # (k+1)*P = O requires k*P = -P.
        return curve.x_affine(r0) == base.x
    xq = curve.x_affine(r0)
    x_next = curve.x_affine(r1)
    recovered = curve.recover_y(base, xq, x_next)
    return curve.is_on_curve(recovered)


@traced("montgomery_ladder_x_checked", kind="scalarmult",
        counter=_ladder_counter, attrs_fn=_ladder_attrs)
def montgomery_ladder_x_checked(curve: MontgomeryCurve, k: int,
                                base: AffinePoint,
                                bits: Optional[int] = None,
                                step_hook: Optional[StepHook] = None,
                                ) -> XZPoint:
    """The ladder with the coherence countermeasure armed.

    Raises :class:`~repro.faults.model.FaultDetectedError` instead of
    returning when the output pair fails :func:`ladder_coherence_check`.
    """
    length = _ladder_length(k, bits)
    r0, r1 = _ladder_xz(curve, k, base, length, step_hook)
    if not ladder_coherence_check(curve, base, r0, r1):
        raise FaultDetectedError(
            "ladder coherence check failed: R1 - R0 != P")
    return r0


@traced("montgomery_ladder_full", kind="scalarmult",
        counter=_ladder_counter, attrs_fn=_ladder_attrs)
def montgomery_ladder_full(curve: MontgomeryCurve, k: int, base: AffinePoint,
                           bits: Optional[int] = None) -> MaybePoint:
    """Ladder plus Okeya-Sakurai y-recovery: returns the affine point k*P.

    Needs both ladder outputs (k*P and (k+1)*P), which the shared rung
    loop maintains as R1 = R0 + P throughout.
    """
    length = _ladder_length(k, bits)
    r0, r1 = _ladder_xz(curve, k, base, length)
    if r0.is_infinity():
        return None
    if r1.is_infinity():
        # (k+1)*P = O, i.e. k*P = -P.
        return curve.affine_neg(base)
    xq = curve.x_affine(r0)
    x_next = curve.x_affine(r1)
    return curve.recover_y(base, xq, x_next)


# ---------------------------------------------------------------------------
# Co-Z ladder for Weierstraß curves
# ---------------------------------------------------------------------------


def zaddu(x1, y1, x2, y2, z):
    """Co-Z addition with update.

    Input: P = (x1, y1), Q = (x2, y2) sharing the (explicit) coordinate z.
    Output: ((x3, y3), (x1', y1'), z3) where (x3, y3) = P + Q and
    (x1', y1') is P rescaled to the new common z3.  Cost 5M + 2S.
    """
    c = (x1 - x2).square()
    w1 = x1 * c
    w2 = x2 * c
    d = (y1 - y2).square()
    a1 = y1 * (w1 - w2)
    x3 = d - w1 - w2
    y3 = (y1 - y2) * (w1 - x3) - a1
    z3 = z * (x1 - x2)
    return (x3, y3), (w1, a1), z3


def zaddc(x1, y1, x2, y2, z):
    """Conjugate co-Z addition.

    Output: ((x3, y3), (x3', y3'), z3) = (P + Q, P - Q, new common z).
    Cost 6M + 3S.
    """
    c = (x1 - x2).square()
    w1 = x1 * c
    w2 = x2 * c
    d_minus = (y1 - y2).square()
    a1 = y1 * (w1 - w2)
    x3 = d_minus - w1 - w2
    y3 = (y1 - y2) * (w1 - x3) - a1
    d_plus = (y1 + y2).square()
    x3p = d_plus - w1 - w2
    y3p = (y1 + y2) * (w1 - x3p) - a1
    z3 = z * (x1 - x2)
    return (x3, y3), (x3p, y3p), z3


def dblu(curve: WeierstrassCurve, base: AffinePoint):
    """Initial doubling with co-Z update (DBLU), Z1 = 1.

    Returns ((x_2P, y_2P), (x_P', y_P'), z) with both points sharing z = 2y.
    """
    f = curve.field
    x, y = base.x, base.y
    x_sq = x.square()
    m = x_sq + x_sq + x_sq + curve.a
    y_sq = y.square()
    s = x * y_sq
    s = s + s
    s = s + s  # 4 x y^2
    x2 = m.square() - (s + s)
    y_quad = y_sq.square()
    eight_y4 = y_quad + y_quad
    eight_y4 = eight_y4 + eight_y4
    eight_y4 = eight_y4 + eight_y4
    y2 = m * (s - x2) - eight_y4
    z = y + y
    return (x2, y2), (s, eight_y4), z


@traced("coz_ladder", kind="scalarmult",
        counter=_ladder_counter, attrs_fn=_ladder_attrs)
def coz_ladder(curve: WeierstrassCurve, k: int,
               base: AffinePoint) -> MaybePoint:
    """Montgomery ladder on a Weierstraß curve with co-Z formulas.

    Per scalar bit: one ZADDC + one ZADDU (11M + 5S with explicit-Z
    bookkeeping), a regular pattern independent of the bit values — the
    paper's constant-round "Mon" method for Weierstraß-form curves.

    Requires ``2 <= k`` with ``k * base`` and all intermediate ladder points
    away from the exceptional cases (guaranteed when the base point's order
    exceeds ``k``).
    """
    if k < 2:
        if k < 0:
            raise ValueError("scalar must be non-negative")
        if k == 0:
            return None
        return base
    (x1, y1), (x0, y0), z = dblu(curve, base)
    # Invariant: R1 - R0 = P, with R1 = (x1, y1), R0 = (x0, y0), common z.
    for i in range(k.bit_length() - 2, -1, -1):
        bit = (k >> i) & 1
        if bit:
            # S = R1 + R0, D = R1 - R0; then N = S + D = 2*R1.
            (xs, ys), (xd, yd), z = zaddc(x1, y1, x0, y0, z)
            (x1, y1), (x0, y0), z = zaddu(xs, ys, xd, yd, z)
        else:
            # S = R0 + R1, D = R0 - R1; then N = S + D = 2*R0.
            (xs, ys), (xd, yd), z = zaddc(x0, y0, x1, y1, z)
            (x0, y0), (x1, y1), z = zaddu(xs, ys, xd, yd, z)
    return curve.to_affine(JacobianPoint(x0, y0, z))


def zaddu_xy(x1, y1, x2, y2):
    """Co-Z addition with update, (X, Y) only (no Z tracking): 4M + 2S."""
    c = (x1 - x2).square()
    w1 = x1 * c
    w2 = x2 * c
    d = (y1 - y2).square()
    a1 = y1 * (w1 - w2)
    x3 = d - w1 - w2
    y3 = (y1 - y2) * (w1 - x3) - a1
    return (x3, y3), (w1, a1)


def zaddc_xy(x1, y1, x2, y2):
    """Conjugate co-Z addition, (X, Y) only: 5M + 3S.

    Returns (P + Q, P - Q, (x1 - x2)) — the last value lets the caller
    rescale a stale co-Z point when needed (final-iteration recovery).
    """
    c = (x1 - x2).square()
    w1 = x1 * c
    w2 = x2 * c
    d_minus = (y1 - y2).square()
    a1 = y1 * (w1 - w2)
    x3 = d_minus - w1 - w2
    y3 = (y1 - y2) * (w1 - x3) - a1
    d_plus = (y1 + y2).square()
    x3p = d_plus - w1 - w2
    y3p = (y1 + y2) * (w1 - x3p) - a1
    return (x3, y3), (x3p, y3p)


@traced("coz_ladder_xy", kind="scalarmult",
        counter=_ladder_counter, attrs_fn=_ladder_attrs)
def coz_ladder_xy(curve: WeierstrassCurve, k: int,
                  base: AffinePoint) -> MaybePoint:
    """The paper's register-light co-Z ladder: no Z coordinate at all.

    Per bit one ZADDC (5M + 3S) and one ZADDU (4M + 2S) — 9M + 5S, matching
    Hutter, Joye and Sierra's 10-register ladder the paper uses for its
    constant-round Weierstraß/GLV/secp160r1 rows.  The affine result is
    recovered at the end from the base point: the last iteration rescales
    the conjugate difference (±P) to the final common Z, which pins down
    Z^2 and Z^3 against the known affine (x_P, y_P) — one inversion plus a
    handful of multiplications, no Z ever materialised in the loop.
    """
    if k < 2:
        if k < 0:
            raise ValueError("scalar must be non-negative")
        if k == 0:
            return None
        return base
    (x1, y1), (x0, y0), _z = dblu(curve, base)
    xd = yd = None
    last_bit = 0
    for i in range(k.bit_length() - 2, -1, -1):
        bit = (k >> i) & 1
        last_bit = bit
        if bit:
            (xs, ys), (xdc, ydc) = zaddc_xy(x1, y1, x0, y0)
        else:
            (xs, ys), (xdc, ydc) = zaddc_xy(x0, y0, x1, y1)
        if i == 0:
            # Rescale the difference (= ±P) to the Z the ZADDU will leave:
            # ZADDU multiplies Z by (X_S - X_D), i.e. X scales by its
            # square (already computed as part of ZADDU's C) and Y by its
            # cube.  Two extra multiplications, final iteration only.
            step = xs - xdc
            c = step.square()
            xd = xdc * c
            yd = ydc * (c * step)
        (xn, yn), (xsp, ysp) = zaddu_xy(xs, ys, xdc, ydc)
        if bit:
            x1, y1 = xn, yn
            x0, y0 = xsp, ysp
        else:
            x0, y0 = xn, yn
            x1, y1 = xsp, ysp
    # D = R_b - R_{1-b}: +P when the last bit was 1, -P otherwise.
    # Z^2 = X_D / x_P and Z^3 = sign * Y_D / y_P, hence:
    #   x0_affine = X0 * x_P / X_D,  y0_affine = sign * Y0 * y_P / Y_D.
    if xd.is_zero() or yd.is_zero():
        # k*P landed on an exceptional configuration; fall back.
        return curve.affine_scalar_mult(k, base)
    inv = (xd * yd).invert()
    x_aff = x0 * base.x * yd * inv
    y_aff = y0 * base.y * xd * inv
    # Branch-less sign fix: the negation is always computed and the result
    # selected, so the operation profile stays scalar-independent.
    y_neg = -y_aff
    y_aff = y_aff if last_bit else y_neg
    return AffinePoint(x_aff, y_aff)
