"""Scalar recodings: binary, NAF, and the Joint Sparse Form.

* The Non-Adjacent Form (NAF) has signed digits in {-1, 0, 1}, no two
  adjacent digits non-zero, and average density 1/3 — the paper's
  "high-speed" recoding for Weierstraß, Edwards and secp160r1.
* The Joint Sparse Form (Solinas; Algorithm 3.50 in Hankerson et al.) recodes
  a *pair* of scalars with minimal joint density 1/2 — used by the GLV
  method to evaluate ``k1*P + k2*φ(P)`` with n/2 doublings and about n/4
  additions.
"""

from __future__ import annotations

from typing import List, Tuple


def binary_digits(k: int) -> List[int]:
    """Plain binary digits, least-significant first."""
    if k < 0:
        raise ValueError("binary recoding requires a non-negative scalar")
    if k == 0:
        return [0]
    return [(k >> i) & 1 for i in range(k.bit_length())]


def naf_digits(k: int) -> List[int]:
    """Non-Adjacent Form digits in {-1, 0, 1}, least-significant first."""
    if k < 0:
        raise ValueError("NAF recoding requires a non-negative scalar")
    digits: List[int] = []
    while k > 0:
        if k & 1:
            digit = 2 - (k & 3)  # k mod 4 == 1 -> +1, == 3 -> -1
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits or [0]


def naf_value(digits: List[int]) -> int:
    """Evaluate a digit list back to an integer (inverse of recoding)."""
    return sum(d << i for i, d in enumerate(digits))


def width_w_naf_digits(k: int, width: int) -> List[int]:
    """Width-w NAF: odd digits with |d| < 2^(w-1), density 1/(w+1).

    Included for the window-method extension benchmarks (the paper itself
    avoids window methods to keep memory low, Section V-B).
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    if k < 0:
        raise ValueError("wNAF recoding requires a non-negative scalar")
    modulus = 1 << width
    half = 1 << (width - 1)
    digits: List[int] = []
    while k > 0:
        if k & 1:
            digit = k % modulus
            if digit >= half:
                digit -= modulus
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits or [0]


def _mods4(value: int) -> int:
    """value mod 4 mapped into {-1, 1} for odd values."""
    return 2 - (value & 3)


def jsf_digits(k0: int, k1: int) -> List[Tuple[int, int]]:
    """Joint Sparse Form of two non-negative scalars (LSB first).

    Returns a list of digit pairs in {-1, 0, 1}^2 such that
    ``sum(d0 * 2^i) == k0`` and ``sum(d1 * 2^i) == k1``, with at least one of
    any three consecutive positions being (0, 0) in each row — the minimal
    joint density of 1/2 that gives the GLV method its n/4 addition count.
    """
    if k0 < 0 or k1 < 0:
        raise ValueError("JSF requires non-negative scalars")
    d0 = d1 = 0
    digits: List[Tuple[int, int]] = []
    while k0 + d0 > 0 or k1 + d1 > 0:
        l0 = k0 + d0
        l1 = k1 + d1
        if l0 % 2 == 0:
            u0 = 0
        else:
            u0 = _mods4(l0)
            if l0 % 8 in (3, 5) and l1 % 4 == 2:
                u0 = -u0
        if l1 % 2 == 0:
            u1 = 0
        else:
            u1 = _mods4(l1)
            if l1 % 8 in (3, 5) and l0 % 4 == 2:
                u1 = -u1
        if 2 * d0 == 1 + u0:
            d0 = 1 - d0
        if 2 * d1 == 1 + u1:
            d1 = 1 - d1
        k0 >>= 1
        k1 >>= 1
        digits.append((u0, u1))
    return digits or [(0, 0)]


def joint_weight(digits: List[Tuple[int, int]]) -> int:
    """Number of positions where at least one digit is non-zero.

    For the JSF this averages half the length — each such position costs one
    point addition in the simultaneous (Shamir) evaluation.
    """
    return sum(1 for (a, b) in digits if a != 0 or b != 0)


def hamming_weight(digits: List[int]) -> int:
    """Number of non-zero digits of a single recoding."""
    return sum(1 for d in digits if d != 0)
