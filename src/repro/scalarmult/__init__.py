"""Scalar-multiplication algorithms (the paper's Table II methods).

High-speed methods: NAF double-and-add (:func:`scalar_mult_naf`), the
x-only Montgomery ladder (:func:`montgomery_ladder_x`) and the GLV
endomorphism method (:func:`glv_scalar_mult`).

Leakage-reduced ("constant round") methods: double-and-add-always
(:func:`scalar_mult_daaa`), the x-only ladder again, and the co-Z ladder
for Weierstraß-form curves (:func:`coz_ladder`).
"""

from .adapters import EdwardsAdapter, GroupAdapter, WeierstrassAdapter, adapter_for
from .algorithms import scalar_mult_binary, scalar_mult_daaa, scalar_mult_naf
from .blinding import blind_scalar, blinding_factor
from .fixed_base import (
    FixedBaseCache,
    FixedBaseTable,
    comb_table_ram_bytes,
    scalar_mult_fixed_base,
)
from .glv_mult import glv_precompute, glv_scalar_mult, shamir_scalar_mult
from .table_store import TableStore, TableStoreError, build_store
from .ladder import (
    coz_ladder,
    coz_ladder_xy,
    dblu,
    ladder_coherence_check,
    montgomery_ladder_full,
    montgomery_ladder_x,
    montgomery_ladder_x_checked,
    zaddc,
    zaddc_xy,
    zaddu,
    zaddu_xy,
)
from .window import (
    batch_invert,
    precompute_odd_multiples,
    scalar_mult_wnaf,
    wnaf_table_ram_bytes,
)
from .recoding import (
    binary_digits,
    hamming_weight,
    jsf_digits,
    joint_weight,
    naf_digits,
    naf_value,
    width_w_naf_digits,
)

__all__ = [
    "EdwardsAdapter",
    "GroupAdapter",
    "WeierstrassAdapter",
    "adapter_for",
    "binary_digits",
    "blind_scalar",
    "blinding_factor",
    "comb_table_ram_bytes",
    "coz_ladder",
    "coz_ladder_xy",
    "dblu",
    "FixedBaseCache",
    "FixedBaseTable",
    "glv_precompute",
    "glv_scalar_mult",
    "hamming_weight",
    "jsf_digits",
    "joint_weight",
    "ladder_coherence_check",
    "montgomery_ladder_full",
    "montgomery_ladder_x",
    "montgomery_ladder_x_checked",
    "naf_digits",
    "naf_value",
    "scalar_mult_binary",
    "scalar_mult_daaa",
    "scalar_mult_fixed_base",
    "scalar_mult_naf",
    "scalar_mult_wnaf",
    "TableStore",
    "TableStoreError",
    "build_store",
    "batch_invert",
    "precompute_odd_multiples",
    "wnaf_table_ram_bytes",
    "shamir_scalar_mult",
    "width_w_naf_digits",
    "zaddc",
    "zaddc_xy",
    "zaddu",
    "zaddu_xy",
]
