"""Uniform group adapters so scalar-mult algorithms are family-agnostic.

The generic algorithms (double-and-add, NAF, DAAA) only need: an identity,
doubling, addition/subtraction of the fixed base point, and a final
conversion to affine.  Each curve family implements those with its own
coordinate system and its cheapest formulas:

* Weierstraß/GLV: Jacobian doubling + mixed Jacobian-affine addition
  (8M + 3S, the paper's choice).
* Twisted Edwards: extended coordinates; on a = -1 curves the base point is
  precomputed into Niels form so additions cost the paper's 7M, and the
  doubling omits the T coordinate (3M + 4S) whenever the next operation is
  another doubling.
"""

from __future__ import annotations

from typing import Optional

from ..curves.edwards import ExtendedPoint, TwistedEdwardsCurve
from ..curves.point import AffinePoint, MaybePoint
from ..curves.weierstrass import JacobianPoint, WeierstrassCurve


class GroupAdapter:
    """Interface consumed by the generic scalar-mult algorithms."""

    def identity(self):
        raise NotImplementedError

    def double(self, point, next_is_add: bool = False):
        """Double *point*; ``next_is_add`` hints coordinate bookkeeping."""
        raise NotImplementedError

    def add_base(self, point):
        """Add the fixed base point."""
        raise NotImplementedError

    def sub_base(self, point):
        """Subtract the fixed base point."""
        raise NotImplementedError

    def to_affine(self, point) -> MaybePoint:
        raise NotImplementedError


class WeierstrassAdapter(GroupAdapter):
    """Jacobian arithmetic with a fixed affine base point."""

    def __init__(self, curve: WeierstrassCurve, base: AffinePoint):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.neg_base = curve.affine_neg(base)

    def identity(self) -> JacobianPoint:
        return self.curve.identity

    def double(self, point: JacobianPoint,
               next_is_add: bool = False) -> JacobianPoint:
        return self.curve.double(point)

    def add_base(self, point: JacobianPoint) -> JacobianPoint:
        return self.curve.add_mixed(point, self.base)

    def sub_base(self, point: JacobianPoint) -> JacobianPoint:
        return self.curve.add_mixed(point, self.neg_base)

    def to_affine(self, point: JacobianPoint) -> MaybePoint:
        return self.curve.to_affine(point)


class EdwardsAdapter(GroupAdapter):
    """Extended twisted Edwards arithmetic with a fixed affine base point.

    On a = -1 curves uses the 7M precomputed addition; otherwise falls back
    to the unified mixed addition (which is also what :meth:`add_always`
    uses, since completeness is what makes Edwards DAAA straightforward).
    """

    def __init__(self, curve: TwistedEdwardsCurve, base: AffinePoint):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.neg_base = curve.affine_neg(base)
        self._dedicated = curve.a_int == curve.field.p - 1
        if self._dedicated:
            self._niels = curve.precompute(base)
            self._niels_neg = curve.precompute(self.neg_base)
        else:
            self._niels = None
            self._niels_neg = None

    def identity(self) -> ExtendedPoint:
        return self.curve.identity

    def double(self, point: ExtendedPoint,
               next_is_add: bool = False) -> ExtendedPoint:
        # The 3M+4S doubling drops T; keep it only when an addition follows.
        return self.curve.double(point, compute_t=next_is_add)

    @staticmethod
    def _is_exceptional(point: ExtendedPoint, affine: AffinePoint) -> bool:
        """True when point == ±affine (dedicated formulas break there).

        Uses uncounted plain-integer arithmetic: on real hardware the
        dedicated formula would simply produce garbage in this measure-zero
        case; the functional model detects it and falls back so tests on
        small curves stay exact without distorting the operation counts.
        """
        field = point.x.field
        p = field.p
        z = field.internal_to_int(point.z.internal)
        if z == 0:
            return True
        x = field.internal_to_int(point.x.internal)
        y = field.internal_to_int(point.y.internal)
        ax = field.internal_to_int(affine.x.internal)
        ay = field.internal_to_int(affine.y.internal)
        if (y - ay * z) % p != 0:
            return False
        return (x - ax * z) % p == 0 or (x + ax * z) % p == 0

    def _add_affine(self, point: ExtendedPoint, affine: AffinePoint,
                    niels) -> ExtendedPoint:
        if point.is_identity():
            # Dedicated formulas exclude the identity; start fresh instead.
            return self.curve.from_affine(affine)
        if self._dedicated:
            if self._is_exceptional(point, affine):
                return self.curve.add_mixed(point, affine)
            return self.curve.add_precomputed(point, niels)
        return self.curve.add_mixed(point, affine)

    def add_base(self, point: ExtendedPoint) -> ExtendedPoint:
        return self._add_affine(point, self.base, self._niels)

    def sub_base(self, point: ExtendedPoint) -> ExtendedPoint:
        return self._add_affine(point, self.neg_base, self._niels_neg)

    def add_base_unified(self, point: ExtendedPoint) -> ExtendedPoint:
        """Complete (exception-free) addition for the DAAA algorithm."""
        return self.curve.add_mixed(point, self.base)

    def to_affine(self, point: ExtendedPoint) -> AffinePoint:
        return self.curve.to_affine(point)


def adapter_for(curve, base: AffinePoint) -> GroupAdapter:
    """Pick the adapter matching the curve family."""
    if isinstance(curve, TwistedEdwardsCurve):
        return EdwardsAdapter(curve, base)
    if isinstance(curve, WeierstrassCurve):
        return WeierstrassAdapter(curve, base)
    raise TypeError(f"no generic adapter for {type(curve).__name__}")
