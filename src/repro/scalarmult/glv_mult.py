"""GLV scalar multiplication: endomorphism split + JSF + Shamir's trick.

``k*P`` is evaluated as ``k1*P + k2*φ(P)`` with half-length scalars.  The two
multiplications run *simultaneously*: the scalars are recoded into Joint
Sparse Form and a single double-and-add pass consumes a digit pair per bit,
adding one of the eight precomputed combinations ±P, ±φ(P), ±(P + φ(P)),
±(P - φ(P)) via mixed Jacobian-affine addition.  Cost: n/2 doublings and
about n/4 additions (paper Section II-D: 3.5 M + 2.75 S per bit of the
original scalar).

This is the paper's fastest method ("End, JSF" in Table II) — and also its
most side-channel-leaky one, which is why the constant-time GLV row falls
back to the ladder.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..curves.glv import GLVCurve
from ..curves.point import AffinePoint, MaybePoint
from .recoding import jsf_digits


def _signed(point: AffinePoint, curve: GLVCurve, sign: int) -> AffinePoint:
    return point if sign >= 0 else curve.affine_neg(point)


def glv_precompute(curve: GLVCurve, base: AffinePoint, k1: int, k2: int,
                   ) -> Dict[Tuple[int, int], MaybePoint]:
    """The affine combination table for the JSF digit pairs.

    Builds s1*P and s2*φ(P) (with the signs of k1, k2 folded in) and their
    sum/difference; the remaining combinations are cheap negations.
    """
    p1 = _signed(base, curve, 1 if k1 >= 0 else -1)
    phi = curve.endomorphism(base)
    p2 = _signed(phi, curve, 1 if k2 >= 0 else -1)
    sum_pt = curve.affine_add(p1, p2)
    diff_pt = curve.affine_add(p1, curve.affine_neg(p2))
    table: Dict[Tuple[int, int], MaybePoint] = {}
    table[(1, 0)] = p1
    table[(-1, 0)] = curve.affine_neg(p1)
    table[(0, 1)] = p2
    table[(0, -1)] = curve.affine_neg(p2)
    table[(1, 1)] = sum_pt
    table[(-1, -1)] = None if sum_pt is None else curve.affine_neg(sum_pt)
    table[(1, -1)] = diff_pt
    table[(-1, 1)] = None if diff_pt is None else curve.affine_neg(diff_pt)
    return table


def glv_scalar_mult(curve: GLVCurve, k: int, base: AffinePoint) -> MaybePoint:
    """Compute k*P with the GLV method (endomorphism + JSF + Shamir).

    The base point need not be fixed or known in advance — the paper points
    out this is what keeps the GLV method usable for ECDH.
    """
    if k < 0:
        raise ValueError("scalar must be non-negative")
    k %= curve.n
    if k == 0:
        return None
    k1, k2 = curve.decompose(k)
    table = glv_precompute(curve, base, k1, k2)
    digits = jsf_digits(abs(k1), abs(k2))
    result = curve.identity
    for (u1, u2) in reversed(digits):
        result = curve.double(result)
        if (u1, u2) != (0, 0):
            result = curve.add_mixed(result, table[(u1, u2)])
    return curve.to_affine(result)


def shamir_scalar_mult(curve, k1: int, p1: AffinePoint,
                       k2: int, p2: AffinePoint) -> MaybePoint:
    """Generic simultaneous double-scalar multiplication k1*P1 + k2*P2.

    Used by ECDSA verification and as a reference for the GLV evaluation
    (JSF recoding, mixed additions from a 4-entry signed table).
    """
    if k1 < 0 or k2 < 0:
        raise ValueError("scalars must be non-negative")
    if k1 == 0 and k2 == 0:
        return None
    sum_pt = curve.affine_add(p1, p2)
    diff_pt = curve.affine_add(p1, curve.affine_neg(p2))
    table: Dict[Tuple[int, int], MaybePoint] = {
        (1, 0): p1,
        (-1, 0): curve.affine_neg(p1),
        (0, 1): p2,
        (0, -1): curve.affine_neg(p2),
        (1, 1): sum_pt,
        (-1, -1): None if sum_pt is None else curve.affine_neg(sum_pt),
        (1, -1): diff_pt,
        (-1, 1): None if diff_pt is None else curve.affine_neg(diff_pt),
    }
    digits = jsf_digits(k1, k2)
    result = curve.identity
    for (u1, u2) in reversed(digits):
        result = curve.double(result)
        if (u1, u2) != (0, 0):
            entry = table[(u1, u2)]
            if entry is not None:
                result = curve.add_mixed(result, entry)
    return curve.to_affine(result)
