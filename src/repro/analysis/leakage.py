"""Timing-leakage analysis of the scalar-multiplication methods.

The paper splits Table II into "high-speed" and "constant round" columns
and argues the latter resist timing/SPA attacks because their execution
profile does not depend on the scalar.  This module makes that claim
quantitatively checkable on the reproduction (the TVLA-style extension
of DESIGN.md §6; the *active* implementation-attack counterpart is
DESIGN.md §7 "Fault model & countermeasures"):

* :func:`collect_traces` runs a method over many scalars and records the
  exact field-operation vector and its cycle estimate per run;
* :func:`is_regular` — the strong property: *identical* operation vectors
  for every same-length scalar (true for the ladder, co-Z ladder, DAAA);
* :func:`relative_spread` / :func:`welch_t` — distinguishability metrics
  for the leaky methods (NAF, GLV), in the style of fixed-vs-random TVLA;
* :func:`scalar_weight_correlation` — the mechanism behind the leak: NAF
  cycle counts correlate with the scalar's NAF weight.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from statistics import mean, pstdev
from typing import Dict, List, Optional, Sequence, Tuple

from ..avr.timing import Mode
from ..curves.params import make_suite
from ..model.cycles import costs_for
from ..model.opcost import price, run_method
from ..scalarmult.recoding import hamming_weight, naf_digits


@dataclass(frozen=True)
class TraceSample:
    """One scalar multiplication's observable profile."""

    scalar: int
    op_vector: Tuple[Tuple[str, int], ...]
    cycles: float


def _random_scalar(rng: random.Random, bits: int,
                   order: Optional[int]) -> int:
    k = rng.getrandbits(bits) | (1 << (bits - 1))
    if order:
        k %= order
        k |= 1 << (bits - 2)
    return k


def collect_traces(curve_key: str, method: str, scalars: Sequence[int],
                   mode: Mode = Mode.CA, source: str = "paper",
                   ) -> List[TraceSample]:
    """Run *method* for each scalar on a fresh suite; capture the profile."""
    out = []
    for k in scalars:
        suite = make_suite(curve_key)
        profile = suite.field.cost_profile
        if profile == "generic":
            profile = "opf"
        run_method(suite, method, k)
        counts = suite.field.counter
        vector = tuple(sorted(counts.snapshot().items()))
        cycles = price(counts, costs_for(mode, source, profile))
        out.append(TraceSample(scalar=k, op_vector=vector, cycles=cycles))
    return out


def random_traces(curve_key: str, method: str, n: int = 20,
                  bits: int = 160, seed: int = 0x7EA5,
                  mode: Mode = Mode.CA) -> List[TraceSample]:
    """Traces over n uniformly random full-length scalars."""
    rng = random.Random(seed)
    order = make_suite(curve_key).order
    scalars = [_random_scalar(rng, bits, order) for _ in range(n)]
    return collect_traces(curve_key, method, scalars, mode)


def is_regular(traces: Sequence[TraceSample]) -> bool:
    """True when every trace has the *identical* operation vector."""
    return len({t.op_vector for t in traces}) == 1


def relative_spread(traces: Sequence[TraceSample]) -> float:
    """(max - min) / mean of the cycle estimates; 0 for regular methods."""
    cycles = [t.cycles for t in traces]
    avg = mean(cycles)
    if avg == 0:
        raise ValueError("empty traces")
    return (max(cycles) - min(cycles)) / avg


def welch_t(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Welch's t statistic (TVLA-style fixed-vs-random distinguisher).

    |t| > 4.5 is the conventional leakage threshold.  Degenerate inputs
    (both samples constant and equal) return 0.
    """
    if len(sample_a) < 2 or len(sample_b) < 2:
        raise ValueError("need at least two observations per class")
    mean_a, mean_b = mean(sample_a), mean(sample_b)
    var_a = pstdev(sample_a) ** 2 * len(sample_a) / (len(sample_a) - 1)
    var_b = pstdev(sample_b) ** 2 * len(sample_b) / (len(sample_b) - 1)
    denom = math.sqrt(var_a / len(sample_a) + var_b / len(sample_b))
    if denom == 0:
        return 0.0 if mean_a == mean_b else math.inf
    return (mean_a - mean_b) / denom


def fixed_vs_random_t(curve_key: str, method: str, n: int = 15,
                      fixed_scalar: Optional[int] = None,
                      seed: int = 0xCAFE) -> float:
    """TVLA-style test: |t| of fixed-scalar vs random-scalar cycle counts."""
    rng = random.Random(seed)
    order = make_suite(curve_key).order
    if fixed_scalar is None:
        # A deliberately low-weight scalar maximises the contrast.
        fixed_scalar = (1 << 159) + 1
        if order:
            fixed_scalar %= order
    fixed = collect_traces(curve_key, method, [fixed_scalar] * n)
    rand = collect_traces(
        curve_key, method,
        [_random_scalar(rng, 160, order) for _ in range(n)],
    )
    return welch_t([t.cycles for t in fixed], [t.cycles for t in rand])


def scalar_weight_correlation(traces: Sequence[TraceSample]) -> float:
    """Pearson correlation between NAF weight and cycle count."""
    weights = [hamming_weight(naf_digits(t.scalar)) for t in traces]
    cycles = [t.cycles for t in traces]
    mw, mc = mean(weights), mean(cycles)
    cov = sum((w - mw) * (c - mc) for w, c in zip(weights, cycles))
    var_w = sum((w - mw) ** 2 for w in weights)
    var_c = sum((c - mc) ** 2 for c in cycles)
    if var_w == 0 or var_c == 0:
        return 0.0
    return cov / math.sqrt(var_w * var_c)


def leakage_report(n: int = 15, seed: int = 0x11) -> Dict[str, Dict]:
    """Per-method regularity summary used by the example and the bench."""
    cases = [
        ("weierstrass", "naf", "high-speed"),
        ("glv", "glv-jsf", "high-speed"),
        ("montgomery", "ladder", "constant-round"),
        ("weierstrass", "coz-ladder", "constant-round"),
        ("edwards", "daaa", "constant-round"),
    ]
    out: Dict[str, Dict] = {}
    for curve, method, category in cases:
        traces = random_traces(curve, method, n=n, seed=seed)
        out[f"{curve}/{method}"] = {
            "category": category,
            "regular": is_regular(traces),
            "spread": relative_spread(traces),
        }
    return out
