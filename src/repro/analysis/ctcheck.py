"""Constant-time verification CLI: ``python -m repro ctcheck``.

Runs a kernel on the AVR ISS with the secret-taint engine of
:mod:`repro.avr.taint` attached and reports every point where secret
data reaches an execution decision — a conditional branch, a load/store
address, or a data-dependent cycle count.  The architecture (taint
lattice, per-instruction propagation rules, violation taxonomy) is
documented in DESIGN.md §9 "Constant-time verification".

Targets mirror the profiler CLI plus the exponentiation foil pair:

* ``mul`` / ``add`` / ``sub`` — the Table I field kernels with *both*
  operands marked secret.  ``mul`` exercises the Comba kernel in CA/FAST
  and the MAC-ISE kernel in ISE mode; all must come back clean.
* ``ladder`` — the assembly Montgomery ladder (2-byte scalar by default
  for CLI speed; ``--scalar-bytes 20`` for the full width) with the
  scalar buffer marked secret.  Clean: the driver walks the scalar with
  a ``SBC r25, r25`` mask and masked swaps, never a branch.
* ``daaa`` — square-and-multiply-always exponentiation with a masked
  operand select.  Clean.
* ``naf`` — NAF double-and-add whose digit dispatch branches on the
  recoded digit.  Deliberately *flagged*: the checker must attribute
  secret-dependent branches to the ``digit_step`` routine.
* ``scalarmult`` — the full 160-bit ladder (same harness as ``ladder``
  with ``--scalar-bytes 20``; ISE mode by default because the taint
  phase steps the reference interpreter).

``--check`` is the CI gate: it runs every (target, mode) twice and
byte-compares the JSONL streams (determinism), then re-runs under the
reference interpreter and compares verdicts against the fast engine
(engine parity).  ``--expect clean|flagged`` turns the verdict into the
exit status — ``make ctcheck-smoke`` pins ladder/daaa clean and naf
flagged.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..avr.taint import TaintTracker
from ..avr.timing import Mode
from ..kernels import (
    ADDR_A,
    ADDR_B,
    ExpoKernel,
    KernelRunner,
    LadderKernel,
    OPERAND_BYTES,
    OpfConstants,
    generate_modadd,
    generate_modsub,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)
from ..kernels.ladder_kernel import ADDR_SCALAR
from ..obs import ctcheck_to_jsonl

#: Check targets: the Table I field kernels, the assembly ladder (short
#: and full-width), and the DAAA/NAF exponentiation foil pair.
TARGETS = ("mul", "add", "sub", "ladder", "daaa", "naf", "scalarmult")

# The paper's 160-bit OPF: p = 65356 * 2^144 + 1.
_CONSTANTS = dict(u=65356, k=144)

_MODES = {"ca": Mode.CA, "fast": Mode.FAST, "ise": Mode.ISE}


def _field_kernel_source(target: str, mode: Mode,
                         constants: OpfConstants) -> str:
    if target == "add":
        return generate_modadd(constants)
    if target == "sub":
        return generate_modsub(constants)
    # mul: the MAC kernel needs the ISE, the Comba kernel serves CA/FAST.
    if mode is Mode.ISE:
        return generate_opf_mul_mac(constants)
    return generate_opf_mul_comba(constants)


def _deterministic_scalar(bits: int) -> int:
    """A fixed, engine-independent scalar with both halves populated."""
    k = pow(3, 77, 1 << bits) | 1
    return k | (1 << (bits - 1))


def check_target(target: str, mode_key: str,
                 engine: Optional[str] = None,
                 scalar_bytes: Optional[int] = None) -> Dict[str, Any]:
    """Run one (target, mode) under the taint tracker; return the report.

    The report is the JSONL-ready summary dict: verdict, run statistics
    and the deduplicated violation list (``TaintViolation.as_dict()``
    per distinct PC site, in first-occurrence order).  The functional
    result is cross-checked against an uninstrumented run of the same
    harness (``value_ok``) so a taint-rule bug that perturbs execution
    cannot masquerade as a clean verdict.
    """
    if target not in TARGETS:
        raise ValueError(f"unknown ctcheck target {target!r}")
    mode = _MODES[mode_key]
    constants = OpfConstants(**_CONSTANTS)
    p = constants.p
    a = pow(7, 123, p)
    b = pow(11, 321, p)

    if target in ("mul", "add", "sub"):
        source = _field_kernel_source(target, mode, constants)
        runner = KernelRunner(source, mode, engine=engine)
        runner.stage(a, b)
        tracker = TaintTracker(runner.core,
                               symbols=runner.program.symbols)
        tracker.mark_data(ADDR_A, OPERAND_BYTES)
        tracker.mark_data(ADDR_B, OPERAND_BYTES)
        secret_bytes = 2 * OPERAND_BYTES
        cycles = tracker.run()
        value = runner.read_result()
        expected, _ = KernelRunner(source, mode, engine=engine).run(a, b)
        core = runner.core
    elif target in ("ladder", "scalarmult"):
        n = scalar_bytes if scalar_bytes is not None else (
            20 if target == "scalarmult" else 2)
        kernel = LadderKernel(constants, mode, scalar_bytes=n,
                              engine=engine)
        k = _deterministic_scalar(8 * n)
        kernel.load_operands(k, 9)
        tracker = TaintTracker(kernel.core,
                               symbols=kernel.program.symbols)
        tracker.mark_data(ADDR_SCALAR, n)
        secret_bytes = n
        cycles = tracker.run()
        state = kernel.output_state()
        value = (state["X1"], state["Z1"])
        ref = LadderKernel(constants, mode, scalar_bytes=n, engine=engine)
        x_ref, z_ref, _ = ref.run(k, 9)
        expected = (x_ref, z_ref)
        core = kernel.core
    else:  # daaa / naf
        n = scalar_bytes if scalar_bytes is not None else 2
        kernel = ExpoKernel(constants, mode, method=target, exp_bytes=n,
                            engine=engine)
        k = _deterministic_scalar(8 * n)
        kernel.load_operands(k, a)
        tracker = TaintTracker(kernel.core,
                               symbols=kernel.program.symbols)
        address, length = kernel.secret_region
        tracker.mark_data(address, length)
        secret_bytes = length
        cycles = tracker.run()
        value = kernel.result()
        expected = pow(a, k, p)
        core = kernel.core

    stats = tracker.summary()
    return {
        "target": target,
        "mode": mode_key,
        "engine": core.engine,
        "secret_bytes": secret_bytes,
        "cycles": cycles,
        "instructions": core.instructions_retired,
        "value_ok": value == expected,
        "verdict": "flagged" if tracker.violations else "clean",
        "sites": stats["sites"],
        "hits": stats["hits"],
        "branch_sites": stats["branch"],
        "addr_sites": stats["addr"],
        "cycle_skew_sites": stats["cycle_skew_sites"],
        "violations": [v.as_dict() for v in tracker.violations],
    }


def _format_text(reports: List[Dict[str, Any]]) -> str:
    lines: List[str] = []
    for report in reports:
        verdict = report["verdict"].upper()
        lines.append(
            f"ctcheck {report['target']:<10} mode={report['mode']:<4} "
            f"engine={report['engine']:<9} "
            f"{report['instructions']:>9} instr {report['cycles']:>9} cyc  "
            f"secret={report['secret_bytes']}B  {verdict}"
        )
        if not report["value_ok"]:
            lines.append("    WARNING: instrumented result differs from "
                         "the uninstrumented run")
        for v in report["violations"]:
            skew = (f"  (+{v['cycle_skew']} cyc skew)"
                    if v.get("cycle_skew") else "")
            lines.append(
                f"    {v['kind']:<6} pc={v['pc']:#06x} "
                f"{v['instruction']:<18} in {v['routine']:<12} "
                f"x{v['count']:<4} {v['detail']}{skew}"
            )
    return "\n".join(lines) + "\n"


def _run_matrix(targets: List[str], mode_keys: List[str],
                engine: Optional[str],
                scalar_bytes: Optional[int]) -> List[Dict[str, Any]]:
    return [check_target(t, m, engine=engine, scalar_bytes=scalar_bytes)
            for t in targets for m in mode_keys]


def _consistency_check(targets: List[str], mode_keys: List[str],
                       scalar_bytes: Optional[int],
                       first: List[Dict[str, Any]]) -> List[str]:
    """Determinism + engine-parity gate behind ``--check``.

    Returns a list of human-readable failures (empty = pass).  The first
    (fast-engine) run is byte-compared against a rerun, then the whole
    matrix is repeated under the reference interpreter and every field
    except ``engine`` must agree — the taint phase itself always steps
    the interpreter, so this pins the engine-handoff logic.
    """
    failures: List[str] = []
    rerun = _run_matrix(targets, mode_keys, "fast", scalar_bytes)
    if ctcheck_to_jsonl(rerun) != ctcheck_to_jsonl(first):
        failures.append("determinism: rerun produced different JSONL")
    reference = _run_matrix(targets, mode_keys, "reference", scalar_bytes)
    for fast_r, ref_r in zip(first, reference):
        for key in fast_r:
            if key == "engine":
                continue
            if fast_r[key] != ref_r[key]:
                failures.append(
                    f"engine parity: {fast_r['target']}/{fast_r['mode']} "
                    f"field {key!r} differs (fast={fast_r[key]!r}, "
                    f"reference={ref_r[key]!r})")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro ctcheck",
        description="Constant-time taint verification on the AVR ISS "
                    "(DESIGN.md par. 9).")
    parser.add_argument("target", choices=TARGETS,
                        help="kernel to check (naf is the deliberately "
                             "leaky foil)")
    parser.add_argument("--mode", choices=list(_MODES) + ["all"],
                        default=None,
                        help="timing mode (default: all three; "
                             "scalarmult defaults to ise)")
    parser.add_argument("--engine", choices=("fast", "trace", "reference"),
                        default=None,
                        help="execution engine (default: fast / "
                             "REPRO_AVR_ENGINE); live taint always steps "
                             "the reference path, so 'trace' only "
                             "accelerates the taint-free stretches "
                             "(via the fast tier)")
    parser.add_argument("--scalar-bytes", type=int, default=None,
                        help="override secret width in bytes "
                             "(ladder/daaa/naf default 2, scalarmult 20)")
    parser.add_argument("--format", choices=("text", "jsonl"),
                        default="text")
    parser.add_argument("--out", default=None,
                        help="write the report stream to a file instead "
                             "of stdout")
    parser.add_argument("--check", action="store_true",
                        help="double-run byte-compare (determinism) and "
                             "fast-vs-reference verdict compare (parity)")
    parser.add_argument("--expect", choices=("clean", "flagged"),
                        default=None,
                        help="exit non-zero unless every mode's verdict "
                             "matches (the CI gate)")
    args = parser.parse_args(argv)

    mode_default = "ise" if args.target == "scalarmult" else "all"
    mode_key = args.mode or mode_default
    mode_keys = list(_MODES) if mode_key == "all" else [mode_key]
    engine = "fast" if args.check else args.engine
    reports = _run_matrix([args.target], mode_keys, engine,
                          args.scalar_bytes)

    output = (ctcheck_to_jsonl(reports) if args.format == "jsonl"
              else _format_text(reports))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(output)
    else:
        sys.stdout.write(output)

    status = 0
    for report in reports:
        if not report["value_ok"]:
            print(f"FAIL: {report['target']}/{report['mode']} "
                  f"instrumented value mismatch", file=sys.stderr)
            status = 1

    if args.check:
        failures = _consistency_check([args.target], mode_keys,
                                      args.scalar_bytes, reports)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"check ok: {args.target} deterministic and "
                  f"engine-consistent across {len(mode_keys)} mode(s)",
                  file=sys.stderr)

    if args.expect is not None:
        for report in reports:
            if report["verdict"] != args.expect:
                print(f"FAIL: {report['target']}/{report['mode']} verdict "
                      f"{report['verdict']!r}, expected {args.expect!r}",
                      file=sys.stderr)
                status = 1

    return status


if __name__ == "__main__":
    sys.exit(main())
