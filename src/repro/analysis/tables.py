"""Regeneration of the paper's tables with paper-vs-measured columns.

Each ``generate_table*`` function returns a :class:`TableResult` — a header,
rows, and a plain-text rendering — so the benchmark files, the examples and
EXPERIMENTS.md all share one source of truth (the experiment index of
DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..avr.timing import Mode
from ..kernels.addsub_kernel import generate_modadd, generate_modsub
from ..kernels.layout import OpfConstants
from ..kernels.mul_kernels import generate_opf_mul_comba, generate_opf_mul_mac
from ..kernels.runner import KernelRunner
from ..model.area import AreaModel
from ..model.cycles import costs_for
from ..model.opcost import (
    CONSTANT_METHODS,
    HIGHSPEED_METHODS,
    measure_point_mult,
)
from ..model.paper_data import (
    TABLE1_RUNTIMES,
    TABLE2,
    TABLE3,
    TABLE4_OUR_WORK,
    TABLE4_RELATED,
    TABLE5_OUR_ROWS,
    TABLE5_RELATED,
    table3_row,
)
from ..model.power import PowerModel, energy_uj
from ..model.sarp import sarp_table


@dataclass
class TableResult:
    title: str
    header: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        widths = [len(str(h)) for h in self.header]
        str_rows = [[_fmt(c) for c in row] for row in self.rows]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, ""]
        lines.append("  ".join(str(h).ljust(w)
                               for h, w in zip(self.header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in str_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.2f}" if abs(cell) < 100 else f"{cell:,.0f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _delta_pct(measured: float, paper: float) -> float:
    return 100.0 * (measured / paper - 1.0)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def measure_kernel_cycles(u: int = 65356, k: int = 144) -> Dict[str, Dict[str, int]]:
    """Run every kernel in every mode; returns op -> mode -> cycles."""
    constants = OpfConstants(u=u, k=k)
    a = (0x987654321 << 100) | 0x1234567
    b = (0x13579BDF << 96) | 0xFEDCBA987
    out: Dict[str, Dict[str, int]] = {
        "addition": {}, "subtraction": {}, "multiplication": {},
    }
    for mode in (Mode.CA, Mode.FAST):
        out["addition"][mode.value] = KernelRunner(
            generate_modadd(constants), mode=mode).run(a, b)[1]
        out["subtraction"][mode.value] = KernelRunner(
            generate_modsub(constants), mode=mode).run(a, b)[1]
        out["multiplication"][mode.value] = KernelRunner(
            generate_opf_mul_comba(constants), mode=mode).run(a, b)[1]
    out["addition"]["ISE"] = out["addition"]["FAST"]
    out["subtraction"]["ISE"] = out["subtraction"]["FAST"]
    out["multiplication"]["ISE"] = KernelRunner(
        generate_opf_mul_mac(constants), mode=Mode.ISE).run(a, b)[1]
    return out


def generate_table1() -> TableResult:
    """Table I: field-operation runtimes, measured kernels vs paper."""
    measured = measure_kernel_cycles()
    rows: List[Sequence[object]] = []
    for op in ("addition", "subtraction", "multiplication"):
        for mode in ("CA", "FAST", "ISE"):
            paper = TABLE1_RUNTIMES[op][mode]
            got = measured[op][mode]
            rows.append((op, mode, got, paper, _delta_pct(got, paper)))
    # Inversion has no kernel; the model scales the paper value.
    for mode in (Mode.CA, Mode.FAST, Mode.ISE):
        costs = costs_for(mode, "measured")
        paper = TABLE1_RUNTIMES["inversion"][mode.value]
        rows.append(("inversion (modelled)", mode.value,
                     int(costs.inv), paper, _delta_pct(costs.inv, paper)))
    return TableResult(
        title="Table I - runtimes of 160-bit OPF operations [cycles]",
        header=("operation", "mode", "measured", "paper", "delta %"),
        rows=rows,
        notes=["measured = our assembly kernels executed on the JAAVR "
               "simulator; inversion is modelled (no kernel), scaled by the "
               "measured/paper multiplication ratio"],
    )


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def generate_table2(source: str = "paper") -> TableResult:
    """Table II: point multiplication on a standard ATmega128 (CA mode)."""
    rows: List[Sequence[object]] = []
    for paper_row in TABLE2:
        hs = measure_point_mult(paper_row.curve,
                                HIGHSPEED_METHODS[paper_row.curve],
                                source=source)
        ct = measure_point_mult(paper_row.curve,
                                CONSTANT_METHODS[paper_row.curve],
                                source=source)
        rows.append((
            paper_row.curve,
            paper_row.highspeed_method,
            hs.kcycles["CA"], paper_row.highspeed_kcycles,
            _delta_pct(hs.kcycles["CA"], paper_row.highspeed_kcycles),
            paper_row.constant_method,
            ct.kcycles["CA"], paper_row.constant_kcycles,
            _delta_pct(ct.kcycles["CA"], paper_row.constant_kcycles),
        ))
    return TableResult(
        title="Table II - point multiplication on a standard ATmega128 "
              "[kCycles]",
        header=("curve", "hs method", "hs est", "hs paper", "d%",
                "ct method", "ct est", "ct paper", "d%"),
        rows=rows,
        notes=[f"cycle estimates = instrumented field-operation counts x "
               f"per-op costs (source: {source})"],
    )


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------


def generate_table3(source: str = "paper") -> TableResult:
    """Table III: cycles, area, power and SARP for 4 curves x 3 modes."""
    area_model = AreaModel.calibrated()
    power_model = PowerModel()
    measurements: Dict[Tuple[str, str], Tuple[float, float]] = {}
    cycle_cache: Dict[Tuple[str, str], float] = {}
    for curve in ("weierstrass", "edwards", "montgomery", "glv"):
        hs = measure_point_mult(curve, CONSTANT_METHODS[curve]
                                if curve == "montgomery"
                                else HIGHSPEED_METHODS[curve], source=source)
        for mode in ("CA", "FAST", "ISE"):
            paper_row = table3_row(curve, mode)
            est_area = area_model.estimate_row(curve, Mode(mode),
                                               paper_row.rom_bytes)
            cycles = hs.cycles[mode]
            cycle_cache[(curve, mode)] = cycles
            measurements[(curve, mode)] = (est_area["total_ge"], cycles)
    sarps = sarp_table(measurements)
    rows: List[Sequence[object]] = []
    for curve in ("weierstrass", "edwards", "montgomery", "glv"):
        for mode in ("CA", "FAST", "ISE"):
            paper_row = table3_row(curve, mode)
            area_ge, cycles = measurements[(curve, mode)]
            power = power_model.estimate(curve, Mode(mode))
            energy = energy_uj(power.total_uw, cycles)
            rows.append((
                curve, mode,
                cycles / 1000.0, paper_row.point_mult_cycles / 1000.0,
                _delta_pct(cycles, paper_row.point_mult_cycles),
                area_ge, paper_row.total_ge,
                sarps[(curve, mode)], paper_row.sarp,
                energy,
            ))
    return TableResult(
        title="Table III - synthesis results per curve and mode",
        header=("curve", "mode", "kCyc est", "kCyc paper", "d%",
                "GE est", "GE paper", "SARP est", "SARP paper",
                "energy uJ @1MHz"),
        rows=rows,
        notes=["area: calibrated GE model (core GE from Table I, "
               "ROM/RAM coefficients fitted to Table III)",
               "ROM bytes taken from the paper (our Python point-mult "
               "code has no AVR code size); kernels' own code sizes are "
               "reported by the Table I bench"],
    )


# ---------------------------------------------------------------------------
# Tables IV and V (comparisons)
# ---------------------------------------------------------------------------


def generate_table4(measured_mon_ise_kcycles: Optional[float] = None,
                    ) -> TableResult:
    """Table IV: comparison with related hardware implementations."""
    rows: List[Sequence[object]] = [
        (r.reference, r.field_type, r.field_bits, r.runtime_kcycles,
         r.area_ge) for r in TABLE4_RELATED
    ]
    ours = TABLE4_OUR_WORK
    runtime = (measured_mon_ise_kcycles
               if measured_mon_ise_kcycles is not None
               else ours.runtime_kcycles)
    rows.append((ours.reference + " [reproduced]", ours.field_type,
                 ours.field_bits, round(runtime), ours.area_ge))
    return TableResult(
        title="Table IV - comparison with related hardware implementations",
        header=("reference", "field", "bits", "runtime kCycles", "area GE"),
        rows=rows,
        notes=["related-work rows are published values (static data); our "
               "row's runtime can be re-derived by the Table III machinery"],
    )


def generate_table5(measured: Optional[Dict[str, float]] = None,
                    ) -> TableResult:
    """Table V: comparison with related ATmega128 software."""
    rows: List[Sequence[object]] = [
        (r.reference, r.curve, r.kcycles) for r in TABLE5_RELATED
    ]
    for our in TABLE5_OUR_ROWS:
        kcycles = our.kcycles
        if measured and our.curve in measured:
            kcycles = measured[our.curve]
        rows.append((our.reference + " [reproduced]", our.curve,
                     round(kcycles)))
    rows.sort(key=lambda r: -float(r[2]))
    return TableResult(
        title="Table V - related ATmega128 software implementations",
        header=("reference", "curve", "kCycles"),
        rows=rows,
    )
