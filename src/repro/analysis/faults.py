"""Fault-injection campaigns: ``python -m repro faults``.

Sweeps seeded transient faults (DESIGN.md §7 "Fault model &
countermeasures") over the measured assembly kernels and the Python-side
algorithms, runs every fault against the *bare* and the *hardened*
implementation, and classifies each trial:

* **benign** — the output equals the fault-free golden run (the fault hit
  dead state, or was absorbed — e.g. a projective rescaling of the ladder
  state);
* **detected** — a countermeasure fired (input/output validation, ladder
  coherence, temporal redundancy, verify-after-sign) or the run crashed
  (illegal opcode, step budget, …).  A crash/reset is observable, so it
  counts as detection on the bare build too;
* **silent** — the run completed, no check fired, and the output differs
  from golden: the dangerous case fault attacks exploit.

Four campaign targets:

``ladder``
    The assembly Montgomery ladder on the cycle-accurate ISS
    (:class:`~repro.kernels.ladder_kernel.LadderKernel`), faulted through
    :class:`~repro.faults.injector.FaultInjector` — SRAM/register/MAC bit
    flips, instruction skips, transient opcode corruption at seeded
    trigger cycles.  The hardened classification runs the host-side
    countermeasure chain (:meth:`LadderKernel.validate_output`) and falls
    back to a golden-state comparison standing in for the
    compute-twice-and-compare countermeasure (detector ``"recompute"`` —
    sound under the single-transient-fault model, where the second
    execution is fault-free by assumption).

``scalarmult``
    The Python x-only ladder: plain vs coherence-checked
    (:func:`~repro.scalarmult.montgomery_ladder_x_checked`), faulted via
    the ``step_hook`` seam.  Measures the *coherence check alone* — no
    redundancy, no golden oracle on the hardened path.

``ecdh``
    :class:`~repro.protocols.ecdh.XOnlyEcdh` shared-secret derivation,
    hardened (validation + checked ladder + temporal redundancy + retry)
    vs bare, one ladder-state fault per derivation.

``ecdsa``
    :class:`~repro.protocols.ecdsa.Ecdsa` signing with a corrupted
    scalar-multiplication backend (:class:`~repro.faults.pyfaults.FaultyMult`),
    hardened (blinding + verify-after-sign + retry) vs bare.

Every campaign is a pure function of ``(target, mode, n, seed)`` — the
JSONL export (through :func:`repro.obs.export.faults_to_jsonl`) is
byte-identical across runs, which ``--check`` verifies by running the
campaign twice, and the test-suite locks in.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, List, Optional

from ..avr.timing import Mode
from ..curves.params import MONTGOMERY_GX, OPF_K, OPF_U, make_montgomery, \
    make_secp160r1
from ..faults import (
    FaultDetectedError,
    FaultInjector,
    FaultyMult,
    generate_faults,
    generate_ladder_faults,
    generate_mult_faults,
)
from ..kernels import LadderKernel, OpfConstants
from ..kernels.ladder_kernel import ADDR_SCALAR, SLOT_BASE
from ..obs.export import faults_to_jsonl
from ..protocols.ecdh import XOnlyEcdh, XOnlyKeyPair
from ..protocols.ecdsa import Ecdsa
from ..scalarmult import (
    adapter_for,
    montgomery_ladder_x,
    montgomery_ladder_x_checked,
    scalar_mult_naf,
)

__all__ = [
    "FaultRecord",
    "CampaignResult",
    "run_ladder_campaign",
    "run_scalarmult_campaign",
    "run_ecdh_campaign",
    "run_ecdsa_campaign",
    "run_campaign",
    "main",
]

TARGETS = ("ladder", "scalarmult", "ecdh", "ecdsa")

_MODES = {"ca": Mode.CA, "fast": Mode.FAST, "ise": Mode.ISE}

#: Per-target trial counts for a quick (`--smoke`) campaign.
SMOKE_TRIALS = {"ladder": 60, "scalarmult": 60, "ecdh": 60, "ecdsa": 40}

#: Per-target default trial counts for a full CLI campaign.
DEFAULT_TRIALS = {"ladder": 200, "scalarmult": 400, "ecdh": 200,
                  "ecdsa": 100}


@dataclass(frozen=True)
class FaultRecord:
    """One fault, classified against the bare and hardened implementation."""

    campaign: str
    index: int
    fault: Dict[str, Any]
    baseline: str  # "benign" | "detected" | "silent"
    hardened: str  # "benign" | "detected" | "silent"
    detector: Optional[str] = None  # countermeasure that fired (hardened)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "index": self.index,
            "fault": self.fault,
            "baseline": self.baseline,
            "hardened": self.hardened,
            "detector": self.detector,
        }


@dataclass
class CampaignResult:
    """All trials of one campaign plus its provenance."""

    campaign: str
    seed: int
    mode: Optional[str] = None
    records: List[FaultRecord] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        baseline = Counter(r.baseline for r in self.records)
        hardened = Counter(r.hardened for r in self.records)
        detectors = Counter(r.detector for r in self.records
                            if r.detector is not None)
        out: Dict[str, Any] = {
            "campaign": self.campaign,
            "seed": self.seed,
            "trials": len(self.records),
            "baseline": {k: baseline.get(k, 0)
                         for k in ("benign", "detected", "silent")},
            "hardened": {k: hardened.get(k, 0)
                         for k in ("benign", "detected", "silent")},
            "detectors": dict(sorted(detectors.items())),
        }
        if self.mode is not None:
            out["mode"] = self.mode
        return out

    def to_jsonl(self) -> str:
        return faults_to_jsonl(self.records, self.summary())

    def render(self) -> str:
        s = self.summary()
        title = f"Fault campaign: {self.campaign}"
        if self.mode:
            title += f" ({self.mode})"
        title += f" — {s['trials']} trials, seed {s['seed']}"
        lines = [title, ""]
        lines.append(f"{'':<12}{'benign':>8}{'detected':>10}{'silent':>8}")
        lines.append("-" * 38)
        for label in ("baseline", "hardened"):
            row = s[label]
            lines.append(f"{label:<12}{row['benign']:>8}"
                         f"{row['detected']:>10}{row['silent']:>8}")
        if s["detectors"]:
            lines.append("")
            lines.append("detections by countermeasure (hardened):")
            for name, count in s["detectors"].items():
                lines.append(f"  {name:<24}{count:>6}")
        return "\n".join(lines)


def _derive_scalar(tag: str, seed: int, bits: int) -> int:
    """A deterministic full-width scalar: top bit set so every ladder rung
    processes meaningful state (low-weight scalars leave early rungs at the
    projective infinity (X : 0), where bit flips are absorbed as
    rescalings)."""
    digest = sha256(f"repro-faults-{tag}-{seed}".encode()).digest()
    value = int.from_bytes(digest * ((bits // 256) + 1), "big")
    value %= 1 << (bits - 1)
    return value | (1 << (bits - 2)) | 1


# -- ladder (ISS) ---------------------------------------------------------


def run_ladder_campaign(n: int, seed: int, mode: Mode = Mode.CA,
                        engine: str = "fast",
                        scalar_bytes: int = 2) -> CampaignResult:
    """Fault the assembly ladder kernel on the simulator.

    Each trial restages the kernel on a factory-fresh core, advances to
    the fault's trigger cycle, strikes, and runs to completion.  Per-rung
    work is scalar-independent, so a short scalar (default 16 bits = 16
    rungs) exercises the same datapath as the full 160-bit ladder at a
    fraction of the simulation time.
    """
    constants = OpfConstants(u=OPF_U, k=OPF_K)
    suite = make_montgomery(functional=True)
    kernel = LadderKernel(constants, mode, scalar_bytes=scalar_bytes,
                          engine=engine)
    bits = 8 * scalar_bytes
    k = _derive_scalar("ladder", seed, bits)
    gold_x, gold_z, gold_cycles = kernel.run(k, MONTGOMERY_GX)
    p = constants.p
    faults = generate_faults(
        n, seed, max_cycle=gold_cycles,
        sram_ranges=[(SLOT_BASE, ADDR_SCALAR + scalar_bytes)],
        registers=True,
        accumulator=(mode is Mode.ISE),
        code=True,
    )
    budget = 3 * gold_cycles + 10_000
    result = CampaignResult(campaign="ladder", seed=seed, mode=mode.name)
    for index, spec in enumerate(faults):
        kernel.reset_core()
        kernel.load_operands(k, MONTGOMERY_GX)
        crash: Optional[str] = None
        try:
            FaultInjector(kernel.core, [spec], max_steps=budget).run()
        except Exception as exc:  # noqa: BLE001 — any crash is a detection
            crash = type(exc).__name__
        if crash is not None:
            record = FaultRecord(
                campaign="ladder", index=index, fault=spec.as_dict(),
                baseline="detected", hardened="detected",
                detector=f"crash:{crash}")
            result.records.append(record)
            continue
        state = kernel.output_state()
        x1, z1 = state["X1"] % p, state["Z1"] % p
        same = (x1 * (gold_z % p) - (gold_x % p) * z1) % p == 0 \
            and not (x1 == 0 and z1 == 0)
        detector = kernel.validate_output(k, suite.curve, suite.base)
        if detector is None and not same:
            # The validation chain missed it; the compute-twice-and-compare
            # countermeasure cannot (under the single-transient-fault model
            # the second run is golden), so classify via the golden state.
            detector = "recompute"
        hardened = "benign" if detector is None else "detected"
        baseline = "benign" if same else "silent"
        result.records.append(FaultRecord(
            campaign="ladder", index=index, fault=spec.as_dict(),
            baseline=baseline, hardened=hardened, detector=detector))
    return result


# -- scalarmult (Python ladder) -------------------------------------------


def run_scalarmult_campaign(n: int, seed: int,
                            bits: int = 160) -> CampaignResult:
    """Fault the Python x-only ladder; hardened = coherence check only."""
    suite = make_montgomery(functional=True)
    curve, base = suite.curve, suite.base
    k = _derive_scalar("scalarmult", seed, bits)
    gold = montgomery_ladder_x(curve, k, base, bits=bits)
    faults = generate_ladder_faults(n, seed, rungs=bits, bits=bits)
    result = CampaignResult(campaign="scalarmult", seed=seed)
    for index, fault in enumerate(faults):
        out = montgomery_ladder_x(curve, k, base, bits=bits,
                                  step_hook=fault.hook())
        same = (out.x * gold.z) == (gold.x * out.z) \
            and not (out.x.is_zero() and out.z.is_zero())
        baseline = "benign" if same else "silent"
        try:
            checked = montgomery_ladder_x_checked(curve, k, base, bits=bits,
                                                  step_hook=fault.hook())
        except FaultDetectedError:
            hardened, detector = "detected", "ladder-coherence"
        else:
            ok = (checked.x * gold.z) == (gold.x * checked.z)
            hardened = "benign" if ok else "silent"
            detector = None
        result.records.append(FaultRecord(
            campaign="scalarmult", index=index, fault=fault.as_dict(),
            baseline=baseline, hardened=hardened, detector=detector))
    return result


# -- ecdh -----------------------------------------------------------------


def run_ecdh_campaign(n: int, seed: int, bits: int = 160) -> CampaignResult:
    """Fault x-only ECDH derivations, hardened vs bare."""
    suite = make_montgomery(functional=True)
    curve, base = suite.curve, suite.base
    hard = XOnlyEcdh(curve, base, scalar_bits=bits)
    bare = XOnlyEcdh(curve, base, scalar_bits=bits, hardened=False)
    alice = _derive_scalar("ecdh-alice", seed, bits)
    bob = _derive_scalar("ecdh-bob", seed, bits)
    own = XOnlyKeyPair(private=alice,
                       public_x=hard._ladder_x(alice, base.x.to_int()))
    peer_x = hard._ladder_x(bob, base.x.to_int())
    gold = hard.shared_secret(own, peer_x)
    faults = generate_ladder_faults(n, seed, rungs=bits, bits=bits)
    result = CampaignResult(campaign="ecdh", seed=seed)
    for index, fault in enumerate(faults):
        try:
            out = bare.shared_secret(own, peer_x, fault_hook=fault.hook())
        except ValueError:
            baseline = "detected"  # infinity output: observable even bare
        else:
            baseline = "benign" if out == gold else "silent"
        try:
            out = hard.shared_secret(own, peer_x, fault_hook=fault.hook())
        except FaultDetectedError:
            hardened, detector = "detected", hard.last_detection
        except ValueError:
            hardened, detector = "detected", "output-format"
        else:
            detector = hard.last_detection
            if out != gold:
                hardened = "silent"
            else:
                hardened = "benign" if detector is None else "detected"
        result.records.append(FaultRecord(
            campaign="ecdh", index=index, fault=fault.as_dict(),
            baseline=baseline, hardened=hardened, detector=detector))
    return result


# -- ecdsa ----------------------------------------------------------------


def run_ecdsa_campaign(n: int, seed: int) -> CampaignResult:
    """Fault ECDSA signing through a corrupted scalar-mult backend."""
    suite = make_secp160r1(functional=True)
    curve, base, order = suite.curve, suite.base, suite.order
    private = _derive_scalar("ecdsa-key", seed, 160)
    message = f"repro fault campaign {seed}".encode()

    def clean_mult(k: int, point) -> Any:
        return scalar_mult_naf(adapter_for(curve, point), k)

    golden_signer = Ecdsa(curve, base, order)
    golden = golden_signer.sign(private, message)
    params = generate_mult_faults(n, seed, bits=160)
    result = CampaignResult(campaign="ecdsa", seed=seed)
    for index, prm in enumerate(params):
        bare = Ecdsa(curve, base, order, mult=FaultyMult(clean_mult, **prm),
                     hardened=False)
        try:
            sig = bare.sign(private, message)
        except ValueError:
            baseline = "detected"  # r = 0 / infinity: signing aborts
        else:
            baseline = "benign" if sig == golden else "silent"
        hard = Ecdsa(curve, base, order, mult=FaultyMult(clean_mult, **prm))
        try:
            sig = hard.sign(private, message)
        except FaultDetectedError:
            hardened, detector = "detected", hard.last_detection
        except ValueError:
            hardened, detector = "detected", "validation"
        else:
            detector = hard.last_detection
            if sig != golden:
                hardened = "silent"
            else:
                hardened = "benign" if detector is None else "detected"
        result.records.append(FaultRecord(
            campaign="ecdsa", index=index, fault=dict(prm),
            baseline=baseline, hardened=hardened, detector=detector))
    return result


# -- dispatch + CLI -------------------------------------------------------


def run_campaign(target: str, n: int, seed: int, mode: Mode = Mode.CA,
                 engine: str = "fast") -> CampaignResult:
    """Run one campaign by target name (the CLI/test entry point)."""
    if target == "ladder":
        return run_ladder_campaign(n, seed, mode=mode, engine=engine)
    if target == "scalarmult":
        return run_scalarmult_campaign(n, seed)
    if target == "ecdh":
        return run_ecdh_campaign(n, seed)
    if target == "ecdsa":
        return run_ecdsa_campaign(n, seed)
    raise ValueError(f"unknown campaign target {target!r}")


def _check(target: str, n: int, seed: int, mode: Mode,
           engine: str) -> int:
    """Determinism + hardening gate: campaign twice, compare, assert."""
    first = run_campaign(target, n, seed, mode=mode, engine=engine)
    second = run_campaign(target, n, seed, mode=mode, engine=engine)
    a, b = first.to_jsonl(), second.to_jsonl()
    if a != b:
        print("FAIL: two identically-seeded campaigns serialized "
              "differently", file=sys.stderr)
        return 1
    s = first.summary()
    failures = []
    if s["hardened"]["silent"] != 0:
        failures.append(
            f"hardened build reported {s['hardened']['silent']} silent "
            f"corruptions (expected 0)")
    if s["baseline"]["silent"] == 0:
        failures.append(
            "baseline build reported no silent corruptions — the campaign "
            "is not exercising the countermeasures")
    print(first.render())
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: byte-identical across two runs; baseline "
          f"{s['baseline']['silent']}/{s['trials']} silent, hardened 0.")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Seeded fault-injection campaigns over the ISS kernels "
                    "and the Python ECC stack (see DESIGN.md §7).",
    )
    parser.add_argument("target", choices=TARGETS,
                        help="what to fault: the assembly ladder on the "
                             "simulator, the Python ladder, or a protocol")
    parser.add_argument("--mode", choices=sorted(_MODES), default="ca",
                        help="simulator timing mode (ladder target only)")
    parser.add_argument("--n", type=int, default=None,
                        help="number of fault trials (default: per-target, "
                             f"{DEFAULT_TRIALS})")
    parser.add_argument("--seed", type=int, default=7,
                        help="campaign seed (same seed => byte-identical "
                             "JSONL)")
    parser.add_argument("--engine", choices=["fast", "trace", "reference"],
                        default="fast",
                        help="ISS execution engine (ladder target only); "
                             "'trace' cores advance between fault triggers "
                             "on the fast tier — superblocks carry no "
                             "fault hooks")
    parser.add_argument("--format", choices=["text", "jsonl"],
                        default="text", help="output format")
    parser.add_argument("--out", default=None,
                        help="write output to this file instead of stdout")
    parser.add_argument("--smoke", action="store_true",
                        help=f"quick campaign ({SMOKE_TRIALS} trials)")
    parser.add_argument("--check", action="store_true",
                        help="run the campaign twice; exit non-zero unless "
                             "the JSONL is byte-identical, the hardened "
                             "build has 0 silent corruptions and the "
                             "baseline has > 0")
    args = parser.parse_args(argv)

    n = args.n
    if n is None:
        n = (SMOKE_TRIALS if args.smoke else DEFAULT_TRIALS)[args.target]
    mode = _MODES[args.mode]
    if args.check:
        return _check(args.target, n, args.seed, mode, args.engine)
    result = run_campaign(args.target, n, args.seed, mode=mode,
                          engine=args.engine)
    output = result.to_jsonl() if args.format == "jsonl" else \
        result.render() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(output)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
