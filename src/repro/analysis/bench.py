"""Parallel ISS benchmark harness: ``python -m repro bench``.

Measures simulator *throughput* (simulated instructions per host second)
for the paper's kernels under all three execution engines — the ``step()``
reference interpreter, the block-compiling
:class:`~repro.avr.engine.FastEngine` and the superblock
:class:`~repro.avr.trace.TraceEngine` — and records the per-kernel
speedups (fast/reference, trace/reference and trace/fast).  The matrix
(kernel x mode x engine) fans out across worker processes; each worker
owns its own :class:`~repro.kernels.runner.KernelRunner` so entries are
fully independent.

Results append to ``BENCH_iss.json`` (a list of run records, schema
below); the benchmark-throughput test validates the schema and asserts
the recorded speedup stays above :data:`ENGINE_MIN_SPEEDUP`.  The engine
architecture being measured is documented in DESIGN.md §4 "Execution
engines".

Run-record schema (``schema == 1``)::

    {
      "schema": 1,
      "timestamp": "2026-08-05T12:00:00+00:00",
      "label": "full" | "smoke" | <user label>,
      "python": "3.11.x",
      "platform": "Linux-...",
      "jobs": 2,
      "entries": [
        {"name": "opf_mul_mac/ISE/fast", "family": "field",
         "kernel": "opf_mul_mac", "mode": "ISE", "engine": "fast",
         "reps": 400, "instructions": 619, "cycles_per_run": 620,
         "wall_s": 0.1, "ips": 2400000.0},
        ...
      ],
      "speedups": {"opf_mul_mac/ISE": 10.2, ...}
    }

``ips`` is simulated instructions retired per host wall-clock second;
``instructions`` / ``cycles_per_run`` are per-rep and deterministic, so
they double as a cross-engine consistency check.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import re
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from ..avr.timing import Mode
from ..kernels import (
    KernelRunner,
    LadderKernel,
    OpfConstants,
    generate_modadd,
    generate_modsub,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)

#: Minimum fast/reference speedup the repository guarantees (and the test
#: suite asserts) on the ISE multiplication kernel.  Measured runs land at
#: ~10x on an otherwise idle host (see BENCH_iss.json); the floor is set
#: well below that so shared-CI timing noise cannot fail a correct build.
ENGINE_MIN_SPEEDUP = 3.0

#: Minimum trace/fast speedup the repository guarantees on the full
#: scalar multiplication (``ladder_xz/ISE``) — the superblock tier's
#: headline number.  Measured runs land at ~3.5x (see BENCH_iss.json);
#: ``bench --check`` enforces this floor on its fresh smoke run, and the
#: ratio is host-load-resistant because both engines share the run's
#: conditions.
TRACE_MIN_SPEEDUP = 2.5

#: Default output file, at the repository root by convention.
DEFAULT_OUTPUT = "BENCH_iss.json"

_GENERATORS = {
    "opf_add": generate_modadd,
    "opf_sub": generate_modsub,
    "opf_mul_comba": generate_opf_mul_comba,
    "opf_mul_mac": generate_opf_mul_mac,
}

# The paper's 160-bit OPF: p = 65356 * 2^144 + 1.
_CONSTANTS = dict(u=65356, k=144)


def _matrix(smoke: bool) -> List[Dict[str, Any]]:
    """The benchmark fan-out: one spec dict per (kernel, mode, engine)."""
    if smoke:
        field = [("opf_mul_mac", Mode.ISE, 60),
                 ("opf_mul_comba", Mode.CA, 40)]
    else:
        field = [("opf_add", Mode.CA, 600), ("opf_add", Mode.FAST, 600),
                 ("opf_sub", Mode.CA, 600), ("opf_sub", Mode.FAST, 600),
                 ("opf_mul_comba", Mode.CA, 250),
                 ("opf_mul_comba", Mode.FAST, 250),
                 ("opf_mul_mac", Mode.ISE, 400)]
    specs: List[Dict[str, Any]] = []
    for kernel, mode, reps in field:
        for engine in ("fast", "trace", "reference"):
            specs.append({
                "family": "field", "kernel": kernel, "mode": mode.value,
                "engine": engine,
                "reps": reps if engine != "reference" else max(2, reps // 10),
            })
    # The full scalar multiplication exercises call/ret, the bit-loop
    # driver and long superblock chains; it is the headline number for
    # the trace tier, so it runs warmed and multi-rep under every engine
    # in both labels (the reference interpreter gets one rep — a single
    # ladder costs seconds there, and the ips of one warmed full ladder
    # is already stable at the millions-of-instructions scale).
    for engine, reps in (("fast", 1 if smoke else 3),
                         ("trace", 1 if smoke else 3),
                         ("reference", 1)):
        specs.append({"family": "curve", "kernel": "ladder_xz",
                      "mode": Mode.ISE.value, "engine": engine,
                      "reps": reps})
    return specs


def _bench_field(spec: Dict[str, Any]) -> Dict[str, Any]:
    constants = OpfConstants(**_CONSTANTS)
    source = _GENERATORS[spec["kernel"]](constants)
    runner = KernelRunner(source, Mode(spec["mode"]), engine=spec["engine"])
    p = constants.p
    # Deterministic operands shared by every engine so ips comparisons
    # measure the engine, not the data.
    a = pow(3, 77, p)
    b = pow(5, 91, p)
    runner.run(a, b)                      # warm-up: compile + decode caches
    core = runner.core
    per_run = core.instructions_retired
    cycles = core.cycles
    reps = spec["reps"]

    # The kernels read A/B in place and write R/T, so operands staged by
    # the warm-up survive every iteration: the hot loop is reset + run,
    # i.e. pure engine throughput rather than harness byte-shuffling.
    def body():
        for _ in range(reps):
            core.reset(pc=0)
            core.run()

    wall = _best_of(3, body)
    return _entry(spec, per_run, cycles, reps, wall)


def _best_of(n: int, body) -> float:
    """Fastest of *n* timed loops — the standard throughput discipline:
    the minimum is the run least disturbed by scheduler noise."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_ladder(spec: Dict[str, Any]) -> Dict[str, Any]:
    constants = OpfConstants(**_CONSTANTS)
    kernel = LadderKernel(constants, Mode(spec["mode"]),
                          engine=spec["engine"])
    k = pow(7, 123, constants.p) | 1
    base_x = 9
    kernel.run(k, base_x)                 # warm-up
    per_run = kernel.core.instructions_retired
    cycles = kernel.core.cycles
    reps = spec["reps"]
    wall = _best_of(2, lambda: [kernel.run(k, base_x) for _ in range(reps)])
    return _entry(spec, per_run, cycles, reps, wall)


def _entry(spec: Dict[str, Any], per_run: int, cycles: int, reps: int,
           wall: float) -> Dict[str, Any]:
    return {
        "name": f"{spec['kernel']}/{spec['mode']}/{spec['engine']}",
        "family": spec["family"],
        "kernel": spec["kernel"],
        "mode": spec["mode"],
        "engine": spec["engine"],
        "reps": reps,
        "instructions": per_run,
        "cycles_per_run": cycles,
        "wall_s": wall,
        "ips": per_run * reps / wall if wall > 0 else 0.0,
    }


def bench_worker(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (picklable) worker: run one benchmark spec to an entry."""
    if spec["family"] == "curve":
        return _bench_ladder(spec)
    return _bench_field(spec)


def compute_speedups(entries: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Engine ips ratios per (kernel, mode).

    ``"<kernel>/<mode>"`` is the historical fast/reference ratio;
    ``"<kernel>/<mode>/trace"`` is trace/reference and
    ``"<kernel>/<mode>/trace_vs_fast"`` trace/fast — the latter is the
    number :data:`TRACE_MIN_SPEEDUP` gates on ``ladder_xz/ISE``.
    """
    ips = {e["name"]: e["ips"] for e in entries}
    speedups: Dict[str, float] = {}
    for entry in entries:
        key = f"{entry['kernel']}/{entry['mode']}"
        ref = ips.get(f"{key}/reference")
        if entry["engine"] == "fast":
            if ref:
                speedups[key] = entry["ips"] / ref
        elif entry["engine"] == "trace":
            if ref:
                speedups[f"{key}/trace"] = entry["ips"] / ref
            fast = ips.get(f"{key}/fast")
            if fast:
                speedups[f"{key}/trace_vs_fast"] = entry["ips"] / fast
    return speedups


def run_bench(smoke: bool = False, jobs: Optional[int] = None,
              label: Optional[str] = None) -> Dict[str, Any]:
    """Execute the benchmark matrix in parallel; return one run record."""
    specs = _matrix(smoke)
    if jobs is None:
        jobs = min(len(specs), os.cpu_count() or 1)
    jobs = max(1, jobs)
    if jobs == 1:
        entries = [bench_worker(s) for s in specs]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            entries = list(pool.map(bench_worker, specs))
    record = {
        "schema": 1,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "label": label or ("smoke" if smoke else "full"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": jobs,
        "entries": entries,
        "speedups": compute_speedups(entries),
    }
    validate_run_record(record)
    return record


_ENTRY_FIELDS = {
    "name": str, "family": str, "kernel": str, "mode": str, "engine": str,
    "reps": int, "instructions": int, "cycles_per_run": int,
    "wall_s": (int, float), "ips": (int, float),
}


#: Execution paths a ``family: "serve"`` entry may carry (the serving
#: benchmark of :mod:`repro.serve.loadgen`): the one-at-a-time baseline,
#: the fixed-base comb path, the full batched pool at any width, the
#: pool with request tracing enabled (the tracing-overhead row), an
#: N-shard cluster of :mod:`repro.serve.shard` (the scale-out rows),
#: the named-key vs inline-key shard twins of the tenancy benchmark
#: (``inline_shard<N>`` / ``named_shard<N>``), or the quota-shed leg
#: (``quota``: a deliberately over-budget tenant stream).
_SERVE_ENGINE = re.compile(
    r"direct|fixedbase|pool[0-9]+(_traced)?|shard[0-9]+"
    r"|inline_shard[0-9]+|named_shard[0-9]+|quota")


def validate_entry(entry: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless *entry* matches the schema-1 layout.

    Two entry families share the layout: ISS throughput entries
    (``family`` "field"/"curve", engine fast/reference, mode an
    :class:`~repro.avr.timing.Mode`) and serving entries (``family``
    "serve", engine direct/fixedbase/pool<N>, mode a curve key, ``ips``
    measured in operations per second).
    """
    if not isinstance(entry, dict):
        raise ValueError(f"entry must be a dict, got {type(entry).__name__}")
    for field, types in _ENTRY_FIELDS.items():
        if field not in entry:
            raise ValueError(f"entry missing field {field!r}")
        if not isinstance(entry[field], types) or isinstance(
                entry[field], bool):
            raise ValueError(f"entry field {field!r} has wrong type")
    if entry["family"] == "serve":
        from ..serve.protocol import CURVES  # deferred: keeps bench light

        if not _SERVE_ENGINE.fullmatch(entry["engine"]):
            raise ValueError(f"unknown serve engine {entry['engine']!r}")
        if entry["mode"] not in CURVES:
            raise ValueError(f"unknown serve curve {entry['mode']!r}")
        if entry["cycles_per_run"] != 0:
            raise ValueError("serve entries carry no cycle count")
    else:
        if entry["engine"] not in ("fast", "trace", "reference"):
            raise ValueError(f"unknown engine {entry['engine']!r}")
        if entry["mode"] not in {m.value for m in Mode}:
            raise ValueError(f"unknown mode {entry['mode']!r}")
    if entry["name"] != f"{entry['kernel']}/{entry['mode']}/{entry['engine']}":
        raise ValueError(f"entry name {entry['name']!r} does not match parts")
    if entry["reps"] < 1 or entry["instructions"] < 1 or entry["ips"] < 0:
        raise ValueError("entry counters out of range")


def validate_run_record(record: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless *record* is a valid schema-1 run."""
    if not isinstance(record, dict):
        raise ValueError("run record must be a dict")
    if record.get("schema") != 1:
        raise ValueError(f"unsupported schema {record.get('schema')!r}")
    for field in ("timestamp", "label", "python", "platform"):
        if not isinstance(record.get(field), str):
            raise ValueError(f"record field {field!r} must be a string")
    if not isinstance(record.get("jobs"), int) or record["jobs"] < 1:
        raise ValueError("record field 'jobs' must be a positive int")
    entries = record.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("record must carry a non-empty entries list")
    for entry in entries:
        validate_entry(entry)
    speedups = record.get("speedups")
    if not isinstance(speedups, dict):
        raise ValueError("record must carry a speedups dict")
    for key, value in speedups.items():
        if not isinstance(key, str) or not isinstance(value, (int, float)):
            raise ValueError("speedups must map str -> number")


def append_record(record: Dict[str, Any], path: str) -> None:
    """Append *record* to the JSON run list at *path* (atomic rewrite)."""
    validate_run_record(record)
    records: List[Dict[str, Any]] = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            records = json.load(fh)
        if not isinstance(records, list):
            raise ValueError(f"{path} does not hold a JSON run list")
    records.append(record)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def measure_speedup(record: Dict[str, Any],
                    key: str = "opf_mul_mac/ISE") -> float:
    """The recorded fast/reference speedup for *key* (ValueError if absent)."""
    try:
        return float(record["speedups"][key])
    except KeyError:
        raise ValueError(f"run record has no speedup entry for {key!r}")


def render(record: Dict[str, Any]) -> str:
    lines = [f"ISS throughput ({record['label']}, jobs={record['jobs']}, "
             f"python {record['python']})", ""]
    lines.append(f"{'benchmark':<34}{'reps':>6}{'instr/run':>11}"
                 f"{'wall s':>9}{'Mips':>8}")
    lines.append("-" * 68)
    for entry in record["entries"]:
        lines.append(f"{entry['name']:<34}{entry['reps']:>6}"
                     f"{entry['instructions']:>11}"
                     f"{entry['wall_s']:>9.2f}"
                     f"{entry['ips'] / 1e6:>8.2f}")
    if record["speedups"]:
        lines.append("")
        lines.append("engine speedups (bare key: fast/reference; /trace: "
                     "trace/reference; /trace_vs_fast: trace/fast):")
        for key in sorted(record["speedups"]):
            lines.append(f"  {key:<40}{record['speedups'][key]:>6.1f}x")
    return "\n".join(lines)


#: Throughput-regression tolerance for ``--check``: a fresh smoke entry
#: may fall this far below the last committed record before the check
#: fails.  Generous on purpose — shared hosts jitter; a real engine
#: regression (a de-optimised block compiler) loses far more than 30%.
CHECK_THRESHOLD = 0.30


def compare_records(fresh: Dict[str, Any], baseline: Dict[str, Any],
                    threshold: float = CHECK_THRESHOLD
                    ) -> List[Dict[str, Any]]:
    """Per-entry throughput comparison of two run records.

    Returns one row per benchmark name present in *both* records:
    ``{"name", "baseline_ips", "fresh_ips", "ratio", "regressed"}``
    where ``regressed`` marks a fresh throughput below
    ``(1 - threshold) * baseline``.
    """
    base_ips = {e["name"]: e["ips"] for e in baseline["entries"]}
    rows: List[Dict[str, Any]] = []
    for entry in fresh["entries"]:
        old = base_ips.get(entry["name"])
        if not old:
            continue
        ratio = entry["ips"] / old
        rows.append({
            "name": entry["name"],
            "baseline_ips": old,
            "fresh_ips": entry["ips"],
            "ratio": ratio,
            "regressed": ratio < 1.0 - threshold,
        })
    return rows


def check_against_baseline(path: str = DEFAULT_OUTPUT,
                           jobs: Optional[int] = None,
                           threshold: float = CHECK_THRESHOLD) -> int:
    """Run a fresh smoke benchmark and compare it to the last record at
    *path*; returns a shell exit code (1 on any >threshold regression).

    Nothing is appended to the record file — the check is read-only.
    """
    if not os.path.exists(path):
        print(f"bench --check: no baseline at {path}; nothing to compare")
        return 1
    with open(path, "r", encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list) or not records:
        print(f"bench --check: {path} holds no run records")
        return 1
    baseline = records[-1]
    validate_run_record(baseline)
    fresh = run_bench(smoke=True, jobs=jobs, label="check")
    rows = compare_records(fresh, baseline, threshold)
    if not rows:
        print("bench --check: no overlapping benchmark names with the "
              f"baseline ({baseline['label']} @ {baseline['timestamp']})")
        return 1
    print(f"bench --check vs {baseline['label']} run of "
          f"{baseline['timestamp']} (tolerance -{threshold:.0%})\n")
    print(f"{'benchmark':<34}{'baseline Mips':>14}{'fresh Mips':>12}"
          f"{'ratio':>8}")
    print("-" * 68)
    failed = False
    for row in rows:
        flag = "  REGRESSED" if row["regressed"] else ""
        failed = failed or row["regressed"]
        print(f"{row['name']:<34}{row['baseline_ips'] / 1e6:>14.2f}"
              f"{row['fresh_ips'] / 1e6:>12.2f}{row['ratio']:>8.2f}{flag}")
    # The superblock tier carries its own absolute floor: the fresh smoke
    # run's trace/fast ratio on the full ladder must hold the guaranteed
    # speedup (a ratio of two same-run measurements, so host load cancels
    # out and the generous throughput tolerance above does not apply).
    trace_key = "ladder_xz/ISE/trace_vs_fast"
    trace_ratio = fresh["speedups"].get(trace_key)
    if trace_ratio is not None:
        ok = trace_ratio >= TRACE_MIN_SPEEDUP
        failed = failed or not ok
        print(f"\n{trace_key}: {trace_ratio:.2f}x "
              f"(floor {TRACE_MIN_SPEEDUP}x)"
              + ("" if ok else "  REGRESSED"))
    print()
    print("FAIL: throughput regressed beyond tolerance" if failed
          else "OK: throughput within tolerance of the last record")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark ISS throughput (fast engine vs reference) "
                    "across kernels, modes and engines in parallel.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="~30 s subset (2 kernels, reduced reps)")
    parser.add_argument("--check", action="store_true",
                        help="run a fresh smoke benchmark and compare it "
                             "against the last committed record; exit "
                             "non-zero on a >30%% throughput regression "
                             "(appends nothing)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: min(specs, cpus))")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"run-record JSON file (default {DEFAULT_OUTPUT};"
                             " 'none' disables writing; with --check this "
                             "is the baseline to compare against)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored in the run record")
    args = parser.parse_args(argv)

    if args.check:
        path = DEFAULT_OUTPUT if args.output == "none" else args.output
        status = check_against_baseline(path, jobs=args.jobs)
        # The serving benchmark gates through the same command: when a
        # BENCH_serve.json baseline is committed, a fresh smoke serving
        # run must stay within its (looser) tolerance too.
        from ..serve.loadgen import check_serve_against_baseline
        print()
        return status or check_serve_against_baseline()
    record = run_bench(smoke=args.smoke, jobs=args.jobs, label=args.label)
    print(render(record))
    if args.output != "none":
        append_record(record, args.output)
        print(f"\nappended run record to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
