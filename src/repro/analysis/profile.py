"""Observability CLI: ``python -m repro profile``.

One command produces the paper's attribution artifacts for any target:

* ``profile mul --mode ise`` — run the Table I multiplication kernel on
  the simulator with the engine-speed profiler attached and print the
  Fig.-1-style instruction-group breakdown, the per-PC hotspot table
  (disassembled) and the routine-level flat/cumulative attribution.
* ``profile ladder`` — the full assembly Montgomery ladder, whose
  CALL/RET attribution splits the run across ``mul_sub``/``add_sub``/
  ``sub_sub`` exactly the way the paper prices it.
* ``profile scalarmult`` — the Python-side ladder over the OPF field,
  traced span-by-span (scalarmult -> point op -> field op) with
  field-/word-op counter deltas and model-priced cycle estimates.

``--format jsonl`` emits the archival event stream, ``--format chrome``
a ``chrome://tracing`` / Perfetto trace with the span tree on one track
and the ISS routine frames (1 cycle = 1 µs) on another.  The three
cooperating pieces this CLI drives are documented in DESIGN.md §4
"Observability".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..avr.disasm import disassemble_one
from ..avr.profiler import Profiler
from ..avr.timing import Mode
from ..curves.params import make_montgomery
from ..kernels import (
    KernelRunner,
    LadderKernel,
    OpfConstants,
    generate_modadd,
    generate_modsub,
    generate_opf_mul_comba,
    generate_opf_mul_mac,
)
from ..model.cycles import costs_for
from ..model.opcost import price
from ..obs import Tracer, to_chrome, to_jsonl
from ..obs.metrics import METRICS
from ..scalarmult.ladder import montgomery_ladder_x

#: Profiling targets: the Table I field kernels, the assembly ladder, and
#: the Python-side scalar multiplication.
TARGETS = ("mul", "add", "sub", "ladder", "scalarmult")

# The paper's 160-bit OPF: p = 65356 * 2^144 + 1.
_CONSTANTS = dict(u=65356, k=144)

_MODES = {"ca": Mode.CA, "fast": Mode.FAST, "ise": Mode.ISE}


def _field_kernel_source(target: str, mode: Mode) -> str:
    constants = OpfConstants(**_CONSTANTS)
    if target == "add":
        return generate_modadd(constants)
    if target == "sub":
        return generate_modsub(constants)
    # mul: the MAC kernel needs the ISE, the Comba kernel serves CA/FAST.
    if mode is Mode.ISE:
        return generate_opf_mul_mac(constants)
    return generate_opf_mul_comba(constants)


def profile_kernel(target: str, mode: Mode, reps: int = 1,
                   smoke: bool = False, engine: Optional[str] = None
                   ) -> Tuple[Tracer, Profiler, int, Any]:
    """Run a kernel target profiled+traced; returns (tracer, profiler,
    total_cycles, program) — *program* carries the symbol table.

    *engine* selects the ISS tier exactly as ``AvrCore(engine=...)``;
    note that profiled ``trace`` runs delegate to the fast engine (whose
    compiled blocks carry the exact per-block tallies superblocks elide),
    so the attribution is identical and only raw throughput differs.

    Alongside the ISS run, the *same* operation executes once on the
    Python OPF library under per-field-op spans, so every export pairs
    the simulator's cycle-exact attribution with the model-priced
    counter deltas of the mirror operation.
    """
    constants = OpfConstants(**_CONSTANTS)
    p = constants.p
    costs = costs_for(mode, source="paper", profile="opf")
    tracer = Tracer(field_ops=True,
                    cost_fn=lambda delta: price(delta, costs))
    with tracer:
        if target == "ladder":
            kernel = LadderKernel(constants, mode,
                                  scalar_bytes=2 if smoke else 20,
                                  engine=engine)
            profiler = kernel.attach_profiler()
            k = (pow(7, 123, p) | 1) % (1 << (8 * kernel.scalar_bytes))
            for _ in range(reps):
                kernel.run(k, 9)
            _mirror_op(tracer, target, k)
            return tracer, profiler, kernel.core.cycles, kernel.program
        runner = KernelRunner(_field_kernel_source(target, mode), mode,
                              engine=engine)
        profiler = runner.attach_profiler()
        a, b = pow(3, 77, p), pow(5, 91, p)
        for _ in range(reps):
            runner.run(a, b)
        _mirror_op(tracer, target, a, b)
        return tracer, profiler, runner.core.cycles, runner.program


def _mirror_op(tracer: Tracer, target: str, a: int, b: int = 9) -> None:
    """Run the profiled kernel's operation once on the Python OPF library
    under a ``python-mirror`` span, producing field-op child spans whose
    counter deltas cross-check the ISS numbers."""
    suite = make_montgomery()
    with tracer.span("python-mirror", kind="mirror", target=target):
        if target == "ladder":
            bits = max(1, a.bit_length())
            montgomery_ladder_x(suite.curve, a, suite.base, bits=bits)
            return
        field = suite.field
        ea, eb = field.from_int(a), field.from_int(b)
        if target == "add":
            field.add(ea, eb)
        elif target == "sub":
            field.sub(ea, eb)
        else:
            field.mul(ea, eb)


def profile_scalarmult(mode: Mode, reps: int = 1, smoke: bool = False,
                       field_ops: bool = True) -> Tracer:
    """Trace the Python-side OPF Montgomery ladder, pricing every counter
    delta with the paper's per-mode field-operation costs."""
    costs = costs_for(mode, source="paper", profile="opf")
    tracer = Tracer(field_ops=field_ops,
                    cost_fn=lambda delta: price(delta, costs))
    suite = make_montgomery()
    bits = 16 if smoke else suite.scalar_bits
    k = (pow(7, 123, suite.field.p) | 1) % (1 << bits)
    with tracer:
        for _ in range(reps):
            montgomery_ladder_x(suite.curve, k, suite.base, bits=bits)
    return tracer


def _hotspot_table(profiler: Profiler, program: Any,
                   limit: int = 10) -> str:
    """Top PCs by cycles with disassembly, Fig.-1 style."""
    words = getattr(program, "words", None)
    lines = [f"{'pc':>8}{'cycles':>10}{'count':>8}  instruction"]
    for pc, cycles, count in profiler.hotspots(limit):
        text = ""
        if words is not None and 0 <= pc < len(words):
            second = words[pc + 1] if pc + 1 < len(words) else None
            try:
                text, _ = disassemble_one(words[pc], second, address=pc)
            except Exception:
                text = "?"
        lines.append(f"{pc:#08x}{cycles:>10}{count:>8}  {text}")
    return "\n".join(lines)


def _span_tree(tracer: Tracer, max_spans: int = 40) -> str:
    lines: List[str] = []
    total = tracer.span_count()
    for span, depth in tracer.walk():
        if len(lines) >= max_spans:
            lines.append(f"... ({total - max_spans} more spans)")
            break
        attrs = {k: v for k, v in span.attrs.items()
                 if k in ("cycles", "cycles_est", "instructions",
                          "scalar_bits", "mode")}
        extra = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())
                 if attrs else "")
        lines.append(f"{'  ' * depth}{span.name} [{span.kind}] "
                     f"{span.dur_ns / 1000:.1f}us{extra}")
    return "\n".join(lines)


def render_text(tracer: Optional[Tracer], profiler: Optional[Profiler],
                program: Any = None, folded: bool = True) -> str:
    sections: List[str] = []
    if profiler is not None and profiler.total_instructions:
        sections.append("instruction mix (Fig. 1 style)\n"
                        + profiler.report())
        sections.append("hotspots\n" + _hotspot_table(profiler, program))
        sections.append("routines (CALL/RET attribution)\n"
                        + profiler.routine_report())
        if folded:
            stacks = profiler.folded_stacks()
            if stacks:
                sections.append(
                    "folded stacks (flamegraph.pl input)\n"
                    + "\n".join(stacks))
    if tracer is not None and tracer.roots:
        sections.append(f"spans ({tracer.span_count()})\n"
                        + _span_tree(tracer))
    metrics = METRICS.snapshot()
    if metrics:
        sections.append("metrics\n" + "\n".join(
            f"  {k} = {v}" for k, v in metrics.items()))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Profile a kernel or scalar multiplication: ISS "
                    "instruction-group/hotspot/routine attribution plus "
                    "hierarchical spans with counter deltas.",
    )
    parser.add_argument(
        "target", nargs="?", choices=TARGETS,
        help="what to profile (Table I kernels, the assembly ladder, or "
             "the Python-side scalar multiplication); defaults to 'mul' "
             "with --smoke")
    parser.add_argument("--mode", choices=sorted(_MODES), default="ise",
                        help="processor mode (default ise)")
    parser.add_argument("--engine", choices=("fast", "trace", "reference"),
                        default=None,
                        help="ISS execution engine (default: fast / "
                             "REPRO_AVR_ENGINE); profiled 'trace' runs "
                             "delegate to the fast engine, which carries "
                             "the exact per-block tallies")
    parser.add_argument("--format", choices=("text", "jsonl", "chrome"),
                        default="text", dest="fmt",
                        help="output format (default text)")
    parser.add_argument("--reps", type=int, default=1,
                        help="times to run the target (default 1)")
    parser.add_argument("--out", default=None,
                        help="write output to this file instead of stdout")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (2-byte ladder "
                             "scalar, 16-bit scalarmult); target defaults "
                             "to 'mul'")
    args = parser.parse_args(argv)

    if args.target is None:
        if not args.smoke:
            parser.error("a target is required unless --smoke is given")
        args.target = "mul"
    mode = _MODES[args.mode]

    profiler: Optional[Profiler] = None
    program: Any = None
    total_cycles: Optional[int] = None
    if args.target == "scalarmult":
        tracer = profile_scalarmult(mode, reps=args.reps, smoke=args.smoke)
    else:
        tracer, profiler, total_cycles, program = profile_kernel(
            args.target, mode, reps=args.reps, smoke=args.smoke,
            engine=args.engine)

    if args.fmt == "text":
        out = render_text(tracer, profiler, program)
    elif args.fmt == "jsonl":
        out = to_jsonl(tracer, profiler)
    else:
        out = json.dumps(to_chrome(tracer, profiler, total_cycles),
                         indent=None, sort_keys=True)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(out if out.endswith("\n") else out + "\n")
        print(f"wrote {args.fmt} profile of {args.target} ({args.mode}) "
              f"to {args.out}")
    else:
        try:
            print(out)
        except BrokenPipeError:
            return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
