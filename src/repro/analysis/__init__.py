"""Table regeneration (paper-vs-measured) shared by benches and examples."""

from .leakage import (
    TraceSample,
    collect_traces,
    fixed_vs_random_t,
    is_regular,
    leakage_report,
    random_traces,
    relative_spread,
    scalar_weight_correlation,
    welch_t,
)
from .tables import (
    TableResult,
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    generate_table5,
    measure_kernel_cycles,
)

__all__ = [
    "TraceSample",
    "collect_traces",
    "fixed_vs_random_t",
    "is_regular",
    "leakage_report",
    "random_traces",
    "relative_spread",
    "scalar_weight_correlation",
    "welch_t",
    "TableResult",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "generate_table5",
    "measure_kernel_cycles",
]
