"""Table regeneration (paper-vs-measured) shared by benches and examples."""

from .bench import (
    ENGINE_MIN_SPEEDUP,
    append_record,
    compute_speedups,
    measure_speedup,
    run_bench,
    validate_entry,
    validate_run_record,
)
from .leakage import (
    TraceSample,
    collect_traces,
    fixed_vs_random_t,
    is_regular,
    leakage_report,
    random_traces,
    relative_spread,
    scalar_weight_correlation,
    welch_t,
)
from .tables import (
    TableResult,
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    generate_table5,
    measure_kernel_cycles,
)

__all__ = [
    "ENGINE_MIN_SPEEDUP",
    "append_record",
    "compute_speedups",
    "measure_speedup",
    "run_bench",
    "validate_entry",
    "validate_run_record",
    "TraceSample",
    "collect_traces",
    "fixed_vs_random_t",
    "is_regular",
    "leakage_report",
    "random_traces",
    "relative_spread",
    "scalar_weight_correlation",
    "welch_t",
    "TableResult",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "generate_table5",
    "measure_kernel_cycles",
]
