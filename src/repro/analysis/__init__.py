"""Analysis harnesses: tables, benchmarks, profiles, leakage and faults.

* ``tables`` — paper-vs-measured table regeneration (``python -m repro
  table1`` …), shared by benches and examples.
* ``bench`` — ISS throughput benchmarking (``python -m repro bench``).
* ``profile`` — engine-speed profiling + span tracing CLI
  (``python -m repro profile``), per DESIGN.md §4 "Observability".
* ``leakage`` — the timing-leakage regularity report.
* ``ctcheck`` — ISS-level constant-time taint verification
  (``python -m repro ctcheck``), per DESIGN.md §9 "Constant-time
  verification"; cross-checked against ``leakage`` by the test-suite.
* ``faults`` — seeded fault-injection campaigns over the kernels and
  protocols (``python -m repro faults``), per DESIGN.md §7 "Fault model
  & countermeasures".
"""

from .bench import (
    CHECK_THRESHOLD,
    ENGINE_MIN_SPEEDUP,
    append_record,
    check_against_baseline,
    compare_records,
    compute_speedups,
    measure_speedup,
    run_bench,
    validate_entry,
    validate_run_record,
)
from .ctcheck import check_target
from .profile import (
    profile_kernel,
    profile_scalarmult,
    render_text,
)
from .leakage import (
    TraceSample,
    collect_traces,
    fixed_vs_random_t,
    is_regular,
    leakage_report,
    random_traces,
    relative_spread,
    scalar_weight_correlation,
    welch_t,
)
from .faults import (
    CampaignResult,
    FaultRecord,
    run_campaign,
    run_ecdh_campaign,
    run_ecdsa_campaign,
    run_ladder_campaign,
    run_scalarmult_campaign,
)
from .tables import (
    TableResult,
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    generate_table5,
    measure_kernel_cycles,
)

__all__ = [
    "CHECK_THRESHOLD",
    "ENGINE_MIN_SPEEDUP",
    "append_record",
    "check_against_baseline",
    "compare_records",
    "compute_speedups",
    "measure_speedup",
    "run_bench",
    "validate_entry",
    "validate_run_record",
    "check_target",
    "profile_kernel",
    "profile_scalarmult",
    "render_text",
    "TraceSample",
    "collect_traces",
    "fixed_vs_random_t",
    "is_regular",
    "leakage_report",
    "random_traces",
    "relative_spread",
    "scalar_weight_correlation",
    "welch_t",
    "CampaignResult",
    "FaultRecord",
    "run_campaign",
    "run_ecdh_campaign",
    "run_ecdsa_campaign",
    "run_ladder_campaign",
    "run_scalarmult_campaign",
    "TableResult",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "generate_table5",
    "measure_kernel_cycles",
]
