"""ECDSA over secp160r1 (the suite's curve with a standardized order).

Deterministic nonces are derived HMAC-style from SHA-256 (an RFC-6979-like
construction, simplified) so signing is reproducible in tests and leaks no
RNG state.  Verification uses Shamir's trick for the double-scalar
multiplication — the same simultaneous-evaluation machinery the GLV method
exercises.

Hardened by default (DESIGN.md §7 "Fault model & countermeasures"):

* the nonce scalar multiplication runs on an order-blinded scalar
  (:func:`~repro.scalarmult.blind_scalar` — deterministic derivation, so
  signatures stay bit-reproducible);
* **verify-after-sign**: every signature is verified against a freshly
  computed public key before being released, with bounded retry — a
  faulted signing never emits an invalid (or fault-attack-exploitable)
  signature, it raises ``FaultDetectedError``;
* ``verify`` additionally rejects public keys outside the prime-order
  subgroup.

``hardened=False`` restores the bare sign path (the fault-campaign
baseline).  The scalar-multiplication backend is pluggable via ``mult`` —
the campaign's corruption seam.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Callable, Optional

from ..curves.point import AffinePoint, MaybePoint
from ..curves.validate import validate_public_point, validate_scalar
from ..curves.weierstrass import WeierstrassCurve
from ..faults.model import FaultDetectedError
from ..scalarmult import (
    adapter_for,
    blind_scalar,
    scalar_mult_naf,
    shamir_scalar_mult,
)


@dataclass(frozen=True)
class Signature:
    r: int
    s: int


def _bits_to_int(data: bytes, order: int) -> int:
    value = int.from_bytes(data, "big")
    excess = max(0, 8 * len(data) - order.bit_length())
    return value >> excess


def deterministic_nonce(private: int, digest: bytes, order: int) -> int:
    """An RFC-6979-flavoured deterministic nonce in [1, order - 1]."""
    size = (order.bit_length() + 7) // 8
    key = private.to_bytes(size, "big") + digest
    counter = 0
    while True:
        block = hmac.new(key, counter.to_bytes(4, "big"),
                         hashlib.sha256).digest()
        k = _bits_to_int(block, order) % order
        if 1 <= k < order:
            return k
        counter += 1


class Ecdsa:
    """Sign/verify over a Weierstraß curve with known prime order."""

    def __init__(self, curve: WeierstrassCurve, base: AffinePoint, order: int,
                 mult: Optional[Callable] = None, hardened: bool = True,
                 max_retries: int = 2):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.order = order
        self.hardened = hardened
        self.max_retries = max_retries
        self._mult = mult or self._default_mult
        #: Countermeasure fired during the last sign (or None).
        self.last_detection: Optional[str] = None

    def _default_mult(self, k: int, point: AffinePoint) -> MaybePoint:
        return scalar_mult_naf(adapter_for(self.curve, point), k)

    # -- key handling -----------------------------------------------------

    def public_key(self, private: int) -> AffinePoint:
        validate_scalar(private, self.order)
        point = self._mult(private, self.base)
        if point is None:
            raise AssertionError("private key maps base to infinity")
        return point

    # -- core operations -----------------------------------------------------

    def _hash(self, message: bytes) -> int:
        digest = hashlib.sha256(message).digest()
        return _bits_to_int(digest, self.order) % self.order

    def sign(self, private: int, message: bytes,
             nonce: Optional[int] = None) -> Signature:
        self.last_detection = None
        validate_scalar(private, self.order)
        e = self._hash(message)
        digest = hashlib.sha256(message).digest()
        k = nonce if nonce is not None else deterministic_nonce(
            private, digest, self.order
        )
        if not 1 <= k < self.order:
            raise ValueError("nonce out of range")
        # Blinding leaves k*G (hence r, s) unchanged: order * G = O.
        k_eff = blind_scalar(k, self.order, digest) if self.hardened else k
        attempts = (self.max_retries + 1) if self.hardened else 1
        error: Optional[FaultDetectedError] = None
        for _attempt in range(attempts):
            point = self._mult(k_eff, self.base)
            if point is None:
                if not self.hardened:
                    raise ValueError(
                        "nonce maps base to infinity; pick another")
                self.last_detection = "verify-after-sign"
                error = FaultDetectedError(
                    "nonce multiplication returned infinity")
                continue
            r = point.x.to_int() % self.order
            if r == 0:
                raise ValueError("r = 0; pick another nonce")
            k_inv = pow(k, -1, self.order)
            s = k_inv * (e + r * private) % self.order
            if s == 0:
                raise ValueError("s = 0; pick another nonce")
            signature = Signature(r=r, s=s)
            if not self.hardened:
                return signature
            public = self._mult(private, self.base)
            if public is not None and self.verify(public, message, signature):
                return signature
            self.last_detection = "verify-after-sign"
            error = FaultDetectedError(
                "signature failed post-sign verification")
        raise error

    def verify(self, public: AffinePoint, message: bytes,
               signature: Signature) -> bool:
        r, s = signature.r, signature.s
        if not (1 <= r < self.order and 1 <= s < self.order):
            return False
        try:
            validate_public_point(self.curve, public,
                                  self.order if self.hardened else None)
        except ValueError:
            return False
        e = self._hash(message)
        w = pow(s, -1, self.order)
        u1 = e * w % self.order
        u2 = r * w % self.order
        point = shamir_scalar_mult(self.curve, u1, self.base, u2, public)
        if point is None:
            return False
        return point.x.to_int() % self.order == r
