"""ECDSA over secp160r1 (the suite's curve with a standardized order).

Deterministic nonces are derived HMAC-style from SHA-256 (an RFC-6979-like
construction, simplified) so signing is reproducible in tests and leaks no
RNG state.  Verification uses Shamir's trick for the double-scalar
multiplication — the same simultaneous-evaluation machinery the GLV method
exercises.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from ..curves.point import AffinePoint
from ..curves.weierstrass import WeierstrassCurve
from ..scalarmult import adapter_for, scalar_mult_naf, shamir_scalar_mult


@dataclass(frozen=True)
class Signature:
    r: int
    s: int


def _bits_to_int(data: bytes, order: int) -> int:
    value = int.from_bytes(data, "big")
    excess = max(0, 8 * len(data) - order.bit_length())
    return value >> excess


def deterministic_nonce(private: int, digest: bytes, order: int) -> int:
    """An RFC-6979-flavoured deterministic nonce in [1, order - 1]."""
    size = (order.bit_length() + 7) // 8
    key = private.to_bytes(size, "big") + digest
    counter = 0
    while True:
        block = hmac.new(key, counter.to_bytes(4, "big"),
                         hashlib.sha256).digest()
        k = _bits_to_int(block, order) % order
        if 1 <= k < order:
            return k
        counter += 1


class Ecdsa:
    """Sign/verify over a Weierstraß curve with known prime order."""

    def __init__(self, curve: WeierstrassCurve, base: AffinePoint, order: int):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.order = order

    # -- key handling -----------------------------------------------------

    def public_key(self, private: int) -> AffinePoint:
        if not 1 <= private < self.order:
            raise ValueError("private key out of range")
        point = scalar_mult_naf(adapter_for(self.curve, self.base), private)
        if point is None:
            raise AssertionError("private key maps base to infinity")
        return point

    # -- core operations -----------------------------------------------------

    def _hash(self, message: bytes) -> int:
        digest = hashlib.sha256(message).digest()
        return _bits_to_int(digest, self.order) % self.order

    def sign(self, private: int, message: bytes,
             nonce: Optional[int] = None) -> Signature:
        if not 1 <= private < self.order:
            raise ValueError("private key out of range")
        e = self._hash(message)
        digest = hashlib.sha256(message).digest()
        k = nonce if nonce is not None else deterministic_nonce(
            private, digest, self.order
        )
        if not 1 <= k < self.order:
            raise ValueError("nonce out of range")
        point = scalar_mult_naf(adapter_for(self.curve, self.base), k)
        if point is None:
            raise ValueError("nonce maps base to infinity; pick another")
        r = point.x.to_int() % self.order
        if r == 0:
            raise ValueError("r = 0; pick another nonce")
        k_inv = pow(k, -1, self.order)
        s = k_inv * (e + r * private) % self.order
        if s == 0:
            raise ValueError("s = 0; pick another nonce")
        return Signature(r=r, s=s)

    def verify(self, public: AffinePoint, message: bytes,
               signature: Signature) -> bool:
        r, s = signature.r, signature.s
        if not (1 <= r < self.order and 1 <= s < self.order):
            return False
        if not self.curve.is_on_curve(public):
            return False
        e = self._hash(message)
        w = pow(s, -1, self.order)
        u1 = e * w % self.order
        u2 = r * w % self.order
        point = shamir_scalar_mult(self.curve, u1, self.base, u2, public)
        if point is None:
            return False
        return point.x.to_int() % self.order == r
