"""RSA on the ASIP — the paper's generality claim, made executable.

Section IV-A: "The (32 x 4)-bit MAC unit is in principle suitable to speed
up any public-key cryptosystem that relies on multi-precision
multiplication, e.g. ECC over prime fields or even RSA."  This module backs
that sentence with code:

* textbook RSA (keygen / encrypt / decrypt / sign — educational, unpadded)
  whose modular exponentiation runs through the *instrumented* generic FIPS
  Montgomery multiplier of :mod:`repro.mpa`, so every word multiplication
  is counted;
* a cycle model pricing those word-level (32 x 32) MAC blocks with the
  per-block costs measured from our kernels, per JAAVR mode — which is what
  the RSA-vs-ECC benchmark uses to show the MAC unit's ~6x gain carries
  over to RSA.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..avr.timing import Mode
from ..curves.paramgen import is_probable_prime
from ..mpa.counters import WordOpCounter
from ..mpa.montgomery import MontgomeryContext, fips_montgomery
from ..mpa.words import from_words, to_words


@dataclass(frozen=True)
class RsaKeyPair:
    n: int
    e: int
    d: int
    bits: int


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random prime of exactly *bits* bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def generate_keypair(bits: int = 512, e: int = 65537,
                     rng: Optional[random.Random] = None) -> RsaKeyPair:
    """Textbook RSA key generation (educational — no padding downstream)."""
    if bits < 64 or bits % 2:
        raise ValueError("modulus size must be an even number >= 64 bits")
    rng = rng or random.SystemRandom()
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if n.bit_length() != bits:
            continue
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        return RsaKeyPair(n=n, e=e, d=d, bits=bits)


class MontgomeryModExp:
    """Left-to-right square-and-multiply over counted FIPS multiplications.

    All multiplications and squarings execute
    :func:`repro.mpa.montgomery.fips_montgomery` on word arrays (the generic
    2s^2 + s variant — an RSA modulus is not low-weight), tallying word
    multiplications into :attr:`counter`.
    """

    def __init__(self, modulus: int):
        if modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic needs an odd modulus")
        self.ctx = MontgomeryContext.create(modulus)
        self.counter = WordOpCounter()
        self.multiplications = 0

    def _mul(self, a_words, b_words):
        self.multiplications += 1
        return fips_montgomery(a_words, b_words, self.ctx, self.counter)

    def modexp(self, base: int, exponent: int) -> int:
        """base^exponent mod n via Montgomery square-and-multiply."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        ctx = self.ctx
        s = ctx.num_words
        if exponent == 0:
            return 1 % ctx.p
        base %= ctx.p
        base_m = to_words(ctx.to_mont(base, self.counter), s)
        acc = base_m
        for bit in bin(exponent)[3:]:  # skip the leading 1
            acc = self._mul(acc, acc)
            if bit == "1":
                acc = self._mul(acc, base_m)
        one = to_words(1, s)
        return from_words(self._mul(acc, one)) % ctx.p


class Rsa:
    """Unpadded RSA primitives over the counted Montgomery engine."""

    def __init__(self, key: RsaKeyPair):
        self.key = key
        self.engine = MontgomeryModExp(key.n)

    def encrypt(self, message: int) -> int:
        if not 0 <= message < self.key.n:
            raise ValueError("message out of range")
        return self.engine.modexp(message, self.key.e)

    def decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.key.n:
            raise ValueError("ciphertext out of range")
        return self.engine.modexp(ciphertext, self.key.d)

    def sign(self, digest: int) -> int:
        return self.decrypt(digest)

    def verify(self, digest: int, signature: int) -> bool:
        return self.encrypt(signature) == digest % self.key.n


# ---------------------------------------------------------------------------
# Cycle model
# ---------------------------------------------------------------------------


def per_block_cycles(mode: Mode) -> float:
    """Measured cycles of one (32 x 32) multiply-accumulate block.

    Derived from the OPF multiplication kernels: total kernel cycles divided
    by their 30 word-product blocks.  This is the unit an RSA inner loop is
    built from on the same hardware.
    """
    from ..model.cycles import measured_costs

    return measured_costs(mode).mul / 30.0


def estimate_modexp_cycles(word_muls: int, mode: Mode) -> float:
    """Price a counted modular exponentiation for a JAAVR mode."""
    if word_muls < 0:
        raise ValueError("word-multiplication count must be non-negative")
    return word_muls * per_block_cycles(mode)


def rsa_private_op_estimate(bits: int, mode: Mode) -> float:
    """Analytic estimate of one RSA private-key operation's cycles.

    s = bits/32 words; one FIPS multiplication costs 2s^2 + s word muls;
    square-and-multiply over a *bits*-bit exponent performs ~1.5 * bits
    multiplications.
    """
    s = bits // 32
    muls = int(1.5 * bits)
    return estimate_modexp_cycles(muls * (2 * s * s + s), mode)
