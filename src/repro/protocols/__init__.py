"""Protocol layer: ECDH (x-only and full-point), ECDSA, Schnorr.

All ECC protocols are fault-hardened by default — input validation,
redundant/coherence-checked scalar multiplication, verify-after-sign,
bounded retry — per DESIGN.md §7 "Fault model & countermeasures";
construct with ``hardened=False`` for the bare baseline the fault
campaigns (``python -m repro faults``) measure against.
"""

from .ecdh import FullPointEcdh, KeyPair, XOnlyEcdh, XOnlyKeyPair
from .ecdsa import Ecdsa, Signature, deterministic_nonce
from .rsa import (
    MontgomeryModExp,
    Rsa,
    RsaKeyPair,
    estimate_modexp_cycles,
    generate_keypair,
    generate_prime,
    per_block_cycles,
    rsa_private_op_estimate,
)
from .schnorr import Schnorr, SchnorrSignature

__all__ = [
    "MontgomeryModExp",
    "Rsa",
    "RsaKeyPair",
    "estimate_modexp_cycles",
    "generate_keypair",
    "generate_prime",
    "per_block_cycles",
    "rsa_private_op_estimate",
    "Ecdsa",
    "FullPointEcdh",
    "KeyPair",
    "Schnorr",
    "SchnorrSignature",
    "Signature",
    "XOnlyEcdh",
    "XOnlyKeyPair",
    "deterministic_nonce",
]
