"""Elliptic-curve Diffie-Hellman over the reproduction's curves.

Two flavours, mirroring the paper's motivation that its methods suit ECDH
(no fixed/known base point required):

* :class:`XOnlyEcdh` — x-coordinate-only ECDH on the Montgomery curve via
  the ladder (the IoT-friendly variant: 20-byte public keys, constant-time
  scalar multiplication).
* :class:`FullPointEcdh` — classic ECDH on any Weierstraß/GLV/Edwards curve
  through a pluggable scalar-multiplication method.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..curves.montgomery import MontgomeryCurve
from ..curves.point import AffinePoint, MaybePoint
from ..scalarmult import adapter_for, montgomery_ladder_x, scalar_mult_naf


@dataclass(frozen=True)
class XOnlyKeyPair:
    private: int
    public_x: int  # affine x of private * G


class XOnlyEcdh:
    """x-only ECDH on a Montgomery curve (Montgomery-ladder based)."""

    def __init__(self, curve: MontgomeryCurve, base: AffinePoint,
                 scalar_bits: int = 160):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.scalar_bits = scalar_bits

    def _ladder_x(self, k: int, x_coord: int) -> int:
        point = self.curve.lift_x(x_coord)
        result = montgomery_ladder_x(self.curve, k, point,
                                     bits=self.scalar_bits)
        if result.is_infinity():
            raise ValueError("derived the point at infinity; bad scalar")
        return self.curve.x_affine(result).to_int()

    def generate_keypair(self, rng: Optional[random.Random] = None,
                         ) -> XOnlyKeyPair:
        rng = rng or random.SystemRandom()
        private = rng.getrandbits(self.scalar_bits - 1) | (
            1 << (self.scalar_bits - 2)
        )
        public_x = self._ladder_x(private, self.base.x.to_int())
        return XOnlyKeyPair(private=private, public_x=public_x)

    def shared_secret(self, own: XOnlyKeyPair, peer_public_x: int) -> int:
        """x coordinate of (own.private * peer.private) * G."""
        return self._ladder_x(own.private, peer_public_x)


@dataclass(frozen=True)
class KeyPair:
    private: int
    public: AffinePoint


class FullPointEcdh:
    """Classic ECDH with a pluggable scalar-multiplication backend."""

    def __init__(self, curve, base: AffinePoint, order: Optional[int] = None,
                 mult: Optional[Callable] = None):
        self.curve = curve
        self.base = base
        self.order = order
        self._mult = mult or self._default_mult

    def _default_mult(self, k: int, point: AffinePoint) -> MaybePoint:
        return scalar_mult_naf(adapter_for(self.curve, point), k)

    def generate_keypair(self, rng: Optional[random.Random] = None) -> KeyPair:
        rng = rng or random.SystemRandom()
        upper = self.order - 1 if self.order else 1 << 159
        private = rng.randrange(1, upper)
        public = self._mult(private, self.base)
        if public is None:
            raise ValueError("private key maps the base point to infinity")
        return KeyPair(private=private, public=public)

    def shared_secret(self, own: KeyPair,
                      peer_public: AffinePoint) -> AffinePoint:
        secret = self._mult(own.private, peer_public)
        if secret is None:
            raise ValueError("shared secret is the point at infinity")
        return secret
