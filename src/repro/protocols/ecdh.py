"""Elliptic-curve Diffie-Hellman over the reproduction's curves.

Two flavours, mirroring the paper's motivation that its methods suit ECDH
(no fixed/known base point required):

* :class:`XOnlyEcdh` — x-coordinate-only ECDH on the Montgomery curve via
  the ladder (the IoT-friendly variant: 20-byte public keys, constant-time
  scalar multiplication).
* :class:`FullPointEcdh` — classic ECDH on any Weierstraß/GLV/Edwards curve
  through a pluggable scalar-multiplication method.

Both are **hardened by default** against the fault model of DESIGN.md §7
"Fault model & countermeasures": peer inputs pass on-curve / twist /
small-order / subgroup validation, every scalar multiplication is executed
redundantly (two runs compared, the ladder additionally coherence-checked)
with bounded retry, and a run whose countermeasures keep tripping raises
:class:`~repro.faults.model.FaultDetectedError` rather than emitting a
possibly corrupted secret.  ``hardened=False`` restores the bare paths —
the baseline the fault campaigns (``python -m repro faults ecdh``) measure
against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..curves.montgomery import MontgomeryCurve
from ..curves.point import AffinePoint, MaybePoint
from ..curves.validate import (
    validate_montgomery_x,
    validate_public_point,
    validate_scalar,
)
from ..faults.model import FaultDetectedError
from ..scalarmult import (
    adapter_for,
    blind_scalar,
    montgomery_ladder_x,
    montgomery_ladder_x_checked,
    scalar_mult_naf,
)


@dataclass(frozen=True)
class XOnlyKeyPair:
    private: int
    public_x: int  # affine x of private * G


class XOnlyEcdh:
    """x-only ECDH on a Montgomery curve (Montgomery-ladder based).

    Hardened operation (default): peer x-coordinates are validated
    (:func:`~repro.curves.validate.validate_montgomery_x`), every derivation
    runs the coherence-checked ladder **twice** and compares the projective
    outputs (temporal redundancy — the double-execution countermeasure,
    sound against the single-transient-fault model), retrying up to
    ``max_retries`` times before raising ``FaultDetectedError``.
    :attr:`last_detection` records the countermeasure that fired during the
    most recent operation (``None`` when nothing tripped) — campaigns use
    it to attribute detections.
    """

    def __init__(self, curve: MontgomeryCurve, base: AffinePoint,
                 scalar_bits: int = 160, hardened: bool = True,
                 max_retries: int = 2):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        if base.x.is_zero():
            raise ValueError("base point (0, 0) has order 2")
        self.curve = curve
        self.base = base
        self.scalar_bits = scalar_bits
        self.hardened = hardened
        self.max_retries = max_retries
        #: Countermeasure fired during the last operation (or None).
        self.last_detection: Optional[str] = None

    def _ladder_x(self, k: int, x_coord: int,
                  fault_hook: Optional[Callable] = None) -> int:
        """Shared derivation core; ``fault_hook`` is the campaign seam.

        The hook is threaded into the *first* ladder execution of the
        first attempt only — modelling one transient fault per operation.
        """
        self.last_detection = None
        validate_scalar(k, bits=self.scalar_bits)
        if not self.hardened:
            point = self.curve.lift_x(x_coord)
            result = montgomery_ladder_x(self.curve, k, point,
                                         bits=self.scalar_bits,
                                         step_hook=fault_hook)
            if result.is_infinity():
                raise ValueError("derived the point at infinity; bad scalar")
            return self.curve.x_affine(result).to_int()
        point = validate_montgomery_x(self.curve, x_coord)
        error: Optional[FaultDetectedError] = None
        for attempt in range(self.max_retries + 1):
            hook = fault_hook if attempt == 0 else None
            try:
                first = montgomery_ladder_x_checked(
                    self.curve, k, point, bits=self.scalar_bits,
                    step_hook=hook)
                second = montgomery_ladder_x_checked(
                    self.curve, k, point, bits=self.scalar_bits)
            except FaultDetectedError as exc:
                self.last_detection = "ladder-coherence"
                error = exc
                continue
            if first.x * second.z == second.x * first.z:
                if first.is_infinity():
                    raise ValueError(
                        "derived the point at infinity; bad scalar")
                return self.curve.x_affine(first).to_int()
            self.last_detection = "temporal-redundancy"
            error = FaultDetectedError(
                "redundant ladder executions disagree")
        raise error

    def generate_keypair(self, rng: Optional[random.Random] = None,
                         ) -> XOnlyKeyPair:
        rng = rng or random.SystemRandom()
        private = rng.getrandbits(self.scalar_bits - 1) | (
            1 << (self.scalar_bits - 2)
        )
        public_x = self._ladder_x(private, self.base.x.to_int())
        return XOnlyKeyPair(private=private, public_x=public_x)

    def shared_secret(self, own: XOnlyKeyPair, peer_public_x: int,
                      fault_hook: Optional[Callable] = None) -> int:
        """x coordinate of (own.private * peer.private) * G."""
        return self._ladder_x(own.private, peer_public_x, fault_hook)


@dataclass(frozen=True)
class KeyPair:
    private: int
    public: AffinePoint


class FullPointEcdh:
    """Classic ECDH with a pluggable scalar-multiplication backend.

    Hardened operation (default): peer points pass
    :func:`~repro.curves.validate.validate_public_point` (on-curve, plus
    subgroup when ``order`` is known), the default backend blinds scalars
    with the group order when it is known, the derived secret is checked
    on-curve and recomputed for comparison, and exhausted retries raise
    ``FaultDetectedError``.  A custom ``mult`` backend is used as given —
    blinding composes with the *default* backend only, since a backend
    like GLV decomposes modulo the order itself.
    """

    def __init__(self, curve, base: AffinePoint, order: Optional[int] = None,
                 mult: Optional[Callable] = None, hardened: bool = True,
                 max_retries: int = 2):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.order = order
        self.hardened = hardened
        self.max_retries = max_retries
        self._mult = mult or self._default_mult
        self.last_detection: Optional[str] = None

    def _default_mult(self, k: int, point: AffinePoint) -> MaybePoint:
        if self.hardened and self.order is not None:
            k = blind_scalar(k, self.order)
        return scalar_mult_naf(adapter_for(self.curve, point), k)

    def generate_keypair(self, rng: Optional[random.Random] = None) -> KeyPair:
        rng = rng or random.SystemRandom()
        upper = self.order - 1 if self.order else 1 << 159
        private = rng.randrange(1, upper)
        public = self._mult(private, self.base)
        if public is None:
            raise ValueError("private key maps the base point to infinity")
        return KeyPair(private=private, public=public)

    def shared_secret(self, own: KeyPair,
                      peer_public: AffinePoint) -> AffinePoint:
        self.last_detection = None
        if not self.hardened:
            secret = self._mult(own.private, peer_public)
            if secret is None:
                raise ValueError("shared secret is the point at infinity")
            return secret
        validate_scalar(own.private, self.order)
        peer = validate_public_point(self.curve, peer_public, self.order)
        error: Optional[FaultDetectedError] = None
        for _attempt in range(self.max_retries + 1):
            secret = self._mult(own.private, peer)
            if secret is None:
                self.last_detection = "output-format"
                error = FaultDetectedError(
                    "scalar multiplication returned the point at infinity")
                continue
            if not self.curve.is_on_curve(secret):
                self.last_detection = "output-on-curve"
                error = FaultDetectedError("derived secret is off the curve")
                continue
            again = self._mult(own.private, peer)
            if again is not None and again.x == secret.x \
                    and again.y == secret.y:
                return secret
            self.last_detection = "temporal-redundancy"
            error = FaultDetectedError(
                "redundant scalar multiplications disagree")
        raise error
