"""Schnorr signatures (the lighter IoT alternative to ECDSA).

Included because the paper positions its ASIP for generic PKC services
("encryption, authentication, and key establishment"); Schnorr needs no
modular inversion at signing time, which matters on a device whose
inversion costs ~189k cycles.

Hardened by default (DESIGN.md §7 "Fault model & countermeasures"):
signing verifies its own signature before release (bounded retry, then
``FaultDetectedError``), and ``verify`` rejects public keys that are off
the curve or outside the prime-order subgroup — the bare original
accepted any coordinate pair.  ``hardened=False`` restores the bare sign
path; the scalar-multiplication backend is pluggable via ``mult`` (the
fault campaigns' corruption seam).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..curves.point import AffinePoint, MaybePoint
from ..curves.validate import validate_public_point, validate_scalar
from ..faults.model import FaultDetectedError
from ..scalarmult import adapter_for, scalar_mult_naf, shamir_scalar_mult
from .ecdsa import deterministic_nonce


@dataclass(frozen=True)
class SchnorrSignature:
    challenge: int  # e
    response: int   # s


class Schnorr:
    """Schnorr sign/verify over a curve with known prime order."""

    def __init__(self, curve, base: AffinePoint, order: int,
                 mult: Optional[Callable] = None, hardened: bool = True,
                 max_retries: int = 2):
        if not curve.is_on_curve(base):
            raise ValueError("base point is not on the curve")
        self.curve = curve
        self.base = base
        self.order = order
        self.hardened = hardened
        self.max_retries = max_retries
        self._mult = mult or self._default_mult
        #: Countermeasure fired during the last sign (or None).
        self.last_detection: Optional[str] = None

    def _default_mult(self, k: int, point: AffinePoint) -> MaybePoint:
        return scalar_mult_naf(adapter_for(self.curve, point), k)

    def public_key(self, private: int) -> AffinePoint:
        validate_scalar(private, self.order)
        point = self._mult(private, self.base)
        if point is None:
            raise AssertionError("private key maps base to infinity")
        return point

    def _challenge(self, commitment: AffinePoint, message: bytes) -> int:
        # Coordinates live in the field, the challenge in Z_order; size
        # for whichever is wider (toy subgroups have order << p).
        size = (max(self.order, self.curve.field.p).bit_length() + 7) // 8
        payload = (
            commitment.x.to_int().to_bytes(size, "big")
            + commitment.y.to_int().to_bytes(size, "big")
            + message
        )
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest, "big") % self.order

    def sign(self, private: int, message: bytes,
             nonce: Optional[int] = None) -> SchnorrSignature:
        self.last_detection = None
        validate_scalar(private, self.order)
        digest = hashlib.sha256(message).digest()
        k = nonce if nonce is not None else deterministic_nonce(
            private, b"schnorr" + digest, self.order
        )
        attempts = (self.max_retries + 1) if self.hardened else 1
        error: Optional[FaultDetectedError] = None
        for _attempt in range(attempts):
            commitment = self._mult(k, self.base)
            if commitment is None:
                if not self.hardened:
                    raise ValueError(
                        "nonce maps base to infinity; pick another")
                self.last_detection = "verify-after-sign"
                error = FaultDetectedError(
                    "nonce multiplication returned infinity")
                continue
            e = self._challenge(commitment, message)
            s = (k + e * private) % self.order
            signature = SchnorrSignature(challenge=e, response=s)
            if not self.hardened:
                return signature
            public = self._mult(private, self.base)
            if public is not None and self.verify(public, message, signature):
                return signature
            self.last_detection = "verify-after-sign"
            error = FaultDetectedError(
                "signature failed post-sign verification")
        raise error

    def verify(self, public: AffinePoint, message: bytes,
               signature: SchnorrSignature) -> bool:
        e, s = signature.challenge, signature.response
        if not (0 <= e < self.order and 0 <= s < self.order):
            return False
        try:
            validate_public_point(self.curve, public,
                                  self.order if self.hardened else None)
        except ValueError:
            return False
        # R' = s*G - e*P; accept iff H(R', m) == e.
        neg_pub = self.curve.affine_neg(public)
        commitment = shamir_scalar_mult(self.curve, s, self.base, e, neg_pub)
        if commitment is None:
            return False
        return self._challenge(commitment, message) == e
