"""Schnorr signatures (the lighter IoT alternative to ECDSA).

Included because the paper positions its ASIP for generic PKC services
("encryption, authentication, and key establishment"); Schnorr needs no
modular inversion at signing time, which matters on a device whose
inversion costs ~189k cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..curves.point import AffinePoint
from ..scalarmult import adapter_for, scalar_mult_naf, shamir_scalar_mult
from .ecdsa import deterministic_nonce


@dataclass(frozen=True)
class SchnorrSignature:
    challenge: int  # e
    response: int   # s


class Schnorr:
    """Schnorr sign/verify over a curve with known prime order."""

    def __init__(self, curve, base: AffinePoint, order: int):
        self.curve = curve
        self.base = base
        self.order = order

    def public_key(self, private: int) -> AffinePoint:
        point = scalar_mult_naf(adapter_for(self.curve, self.base), private)
        if point is None:
            raise AssertionError("private key maps base to infinity")
        return point

    def _challenge(self, commitment: AffinePoint, message: bytes) -> int:
        size = (self.order.bit_length() + 7) // 8
        payload = (
            commitment.x.to_int().to_bytes(size, "big")
            + commitment.y.to_int().to_bytes(size, "big")
            + message
        )
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest, "big") % self.order

    def sign(self, private: int, message: bytes,
             nonce: Optional[int] = None) -> SchnorrSignature:
        if not 1 <= private < self.order:
            raise ValueError("private key out of range")
        digest = hashlib.sha256(message).digest()
        k = nonce if nonce is not None else deterministic_nonce(
            private, b"schnorr" + digest, self.order
        )
        commitment = scalar_mult_naf(adapter_for(self.curve, self.base), k)
        if commitment is None:
            raise ValueError("nonce maps base to infinity; pick another")
        e = self._challenge(commitment, message)
        s = (k + e * private) % self.order
        return SchnorrSignature(challenge=e, response=s)

    def verify(self, public: AffinePoint, message: bytes,
               signature: SchnorrSignature) -> bool:
        e, s = signature.challenge, signature.response
        if not (0 <= e < self.order and 0 <= s < self.order):
            return False
        # R' = s*G - e*P; accept iff H(R', m) == e.
        neg_pub = self.curve.affine_neg(public)
        commitment = shamir_scalar_mult(self.curve, s, self.base, e, neg_pub)
        if commitment is None:
            return False
        return self._challenge(commitment, message) == e
