"""Command-line interface: tables, benchmarks, profiles, faults, serving.

    python -m repro table1            # field-operation runtimes
    python -m repro table2 table3     # several at once
    python -m repro all               # everything
    python -m repro leakage           # the timing-leakage extension report
    python -m repro table2 --source measured   # price with our kernels
    python -m repro bench             # ISS throughput (fast vs reference)
    python -m repro bench --smoke     # ~30 s benchmark subset
    python -m repro bench --check     # compare fresh smoke runs (ISS and,
                                      # when BENCH_serve.json exists,
                                      # serving) against the last committed
                                      # records; exits non-zero on a
                                      # regression beyond tolerance
    python -m repro profile mul --mode ise     # Fig.-1-style breakdown
    python -m repro profile ladder --format chrome --out trace.json
    python -m repro profile scalarmult --format jsonl
    python -m repro profile --smoke   # fast default (mul, small inputs)
    python -m repro faults ladder --mode ca   # ISS fault campaign,
                                      # benign/detected/silent breakdown
    python -m repro faults ecdh --n 200 --seed 7 --format jsonl
    python -m repro faults ecdsa --check      # determinism + hardening gate
    python -m repro ctcheck naf --mode ise    # constant-time taint check
                                      # (DESIGN.md par. 9); ladder/daaa
                                      # clean, naf deliberately flagged
    python -m repro ctcheck ladder --check --expect clean   # the CI gate
    python -m repro docs              # regenerate docs/ API reference;
                                      # --check verifies pages + links
    python -m repro serve --workers 4 --port 9477   # the batched ECC
                                      # service (NDJSON over TCP)
    python -m repro serve --workers 4 --tracing --slowlog-out slow.json
                                      # trace every request; dump the
                                      # slowest trees as Chrome JSON
    python -m repro serve --shards 4 --workers 1   # scale-out: four
                                      # shard processes on one port
                                      # (SO_REUSEPORT or a round-robin
                                      # redirector), comb tables served
                                      # from one shared-memory store
    python -m repro loadgen --workers 1 --n 200 --seed 7 --check
                                      # deterministic load generator;
                                      # --bench appends BENCH_serve.json
                                      # and enforces the speedup floors
    python -m repro loadgen --shards 2 --connections 8 --n 200
                                      # high-concurrency mode against a
                                      # fresh 2-shard cluster
    python -m repro loadgen --workers 2 --n 50 --trace --scrape
                                      # traced run: join + validate the
                                      # span trees, scrape Prometheus
                                      # stats through the wire

``bench``, ``profile``, ``faults``, ``ctcheck``, ``docs``, ``serve``
and ``loadgen`` own their flag sets — run them with ``--help`` for the full list.  The registry
of delegating subcommands is :data:`SUBCOMMANDS`; the CLI help is
generated from it (and a test pins the two together).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Dict, List, Tuple

#: Delegating subcommands: name -> (module with a ``main(argv)``,
#: one-line help).  The epilog below renders from this table, so adding
#: an entry here updates the CLI help in the same change.
SUBCOMMANDS: Dict[str, Tuple[str, str]] = {
    "bench": ("repro.analysis.bench",
              "ISS throughput benchmarks; --check adds the serving gate"),
    "profile": ("repro.analysis.profile",
                "engine-speed profiling and span tracing"),
    "faults": ("repro.analysis.faults",
               "fault-injection campaigns against the ISS and protocols"),
    "ctcheck": ("repro.analysis.ctcheck",
                "constant-time verification via ISS secret taint"),
    "docs": ("repro.docgen",
             "generate (or --check) the docs/ API reference"),
    "serve": ("repro.serve.server",
              "batched ECC service over NDJSON/TCP; --shards scales out"),
    "loadgen": ("repro.serve.loadgen",
                "deterministic load generator + serving benchmark"),
}


def _epilog() -> str:
    subs = " | ".join(f"{name} ({help_})"
                      for name, (_, help_) in sorted(SUBCOMMANDS.items()))
    return ("subcommands: table1 table2 table3 table4 table5 all leakage | "
            + subs)


def main(argv: List[str] = None) -> int:
    args_in = sys.argv[1:] if argv is None else argv
    if args_in and args_in[0] in SUBCOMMANDS:
        # Delegating subcommands own their flag sets, incompatible with
        # the table parser's nargs="+" choices.
        module = importlib.import_module(SUBCOMMANDS[args_in[0]][0])
        return module.main(args_in[1:])

    from .analysis import (
        generate_table1,
        generate_table2,
        generate_table3,
        generate_table4,
        generate_table5,
        leakage_report,
    )

    tables = {
        "table1": lambda source: generate_table1(),
        "table2": lambda source: generate_table2(source=source),
        "table3": lambda source: generate_table3(source=source),
        "table4": lambda source: generate_table4(),
        "table5": lambda source: generate_table5(),
    }

    def render_leakage() -> str:
        report = leakage_report(n=8)
        lines = ["Timing-leakage report (8 random scalars per method)", ""]
        lines.append(f"{'method':<30}{'category':<16}{'regular':>8}"
                     f"{'spread %':>10}")
        lines.append("-" * 64)
        for name, entry in report.items():
            lines.append(f"{name:<30}{entry['category']:<16}"
                         f"{str(entry['regular']):>8}"
                         f"{entry['spread'] * 100:>10.3f}")
        return "\n".join(lines)

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables (paper vs measured).",
        epilog=_epilog(),
    )
    parser.add_argument(
        "targets", nargs="+",
        choices=sorted(tables) + ["all", "leakage"],
        help="which table(s) to regenerate",
    )
    parser.add_argument(
        "--source", choices=["paper", "measured"], default="paper",
        help="per-operation cycle costs: the paper's Table I or our "
             "kernels measured on the simulator",
    )
    args = parser.parse_args(args_in)

    targets = list(args.targets)
    if "all" in targets:
        targets = sorted(tables) + [t for t in targets
                                    if t not in tables and t != "all"]
    seen = set()
    outputs = []
    for target in targets:
        if target in seen:
            continue
        seen.add(target)
        if target == "leakage":
            outputs.append(render_leakage())
        else:
            outputs.append(tables[target](args.source).render())
    try:
        print("\n\n".join(outputs))
    except BrokenPipeError:  # piping into `head` etc. is fine
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
