"""Command-line interface: tables, benchmarks, profiles and faults.

    python -m repro table1            # field-operation runtimes
    python -m repro table2 table3     # several at once
    python -m repro all               # everything
    python -m repro leakage           # the timing-leakage extension report
    python -m repro table2 --source measured   # price with our kernels
    python -m repro bench             # ISS throughput (fast vs reference)
    python -m repro bench --smoke     # ~30 s benchmark subset
    python -m repro bench --check     # compare a fresh smoke run against
                                      # the last committed record; exits
                                      # non-zero on a >30% regression
    python -m repro profile mul --mode ise     # Fig.-1-style breakdown
    python -m repro profile ladder --format chrome --out trace.json
    python -m repro profile scalarmult --format jsonl
    python -m repro profile --smoke   # fast default (mul, small inputs)
    python -m repro faults ladder --mode ca   # ISS fault campaign,
                                      # benign/detected/silent breakdown
    python -m repro faults ecdh --n 200 --seed 7 --format jsonl
    python -m repro faults ecdsa --check      # determinism + hardening
                                      # gate (exits non-zero on failure)

``bench``, ``profile`` and ``faults`` own their flag sets; run them with
``--help`` for the full list (``bench``: --smoke/--check/--jobs/--output/
--label; ``profile``: target, --mode/--format/--reps/--out/--smoke;
``faults``: target, --mode/--n/--seed/--engine/--format/--out/--smoke/
--check).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .analysis import (
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    generate_table5,
    leakage_report,
)

_TABLES = {
    "table1": lambda source: generate_table1(),
    "table2": lambda source: generate_table2(source=source),
    "table3": lambda source: generate_table3(source=source),
    "table4": lambda source: generate_table4(),
    "table5": lambda source: generate_table5(),
}


def _render_leakage() -> str:
    report = leakage_report(n=8)
    lines = ["Timing-leakage report (8 random scalars per method)", ""]
    lines.append(f"{'method':<30}{'category':<16}{'regular':>8}"
                 f"{'spread %':>10}")
    lines.append("-" * 64)
    for name, entry in report.items():
        lines.append(f"{name:<30}{entry['category']:<16}"
                     f"{str(entry['regular']):>8}"
                     f"{entry['spread'] * 100:>10.3f}")
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    args_in = sys.argv[1:] if argv is None else argv
    if args_in and args_in[0] == "bench":
        # The bench harness has its own flag set (--smoke/--check/...),
        # incompatible with the table parser's nargs="+" choices.
        from .analysis import bench
        return bench.main(args_in[1:])
    if args_in and args_in[0] == "profile":
        from .analysis import profile
        return profile.main(args_in[1:])
    if args_in and args_in[0] == "faults":
        from .analysis import faults
        return faults.main(args_in[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables (paper vs measured).",
        epilog="subcommands: table1 table2 table3 table4 table5 all "
               "leakage | bench (ISS throughput; --smoke/--check) | "
               "profile (ISS + span profiling; see 'profile --help') | "
               "faults (fault-injection campaigns; see 'faults --help')",
    )
    parser.add_argument(
        "targets", nargs="+",
        choices=sorted(_TABLES) + ["all", "leakage"],
        help="which table(s) to regenerate",
    )
    parser.add_argument(
        "--source", choices=["paper", "measured"], default="paper",
        help="per-operation cycle costs: the paper's Table I or our "
             "kernels measured on the simulator",
    )
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if "all" in targets:
        targets = sorted(_TABLES) + [t for t in targets
                                     if t not in _TABLES and t != "all"]
    seen = set()
    outputs = []
    for target in targets:
        if target in seen:
            continue
        seen.add(target)
        if target == "leakage":
            outputs.append(_render_leakage())
        else:
            outputs.append(_TABLES[target](args.source).render())
    try:
        print("\n\n".join(outputs))
    except BrokenPipeError:  # piping into `head` etc. is fine
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
