"""Hierarchical span tracing for the reproduction pipeline.

The paper's evaluation is an attribution exercise: Tables I-II price a
scalar multiplication as a weighted sum of field operations, and Fig. 1
breaks one ISS kernel down by instruction group.  The tracer produces the
same artifacts live: every scalar multiplication opens a span, every point
operation a child span, every field operation (optionally) a grandchild,
and kernel executions on the simulator attach their measured ISS cycles.
Each span records wall time plus the :class:`~repro.field.counters
.FieldOpCounter` / :class:`~repro.mpa.counters.WordOpCounter` deltas that
accumulated inside it, so one traced run yields the whole cost hierarchy
(the "Hierarchical spans" piece of DESIGN.md §4 "Observability").

Instrumentation contract (kept deliberately cheap):

* ``CURRENT`` is the installed tracer or ``None``.  Hot paths guard with a
  single global load — ``if _trace.CURRENT is not None`` — so an untraced
  run pays one pointer test per instrumented call.
* Field-operation spans are additionally gated on ``Tracer.field_ops``
  because a 160-bit ladder performs thousands of them.
* Spans nest purely by call order (the tracer keeps one stack); the code
  under a span needs no knowledge of the tracer at all.

Use :func:`install` / :func:`uninstall` (or the :class:`Tracer` as a
context manager) around the region of interest, then export through
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import METRICS

__all__ = [
    "CURRENT",
    "Span",
    "Tracer",
    "install",
    "uninstall",
    "traced",
    "new_trace_id",
    "span_to_dict",
    "span_from_dict",
]

#: The installed tracer, or ``None`` when tracing is off (the common case).
CURRENT: Optional["Tracer"] = None

_SPANS_STARTED = METRICS.counter(
    "obs_spans_started", "spans opened by the installed tracer")


class Span:
    """One timed region with attributes, counter deltas and children."""

    __slots__ = ("name", "kind", "t0_ns", "t1_ns", "attrs", "children",
                 "_counter", "_before")

    def __init__(self, name: str, kind: str = "span",
                 counter: Any = None, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.kind = kind
        self.t0_ns = 0
        self.t1_ns = 0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self._counter = counter
        self._before = counter.copy() if counter is not None else None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (e.g. measured ISS cycles) to the span."""
        self.attrs.update(attrs)
        return self

    @property
    def dur_ns(self) -> int:
        return max(0, self.t1_ns - self.t0_ns)

    def _close_counter(self, cost_fn: Optional[Callable]) -> None:
        if self._counter is None:
            return
        delta = self._counter.delta(self._before)
        ops = {k: v for k, v in delta.snapshot().items() if v}
        words = {k: v for k, v in delta.words.snapshot().items() if v}
        if ops:
            self.attrs["field_ops"] = ops
        if words:
            self.attrs["word_ops"] = words
        if cost_fn is not None and (ops or words):
            try:
                self.attrs["cycles_est"] = round(float(cost_fn(delta)), 1)
            except Exception:
                pass  # pricing is best-effort decoration, never fatal
        self._counter = self._before = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"dur_us={self.dur_ns / 1000:.1f}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects a forest of :class:`Span` trees from one traced region.

    Args:
        field_ops: record a span per *field* operation (add/mul/...).  Off
            by default; a full ladder opens thousands of them.
        cost_fn: optional ``FieldOpCounter -> cycles`` estimator (see
            :func:`repro.model.opcost.price`) applied to every counter
            delta, attaching a ``cycles_est`` attribute.
        clock: nanosecond clock, overridable for deterministic tests.
    """

    def __init__(self, field_ops: bool = False,
                 cost_fn: Optional[Callable] = None,
                 clock: Callable[[], int] = time.perf_counter_ns):
        self.field_ops = field_ops
        self.cost_fn = cost_fn
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span lifecycle ------------------------------------------------------

    def start(self, name: str, kind: str = "span", counter: Any = None,
              **attrs: Any) -> Span:
        span = Span(name, kind, counter=counter, attrs=attrs)
        span.t0_ns = self._clock()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        _SPANS_STARTED.inc()
        return span

    def end(self, span: Span) -> None:
        span.t1_ns = self._clock()
        span._close_counter(self.cost_fn)
        # Tolerate mismatched ends (an exception may have skipped frames).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.t1_ns = span.t1_ns
            top._close_counter(self.cost_fn)

    @contextmanager
    def span(self, name: str, kind: str = "span", counter: Any = None,
             **attrs: Any) -> Iterator[Span]:
        s = self.start(name, kind, counter=counter, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    # -- results -------------------------------------------------------------

    def walk(self) -> Iterator[Tuple[Span, int]]:
        """All spans depth-first as ``(span, depth)`` pairs."""
        def _walk(span: Span, depth: int) -> Iterator[Tuple[Span, int]]:
            yield span, depth
            for child in span.children:
                yield from _walk(child, depth + 1)
        for root in self.roots:
            yield from _walk(root, 0)

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    # -- installation --------------------------------------------------------

    def __enter__(self) -> "Tracer":
        install(self)
        return self

    def __exit__(self, *exc: Any) -> None:
        uninstall(self)


def install(tracer: Tracer) -> Tracer:
    """Make *tracer* the process-wide tracer instrumented code reports to."""
    global CURRENT
    CURRENT = tracer
    return tracer


def uninstall(tracer: Optional[Tracer] = None) -> None:
    """Remove the installed tracer (a no-op if *tracer* is not installed)."""
    global CURRENT
    if tracer is None or CURRENT is tracer:
        CURRENT = None


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (the request-correlation key the
    serving stack propagates client -> server -> worker, DESIGN.md §8)."""
    return os.urandom(8).hex()


def span_to_dict(span: Span) -> Dict[str, Any]:
    """A JSON/pickle-safe dict of one span subtree.

    This is the wire form worker processes ship spans back in (the
    cross-process half of :mod:`repro.obs.assemble`): absolute
    ``perf_counter_ns`` stamps are kept as-is — on one host all
    processes share the monotonic clock, so the assembler can interleave
    spans from different pids on a common timeline.
    """
    return {
        "name": span.name,
        "kind": span.kind,
        "t0_ns": span.t0_ns,
        "t1_ns": span.t1_ns,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` subtree from :func:`span_to_dict` output."""
    span = Span(str(data["name"]), kind=str(data.get("kind", "span")),
                attrs=data.get("attrs") or {})
    span.t0_ns = int(data.get("t0_ns", 0))
    span.t1_ns = int(data.get("t1_ns", 0))
    span.children = [span_from_dict(c) for c in data.get("children") or []]
    return span


def traced(name: str, kind: str = "span",
           counter: Optional[Callable] = None,
           attrs_fn: Optional[Callable] = None) -> Callable:
    """Decorator: run the function under a span when a tracer is installed.

    *counter* and *attrs_fn* are called with the wrapped function's
    arguments to resolve the counter object / extra attributes per call
    (e.g. ``counter=lambda curve, *a, **k: curve.field.counter``).
    An untraced call costs one global load and one comparison.
    """
    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tr = CURRENT
            if tr is None:
                return fn(*args, **kwargs)
            c = counter(*args, **kwargs) if counter is not None else None
            attrs = attrs_fn(*args, **kwargs) if attrs_fn is not None else {}
            with tr.span(name, kind=kind, counter=c, **attrs):
                return fn(*args, **kwargs)
        return wrapper
    return deco
