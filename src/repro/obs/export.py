"""Export observability data: JSONL event streams and Chrome trace JSON.

Two consumers, two formats:

* **JSONL** — one self-describing JSON object per line (``type`` field:
  ``span`` / ``iss_group`` / ``iss_routine`` / ``metrics`` /
  ``fault_trial`` / ``fault_summary`` / ``ctcheck`` /
  ``ctcheck_violation``), the grep- and pandas-friendly archival format.
  Fault-campaign records (DESIGN.md §7 "Fault model & countermeasures")
  go through :func:`fault_events` / :func:`faults_to_jsonl`, and
  constant-time verdicts (DESIGN.md §9 "Constant-time verification")
  through :func:`ctcheck_events` / :func:`ctcheck_to_jsonl`; both
  deliberately exclude timestamps and the process-global metrics
  snapshot so two identical runs serialize byte-identically.
* **Chrome trace events** — the ``chrome://tracing`` / Perfetto JSON
  object format.  Python-side spans land on one track in wall-clock
  microseconds; ISS routine frames land on a second track in the *cycle*
  domain (1 simulated cycle rendered as 1 µs), so the simulator's call
  tree is zoomable next to the host-time span tree.

:func:`validate_chrome` is the schema check the test-suite (and any
downstream tooling) runs against produced traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .metrics import METRICS
from .trace import Tracer

__all__ = [
    "span_events",
    "profiler_events",
    "fault_events",
    "faults_to_jsonl",
    "ctcheck_events",
    "ctcheck_to_jsonl",
    "to_jsonl",
    "to_chrome",
    "validate_chrome",
]


def span_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer's span forest into JSONL-ready dicts.

    Timestamps are microseconds relative to the earliest root span.
    """
    base = min((s.t0_ns for s in tracer.roots), default=0)
    events = []
    for span, depth in tracer.walk():
        events.append({
            "type": "span",
            "name": span.name,
            "kind": span.kind,
            "depth": depth,
            "ts_us": round((span.t0_ns - base) / 1000, 3),
            "dur_us": round(span.dur_ns / 1000, 3),
            "attrs": span.attrs,
        })
    return events


def profiler_events(profiler: Any) -> List[Dict[str, Any]]:
    """Group tallies and routine attribution of a finished profiler run."""
    events: List[Dict[str, Any]] = []
    for group, count in profiler.instruction_counts.most_common():
        events.append({
            "type": "iss_group",
            "group": group,
            "instructions": count,
            "cycles": profiler.cycle_counts[group],
        })
    for pc, row in profiler.routines().items():
        events.append({
            "type": "iss_routine",
            "routine": "(top)" if pc == -1 else profiler.name_for(pc),
            "pc": pc,
            "calls": row["calls"],
            "flat_cycles": row["flat"],
            "cum_cycles": row["cum"],
        })
    return events


def to_jsonl(tracer: Optional[Tracer] = None, profiler: Any = None,
             metrics: bool = True) -> str:
    """Serialize spans, ISS attribution and metrics as JSON lines."""
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        events.extend(span_events(tracer))
    if profiler is not None:
        events.extend(profiler_events(profiler))
    if metrics:
        events.append({"type": "metrics", "values": METRICS.snapshot()})
    return "\n".join(json.dumps(e, sort_keys=True) for e in events) + "\n"


def fault_events(records: List[Any],
                 summary: Optional[Dict[str, Any]] = None,
                 ) -> List[Dict[str, Any]]:
    """Flatten fault-campaign trial records into JSONL-ready dicts.

    *records* are objects exposing ``as_dict()`` (e.g.
    :class:`repro.analysis.faults.FaultRecord`); an optional *summary*
    dict is appended as a single ``fault_summary`` line.  No timestamps
    or host state enter the stream — determinism is part of the campaign
    contract (same seed, byte-identical JSONL).
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        event = {"type": "fault_trial"}
        event.update(record.as_dict())
        events.append(event)
    if summary is not None:
        event = {"type": "fault_summary"}
        event.update(summary)
        events.append(event)
    return events


def faults_to_jsonl(records: List[Any],
                    summary: Optional[Dict[str, Any]] = None) -> str:
    """Serialize fault-campaign records (and summary) as JSON lines."""
    events = fault_events(records, summary)
    return "\n".join(json.dumps(e, sort_keys=True) for e in events) + "\n"


def ctcheck_events(reports: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten constant-time check reports into JSONL-ready dicts.

    Each *report* is one (target, mode) verdict from
    :func:`repro.analysis.ctcheck.check_target` — a summary dict whose
    ``violations`` entry holds :class:`repro.avr.taint.TaintViolation`
    dicts.  Violations are re-emitted as their own ``ctcheck_violation``
    lines (one per distinct PC site, in first-occurrence order) so a
    stream consumer can grep them without parsing nested JSON.  Like the
    fault stream, no timestamps or host state enter the output: two
    identical check runs serialize byte-identically, which the
    ``--check`` double-run gate relies on.
    """
    events: List[Dict[str, Any]] = []
    for report in reports:
        summary = {k: v for k, v in report.items() if k != "violations"}
        summary["type"] = "ctcheck"
        events.append(summary)
        for violation in report.get("violations", []):
            event = {"type": "ctcheck_violation",
                     "target": report.get("target"),
                     "mode": report.get("mode")}
            event.update(violation)
            events.append(event)
    return events


def ctcheck_to_jsonl(reports: List[Dict[str, Any]]) -> str:
    """Serialize constant-time check reports as JSON lines."""
    events = ctcheck_events(reports)
    return "\n".join(json.dumps(e, sort_keys=True) for e in events) + "\n"


_PID = 1
_TID_SPANS = 1
_TID_ISS = 2


def to_chrome(tracer: Optional[Tracer] = None, profiler: Any = None,
              total_cycles: Optional[int] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON object (see module docstring)."""
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
         "args": {"name": "repro"}},
    ]
    if tracer is not None:
        events.append({"ph": "M", "name": "thread_name", "pid": _PID,
                       "tid": _TID_SPANS, "args": {"name": "python-spans"}})
        base = min((s.t0_ns for s in tracer.roots), default=0)
        for span, _depth in tracer.walk():
            events.append({
                "ph": "X", "name": span.name, "cat": span.kind,
                "pid": _PID, "tid": _TID_SPANS,
                "ts": round((span.t0_ns - base) / 1000, 3),
                "dur": round(span.dur_ns / 1000, 3),
                "args": span.attrs,
            })
    if profiler is not None:
        events.append({"ph": "M", "name": "thread_name", "pid": _PID,
                       "tid": _TID_ISS, "args": {"name": "iss-cycles"}})
        end = total_cycles
        if end is None:
            end = max((f[2] for f in profiler.frames), default=0)
        if end:
            events.append({
                "ph": "X", "name": "(program)", "cat": "iss",
                "pid": _PID, "tid": _TID_ISS, "ts": 0, "dur": end,
                "args": {"cycles": end},
            })
        for pc, start, stop, depth in profiler.frames:
            events.append({
                "ph": "X", "name": profiler.name_for(pc), "cat": "iss",
                "pid": _PID, "tid": _TID_ISS,
                "ts": start, "dur": stop - start,
                "args": {"pc": pc, "depth": depth,
                         "cycles": stop - start},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tracks": {"python-spans": "wall-clock microseconds",
                       "iss-cycles": "1 simulated cycle = 1 us"},
            "metrics": METRICS.snapshot(),
        },
    }


def validate_chrome(obj: Any) -> None:
    """Raise ``ValueError`` unless *obj* is a well-formed Chrome trace.

    Checks the object format (``traceEvents`` list), the per-event
    required fields, and that every complete ("X") event carries numeric,
    non-negative ``ts``/``dur`` — the invariants ``chrome://tracing`` and
    Perfetto rely on to build a span tree.
    """
    if not isinstance(obj, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("chrome trace must carry a non-empty traceEvents")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C"):
            raise ValueError(f"traceEvents[{i}] has unknown phase {ph!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}] has no name")
        if "pid" not in event or "tid" not in event:
            raise ValueError(f"traceEvents[{i}] lacks pid/tid")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                        value, bool) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}].{key} must be a non-negative "
                        f"number, got {value!r}")
            args = event.get("args")
            if args is not None and not isinstance(args, dict):
                raise ValueError(f"traceEvents[{i}].args must be an object")
