"""Join per-process trace shards into end-to-end request span trees.

The serving stack (DESIGN.md §8) splits one request's life across at
least two processes: the asyncio front-end stamps stage timestamps
(accept -> queue -> dispatch -> reply) and the pool worker runs the
actual cryptography under a :class:`~repro.obs.trace.Tracer`, shipping
its span shard back with the batch reply as :func:`~repro.obs.trace
.span_to_dict` payloads.  Nothing in either process sees the whole
request; this module does the join.

* :class:`RequestTrace` is the per-request record the server accumulates
  as the request moves through the pipeline — trace id, stage
  timestamps, worker pid and the worker's span shard (plus optional
  client-side send/receive stamps when the client participates, as the
  load generator does).
* :func:`assemble` turns records into one :class:`~repro.obs.trace.Span`
  tree per request: ``client -> request -> queue/worker`` with the
  worker's own spans (scalarmult, point ops, kernel runs) grafted under
  the worker span, so the paper-style attribution of PR 2 now crosses
  the fork boundary.
* :func:`records_to_chrome` renders record sets as a Chrome
  trace-event object with **one lane per pid** (client, server
  front-end and each worker render as separate "processes"),
  `validate_chrome`-clean.
* :class:`FlightRecorder` is the tail-sampling ring: it keeps the N
  slowest completed requests' records, the data behind the server's
  ``--slowlog`` dump and the loadgen ``--slowlog`` flag.

All timestamps are ``time.perf_counter_ns`` values.  On one host every
process reads the same monotonic clock, so shards interleave on a
common timeline without clock translation; the assembler still clamps
children into their parent's window so rounding can never produce the
negative durations ``validate_chrome`` rejects.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .trace import Span, span_from_dict

__all__ = [
    "RequestTrace",
    "FlightRecorder",
    "assemble",
    "assemble_one",
    "records_to_chrome",
]


@dataclass
class RequestTrace:
    """Everything one traced request left behind, across processes."""

    trace_id: str
    req_id: int
    op: str
    curve: Optional[str]
    server_pid: int
    t_accept_ns: int
    #: Set when the batcher handed the request to the pool.
    t_dispatch_ns: Optional[int] = None
    #: Set when the reply was written back to the client.
    t_reply_ns: Optional[int] = None
    #: Pid of the worker that executed the request (None: never ran —
    #: shed, expired, or answered inline).
    worker_pid: Optional[int] = None
    #: The worker's span shard (span_to_dict roots), if any.
    worker_spans: List[Dict[str, Any]] = field(default_factory=list)
    #: How many requests shared the dispatched batch.
    batch_size: int = 0
    #: "ok" or the error type of the reply.
    status: str = "ok"
    #: Client-side send/receive stamps (same monotonic clock), when the
    #: client recorded them — the load generator does.
    client_t0_ns: Optional[int] = None
    client_t1_ns: Optional[int] = None

    @property
    def dur_ns(self) -> int:
        """Accept-to-reply duration (0 while the request is in flight)."""
        if self.t_reply_ns is None:
            return 0
        return max(0, self.t_reply_ns - self.t_accept_ns)


def _clamp(span: Span, lo: int, hi: int) -> None:
    """Force *span* (recursively) inside [lo, hi] so cross-process
    rounding never yields a child that leaks outside its parent."""
    span.t0_ns = min(max(span.t0_ns, lo), hi)
    span.t1_ns = min(max(span.t1_ns, span.t0_ns), hi)
    for child in span.children:
        _clamp(child, span.t0_ns, span.t1_ns)


def assemble_one(record: RequestTrace) -> Span:
    """One record -> one joined span tree (see module docstring).

    The returned root is the outermost span that exists for the request:
    the client span when the record carries client stamps, else the
    server-side request span.
    """
    t_end = record.t_reply_ns if record.t_reply_ns is not None \
        else record.t_accept_ns
    request = Span("request", kind="serve", attrs={
        "trace": record.trace_id, "id": record.req_id, "op": record.op,
        "curve": record.curve, "pid": record.server_pid,
        "status": record.status, "batch": record.batch_size,
    })
    request.t0_ns, request.t1_ns = record.t_accept_ns, t_end
    if record.t_dispatch_ns is not None:
        queued = Span("queue", kind="serve",
                      attrs={"trace": record.trace_id})
        queued.t0_ns, queued.t1_ns = record.t_accept_ns, record.t_dispatch_ns
        request.children.append(queued)
    for shard in record.worker_spans:
        request.children.append(span_from_dict(shard))
    for child in request.children:
        _clamp(child, request.t0_ns, request.t1_ns)
    if record.client_t0_ns is None or record.client_t1_ns is None:
        return request
    client = Span("client", kind="serve", attrs={
        "trace": record.trace_id, "id": record.req_id, "op": record.op})
    client.t0_ns, client.t1_ns = record.client_t0_ns, record.client_t1_ns
    client.children.append(request)
    _clamp(request, client.t0_ns, client.t1_ns)
    return client


def assemble(records: List[RequestTrace]) -> Dict[str, Span]:
    """Join every record into its span tree, keyed by trace id."""
    return {rec.trace_id: assemble_one(rec) for rec in records}


def records_to_chrome(records: List[RequestTrace]) -> Dict[str, Any]:
    """Chrome trace-event JSON for a record set, one lane per pid.

    The server front-end and every worker pid get their own "process"
    row (named via ``process_name`` metadata events); each span lands on
    the lane of the pid that produced it, in microseconds relative to
    the earliest accept.  Validated by :func:`repro.obs.export
    .validate_chrome` (a test pins this).
    """
    base = min((r.client_t0_ns if r.client_t0_ns is not None
                else r.t_accept_ns for r in records), default=0)
    events: List[Dict[str, Any]] = []
    lanes: Dict[int, str] = {}

    def lane(pid: int, name: str) -> int:
        if pid not in lanes:
            lanes[pid] = name
            events.append({"ph": "M", "name": "process_name",
                           "pid": pid, "tid": 0, "args": {"name": name}})
        return pid

    def emit(span: Span, target: int, rec: RequestTrace) -> None:
        events.append({
            "ph": "X", "name": span.name, "cat": span.kind,
            "pid": target, "tid": 1,
            "ts": max(0.0, round((span.t0_ns - base) / 1000, 3)),
            "dur": max(0.0, round(span.dur_ns / 1000, 3)),
            "args": {k: v for k, v in span.attrs.items() if v is not None},
        })
        for child in span.children:
            # A span that names a pid (the worker shard's root does)
            # switches lanes; everything else inherits its parent's.
            pid = child.attrs.get("pid")
            if pid is not None and pid != rec.server_pid:
                child_target = lane(pid, f"worker[{pid}]")
            elif child.name == "request":
                child_target = lane(rec.server_pid,
                                    f"serve-front[{rec.server_pid}]")
            else:
                child_target = target
            emit(child, child_target, rec)

    for rec in records:
        tree = assemble_one(rec)
        if tree.name == "client":
            root_lane = lane(0, "client")
        else:
            root_lane = lane(rec.server_pid,
                             f"serve-front[{rec.server_pid}]")
        emit(tree, root_lane, rec)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"lanes": {str(pid): name
                               for pid, name in sorted(lanes.items())}},
    }


class FlightRecorder:
    """Tail-sampling ring: the N slowest completed request records.

    ``record()`` is O(log N) (a bounded min-heap on accept-to-reply
    duration); the common fast path — a request quicker than the current
    floor with the ring full — is one comparison.  This is the data
    behind the ``--slowlog`` dumps: after an incident the ring holds the
    worst requests' full cross-process trees, no log scraping required.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._heap: List[Tuple[int, int, RequestTrace]] = []
        self._seq = 0
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._heap)

    def record(self, rec: RequestTrace) -> None:
        self.recorded += 1
        if len(self._heap) >= self.capacity:
            if rec.dur_ns <= self._heap[0][0]:
                return
            heapq.heapreplace(self._heap, (rec.dur_ns, self._seq, rec))
        else:
            heapq.heappush(self._heap, (rec.dur_ns, self._seq, rec))
        self._seq += 1

    def slowest(self) -> List[RequestTrace]:
        """Records in the ring, slowest first."""
        return [rec for _dur, _seq, rec in
                sorted(self._heap, key=lambda t: (-t[0], t[1]))]

    def get(self, trace_id: str) -> Optional[RequestTrace]:
        for _dur, _seq, rec in self._heap:
            if rec.trace_id == trace_id:
                return rec
        return None

    def to_chrome(self) -> Dict[str, Any]:
        return records_to_chrome(self.slowest())

    def dump(self, path: str) -> int:
        """Write the ring as Chrome trace JSON; returns records written."""
        slowest = self.slowest()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(records_to_chrome(slowest), fh, sort_keys=True)
            fh.write("\n")
        return len(slowest)
