"""A tiny process-wide metrics registry.

Long-lived counters and gauges that are cheap enough to live in hot-ish
paths (block compilation, span creation, kernel runs) and are snapshotted
into every observability export, so a profile or bench artifact carries
the engine-health numbers it was produced under.

The registry is intentionally minimal — named counters (monotonic) and
gauges (set-to-latest) with a dict snapshot — not a Prometheus client.
(The "Exports + CLI" piece of DESIGN.md §4 "Observability".)
"""

from __future__ import annotations

from typing import Dict, Optional, Union

__all__ = ["Counter", "Gauge", "MetricsRegistry", "METRICS"]

Number = Union[int, float]


class Counter:
    """Monotonic counter; ``inc`` is a single attribute add."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class MetricsRegistry:
    """Named metrics with idempotent registration and a dict snapshot."""

    def __init__(self):
        self._metrics: Dict[str, Union[Counter, Gauge]] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name, help)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is registered as a gauge")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name, help)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is registered as a counter")
        return metric

    def get(self, name: str) -> Optional[Union[Counter, Gauge]]:
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Number]:
        """Current values of every registered metric (name -> value)."""
        return {name: m.value for name, m in sorted(self._metrics.items())}

    def reset(self) -> None:
        """Zero every metric (tests; production code never resets)."""
        for metric in self._metrics.values():
            metric.value = 0


#: The process-wide registry every subsystem registers against.
METRICS = MetricsRegistry()
