"""A tiny process-wide metrics registry.

Long-lived counters, gauges and latency histograms that are cheap enough
to live in hot-ish paths (block compilation, span creation, kernel runs,
request serving) and are snapshotted into every observability export, so
a profile or bench artifact carries the engine-health numbers it was
produced under.

The registry is intentionally minimal — named counters (monotonic),
gauges (set-to-latest) and log-bucketed histograms with a dict snapshot —
not a Prometheus client.  (The "Exports + CLI" piece of DESIGN.md §4
"Observability".)

Fork-safety (DESIGN.md §8 "Serving layer"): ``METRICS`` is plain
process-global state.  A forked worker inherits the parent's tallies,
which would double-count the moment the worker reported back, so worker
processes MUST call :meth:`MetricsRegistry.reset_for_fork` before doing
any work (the serve pool initializer does) and report their own counter
values with each reply; the parent folds them in through
:meth:`MetricsRegistry.merge_counters`.  Nothing here is shared memory —
aggregation is explicit message passing.
"""

from __future__ import annotations

import os
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS",
           "render_prometheus"]

Number = Union[int, float]


class Counter:
    """Monotonic counter; ``inc`` is a single attribute add."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


#: Geometric bucket boundaries shared by every histogram: 1 µs .. ~67 s
#: in powers of two.  Fixed boundaries keep observe() to one bisect and
#: make histograms from different processes mergeable bucket-by-bucket.
_BUCKET_BOUNDS: List[float] = [2.0 ** i for i in range(27)]


class Histogram:
    """Log-bucketed distribution (latencies in µs by convention).

    ``observe`` is one binary search + one list increment; quantiles are
    estimated by linear interpolation inside the winning bucket, which
    is accurate to the bucket's factor-of-two resolution — plenty for
    p50/p95/p99 dashboards and regression gates.
    """

    __slots__ = ("name", "help", "buckets", "count", "sum")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: Number) -> None:
        self.buckets[bisect_left(_BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) or 0.0 when empty."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in 0..100")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = _BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                hi = (_BUCKET_BOUNDS[i] if i < len(_BUCKET_BOUNDS)
                      else self.sum / self.count * 4 + lo)
                frac = (rank - seen) / n
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            seen += n
        return _BUCKET_BOUNDS[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": round(self.percentile(50), 3),
            "p95": round(self.percentile(95), 3),
            "p99": round(self.percentile(99), 3),
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's buckets in (cross-process merge)."""
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum


class MetricsRegistry:
    """Named metrics with idempotent registration and a dict snapshot."""

    def __init__(self):
        self._metrics: Dict[str, Union[Counter, Gauge]] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._pid = os.getpid()
        #: Default labels stamped on every Prometheus sample — process
        #: identity (e.g. ``shard="2"``), never per-request dimensions.
        self._labels: Dict[str, str] = {}

    def set_label(self, name: str, value: Optional[str]) -> None:
        """Set (or with ``None``, drop) a registry-wide default label.

        The shard supervisor labels each shard process once at entry;
        :meth:`reset_for_fork` deliberately keeps labels, so pool
        workers forked under a shard inherit its identity in their own
        expositions.
        """
        if not _PROM_NAME_OK.fullmatch(name):
            raise ValueError(f"label name {name!r} is not a valid "
                             "Prometheus label name")
        if value is None:
            self._labels.pop(name, None)
        else:
            self._labels[name] = str(value)

    def labels(self) -> Dict[str, str]:
        """A copy of the registry-wide default labels."""
        return dict(self._labels)

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._metrics.get(name)
        if metric is None and name in self._histograms:
            raise TypeError(f"metric {name!r} is registered as a histogram")
        if metric is None:
            metric = self._metrics[name] = Counter(name, help)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is registered as a gauge")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._metrics.get(name)
        if metric is None and name in self._histograms:
            raise TypeError(f"metric {name!r} is registered as a histogram")
        if metric is None:
            metric = self._metrics[name] = Gauge(name, help)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is registered as a counter")
        return metric

    def histogram(self, name: str, help: str = "") -> Histogram:
        if name in self._metrics:
            raise TypeError(f"metric {name!r} is registered as a scalar")
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, help)
        return hist

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Number]:
        """Current values of every registered metric (name -> value).

        Histograms flatten to ``<name>_count`` / ``<name>_p50`` /
        ``<name>_p95`` / ``<name>_p99`` entries so the snapshot stays a
        flat name -> number mapping every exporter understands.
        """
        snap = {name: m.value for name, m in sorted(self._metrics.items())}
        for name, hist in sorted(self._histograms.items()):
            summary = hist.summary()
            snap[f"{name}_count"] = summary["count"]
            snap[f"{name}_p50"] = summary["p50"]
            snap[f"{name}_p95"] = summary["p95"]
            snap[f"{name}_p99"] = summary["p99"]
        return snap

    def histogram_summaries(self,
                            prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Percentile summaries of every histogram (optionally filtered
        by name prefix) — the structured form the served ``stats`` op
        returns, where the flat :meth:`snapshot` spelling would force
        clients to reassemble names."""
        return {name: hist.summary()
                for name, hist in sorted(self._histograms.items())
                if name.startswith(prefix)}

    def counters_snapshot(self) -> Dict[str, Number]:
        """Counter values only — the mergeable subset a worker reports."""
        return {name: m.value for name, m in sorted(self._metrics.items())
                if isinstance(m, Counter)}

    def merge_counters(self, deltas: Dict[str, Number]) -> None:
        """Fold counter *deltas* from another process into this registry.

        Unknown names are registered on the fly; non-counter name
        collisions raise (the same guarantee :meth:`counter` gives).
        Negative deltas are rejected — a worker restart must re-baseline
        (see :class:`~repro.serve.server.EccServer`), never subtract.
        """
        for name, delta in deltas.items():
            if delta < 0:
                raise ValueError(
                    f"negative counter delta for {name!r}: {delta}")
            if delta:
                self.counter(name).inc(delta)

    def reset(self) -> None:
        """Zero every metric (tests; production code never resets)."""
        for metric in self._metrics.values():
            metric.value = 0
        for hist in self._histograms.values():
            hist.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
            hist.count = 0
            hist.sum = 0.0

    def reset_for_fork(self) -> None:
        """Mandatory first call in a forked worker: drop inherited tallies.

        Re-stamps the owning pid so :meth:`check_fork_isolation` can
        flag a worker that skipped isolation.
        """
        self.reset()
        self._pid = os.getpid()

    def check_fork_isolation(self) -> bool:
        """True when this process owns the registry's tallies."""
        return self._pid == os.getpid()


_PROM_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


def _prom_name(name: str) -> str:
    """Coerce a registry name into the Prometheus metric-name alphabet."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _PROM_NAME_OK.fullmatch(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _prom_num(value: Number) -> str:
    """Numbers in exposition format (integers without a trailing .0)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    """Render a label set (plus a pre-formatted *extra* pair like
    ``le="8"``) as ``{k="v",...}``; empty string when there are none."""
    pairs = [f'{name}="' + value.replace("\\", "\\\\").replace('"', '\\"')
             .replace("\n", "\\n") + '"'
             for name, value in sorted(labels.items())]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: Optional["MetricsRegistry"] = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters and gauges render as single samples; histograms render as
    the conventional cumulative ``_bucket{le=...}`` series (our fixed
    power-of-two bounds plus ``+Inf``) with ``_sum`` and ``_count``
    samples, so the output is directly scrapeable — the served ``stats``
    op with ``format="prometheus"`` hands back exactly this string.
    Registry-wide default labels (:meth:`MetricsRegistry.set_label`,
    e.g. the shard index) are stamped on every sample, merged with the
    histogram ``le`` pair.
    """
    reg = registry if registry is not None else METRICS
    labels = _prom_labels(reg._labels)
    lines: List[str] = []
    for name, metric in sorted(reg._metrics.items()):
        pname = _prom_name(name)
        kind = "counter" if isinstance(metric, Counter) else "gauge"
        if metric.help:
            lines.append(f"# HELP {pname} {metric.help}")
        lines.append(f"# TYPE {pname} {kind}")
        lines.append(f"{pname}{labels} {_prom_num(metric.value)}")
    for name, hist in sorted(reg._histograms.items()):
        pname = _prom_name(name)
        if hist.help:
            lines.append(f"# HELP {pname} {hist.help}")
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(_BUCKET_BOUNDS, hist.buckets):
            cumulative += count
            bucket = _prom_labels(reg._labels,
                                  extra=f'le="{format(bound, "g")}"')
            lines.append(f"{pname}_bucket{bucket} {cumulative}")
        inf = _prom_labels(reg._labels, extra='le="+Inf"')
        lines.append(f"{pname}_bucket{inf} {hist.count}")
        lines.append(f"{pname}_sum{labels} {_prom_num(hist.sum)}")
        lines.append(f"{pname}_count{labels} {hist.count}")
    return "\n".join(lines) + "\n"


#: The process-wide registry every subsystem registers against.
METRICS = MetricsRegistry()
