"""Observability: hierarchical tracing, metrics, and exports.

The paper argues entirely by attribution — per-instruction-group cycle
breakdowns (Fig. 1) and weighted field-op sums (Tables I-III).  This
package makes the same attribution available on demand, at fast-engine
speed, for any kernel / curve / mode:

* :mod:`repro.obs.trace` — a lightweight span tracer auto-instrumented
  through ``scalarmult``, ``curves``, ``field`` and the kernel runner,
  capturing field-/word-op counter deltas and ISS cycle deltas per span.
* :mod:`repro.obs.metrics` — a process-wide counter/gauge registry
  snapshotted into every export.
* :mod:`repro.obs.export` — JSONL events and Chrome trace-event
  (``chrome://tracing`` / Perfetto) output, plus the schema validator.

Engine-speed ISS profiling itself lives with the core it observes
(:mod:`repro.avr.profiler`); this package consumes its results.  The
architecture is documented in DESIGN.md §4 "Observability"; the export
layer additionally carries the fault-campaign record stream of
DESIGN.md §7 "Fault model & countermeasures" and the constant-time
verdict stream of DESIGN.md §9 "Constant-time verification".
"""

from .assemble import (
    FlightRecorder,
    RequestTrace,
    assemble,
    assemble_one,
    records_to_chrome,
)
from .export import (
    ctcheck_events,
    ctcheck_to_jsonl,
    fault_events,
    faults_to_jsonl,
    profiler_events,
    span_events,
    to_chrome,
    to_jsonl,
    validate_chrome,
)
from .metrics import METRICS, MetricsRegistry, render_prometheus
from .trace import (
    CURRENT,
    Span,
    Tracer,
    install,
    new_trace_id,
    span_from_dict,
    span_to_dict,
    traced,
    uninstall,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "render_prometheus",
    "CURRENT",
    "Span",
    "Tracer",
    "install",
    "traced",
    "uninstall",
    "new_trace_id",
    "span_to_dict",
    "span_from_dict",
    "FlightRecorder",
    "RequestTrace",
    "assemble",
    "assemble_one",
    "records_to_chrome",
    "ctcheck_events",
    "ctcheck_to_jsonl",
    "fault_events",
    "faults_to_jsonl",
    "profiler_events",
    "span_events",
    "to_chrome",
    "to_jsonl",
    "validate_chrome",
]
