"""Unrolled AVR kernels: OPF modular addition and subtraction.

Implements the paper's Section III-A algorithm as branch-less straight-line
code: full carry-chain addition, then **two** conditional subtractions of
``c * p`` with the condition bit updated in between.  Because the prime is
low-weight, the masked subtrahend has only three non-zero bytes (byte 0 is
1, the top two bytes hold ``u``); the zero bytes still participate in the
borrow ripple via ``SBC r, zero`` — one cycle each, keeping the code
constant-time without the probability-``2^-32`` branch discussed in the
paper.

Two code shapes, selected by operand size:

* ``s <= 5`` (n <= 20 bytes): the accumulator lives entirely in r0..r19 —
  the paper's 160-bit case, with the cycle counts of Table I.
* ``s > 5``: a streaming variant that walks the operands in memory (the
  two conditional-subtraction passes re-walk the result); used by the
  scalability benchmarks for 192-256-bit fields.

Register allocation (register-resident shape): r0..r(n-1) accumulator,
r20 mask, r21/r22 masked ``u`` bytes, r23 loaded operand byte, r24
condition bit, r25 constant zero, X→A, Y→B, Z→result.
"""

from __future__ import annotations

from typing import List

from .layout import ADDR_A, ADDR_B, ADDR_R, OpfConstants


def _prologue() -> List[str]:
    return [
        f"    ldi r26, {ADDR_A & 0xFF}",
        f"    ldi r27, {ADDR_A >> 8}",
        f"    ldi r28, {ADDR_B & 0xFF}",
        f"    ldi r29, {ADDR_B >> 8}",
        f"    ldi r30, {ADDR_R & 0xFF}",
        f"    ldi r31, {ADDR_R >> 8}",
        "    clr r25",
    ]


def _prepare_mask(constants: OpfConstants) -> List[str]:
    """Build the masked modulus bytes from the condition bit in r24."""
    return [
        "    mov r20, r24",
        "    neg r20",                      # r20 = 0xFF if condition else 0
        f"    ldi r21, {constants.u_lo}",
        "    and r21, r20",                 # r21 = c * u_lo
        f"    ldi r22, {constants.u_hi}",
        "    and r22, r20",                 # r22 = c * u_hi
    ]


# ---------------------------------------------------------------------------
# Register-resident shape (s <= 5)
# ---------------------------------------------------------------------------


def _conditional_subtract_p(n: int) -> List[str]:
    """acc(r0..r(n-1)) -= c * p, leaving the borrow in the carry flag."""
    lines = ["    sub r0, r24"]            # p byte 0 is 1, so c*p0 == c
    lines += [f"    sbc r{i}, r25" for i in range(1, n - 2)]
    lines.append(f"    sbc r{n - 2}, r21")
    lines.append(f"    sbc r{n - 1}, r22")
    return lines


def _conditional_add_p(n: int) -> List[str]:
    """acc(r0..r(n-1)) += b * p, leaving the carry in the carry flag."""
    lines = ["    add r0, r24"]
    lines += [f"    adc r{i}, r25" for i in range(1, n - 2)]
    lines.append(f"    adc r{n - 2}, r21")
    lines.append(f"    adc r{n - 1}, r22")
    return lines


def _register_resident(constants: OpfConstants, subtract: bool,
                       subroutine: bool = False) -> str:
    n = constants.operand_bytes
    op0, opc = ("sub", "sbc") if subtract else ("add", "adc")
    fix = _conditional_add_p if subtract else _conditional_subtract_p
    kind = "subtraction" if subtract else "addition"
    lines = [f"; OPF {constants.bits}-bit modular {kind} "
             "(unrolled, branch-less)"]
    if subroutine:
        lines.append("    clr r25")   # caller provides X -> A, Y -> B, Z -> R
    else:
        lines += _prologue()
    lines += [f"    ld r{i}, X+" for i in range(n)]
    for i in range(n):
        lines.append("    ld r23, Y+")
        lines.append(f"    {op0 if i == 0 else opc} r{i}, r23")
    # Extract the carry/borrow bit.
    lines.append("    clr r24")
    lines.append("    adc r24, r25")
    # First conditional fix-up of c * p.
    lines += _prepare_mask(constants)
    lines += fix(n)
    # c <- c - borrow/carry (the paper's update between the two passes).
    lines.append("    sbc r24, r25")
    # Second conditional fix-up.
    lines += _prepare_mask(constants)
    lines += fix(n)
    lines += [f"    st Z+, r{i}" for i in range(n)]
    lines.append("    ret" if subroutine else "    break")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Streaming shape (s > 5)
# ---------------------------------------------------------------------------


def _point_x_at(address: int) -> List[str]:
    return [f"    ldi r26, {address & 0xFF}",
            f"    ldi r27, {address >> 8}"]


def _streaming(constants: OpfConstants, subtract: bool) -> str:
    n = constants.operand_bytes
    op0, opc = ("sub", "sbc") if subtract else ("add", "adc")
    fix0, fixc = ("add", "adc") if subtract else ("sub", "sbc")
    kind = "subtraction" if subtract else "addition"
    lines = [f"; OPF {constants.bits}-bit modular {kind} "
             "(streaming, branch-less)"]
    lines += _prologue()
    # Pass 1: result = A op B, byte-streamed through r0/r23.
    for i in range(n):
        lines.append("    ld r0, X+")
        lines.append("    ld r23, Y+")
        lines.append(f"    {op0 if i == 0 else opc} r0, r23")
        lines.append("    st Z+, r0")
    lines.append("    clr r24")
    lines.append("    adc r24, r25")
    # Two conditional fix-up passes over the result in memory.
    for pass_index in range(2):
        lines += _prepare_mask(constants)
        lines += _point_x_at(ADDR_R)
        for i in range(n):
            operand = ("r24" if i == 0
                       else "r21" if i == n - 2
                       else "r22" if i == n - 1
                       else "r25")
            lines.append("    ld r0, X")
            lines.append(f"    {fix0 if i == 0 else fixc} r0, {operand}")
            lines.append("    st X+, r0")
        if pass_index == 0:
            lines.append("    sbc r24, r25")
    lines.append("    break")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Public generators
# ---------------------------------------------------------------------------


def generate_modadd(constants: OpfConstants,
                    subroutine: bool = False) -> str:
    """Branch-less ``(a + b) mod p`` with incomplete reduction.

    ``subroutine=True``: callable routine; the caller sets X -> A, Y -> B,
    Z -> result and CALLs it (register-resident shape only, s <= 5).
    """
    constants.validate()
    if constants.num_words <= 5:
        return _register_resident(constants, subtract=False,
                                  subroutine=subroutine)
    if subroutine:
        raise ValueError("subroutine mode supports s <= 5 operands")
    return _streaming(constants, subtract=False)


def generate_modsub(constants: OpfConstants,
                    subroutine: bool = False) -> str:
    """Branch-less ``(a - b) mod p`` with incomplete reduction.

    See :func:`generate_modadd` for the subroutine calling convention.
    """
    constants.validate()
    if constants.num_words <= 5:
        return _register_resident(constants, subtract=True,
                                  subroutine=subroutine)
    if subroutine:
        raise ValueError("subroutine mode supports s <= 5 operands")
    return _streaming(constants, subtract=True)
