"""The co-Z Montgomery ladder for Weierstraß curves, in AVR assembly.

The second measured constant-round scalar multiplication: the paper's "Mon"
rows for secp160r1 / Weierstraß / GLV use Hutter, Joye and Sierra's
10-register co-Z ladder; this kernel executes the (X, Y)-only variant
(ZADDC + ZADDU per bit: 14 multiplication-kernel calls and 19
additions/subtractions) end to end on the simulator over the OPF
Weierstraß curve, per scalar bit, in a constant-round driver.

State: co-Z pairs R0 = (X0, Y0), R1 = (X1, Y1) in SRAM slots, Montgomery-
domain values.  The initial DBLU (R1 = 2P, R0 = P rescaled, handling the
scalar's always-set top bit) is loaded host-side as precomputed constants;
the 159 remaining bits run in assembly.  The final co-Z pair is returned
raw — the projective-to-affine recovery (one inversion) is host-side, as
with the x-only ladder kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..avr.assembler import assemble
from ..avr.core import AvrCore
from ..avr.memory import ProgramMemory
from ..avr.timing import Mode
from .ladder_kernel import (
    VAR_BITS,
    VAR_BYTES,
    VAR_CUR,
    VAR_PTR,
    emit_field_subroutines,
    generate_bit_loop_driver,
)
from .layout import OpfConstants

COZ_SLOT_NAMES = ["X0", "Y0", "X1", "Y1",
                  "U1", "U2", "U3", "U4", "U5", "U6",
                  "U7", "U8", "U9", "U10", "U11", "U12"]
COZ_SLOT_BASE = 0x0240
COZ_SLOTS: Dict[str, int] = {
    name: COZ_SLOT_BASE + 0x20 * i for i, name in enumerate(COZ_SLOT_NAMES)
}
COZ_ADDR_SCALAR = COZ_SLOT_BASE + 0x20 * len(COZ_SLOT_NAMES)


def _ptr(reg_low: int, address: int) -> List[str]:
    return [f"    ldi r{reg_low}, {address & 0xFF}",
            f"    ldi r{reg_low + 1}, {address >> 8}"]


def _mul(a: str, b: str, result: str) -> List[str]:
    lines = _ptr(28, COZ_SLOTS[a])
    lines += _ptr(30, COZ_SLOTS[b])
    lines += _ptr(26, COZ_SLOTS[result])
    lines.append("    call mul_sub")
    return lines


def _addsub(name: str, a: str, b: str, result: str) -> List[str]:
    lines = _ptr(26, COZ_SLOTS[a])
    lines += _ptr(28, COZ_SLOTS[b])
    lines += _ptr(30, COZ_SLOTS[result])
    lines.append(f"    call {name}")
    return lines


def _coz_step(bx: str, by: str, ax: str, ay: str) -> List[str]:
    """One rung: ZADDC(R_b, R_other) then ZADDU; R_b doubles in place.

    (bx, by) is the register pair selected by the scalar bit, (ax, ay) the
    other.  Temp discipline mirrors the Python reference
    (:func:`repro.scalarmult.ladder.zaddc_xy` / ``zaddu_xy``); every write
    goes to a slot whose previous value is already consumed.
    """
    lines: List[str] = []
    # --- ZADDC(P = R_b, Q = R_other) ---
    lines += _addsub("sub_sub", bx, ax, "U1")       # px - qx
    lines += _mul("U1", "U1", "U2")                 # C
    lines += _mul(bx, "U2", "U3")                   # W1
    lines += _mul(ax, "U2", "U4")                   # W2
    lines += _addsub("sub_sub", by, ay, "U5")       # py - qy
    lines += _mul("U5", "U5", "U6")                 # D-
    lines += _addsub("sub_sub", "U3", "U4", "U7")   # W1 - W2
    lines += _mul(by, "U7", "U8")                   # A1
    lines += _addsub("sub_sub", "U6", "U3", "U6")
    lines += _addsub("sub_sub", "U6", "U4", "U6")   # X_S
    lines += _addsub("add_sub", by, ay, "U9")       # py + qy
    lines += _mul("U9", "U9", "U10")                # D+
    lines += _addsub("sub_sub", "U10", "U3", "U10")
    lines += _addsub("sub_sub", "U10", "U4", "U10")  # X_D
    lines += _addsub("sub_sub", "U3", "U6", "U11")
    lines += _mul("U5", "U11", "U12")
    lines += _addsub("sub_sub", "U12", "U8", "U11")  # Y_S
    lines += _addsub("sub_sub", "U3", "U10", "U12")
    lines += _mul("U9", "U12", "U5")
    lines += _addsub("sub_sub", "U5", "U8", "U12")   # Y_D
    # --- ZADDU(S = (U6, U11), D = (U10, U12)) ---
    lines += _addsub("sub_sub", "U6", "U10", "U1")   # xs - xd
    lines += _mul("U1", "U1", "U2")                  # C'
    lines += _mul("U6", "U2", ax)                    # W1' -> new R_other.x
    lines += _mul("U10", "U2", "U4")                 # W2'
    lines += _addsub("sub_sub", "U11", "U12", "U5")  # ys - yd
    lines += _mul("U5", "U5", "U7")                  # D''
    lines += _addsub("sub_sub", ax, "U4", "U8")      # W1' - W2'
    lines += _mul("U11", "U8", ay)                   # A1' -> new R_other.y
    lines += _addsub("sub_sub", "U7", ax, bx)
    lines += _addsub("sub_sub", bx, "U4", bx)        # X3 -> new R_b.x
    lines += _addsub("sub_sub", ax, bx, "U8")        # W1' - X3
    lines += _mul("U5", "U8", "U2")
    lines += _addsub("sub_sub", "U2", ay, by)        # Y3 -> new R_b.y
    return lines


def generate_coz_ladder_program(constants: OpfConstants, mode: Mode,
                                scalar_bytes: int = 20) -> str:
    """Driver (MSB consumed by the host-side DBLU) + field subroutines."""
    constants.validate()
    if constants.num_words != 5:
        raise ValueError("the co-Z driver is generated for 160-bit fields")
    if not 1 <= scalar_bytes <= 20:
        raise ValueError("scalar length must be 1..20 bytes")
    lines: List[str] = [
        f"; co-Z (X,Y)-only ladder, {8 * scalar_bytes - 1} rounds, "
        f"{mode.value} mode",
        "start:",
    ]
    lines += generate_bit_loop_driver(
        _coz_step("X0", "Y0", "X1", "Y1"),   # bit = 0: double R0
        _coz_step("X1", "Y1", "X0", "Y0"),   # bit = 1: double R1
        scalar_bytes,
        skip_msb=True,
        scalar_addr=COZ_ADDR_SCALAR,
    )
    lines += emit_field_subroutines(constants, mode)
    return "\n".join(lines) + "\n"


class CozLadderKernel:
    """Run the in-assembly co-Z ladder over the OPF Weierstraß curve."""

    def __init__(self, constants: OpfConstants, mode: Mode, curve_a: int,
                 scalar_bytes: int = 20, engine: Optional[str] = None):
        self.constants = constants
        self.mode = mode
        self.curve_a = curve_a % constants.p
        self.scalar_bytes = scalar_bytes
        self.program = assemble(
            generate_coz_ladder_program(constants, mode, scalar_bytes)
        )
        self.core = AvrCore(ProgramMemory(num_words=65536), mode=mode,
                            sram_size=4096, engine=engine)
        self.program.load_into(self.core.program)

    @property
    def code_bytes(self) -> int:
        return self.program.size_bytes

    def _dblu(self, x: int, y: int) -> Tuple[int, int, int, int]:
        """Host-side initial doubling with co-Z update (plain domain)."""
        p = self.constants.p
        x_sq = x * x % p
        m = (3 * x_sq + self.curve_a) % p
        y_sq = y * y % p
        s = 4 * x * y_sq % p
        x2 = (m * m - 2 * s) % p
        y2 = (m * (s - x2) - 8 * y_sq * y_sq) % p
        return x2, y2, s, 8 * y_sq * y_sq % p   # (R1 = 2P, R0 = P')

    def run(self, k: int, base_x: int, base_y: int,
            max_steps: int = 400_000_000,
            ) -> Tuple[Tuple[int, int, int, int], int]:
        """Execute the ladder for a scalar with its top bit set.

        Returns ((X0, Y0, X1, Y1) co-Z state, cycles); x(kP) = X0/Z^2 for
        the implicit common Z (see :meth:`verify_against`).
        """
        bits = 8 * self.scalar_bytes
        if not (1 << (bits - 1)) <= k < (1 << bits):
            raise ValueError(
                f"the co-Z driver needs a full-length scalar "
                f"(top bit of {bits} set)"
            )
        p = self.constants.p
        r = 1 << 160
        x1, y1, x0, y0 = self._dblu(base_x, base_y)
        data = self.core.data
        for name, value in (("X0", x0), ("Y0", y0), ("X1", x1), ("Y1", y1)):
            data.load_bytes(COZ_SLOTS[name],
                            (value * r % p).to_bytes(20, "little"))
        data.load_bytes(COZ_ADDR_SCALAR,
                        k.to_bytes(self.scalar_bytes, "little"))
        self.core.reset(pc=0)  # also restores SP to top-of-SRAM
        cycles = self.core.run(max_steps=max_steps)
        r_inv = pow(r, -1, p)
        state = tuple(
            int.from_bytes(data.dump_bytes(COZ_SLOTS[name], 20), "little")
            * r_inv % p
            for name in ("X0", "Y0", "X1", "Y1")
        )
        return state, cycles  # plain-domain co-Z values

    def affine_consistency(self, state: Tuple[int, int, int, int],
                           expected: Tuple[int, int]) -> bool:
        """Does the co-Z X0/Y0 represent the expected affine point?

        (X0, Y0) = (x Z^2, y Z^3) for some Z, so X0^3 * y^2 == Y0^2 * x^3.
        """
        p = self.constants.p
        x0, y0 = state[0], state[1]
        x, y = expected
        return (pow(x0, 3, p) * pow(y, 2, p) - pow(y0, 2, p)
                * pow(x, 3, p)) % p == 0
