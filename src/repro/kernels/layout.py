"""Shared memory-layout conventions for the field-operation kernels.

Every kernel is a flat code block ending in ``BREAK`` that processes
fixed-size little-endian operands at fixed SRAM addresses — the same calling
convention the paper's hand-written routines use (operands addressed through
the Y and Z pointers, result through X).

The generators are parameterised over the OPF prime ``p = u * 2^k + 1``.
For the word-level algorithms to see the low-weight shape
``[1, 0, ..., 0, u << 16]`` the exponent must satisfy ``k ≡ 16 (mod 32)``;
the operand size is then ``s = (k + 16) / 32`` words.  The paper's field is
``s = 5`` (160 bits); the scalability benchmarks sweep s = 4..8 (128 to 256
bits).  The 6-bit LDD/STD displacement reach bounds s at 8.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Operand size in bytes for the paper's 160-bit field.
OPERAND_BYTES = 20

#: SRAM addresses (all within the ATmega128's internal SRAM).  The quotient
#: digits live 32 bytes above B so the multiplication kernels can reach both
#: through the Z pointer with 6-bit LDD/STD displacements.
ADDR_A = 0x0100       # first operand
ADDR_B = 0x0140       # second operand
ADDR_M = ADDR_B + 32  # Montgomery quotient digits m[0..s-1] (Z-addressable)
ADDR_R = 0x01A0       # result
ADDR_T = 0x01E0       # scratch

#: Largest supported operand length in 32-bit words (LDD displacement reach).
MAX_WORDS = 8


@dataclass(frozen=True)
class OpfConstants:
    """The prime's byte-level constants needed by the kernels."""

    u: int
    k: int

    @property
    def p(self) -> int:
        return self.u * (1 << self.k) + 1

    @property
    def num_words(self) -> int:
        """Operand length s in 32-bit words."""
        return (self.k + 16) // 32

    @property
    def operand_bytes(self) -> int:
        return 4 * self.num_words

    @property
    def bits(self) -> int:
        return 32 * self.num_words

    @property
    def u_lo(self) -> int:
        return self.u & 0xFF

    @property
    def u_hi(self) -> int:
        return (self.u >> 8) & 0xFF

    @property
    def p_bytes(self) -> bytes:
        """The little-endian prime, one byte per operand byte."""
        return self.p.to_bytes(self.operand_bytes, "little")

    @property
    def msw(self) -> int:
        """The most significant 32-bit word, u << 16."""
        return (self.u << 16) & 0xFFFFFFFF

    def validate(self) -> None:
        if not 1 << 15 <= self.u < 1 << 16:
            raise ValueError(f"u must be a 16-bit value, got {self.u}")
        if self.k % 32 != 16:
            raise ValueError(
                f"k must be ≡ 16 (mod 32) for the word-aligned OPF shape, "
                f"got k = {self.k}"
            )
        if not 2 <= self.num_words <= MAX_WORDS:
            raise ValueError(
                f"operand length {self.num_words} words outside the "
                f"supported 2..{MAX_WORDS} range"
            )
