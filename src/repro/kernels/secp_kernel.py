"""AVR kernel: secp160r1 field multiplication (hybrid + fold reduction).

The paper implements the standardized curve's arithmetic with "an unrolled
variant of Gura et al's hybrid multiplication method … in combination with
some prime-specific optimizations of the modular reduction" (Section V-B).
This generator does the same:

* **product phase** — the full 320-bit product via unrolled word-Comba
  (byte-level hybrid blocks identical to the OPF kernel's), written to
  scratch memory;
* **reduction phase** — the pseudo-Mersenne fold for
  ``p = 2^160 - 2^31 - 1``: since ``2^160 ≡ 2^31 + 1 (mod p)``,

      lo + hi * 2^160  ≡  lo + hi + (hi >> 1) * 2^32 + (hi & 1) * 2^31

  (because ``hi * 2^31 = (hi >> 1) * 2^32 + (hi & 1) * 2^31``).  The first
  fold overflows 160 bits by at most ~32 bits (collected in the register
  accumulator E); a second fold absorbs E; every carry out of a 2^160 chain
  is exactly one extra ``+ (2^31 + 1)``, handled by a tiny final loop (the
  same rare data-dependent tail every generalized-Mersenne implementation
  has — reduction "via additions", as the paper contrasts with OPFs).

The kernel returns an *incompletely reduced* value below ``2^160`` that is
congruent to ``a * b mod p`` — the same contract as the OPF kernels.

Register use in the fold: r0..r19 the running 160-bit result, r20 temp,
r21..r24 the overflow accumulator E, r25 zero, r18/r26 — no: the carry
counter lives in the otherwise-free XL register r26 until the final stores
re-point X.  Z walks the product scratch (low half Z+0..19, high half
Z+20..39, the halved high half q at Z+40..59).
"""

from __future__ import annotations

from typing import List

from .layout import ADDR_A, ADDR_B, ADDR_R, ADDR_T
from .mul_kernels import _ACC, _ZERO, _load_word_comba, _mac_block_comba

#: secp160r1's prime.
SECP_P = (1 << 160) - (1 << 31) - 1


def _product_phase(lines: List[str]) -> None:
    """T[0..39] = A * B via unrolled word-Comba (s = 5)."""
    lines += [
        f"    ldi r28, {ADDR_A & 0xFF}",
        f"    ldi r29, {ADDR_A >> 8}",   # Y -> A
        f"    ldi r30, {ADDR_B & 0xFF}",
        f"    ldi r31, {ADDR_B >> 8}",   # Z -> B
        f"    ldi r26, {ADDR_T & 0xFF}",
        f"    ldi r27, {ADDR_T >> 8}",   # X -> T (product scratch)
        f"    clr {_ZERO}",
    ]
    for r in _ACC:
        lines.append(f"    clr r{r}")
    for column in range(10):
        lines.append(f"; ---- product column {column} ----")
        low = max(0, column - 4)
        high = min(column, 4)
        for j in range(low, high + 1):
            _load_word_comba(lines, "ab", j, column - j, 0, 0)
            _mac_block_comba(lines, [0, 1, 2, 3])
        # Emit the low word and shift the accumulator.
        for o in range(4):
            lines.append(f"    st X+, r{_ACC[o]}")
        lines.append("    movw r2, r6")
        lines.append("    movw r4, r8")
        lines.append("    mov r6, r10")
        for r in (7, 8, 9, 10):
            lines.append(f"    clr r{r}")


def _ripple(lines: List[str], start: int, count_reg: str = "r25") -> None:
    """ADC the zero register through result bytes start..19."""
    for i in range(start, 20):
        lines.append(f"    adc r{i}, {count_reg}")


def _fold_phase(lines: List[str]) -> None:
    """R = T folded below 2^160 (congruent mod p)."""
    lines.append("; ---- reduction: q = hi >> 1 (r = shifted-out bit) ----")
    lines += [
        f"    ldi r30, {ADDR_T & 0xFF}",
        f"    ldi r31, {ADDR_T >> 8}",   # Z -> T
        "    clr r25",
    ]
    # q bytes written MSB-first so ROR chains the inter-byte carry.
    lines.append("    clc")
    for i in range(19, -1, -1):
        lines.append(f"    ldd r20, Z+{20 + i}")
        lines.append("    ror r20")
        lines.append(f"    std Z+{40 + i}, r20")
    lines.append("    clr r24")
    lines.append("    rol r24")            # r24 = r = hi & 1 (flag-safe grab)

    lines.append("; ---- R = lo; E and the wrap counter start at zero ----")
    for i in range(20):
        lines.append(f"    ldd r{i}, Z+{i}")
    for reg in ("r21", "r22", "r23", "r26"):
        lines.append(f"    clr {reg}")      # E low bytes + wrap counter

    lines.append("; ---- R += hi ----")
    for i in range(20):
        lines.append(f"    ldd r20, Z+{20 + i}")
        lines.append(f"    {'add' if i == 0 else 'adc'} r{i}, r20")
    lines.append("    adc r21, r25")        # E0 += carry

    lines.append("; ---- R += r * 2^31 (bit 7 of byte 3) ----")
    lines.append("    mov r20, r24")
    lines.append("    lsr r20")             # C = r, r20 = 0
    lines.append("    ror r20")             # r20 = r << 7, C = 0
    lines.append("    clr r24")             # E's top byte, now that r is used
    lines.append("    add r3, r20")
    _ripple(lines, 4)
    lines.append("    adc r21, r25")
    lines.append("    adc r22, r25")

    lines.append("; ---- R += q * 2^32 (q bytes 0..15 at offset 4) ----")
    for i in range(16):
        lines.append(f"    ldd r20, Z+{40 + i}")
        lines.append(f"    {'add' if i == 0 else 'adc'} r{4 + i}, r20")
    lines.append("    adc r21, r25")
    lines.append("    adc r22, r25")
    lines.append("; ---- E += q bytes 16..19 ----")
    for i in range(4):
        lines.append(f"    ldd r20, Z+{56 + i}")
        lines.append(f"    {'add' if i == 0 else 'adc'} r{21 + i}, r20")
    # E (r21..r24) <= 2^32 + 3: the carry chain ends inside r24.

    lines.append("; ---- second fold: R += E; each chain carry is one "
                 "2^160 wrap ----")
    lines.append("    add r0, r21")
    lines.append("    adc r1, r22")
    lines.append("    adc r2, r23")
    lines.append("    adc r3, r24")
    _ripple(lines, 4)
    lines.append("    adc r26, r25")        # wrap count += carry
    # E >>= 1 (4-byte ROR chain); C ends as E&1.
    lines.append("    lsr r24")
    lines.append("    ror r23")
    lines.append("    ror r22")
    lines.append("    ror r21")
    lines.append("    clr r20")
    lines.append("    ror r20")             # r20 = (E&1) << 7, C = 0
    lines.append("; R += (E>>1) * 2^32")
    lines.append("    add r4, r21")
    lines.append("    adc r5, r22")
    lines.append("    adc r6, r23")
    lines.append("    adc r7, r24")
    _ripple(lines, 8)
    lines.append("    adc r26, r25")
    lines.append("; R += (E&1) * 2^31")
    lines.append("    add r3, r20")
    _ripple(lines, 4)
    lines.append("    adc r26, r25")

    lines.append("; ---- residual wraps: each is one '+ (2^31 + 1)' ----")
    lines.append("fold_loop:")
    lines.append("    tst r26")
    lines.append("    breq fold_done")
    lines.append("    dec r26")
    lines.append("    ldi r20, 0x80")
    lines.append("    add r3, r20")         # += 2^31
    _ripple(lines, 4)
    lines.append("    adc r26, r25")        # a new wrap, if any
    lines.append("    sec")
    lines.append("    adc r0, r25")         # += 1
    _ripple(lines, 1)
    lines.append("    adc r26, r25")
    lines.append("    rjmp fold_loop")
    lines.append("fold_done:")

    lines.append("; ---- store result ----")
    lines += [
        f"    ldi r26, {ADDR_R & 0xFF}",
        f"    ldi r27, {ADDR_R >> 8}",
    ]
    for i in range(20):
        lines.append(f"    st X+, r{i}")
    lines.append("    break")


def generate_secp160r1_mul() -> str:
    """Unrolled secp160r1 field multiplication (hybrid + fold reduction)."""
    lines: List[str] = [
        "; secp160r1 160x160 multiplication with pseudo-Mersenne folds",
    ]
    _product_phase(lines)
    _fold_phase(lines)
    return "\n".join(lines) + "\n"
