"""AVR kernels for OPF Montgomery multiplication (FIPS, parameterised).

Three code generators, all fully unrolled product-scanning FIPS with the
OPF optimisation (only the modulus words P0 = 1 and P_{s-1} = u << 16
exist, and the quotient digit is a plain negation because
``-p^-1 mod 2^32 = 2^32 - 1``):

* :func:`generate_opf_mul_comba` — native AVR ``MUL`` instructions with a
  byte-Comba triple accumulator per 32x32 block and a 72-bit software
  accumulator in r2..r10.  The CA/FAST-mode kernel of Table I.
* :func:`generate_opf_mul_mac` — the ISE kernel: the 72-bit accumulator IS
  the MAC unit's R0-R8, and every 32x32 product is eight load-triggered
  (32 x 4)-bit MACs (the paper's Algorithm 2 pattern).  With
  ``optimized=True`` the MAC slots of each product are filled with the next
  product's operand prefetch (loads into scratch r10..r13 followed by two
  MOVWs into the multiplicand) — the scheduling that produces the paper's
  MOVW-heavy instruction mix and its 552-cycle runtime.

All kernels compute the Montgomery product ``a * b * 2^(-32s) mod p``
(incompletely reduced, below ``2^(32s)``) for operands at ``ADDR_A`` /
``ADDR_B``, leaving the result at ``ADDR_R`` — bit-identical to
:func:`repro.mpa.montgomery.fips_montgomery_opf`.

FIPS column schedule (generalised from the paper's s = 5):

* columns 0..s-1: products ``A[j] * B[c-j]`` (j = 0..c); at column s-1 the
  first reduction product ``m[0] * P_{s-1}`` joins; the digit step then
  computes ``m[c] = -acc mod 2^32``, adds it (clearing the low word),
  stores it, and shifts the accumulator one word right.
* columns s..2s-2: products ``A[j] * B[c-j]`` plus ``m[c-s+1] * P_{s-1}``;
  each column then emits one result word.
* column 2s-1: the final word plus the carry bit driving the conditional
  subtraction of ``p`` — emitted as one branchless masked walk over the
  result (the borrow chains through p's zero bytes with SBC), so the
  kernel retires the same instruction stream whether or not the
  subtraction fires and verifies clean under ``python -m repro ctcheck``
  (DESIGN.md §9).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .layout import ADDR_A, ADDR_B, ADDR_M, ADDR_R, ADDR_T, OpfConstants

#: SRAM save slot used by subroutine-mode kernels (result-pointer base).
_SAVE_R = ADDR_T

# Displacement of the m array relative to the Z (= ADDR_B) pointer.
_M_OFF = ADDR_M - ADDR_B

Pair = Tuple[str, int, int]


def _pointer_setup() -> List[str]:
    return [
        f"    ldi r28, {ADDR_A & 0xFF}",
        f"    ldi r29, {ADDR_A >> 8}",   # Y -> A
        f"    ldi r30, {ADDR_B & 0xFF}",
        f"    ldi r31, {ADDR_B >> 8}",   # Z -> B (and Z+32 -> m)
        f"    ldi r26, {ADDR_R & 0xFF}",
        f"    ldi r27, {ADDR_R >> 8}",   # X -> result (sequential stores)
    ]


def _fips_schedule(s: int) -> List[Tuple[int, List[Pair], str]]:
    """The column plan: (column, [(kind, x_index, y_index)...], phase).

    kind 'ab' multiplies A[x] * B[y]; kind 'mp' multiplies m[x] * P_{s-1}.
    phase 'digit' columns end with a quotient-digit step, 'emit' columns
    end by emitting a result word.
    """
    plan: List[Tuple[int, List[Pair], str]] = []
    for c in range(s):
        pairs: List[Pair] = [("ab", j, c - j) for j in range(c + 1)]
        if c == s - 1:
            pairs.append(("mp", 0, 0))
        plan.append((c, pairs, "digit"))
    for c in range(s, 2 * s - 1):
        pairs = [("ab", j, c - j) for j in range(c - s + 1, s)]
        pairs.append(("mp", c - s + 1, 0))
        plan.append((c, pairs, "emit"))
    plan.append((2 * s - 1, [], "emit"))
    return plan


# ---------------------------------------------------------------------------
# Native-MUL (Comba) kernel for CA / FAST modes
# ---------------------------------------------------------------------------

# Register map: r0/r1 MUL output, r2..r10 the 72-bit accumulator,
# r11/r12/r13 the rotating column triple, r14 zero, r16..r19 multiplicand
# word, r20..r23 multiplier word (or quotient digit during digit steps).

_ACC = list(range(2, 11))          # a0..a8
_ZERO = "r14"


def _load_word_comba(lines: List[str], kind: str, x: int, y: int,
                     u_lo: int, u_hi: int,
                     m_absolute: bool = False) -> List[int]:
    """Load the two 4-byte factors; returns the multiplier byte offsets.

    For 'ab': A[x] -> r16..r19 (via Y), B[y] -> r20..r23 (via Z).
    For 'mp': m[x] -> r16..r19 (via Z+32, or LDS from the fixed quotient
    scratch in subroutine mode), P_{s-1} -> r22/r23 immediates (u << 16 has
    only bytes 2 and 3 non-zero).
    """
    if kind == "ab":
        for o in range(4):
            lines.append(f"    ldd r{16 + o}, Y+{4 * x + o}")
        for o in range(4):
            lines.append(f"    ldd r{20 + o}, Z+{4 * y + o}")
        return [0, 1, 2, 3]
    for o in range(4):
        if m_absolute:
            lines.append(f"    lds r{16 + o}, {ADDR_M + 4 * x + o}")
        else:
            lines.append(f"    ldd r{16 + o}, Z+{_M_OFF + 4 * x + o}")
    lines.append(f"    ldi r22, {u_lo}")
    lines.append(f"    ldi r23, {u_hi}")
    return [2, 3]


def _mac_block_comba(lines: List[str], multiplier_bytes: List[int]) -> None:
    """acc(r2..r10) += (r16:r19) * multiplier bytes of (r20:r23).

    Byte-Comba over the block's seven columns with a rotating 3-byte triple;
    each column folds its low byte into the corresponding accumulator byte.
    """
    triple = [11, 12, 13]
    lines.append(f"    clr r{triple[0]}")
    lines.append(f"    clr r{triple[1]}")
    lines.append(f"    clr r{triple[2]}")
    max_off = 3 + max(multiplier_bytes)
    for off in range(0, max_off + 1):
        t0, t1, t2 = triple
        for x in range(4):
            y = off - x
            if y in multiplier_bytes:
                lines.append(f"    mul r{16 + x}, r{20 + y}")
                lines.append(f"    add r{t0}, r0")
                lines.append(f"    adc r{t1}, r1")
                lines.append(f"    adc r{t2}, {_ZERO}")
        # Fold the column's low byte into the accumulator.
        lines.append(f"    add r{_ACC[off]}, r{t0}")
        lines.append(f"    adc r{t1}, {_ZERO}")
        lines.append(f"    adc r{t2}, {_ZERO}")
        lines.append(f"    clr r{t0}")
        triple = [t1, t2, t0]
    # Remaining carries land in the next two accumulator bytes.
    t0, t1 = triple[0], triple[1]
    lines.append(f"    add r{_ACC[max_off + 1]}, r{t0}")
    lines.append(f"    adc r{_ACC[max_off + 2]}, r{t1}")
    # Ripple any carry to the top of the accumulator.
    for k in range(max_off + 3, len(_ACC)):
        lines.append(f"    adc r{_ACC[k]}, {_ZERO}")


def _digit_step_comba(lines: List[str], column: int,
                      m_absolute: bool = False) -> None:
    """m[c] = -acc_low; acc += m[c]; store m[c]; shift acc right one word."""
    for o in range(4):
        lines.append(f"    mov r{20 + o}, r{_ACC[o]}")
    for o in range(4):
        lines.append(f"    com r{20 + o}")
    lines.append("    sec")
    for o in range(4):
        lines.append(f"    adc r{20 + o}, {_ZERO}")   # m = ~acc_low + 1
    for o in range(4):
        if m_absolute:
            lines.append(f"    sts {ADDR_M + 4 * column + o}, r{20 + o}")
        else:
            lines.append(f"    std Z+{_M_OFF + 4 * column + o}, r{20 + o}")
    # acc += m (m * P0 with P0 = 1); the low word becomes zero.
    lines.append(f"    add r{_ACC[0]}, r20")
    for o in range(1, 4):
        lines.append(f"    adc r{_ACC[o]}, r{20 + o}")
    for k in range(4, len(_ACC)):
        lines.append(f"    adc r{_ACC[k]}, {_ZERO}")
    _shift_acc_comba(lines)


def _shift_acc_comba(lines: List[str]) -> None:
    """acc >>= 32 (the FIPS per-column word shift)."""
    lines.append("    movw r2, r6")
    lines.append("    movw r4, r8")
    lines.append("    mov r6, r10")
    for r in (7, 8, 9, 10):
        lines.append(f"    clr r{r}")


def _emit_word_comba(lines: List[str]) -> None:
    """Store the accumulator's low word as the next result word."""
    for o in range(4):
        lines.append(f"    st X+, r{_ACC[o]}")
    _shift_acc_comba(lines)


def _final_subtract(lines: List[str], operand_bytes: int,
                    carry_reg: str = "r20",
                    subroutine: bool = False) -> None:
    """Branchless conditional subtraction of ``carry * p``.

    The low-weight shortcut from paper Section III-B (only p's bottom byte
    and the two ``u`` bytes are non-zero) emitted as one uniform
    load/subtract/store walk over all n result bytes: byte 0 subtracts the
    carry bit, the interior bytes chain the borrow through p's zero bytes
    with SBC, and the top two bytes subtract the carry-masked u immediates
    that must already sit in r22/r23 (:func:`_prepare_subtract_mask`).
    LD/ST leave SREG untouched, so the borrow chain survives the pointer
    walk — the kernel retires the same instruction stream whether or not
    the subtraction fires, with no secret-dependent branch for the
    constant-time checker (DESIGN.md §9) to flag.
    """
    n = operand_bytes
    lines.append("final_sub:")
    if subroutine:
        # The result base was stashed at entry (caller-chosen address).
        lines.append(f"    lds r26, {_SAVE_R}")
        lines.append(f"    lds r27, {_SAVE_R + 1}")
    else:
        lines.append(f"    ldi r26, {ADDR_R & 0xFF}")
        lines.append(f"    ldi r27, {ADDR_R >> 8}")   # X -> result base
    for i in range(n):
        lines.append("    ld r16, X")
        if i == 0:
            lines.append(f"    sub r16, {carry_reg}")
        elif i == n - 2:
            lines.append("    sbc r16, r22")
        elif i == n - 1:
            lines.append("    sbc r16, r23")
        else:
            lines.append(f"    sbc r16, {_ZERO}")
        lines.append("    st X+, r16")
    lines.append("    ret" if subroutine else "    break")


def _prepare_subtract_mask(lines: List[str], u_lo: int, u_hi: int,
                           carry_reg: str = "r20") -> None:
    """Materialise carry-masked u bytes in r22/r23 (flag-safe later use)."""
    lines.append(f"    mov r21, {carry_reg}")
    lines.append("    neg r21")
    lines.append(f"    ldi r22, {u_lo}")
    lines.append("    and r22, r21")
    lines.append(f"    ldi r23, {u_hi}")
    lines.append("    and r23, r21")


def _save_result_pointer(lines: List[str]) -> None:
    """Stash the caller's X (result base) in SRAM.

    Subroutine-mode entry code: the final conditional subtraction needs to
    re-walk the result, and LDS restores are flag-safe where LDI constants
    are unavailable (the address is the caller's choice).
    """
    lines.append(f"    sts {_SAVE_R}, r26")
    lines.append(f"    sts {_SAVE_R + 1}, r27")


def generate_opf_mul_comba(constants: OpfConstants,
                           subroutine: bool = False) -> str:
    """Unrolled FIPS Montgomery multiplication with native AVR ``MUL``.

    With ``subroutine=True`` the kernel is emitted as a callable routine:
    the caller sets Y -> A, Z -> B, X -> result and CALLs it; the quotient
    digits use the fixed ``ADDR_M`` scratch (absolute LDS/STS, same cycle
    counts) and the routine ends with RET instead of BREAK.
    """
    constants.validate()
    u_lo, u_hi = constants.u_lo, constants.u_hi
    s = constants.num_words
    lines = [f"; OPF {constants.bits}-bit FIPS Montgomery multiplication "
             "(Comba, unrolled)"]
    if subroutine:
        _save_result_pointer(lines)
    else:
        lines += _pointer_setup()
    lines.append(f"    clr {_ZERO}")
    for r in _ACC:
        lines.append(f"    clr r{r}")
    for column, pairs, phase in _fips_schedule(s):
        lines.append(f"; ---- column {column} ----")
        for kind, x, y in pairs:
            mult_bytes = _load_word_comba(lines, kind, x, y, u_lo, u_hi,
                                          m_absolute=subroutine)
            _mac_block_comba(lines, mult_bytes)
        if phase == "digit":
            _digit_step_comba(lines, column, m_absolute=subroutine)
        else:
            _emit_word_comba(lines)
    # After the last emit the accumulator's low byte holds the carry bit.
    lines.append("    mov r20, r2")
    _prepare_subtract_mask(lines, u_lo, u_hi)
    _final_subtract(lines, constants.operand_bytes, subroutine=subroutine)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# MAC-unit kernel for ISE mode
# ---------------------------------------------------------------------------

# Register map: r0..r8 the hardware 72-bit accumulator, r16..r19 the MAC
# multiplicand, r24 the trigger register, r20..r23 scratch/digit, r25 zero,
# r10..r13 the prefetch buffer of the optimised schedule.

_MACCR = 0x28
_ZERO_ISE = "r25"


def _operand_loads(kind: str, x: int, u_lo: int, u_hi: int,
                   target_base: int) -> List[str]:
    """The four instructions that materialise a multiplicand word."""
    if kind == "ab":
        return [f"    ldd r{target_base + o}, Y+{4 * x + o}"
                for o in range(4)]
    return [f"    ldi r{target_base + 0}, 0",
            f"    ldi r{target_base + 1}, 0",
            f"    ldi r{target_base + 2}, {u_lo}",
            f"    ldi r{target_base + 3}, {u_hi}"]


def _trigger_offsets(kind: str, x: int, y: int,
                     m_absolute: bool = False) -> List[Tuple[str, int]]:
    """(addressing, value) pairs for the four trigger loads."""
    if kind == "ab":
        return [("Z", 4 * y + o) for o in range(4)]
    if m_absolute:
        return [("abs", ADDR_M + 4 * x + o) for o in range(4)]
    return [("Z", _M_OFF + 4 * x + o) for o in range(4)]


def _mac_product_simple(lines: List[str], kind: str, x: int, y: int,
                        u_lo: int, u_hi: int,
                        m_absolute: bool = False) -> None:
    """One 32x32 product via 8 load-triggered nibble MACs (Algorithm 2).

    The multiplicand (r16..r19) may only change while no MAC is pending, so
    it is loaded first; the four loads into r24 then trigger two MACs each,
    issued every other cycle per the paper's Algorithm 2 (a NOP fills each
    MAC slot the simple schedule leaves empty).
    """
    lines += _operand_loads(kind, x, u_lo, u_hi, 16)
    for mode_tag, off in _trigger_offsets(kind, x, y, m_absolute):
        if mode_tag == "abs":
            lines.append(f"    lds r24, {off}")
        else:
            lines.append(f"    ldd r24, Z+{off}")
        lines.append("    nop")
    lines.append("    nop")


def _mac_product_optimized(lines: List[str], kind: str, x: int, y: int,
                           u_lo: int, u_hi: int,
                           next_product: Optional[Pair],
                           prefetched: bool,
                           m_absolute: bool = False) -> bool:
    """Algorithm-2 product with the next multiplicand prefetched in the
    MAC slots (the paper's scheduling: loads into scratch registers while
    MACs drain, then two MOVWs once the unit is idle).

    Returns True when the *next* product's multiplicand has been left in
    r10..r13 for its MOVW pickup.
    """
    if prefetched:
        # The multiplicand sits in r10..r13; the MAC unit is idle at product
        # boundaries, so the MOVWs into r16..r19 are hazard-free.
        lines.append("    movw r16, r10")
        lines.append("    movw r18, r12")
    else:
        lines += _operand_loads(kind, x, u_lo, u_hi, 16)
    # Slot filler: the next product's operand loads (4 of the 5 MAC slots).
    fillers: List[str] = []
    will_prefetch = False
    if next_product is not None and next_product[0] == "ab":
        fillers = [f"    ldd r{10 + o}, Y+{4 * next_product[1] + o}"
                   for o in range(4)]
        will_prefetch = True
    offsets = _trigger_offsets(kind, x, y, m_absolute)
    for i, (mode_tag, off) in enumerate(offsets):
        if mode_tag == "abs":
            lines.append(f"    lds r24, {off}")
        else:
            lines.append(f"    ldd r24, Z+{off}")
        lines.append(fillers[i] if i < len(fillers) else "    nop")
    lines.append("    nop")
    return will_prefetch


def _digit_step_mac(lines: List[str], column: int,
                    m_absolute: bool = False) -> None:
    """Digit computation on the hardware accumulator r0..r8."""
    for o in range(4):
        lines.append(f"    mov r{20 + o}, r{o}")
    for o in range(4):
        lines.append(f"    com r{20 + o}")
    lines.append("    sec")
    for o in range(4):
        lines.append(f"    adc r{20 + o}, {_ZERO_ISE}")
    for o in range(4):
        if m_absolute:
            lines.append(f"    sts {ADDR_M + 4 * column + o}, r{20 + o}")
        else:
            lines.append(f"    std Z+{_M_OFF + 4 * column + o}, r{20 + o}")
    lines.append("    add r0, r20")
    for o in range(1, 4):
        lines.append(f"    adc r{o}, r{20 + o}")
    for k in range(4, 9):
        lines.append(f"    adc r{k}, {_ZERO_ISE}")
    _shift_acc_mac(lines)


def _shift_acc_mac(lines: List[str]) -> None:
    """acc >>= 32 on r0..r8 (MOVW-heavy, as in the paper's mix)."""
    lines.append("    movw r0, r4")
    lines.append("    movw r2, r6")
    lines.append("    mov r4, r8")
    for r in (5, 6, 7, 8):
        lines.append(f"    clr r{r}")


def _emit_word_mac(lines: List[str]) -> None:
    for o in range(4):
        lines.append(f"    st X+, r{o}")
    _shift_acc_mac(lines)


def generate_opf_mul_mac(constants: OpfConstants,
                         optimized: bool = True,
                         subroutine: bool = False) -> str:
    """Unrolled FIPS Montgomery multiplication on the (32 x 4)-bit MAC unit.

    ``optimized=True`` (default) applies the operand-prefetch schedule; the
    plain Algorithm-2 schedule (``optimized=False``) is kept for the
    scheduling-ablation benchmark.  ``subroutine=True`` emits a callable
    routine (caller sets Y -> A, Z -> B, X -> result, enables MACCR once).
    """
    constants.validate()
    u_lo, u_hi = constants.u_lo, constants.u_hi
    s = constants.num_words
    style = "prefetch-scheduled" if optimized else "plain Algorithm 2"
    lines = [f"; OPF {constants.bits}-bit FIPS Montgomery multiplication "
             f"(MAC unit, ISE, {style})"]
    if subroutine:
        _save_result_pointer(lines)
    else:
        lines += _pointer_setup()
    lines.append(f"    clr {_ZERO_ISE}")
    # Enable the load-trigger mechanism and reset the nibble counter.
    # (In subroutine mode the counter may carry state from a previous call,
    # so the reset matters; the one-cycle OUT is part of every call.)
    lines.append("    ldi r20, 0x82")
    lines.append(f"    out {_MACCR}, r20")
    for r in range(9):
        lines.append(f"    clr r{r}")

    # Flatten the schedule so each product can see its successor (the
    # prefetch crosses digit/emit steps: those touch neither Y nor r10-r13).
    plan = _fips_schedule(s)
    flat: List[Tuple[Pair, Optional[Pair]]] = []
    all_pairs = [pair for _, pairs, _ in plan for pair in pairs]
    for i, pair in enumerate(all_pairs):
        nxt = all_pairs[i + 1] if i + 1 < len(all_pairs) else None
        flat.append((pair, nxt))
    flat_iter = iter(flat)

    prefetched = False
    for column, pairs, phase in plan:
        lines.append(f"; ---- column {column} ----")
        for _ in pairs:
            (kind, x, y), nxt = next(flat_iter)
            if optimized:
                prefetched = _mac_product_optimized(
                    lines, kind, x, y, u_lo, u_hi, nxt, prefetched,
                    m_absolute=subroutine,
                )
            else:
                _mac_product_simple(lines, kind, x, y, u_lo, u_hi,
                                    m_absolute=subroutine)
        if phase == "digit":
            _digit_step_mac(lines, column, m_absolute=subroutine)
        else:
            _emit_word_mac(lines)
    lines.append("    mov r20, r0")
    _prepare_subtract_mask(lines, u_lo, u_hi)
    # The shared final subtraction uses r14 as its zero register.
    lines.append("    clr r14")
    _final_subtract(lines, constants.operand_bytes, subroutine=subroutine)
    return "\n".join(lines) + "\n"
