"""A complete Montgomery-ladder scalar multiplication in AVR assembly.

This is the paper's actual experiment, end to end on the simulator: the
x-only ladder over the 160-bit OPF Montgomery curve, built from the field
kernels as CALLed subroutines — per scalar bit one differential addition and
one doubling (the doubling's small-constant multiplication by
``(A + 2)/4 = 3`` is two modular additions), driven by a branch-free
constant-round loop over all 160 scalar bits: each bit becomes a 0x00/0xFF
mask feeding conditional swaps, so no instruction's execution depends on
the scalar and the kernel verifies clean under ``python -m repro ctcheck``
(DESIGN.md §9).

Where Table II's Montgomery row is otherwise *estimated* (operation counts ×
per-op costs), :class:`LadderKernel` produces a **measured** cycle count:
the whole 5-6 MCycle computation executes instruction by instruction on the
JAAVR core, in CA, FAST or ISE mode.

Ladder state (20-byte little-endian slots in SRAM): R0 = (X1 : Z1) starts
at the point at infinity (1 : 0), R1 = (X2 : Z2) at (x_P : 1); after
processing the scalar MSB-first, R0 holds (X : Z) of k*P.

Per-bit step (d = the pair to double, a = the pair receiving the sum)::

    t1 = dx + dz        t5 = t1 * t4        u  = t1^2   -> t5
    t2 = dx - dz        t6 = t2 * t3        v  = t2^2   -> t6
    t3 = ax + az        t7 = t5 + t6        dx'= u * v
    t4 = ax - az        t8 = t5 - t6        c  = u - v  -> t7
    ax' = t7^2          t9 = t8^2           w  = 3c + v -> t8
    az' = x_P * t9                          dz'= c * w

9 multiplications and 10 additions/subtractions per bit, matching the
paper's 5.3 M + 4 S (squarings run through the multiplication kernel, and
the 0.3 M small-constant product is the two additions of ``3c``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..avr.assembler import assemble
from ..avr.core import AvrCore
from ..avr.memory import ProgramMemory
from ..avr.profiler import Profiler
from ..avr.timing import Mode
from ..obs import trace as _trace
from .addsub_kernel import generate_modadd, generate_modsub
from .layout import ADDR_T, OpfConstants
from .mul_kernels import generate_opf_mul_comba, generate_opf_mul_mac

# ---------------------------------------------------------------------------
# Memory map (everything 20-byte slots unless noted)
# ---------------------------------------------------------------------------

SLOT_NAMES = ["X1", "Z1", "X2", "Z2", "T1", "T2", "T3", "T4", "T5", "T6",
              "T7", "T8", "T9", "BASEX"]
SLOT_BASE = 0x0240
SLOTS: Dict[str, int] = {
    name: SLOT_BASE + 0x20 * i for i, name in enumerate(SLOT_NAMES)
}
ADDR_SCALAR = SLOT_BASE + 0x20 * len(SLOT_NAMES)

# Driver loop variables (the field subroutines clobber every register, so
# loop state lives in SRAM above the mul kernel's pointer-save slots).
VAR_PTR = ADDR_T + 8      # 2 bytes: address of the current scalar byte
VAR_CUR = ADDR_T + 10     # the shifting current byte
VAR_BITS = ADDR_T + 11    # bits left in the current byte
VAR_BYTES = ADDR_T + 12   # bytes left
VAR_MASK = ADDR_T + 13    # the bit's 0x00/0xFF swap mask (masked driver)


def _set_pointer(reg_low: int, address: int) -> List[str]:
    return [f"    ldi r{reg_low}, {address & 0xFF}",
            f"    ldi r{reg_low + 1}, {address >> 8}"]


def _call_mul(a: str, b: str, result: str) -> List[str]:
    """Multiplication subroutine convention: Y -> A, Z -> B, X -> result."""
    lines = _set_pointer(28, SLOTS[a])
    lines += _set_pointer(30, SLOTS[b])
    lines += _set_pointer(26, SLOTS[result])
    lines.append("    call mul_sub")
    return lines


def _call_addsub(sub_name: str, a: str, b: str, result: str) -> List[str]:
    """Add/sub subroutine convention: X -> A, Y -> B, Z -> result."""
    lines = _set_pointer(26, SLOTS[a])
    lines += _set_pointer(28, SLOTS[b])
    lines += _set_pointer(30, SLOTS[result])
    lines.append(f"    call {sub_name}")
    return lines


def _ladder_step(double_pair: Tuple[str, str],
                 add_pair: Tuple[str, str]) -> List[str]:
    """One ladder rung: double *double_pair* in place, sum into *add_pair*."""
    dx, dz = double_pair
    ax, az = add_pair
    lines: List[str] = []
    lines += _call_addsub("add_sub", dx, dz, "T1")
    lines += _call_addsub("sub_sub", dx, dz, "T2")
    lines += _call_addsub("add_sub", ax, az, "T3")
    lines += _call_addsub("sub_sub", ax, az, "T4")
    # Differential addition (difference = the affine base point).
    lines += _call_mul("T1", "T4", "T5")
    lines += _call_mul("T2", "T3", "T6")
    lines += _call_addsub("add_sub", "T5", "T6", "T7")
    lines += _call_addsub("sub_sub", "T5", "T6", "T8")
    lines += _call_mul("T7", "T7", ax)
    lines += _call_mul("T8", "T8", "T9")
    lines += _call_mul("BASEX", "T9", az)
    # Doubling.
    lines += _call_mul("T1", "T1", "T5")
    lines += _call_mul("T2", "T2", "T6")
    lines += _call_mul("T5", "T6", dx)
    lines += _call_addsub("sub_sub", "T5", "T6", "T7")   # c = u - v
    lines += _call_addsub("add_sub", "T7", "T7", "T8")   # 2c
    lines += _call_addsub("add_sub", "T8", "T7", "T9")   # 3c = a24 * c
    lines += _call_addsub("add_sub", "T6", "T9", "T8")   # w = v + 3c
    lines += _call_mul("T7", "T8", dz)
    return lines


def _cswap_lines(pairs: List[Tuple[str, str]],
                 load_mask: bool = False) -> List[str]:
    """Branchless conditional swap of 20-byte slot *pairs* under the mask.

    The 0x00/0xFF mask sits in r25 (reloaded from ``VAR_MASK`` when
    *load_mask* is set — the field subroutines clobber every register, so
    the post-step swap must re-fetch it).  Classic masked byte swap:
    ``t = (a ^ b) & mask; a ^= t; b ^= t`` — no flags are consulted, no
    branch taken, identical instruction stream for both mask values.
    """
    lines: List[str] = []
    if load_mask:
        lines.append(f"    lds r25, {VAR_MASK}")
    for a, b in pairs:
        for i in range(20):
            lines += [
                f"    lds r16, {SLOTS[a] + i}",
                f"    lds r17, {SLOTS[b] + i}",
                "    mov r18, r16",
                "    eor r18, r17",
                "    and r18, r25",
                "    eor r16, r18",
                "    eor r17, r18",
                f"    sts {SLOTS[a] + i}, r16",
                f"    sts {SLOTS[b] + i}, r17",
            ]
    return lines


def generate_masked_bit_loop_driver(step: List[str],
                                    scalar_bytes: int,
                                    scalar_addr: Optional[int] = None
                                    ) -> List[str]:
    """A branch-free MSB-first bit loop around a single fixed-role *step*.

    Instead of dispatching to mirrored step bodies with a conditional
    branch on the (secret) scalar bit, each round shifts the bit into the
    carry and materialises it as a 0x00/0xFF mask — ``SBC r25, r25``
    computes ``-C`` regardless of r25's prior contents — which the step
    body consumes via masked conditional swaps/selects (``VAR_MASK``).
    The only branches left are the DEC/BREQ loop counters over public
    state, so the driver verifies clean under ``python -m repro ctcheck``
    (DESIGN.md §9); the cycle count is constant by construction.
    """
    base_addr = scalar_addr if scalar_addr is not None else ADDR_SCALAR
    top_byte = base_addr + scalar_bytes - 1
    lines = [
        f"    ldi r16, {top_byte & 0xFF}",
        f"    sts {VAR_PTR}, r16",
        f"    ldi r16, {top_byte >> 8}",
        f"    sts {VAR_PTR + 1}, r16",
        f"    ldi r16, {scalar_bytes}",
        f"    sts {VAR_BYTES}, r16",
        "byte_loop:",
        f"    lds r26, {VAR_PTR}",
        f"    lds r27, {VAR_PTR + 1}",
        "    ld r16, X",
        f"    sts {VAR_CUR}, r16",
        "    ldi r16, 8",
        f"    sts {VAR_BITS}, r16",
        "bit_loop:",
        f"    lds r16, {VAR_CUR}",
        "    lsl r16",
        f"    sts {VAR_CUR}, r16",   # STS leaves C for the SBC below
        "    sbc r25, r25",          # mask = -C: 0xFF if the bit is set
        f"    sts {VAR_MASK}, r25",
    ]
    lines += step
    lines += [
        f"    lds r16, {VAR_BITS}",
        "    dec r16",
        f"    sts {VAR_BITS}, r16",
        "    breq bits_done",
        "    jmp bit_loop",
        "bits_done:",
        f"    lds r26, {VAR_PTR}",
        f"    lds r27, {VAR_PTR + 1}",
        "    sbiw r26, 1",
        f"    sts {VAR_PTR}, r26",
        f"    sts {VAR_PTR + 1}, r27",
        f"    lds r16, {VAR_BYTES}",
        "    dec r16",
        f"    sts {VAR_BYTES}, r16",
        "    breq all_done",
        "    jmp byte_loop",
        "all_done:",
        "    break",
        "",
    ]
    return lines


def generate_bit_loop_driver(step_zero: List[str], step_one: List[str],
                             scalar_bytes: int,
                             skip_msb: bool = False,
                             scalar_addr: Optional[int] = None) -> List[str]:
    """A constant-round MSB-first bit loop around two balanced step bodies.

    The driver keeps its loop state in SRAM (the field subroutines clobber
    every register).  With ``skip_msb`` the first bit is consumed without a
    step — the co-Z ladder's convention, whose initial DBLU handles the
    (always-set) top bit.
    """
    base_addr = scalar_addr if scalar_addr is not None else ADDR_SCALAR
    top_byte = base_addr + scalar_bytes - 1
    lines = [
        f"    ldi r16, {top_byte & 0xFF}",
        f"    sts {VAR_PTR}, r16",
        f"    ldi r16, {top_byte >> 8}",
        f"    sts {VAR_PTR + 1}, r16",
        f"    ldi r16, {scalar_bytes}",
        f"    sts {VAR_BYTES}, r16",
    ]
    if skip_msb:
        # Pre-shift the top byte once and start its bit counter at 7.
        lines += [
            f"    lds r26, {VAR_PTR}",
            f"    lds r27, {VAR_PTR + 1}",
            "    ld r16, X",
            "    lsl r16",
            f"    sts {VAR_CUR}, r16",
            "    ldi r16, 7",
            f"    sts {VAR_BITS}, r16",
            "    jmp bit_loop",
        ]
    lines += [
        "byte_loop:",
        f"    lds r26, {VAR_PTR}",
        f"    lds r27, {VAR_PTR + 1}",
        "    ld r16, X",
        f"    sts {VAR_CUR}, r16",
        "    ldi r16, 8",
        f"    sts {VAR_BITS}, r16",
        "bit_loop:",
        f"    lds r16, {VAR_CUR}",
        "    lsl r16",
        f"    sts {VAR_CUR}, r16",
        "    brcs to_bit_one",
        "    nop",                      # balance the taken-branch cycle
        "    jmp bit_zero",
        "to_bit_one:",
        "    jmp bit_one",
        "bit_zero:",
    ]
    lines += step_zero
    lines.append("    jmp bit_end")
    lines.append("bit_one:")
    lines += step_one
    # Balance the bit-zero path's 3-cycle JMP so both paths cost the same.
    lines += ["    nop", "    nop", "    nop"]
    lines.append("bit_end:")
    lines += [
        f"    lds r16, {VAR_BITS}",
        "    dec r16",
        f"    sts {VAR_BITS}, r16",
        "    breq bits_done",
        "    jmp bit_loop",
        "bits_done:",
        f"    lds r26, {VAR_PTR}",
        f"    lds r27, {VAR_PTR + 1}",
        "    sbiw r26, 1",
        f"    sts {VAR_PTR}, r26",
        f"    sts {VAR_PTR + 1}, r27",
        f"    lds r16, {VAR_BYTES}",
        "    dec r16",
        f"    sts {VAR_BYTES}, r16",
        "    breq all_done",
        "    jmp byte_loop",
        "all_done:",
        "    break",
        "",
    ]
    return lines


def emit_field_subroutines(constants: OpfConstants, mode: Mode) -> List[str]:
    """The three callable field routines shared by the ladder programs."""
    lines = ["mul_sub:"]
    if mode is Mode.ISE:
        lines.append(generate_opf_mul_mac(constants, subroutine=True))
    else:
        lines.append(generate_opf_mul_comba(constants, subroutine=True))
    lines.append("add_sub:")
    lines.append(generate_modadd(constants, subroutine=True))
    lines.append("sub_sub:")
    lines.append(generate_modsub(constants, subroutine=True))
    return lines


def generate_ladder_program(constants: OpfConstants, mode: Mode,
                            scalar_bytes: int = 20) -> str:
    """The complete program: driver loop + field-op subroutines."""
    constants.validate()
    if constants.num_words != 5:
        raise ValueError("the ladder driver is generated for 160-bit fields")
    if not 1 <= scalar_bytes <= 20:
        raise ValueError("scalar length must be 1..20 bytes")
    lines: List[str] = [
        f"; Montgomery-ladder scalar multiplication, {8 * scalar_bytes} "
        f"fixed rounds, {mode.value} mode",
        "start:",
    ]
    # One fixed-role step — double R0 = (X1, Z1), sum into R1 = (X2, Z2) —
    # bracketed by masked conditional swaps: a set bit swaps R0/R1 before
    # the step and back after it, with no branch on the scalar.
    swaps = [("X1", "X2"), ("Z1", "Z2")]
    step = _cswap_lines(swaps)
    step += _ladder_step(("X1", "Z1"), ("X2", "Z2"))
    step += _cswap_lines(swaps, load_mask=True)
    lines += generate_masked_bit_loop_driver(step, scalar_bytes)
    lines += emit_field_subroutines(constants, mode)
    return "\n".join(lines) + "\n"


class LadderKernel:
    """Assemble once, run full scalar multiplications on the simulator."""

    def __init__(self, constants: OpfConstants, mode: Mode,
                 scalar_bytes: int = 20, engine: Optional[str] = None):
        self.constants = constants
        self.mode = mode
        self.scalar_bytes = scalar_bytes
        self._engine = engine
        self.program = assemble(
            generate_ladder_program(constants, mode, scalar_bytes)
        )
        self.core = AvrCore(ProgramMemory(num_words=65536), mode=mode,
                            sram_size=4096, engine=engine)
        self.program.load_into(self.core.program)
        self.profiler: Optional[Profiler] = None

    def reset_core(self) -> None:
        """Replace the core with a factory-fresh one (same program).

        Fault campaigns call this between trials: a bit flip in untouched
        SRAM (or a corrupted stack region) must not leak into the next
        run.  Compiled blocks are re-served from the fast engine's global
        cache, so the rebuild costs microseconds, not a recompile.
        """
        self.core = AvrCore(ProgramMemory(num_words=65536), mode=self.mode,
                            sram_size=4096, engine=self._engine)
        self.program.load_into(self.core.program)
        if self.profiler is not None:
            self.core.attach_profiler(self.profiler)

    @property
    def code_bytes(self) -> int:
        return self.program.size_bytes

    def attach_profiler(self) -> Profiler:
        """Attach an ISS profiler named through the ladder's symbol table."""
        self.profiler = Profiler()
        self.profiler.set_symbols(self.program.symbols)
        self.core.attach_profiler(self.profiler)
        return self.profiler

    def load_operands(self, k: int, base_x: int) -> None:
        """Stage ladder state, scalar and base point; reset the core.

        Factored out of :meth:`run` so a fault campaign can stage a trial
        and then drive the core through a
        :class:`~repro.faults.injector.FaultInjector` instead of
        :meth:`AvrCore.run`.
        """
        bits = 8 * self.scalar_bytes
        if not 0 <= k < (1 << bits):
            raise ValueError(f"scalar must fit in {bits} bits")
        p = self.constants.p
        r = 1 << 160
        one_m = r % p
        base_m = base_x * r % p
        data = self.core.data
        data.load_bytes(SLOTS["X1"], one_m.to_bytes(20, "little"))
        data.load_bytes(SLOTS["Z1"], (0).to_bytes(20, "little"))
        data.load_bytes(SLOTS["X2"], base_m.to_bytes(20, "little"))
        data.load_bytes(SLOTS["Z2"], one_m.to_bytes(20, "little"))
        data.load_bytes(SLOTS["BASEX"], base_m.to_bytes(20, "little"))
        data.load_bytes(ADDR_SCALAR,
                        k.to_bytes(self.scalar_bytes, "little"))
        if self.profiler is not None:
            self.profiler.reset()
        self.core.reset(pc=0)  # also restores SP to top-of-SRAM

    def output_state(self) -> Dict[str, int]:
        """Raw (Montgomery-domain) ladder output slots after a run.

        R0 = (X1 : Z1) is the result k*P; R1 = (X2 : Z2) is the ladder's
        retained companion (k+1)*P — kept accessible because the coherence
        countermeasure (:meth:`validate_output`) needs both.
        """
        data = self.core.data
        return {name: int.from_bytes(data.dump_bytes(SLOTS[name], 20),
                                     "little")
                for name in ("X1", "Z1", "X2", "Z2")}

    def validate_output(self, k: int, curve, base) -> Optional[str]:
        """Host-side countermeasure chain; returns the failed check or None.

        Mirrors what hardened device firmware would run after the ladder
        (DESIGN.md §7), in escalating cost order:

        * ``"scalar-integrity"`` — the SRAM scalar buffer no longer holds
          ``k`` (the driver never writes it, so any change is a fault);
        * ``"output-format"`` — Z of the result is 0 (k*P = O is not
          reachable for campaign scalars);
        * ``"on-curve"`` — the affine x of R0 lifts to no curve point;
        * ``"ladder-coherence"`` — Okeya-Sakurai y-recovery from
          (x(R0), x(R1)) leaves the curve, i.e. R1 - R0 != P.

        *curve* / *base* are the host-side Montgomery curve and affine
        base point over the same prime (the R factors of the Montgomery-
        domain slots cancel in the projective ratios).
        """
        p = self.constants.p
        if curve.field.p != p:
            raise ValueError("validation curve is over a different prime")
        data = self.core.data
        buf = data.dump_bytes(ADDR_SCALAR, self.scalar_bytes)
        if int.from_bytes(buf, "little") != k:
            return "scalar-integrity"
        state = self.output_state()
        z1 = state["Z1"] % p
        if z1 == 0:
            return "output-format"
        f = curve.field
        x0 = state["X1"] * pow(z1, -1, p) % p
        try:
            curve.lift_x(x0)
        except ValueError:
            return "on-curve"
        z2 = state["Z2"] % p
        if z2 == 0:
            # (k+1)P = O means kP = -P: coherent only if x0 = x(P).
            if x0 != base.x.to_int():
                return "ladder-coherence"
            return None
        x_next = state["X2"] * pow(z2, -1, p) % p
        recovered = curve.recover_y(base, f.from_int(x0),
                                    f.from_int(x_next))
        if not curve.is_on_curve(recovered):
            return "ladder-coherence"
        return None

    def run(self, k: int, base_x: int,
            max_steps: int = 200_000_000) -> Tuple[int, int, int]:
        """Execute the ladder; returns (X, Z, cycles) with x(kP) = X/Z.

        The multiplication kernel computes Montgomery products, so the
        ladder state is kept in the Montgomery domain (value * R mod p);
        on a real device these constants would be precomputed once.  The
        R factors cancel in the returned projective ratio X/Z.
        """
        self.load_operands(k, base_x)
        tr = _trace.CURRENT
        span = tr.start("ladder_kernel", kind="kernel",
                        mode=self.mode.name,
                        scalar_bits=8 * self.scalar_bytes) \
            if tr is not None else None
        try:
            cycles = self.core.run(max_steps=max_steps)
        finally:
            if span is not None:
                span.set(cycles=self.core.cycles,
                         instructions=self.core.instructions_retired)
                tr.end(span)
        data = self.core.data
        x_out = int.from_bytes(data.dump_bytes(SLOTS["X1"], 20), "little")
        z_out = int.from_bytes(data.dump_bytes(SLOTS["Z1"], 20), "little")
        return x_out, z_out, cycles

    def affine_x(self, k: int, base_x: int) -> Optional[int]:
        """Convenience: the affine x of k*P (None at infinity).

        The projective-to-affine inversion runs host-side; the paper's
        on-device Montgomery inverse is modelled separately (Table I).
        """
        x_out, z_out, _ = self.run(k, base_x)
        p = self.constants.p
        if z_out % p == 0:
            return None
        return x_out * pow(z_out % p, -1, p) % p
