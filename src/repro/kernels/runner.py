"""Execution harness for the field-operation kernels.

A :class:`KernelRunner` owns an :class:`~repro.avr.core.AvrCore` in a chosen
mode, assembles a kernel once, and then exposes ``run(a, b) -> (result,
cycles)`` with operands placed at the canonical SRAM addresses.  The Table I
benchmarks call kernels through this harness and compare both the *values*
(against the Python OPF library) and the *cycles* (against the paper).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..avr.assembler import assemble
from ..avr.core import AvrCore
from ..avr.memory import ProgramMemory
from ..avr.profiler import Profiler
from ..avr.timing import Mode
from ..obs import trace as _trace
from .layout import ADDR_A, ADDR_B, ADDR_R, OPERAND_BYTES


class KernelRunner:
    """Assemble once, run many times with fresh operands."""

    def __init__(self, source: str, mode: Mode = Mode.CA,
                 hazard_policy: str = "error", sram_size: int = 8192,
                 engine: Optional[str] = None):
        self.source = source
        self.mode = mode
        self.program = assemble(source)
        self.core = AvrCore(ProgramMemory(), mode=mode,
                            hazard_policy=hazard_policy,
                            sram_size=sram_size, engine=engine)
        self.program.load_into(self.core.program)
        self.profiler: Optional[Profiler] = None

    @property
    def code_bytes(self) -> int:
        """Kernel size in flash bytes (a Table III 'ROM' contribution)."""
        return self.program.size_bytes

    def attach_profiler(self) -> Profiler:
        self.profiler = Profiler()
        self.profiler.set_symbols(self.program.symbols)
        self.core.attach_profiler(self.profiler)
        return self.profiler

    def stage(self, a: int, b: Optional[int] = None,
              operand_bytes: int = OPERAND_BYTES) -> None:
        """Place operand(s) at the canonical addresses and reset the core.

        After staging, the core is ready to run from PC 0 — callers that
        need to interpose on execution (the constant-time checker marks
        the staged operand bytes as secret and drives a
        :class:`~repro.avr.taint.TaintTracker` itself) use this instead
        of :meth:`run`.
        """
        core = self.core
        core.data.load_bytes(ADDR_A, a.to_bytes(operand_bytes, "little"))
        if b is not None:
            core.data.load_bytes(ADDR_B, b.to_bytes(operand_bytes, "little"))
        if self.profiler is not None:
            self.profiler.reset()
        core.reset(pc=0)  # also restores SP to top-of-SRAM

    def read_result(self, operand_bytes: int = OPERAND_BYTES) -> int:
        """The little-endian result currently at ``ADDR_R``."""
        return int.from_bytes(
            self.core.data.dump_bytes(ADDR_R, operand_bytes), "little"
        )

    def run(self, a: int, b: Optional[int] = None,
            operand_bytes: int = OPERAND_BYTES) -> Tuple[int, int]:
        """Execute the kernel on operand(s); returns (result, cycles).

        Operands are little-endian values of *operand_bytes* bytes placed at
        the canonical addresses; the result is read from ``ADDR_R``.
        """
        core = self.core
        self.stage(a, b, operand_bytes)
        tr = _trace.CURRENT
        span = tr.start("kernel", kind="kernel",
                        mode=self.mode.name) if tr is not None else None
        try:
            cycles = core.run()
        finally:
            if span is not None:
                span.set(cycles=core.cycles,
                         instructions=core.instructions_retired)
                tr.end(span)
        return self.read_result(operand_bytes), cycles
