"""Generated AVR assembly kernels for the OPF field operations.

The kernels reproduce Table I on the simulator:

* :func:`~repro.kernels.addsub_kernel.generate_modadd` /
  :func:`~repro.kernels.addsub_kernel.generate_modsub` — unrolled
  branch-less addition/subtraction with incomplete reduction.
* :func:`~repro.kernels.mul_kernels.generate_opf_mul_comba` — unrolled FIPS
  Montgomery multiplication with native ``MUL`` (CA/FAST modes).
* :func:`~repro.kernels.mul_kernels.generate_opf_mul_mac` — the ISE kernel
  on the (32 x 4)-bit MAC unit (Algorithm 2's load-trigger pattern).

:class:`~repro.kernels.expo_kernel.ExpoKernel` adds the constant-time
checker's foil pair — branchless DAAA exponentiation vs deliberately
leaky NAF double-and-add (DESIGN.md §9).
"""

from .addsub_kernel import generate_modadd, generate_modsub
from .expo_kernel import (
    ExpoKernel,
    generate_daaa_expo_program,
    generate_naf_expo_program,
    naf_digits,
)
from .layout import (
    ADDR_A,
    ADDR_B,
    ADDR_M,
    ADDR_R,
    ADDR_T,
    OPERAND_BYTES,
    OpfConstants,
)
from .coz_ladder_kernel import CozLadderKernel, generate_coz_ladder_program
from .ladder_kernel import LadderKernel, generate_ladder_program
from .mul_kernels import generate_opf_mul_comba, generate_opf_mul_mac
from .runner import KernelRunner
from .secp_kernel import SECP_P, generate_secp160r1_mul

__all__ = [
    "ADDR_A",
    "ADDR_B",
    "ADDR_M",
    "ADDR_R",
    "ADDR_T",
    "OPERAND_BYTES",
    "KernelRunner",
    "CozLadderKernel",
    "ExpoKernel",
    "LadderKernel",
    "generate_coz_ladder_program",
    "generate_daaa_expo_program",
    "generate_ladder_program",
    "generate_naf_expo_program",
    "naf_digits",
    "OpfConstants",
    "generate_modadd",
    "generate_modsub",
    "generate_opf_mul_comba",
    "generate_opf_mul_mac",
    "generate_secp160r1_mul",
    "SECP_P",
]
