"""Modular exponentiation kernels: DAAA vs NAF, the ctcheck foil pair.

Two Montgomery-domain exponentiation drivers over the 160-bit OPF field,
both built on the same CALLed multiplication subroutine as the ladder
(:func:`~repro.kernels.ladder_kernel.emit_field_subroutines`):

* :func:`generate_daaa_expo_program` — **double-and-add-always** (left-to-
  right square-and-multiply-always): every bit costs one squaring plus one
  multiplication whose second operand is selected *branchlessly* between
  ``a·R`` and the Montgomery 1 through a 0x00/0xFF mask.  The driver is
  the ladder's masked bit loop; no instruction depends on the exponent,
  so the kernel verifies clean under ``python -m repro ctcheck daaa``.

* :func:`generate_naf_expo_program` — classic **NAF double-and-add**: the
  host recodes the exponent into non-adjacent-form digits (0, +1, -1) and
  the driver dispatches on each digit with conditional branches inside a
  CALLed ``digit_step`` routine.  This is the textbook high-speed-but-
  leaky shape (digit value decides whether a multiplication happens at
  all): ``python -m repro ctcheck naf`` flags the branch and the skip,
  attributed to ``digit_step`` — the ISS-level mirror of the irregular
  traces :func:`repro.analysis.leakage.leakage_report` shows for the
  Weierstrass NAF scalar multiplication.

Both kernels compute ``a^k mod p`` (host-verifiable against ``pow``); the
state lives in Montgomery domain so the shared ``mul_sub`` closes over it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..avr.assembler import assemble
from ..avr.core import AvrCore
from ..avr.memory import ProgramMemory
from ..avr.profiler import Profiler
from ..avr.timing import Mode
from .layout import ADDR_T, OpfConstants
from .ladder_kernel import (
    VAR_BYTES,
    VAR_PTR,
    emit_field_subroutines,
    generate_masked_bit_loop_driver,
)

# 20-byte working slots (this program owns the ladder's slot area).
EXPO_SLOT_NAMES = ["ACC", "ONE", "APOS", "ANEG", "MSEL", "T"]
EXPO_BASE = 0x0240
EXPO_SLOTS: Dict[str, int] = {
    name: EXPO_BASE + 0x20 * i for i, name in enumerate(EXPO_SLOT_NAMES)
}
#: Exponent bytes (DAAA) or NAF digit bytes (0x00 / 0x01 / 0xFF), little-
#: endian by significance, walked MSD-first.
ADDR_EXP = EXPO_BASE + 0x20 * len(EXPO_SLOT_NAMES)

#: The NAF driver parks the current digit here across the digit_step CALL.
VAR_DIG = ADDR_T + 14

OPERAND_BYTES = 20


def naf_digits(k: int) -> List[int]:
    """Non-adjacent-form digits of *k*, least significant first."""
    digits: List[int] = []
    while k:
        if k & 1:
            d = 2 - (k % 4)   # +1 or -1; no two adjacent non-zeros
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits or [0]


def _set_pointer(reg_low: int, address: int) -> List[str]:
    return [f"    ldi r{reg_low}, {address & 0xFF}",
            f"    ldi r{reg_low + 1}, {address >> 8}"]


def _call_mul(a: str, b: str, result: str) -> List[str]:
    """mul_sub convention (shared with the ladder): Y -> A, Z -> B, X -> R."""
    lines = _set_pointer(28, EXPO_SLOTS[a])
    lines += _set_pointer(30, EXPO_SLOTS[b])
    lines += _set_pointer(26, EXPO_SLOTS[result])
    lines.append("    call mul_sub")
    return lines


def _cselect_lines(dst: str, zero_src: str, one_src: str) -> List[str]:
    """dst = mask ? one_src : zero_src, byte-masked (mask 0x00/0xFF in r25)."""
    lines: List[str] = []
    for i in range(OPERAND_BYTES):
        lines += [
            f"    lds r16, {EXPO_SLOTS[zero_src] + i}",
            f"    lds r17, {EXPO_SLOTS[one_src] + i}",
            "    mov r18, r16",
            "    eor r18, r17",
            "    and r18, r25",
            "    eor r16, r18",
            f"    sts {EXPO_SLOTS[dst] + i}, r16",
        ]
    return lines


def generate_daaa_expo_program(constants: OpfConstants, mode: Mode,
                               exp_bytes: int = 2) -> str:
    """Square-and-multiply-always over the masked bit-loop driver."""
    constants.validate()
    if constants.num_words != 5:
        raise ValueError("the expo drivers are generated for 160-bit fields")
    if not 1 <= exp_bytes <= 20:
        raise ValueError("exponent length must be 1..20 bytes")
    lines: List[str] = [
        f"; DAAA modular exponentiation, {8 * exp_bytes} fixed rounds, "
        f"{mode.value} mode",
        "start:",
    ]
    # Per bit (mask in r25 from the driver): MSEL = bit ? a*R : 1*R, then
    # T = ACC^2 and ACC = T * MSEL — one squaring and one multiplication
    # retire every round regardless of the exponent.
    step = _cselect_lines("MSEL", "ONE", "APOS")
    step += _call_mul("ACC", "ACC", "T")
    step += _call_mul("T", "MSEL", "ACC")
    lines += generate_masked_bit_loop_driver(step, exp_bytes,
                                             scalar_addr=ADDR_EXP)
    lines += emit_field_subroutines(constants, mode)
    return "\n".join(lines) + "\n"


def generate_naf_expo_program(constants: OpfConstants, mode: Mode,
                              exp_bytes: int = 2) -> str:
    """NAF double-and-add with digit dispatch inside ``digit_step``.

    Deliberately *not* constant time: the per-digit work depends on the
    digit value, with the deciding branch and skip inside the CALLed
    ``digit_step`` routine so the constant-time checker's violations
    carry a meaningful routine attribution.
    """
    constants.validate()
    if constants.num_words != 5:
        raise ValueError("the expo drivers are generated for 160-bit fields")
    if not 1 <= exp_bytes <= 20:
        raise ValueError("exponent length must be 1..20 bytes")
    num_digits = 8 * exp_bytes + 1   # NAF of an n-bit value has <= n+1 digits
    top_digit = ADDR_EXP + num_digits - 1
    lines: List[str] = [
        f"; NAF modular exponentiation, {num_digits} digits (MSD first), "
        f"{mode.value} mode",
        "start:",
        f"    ldi r16, {top_digit & 0xFF}",
        f"    sts {VAR_PTR}, r16",
        f"    ldi r16, {top_digit >> 8}",
        f"    sts {VAR_PTR + 1}, r16",
        f"    ldi r16, {num_digits}",
        f"    sts {VAR_BYTES}, r16",
        "digit_loop:",
    ]
    # Always square: T = ACC^2, copied back.
    lines += _call_mul("ACC", "ACC", "T")
    lines.append("    call copy_t_acc")
    # Fetch the digit and dispatch.
    lines += [
        f"    lds r26, {VAR_PTR}",
        f"    lds r27, {VAR_PTR + 1}",
        "    ld r16, X",
        f"    sts {VAR_DIG}, r16",
        "    call digit_step",
        # Bookkeeping over public loop state.
        f"    lds r26, {VAR_PTR}",
        f"    lds r27, {VAR_PTR + 1}",
        "    sbiw r26, 1",
        f"    sts {VAR_PTR}, r26",
        f"    sts {VAR_PTR + 1}, r27",
        f"    lds r16, {VAR_BYTES}",
        "    dec r16",
        f"    sts {VAR_BYTES}, r16",
        "    breq all_done",
        "    jmp digit_loop",
        "all_done:",
        "    break",
        "",
        # digit 0: nothing; digit +1: ACC *= a*R; digit -1: ACC *= a^-1*R.
        "digit_step:",
        f"    lds r16, {VAR_DIG}",
        "    tst r16",
        "    brne digit_nonzero",   # <- secret-dependent branch (flagged)
        "    ret",
        "digit_nonzero:",
        "    sbrs r16, 7",          # <- secret-dependent skip (flagged)
        "    jmp digit_pos",
    ]
    lines += _call_mul("ACC", "ANEG", "T")
    lines += ["    call copy_t_acc", "    ret", "digit_pos:"]
    lines += _call_mul("ACC", "APOS", "T")
    lines += ["    call copy_t_acc", "    ret", "", "copy_t_acc:"]
    for i in range(OPERAND_BYTES):
        lines += [f"    lds r16, {EXPO_SLOTS['T'] + i}",
                  f"    sts {EXPO_SLOTS['ACC'] + i}, r16"]
    lines.append("    ret")
    lines.append("")
    lines += emit_field_subroutines(constants, mode)
    return "\n".join(lines) + "\n"


class ExpoKernel:
    """Assemble once, run ``a^k mod p`` on the simulator; host-verified.

    *method* is ``"daaa"`` (constant-time, masked select) or ``"naf"``
    (leaky digit dispatch).  The exponent is staged little-endian at
    ``ADDR_EXP`` — raw bytes for DAAA, recoded NAF digit bytes for NAF —
    which is what a constant-time check marks secret.
    """

    def __init__(self, constants: OpfConstants, mode: Mode,
                 method: str = "daaa", exp_bytes: int = 2,
                 engine: Optional[str] = None):
        if method not in ("daaa", "naf"):
            raise ValueError(f"unknown exponentiation method {method!r}")
        self.constants = constants
        self.mode = mode
        self.method = method
        self.exp_bytes = exp_bytes
        generator = (generate_daaa_expo_program if method == "daaa"
                     else generate_naf_expo_program)
        self.program = assemble(generator(constants, mode, exp_bytes))
        self.core = AvrCore(ProgramMemory(num_words=65536), mode=mode,
                            sram_size=4096, engine=engine)
        self.program.load_into(self.core.program)
        self.profiler: Optional[Profiler] = None

    @property
    def code_bytes(self) -> int:
        return self.program.size_bytes

    @property
    def secret_region(self) -> Tuple[int, int]:
        """(address, length) of the staged secret exponent material."""
        if self.method == "naf":
            return ADDR_EXP, 8 * self.exp_bytes + 1
        return ADDR_EXP, self.exp_bytes

    def attach_profiler(self) -> Profiler:
        self.profiler = Profiler()
        self.profiler.set_symbols(self.program.symbols)
        self.core.attach_profiler(self.profiler)
        return self.profiler

    def load_operands(self, k: int, a: int) -> None:
        """Stage base, its Montgomery constants and the exponent; reset."""
        bits = 8 * self.exp_bytes
        if not 0 <= k < (1 << bits):
            raise ValueError(f"exponent must fit in {bits} bits")
        p = self.constants.p
        if not 1 <= a < p:
            raise ValueError("base must be in [1, p)")
        r = 1 << 160
        data = self.core.data
        data.load_bytes(EXPO_SLOTS["ACC"], (r % p).to_bytes(20, "little"))
        data.load_bytes(EXPO_SLOTS["ONE"], (r % p).to_bytes(20, "little"))
        data.load_bytes(EXPO_SLOTS["APOS"],
                        (a * r % p).to_bytes(20, "little"))
        data.load_bytes(EXPO_SLOTS["ANEG"],
                        (pow(a, -1, p) * r % p).to_bytes(20, "little"))
        if self.method == "naf":
            digits = naf_digits(k)
            address, length = self.secret_region
            buf = bytearray(length)
            for i, d in enumerate(digits):
                buf[i] = d & 0xFF   # 0 -> 0x00, +1 -> 0x01, -1 -> 0xFF
            data.load_bytes(address, bytes(buf))
        else:
            data.load_bytes(ADDR_EXP, k.to_bytes(self.exp_bytes, "little"))
        if self.profiler is not None:
            self.profiler.reset()
        self.core.reset(pc=0)  # also restores SP to top-of-SRAM

    def result(self) -> int:
        """``a^k mod p``, converted out of the Montgomery domain."""
        p = self.constants.p
        acc = int.from_bytes(
            self.core.data.dump_bytes(EXPO_SLOTS["ACC"], 20), "little")
        return acc * pow(1 << 160, -1, p) % p

    def run(self, k: int, a: int,
            max_steps: int = 200_000_000) -> Tuple[int, int]:
        """Execute; returns ``(a^k mod p, cycles)``."""
        self.load_operands(k, a)
        cycles = self.core.run(max_steps=max_steps)
        return self.result(), cycles
