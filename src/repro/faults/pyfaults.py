"""Algorithm-level fault hooks for the Python ECC implementations.

The ISS-level injector (:mod:`repro.faults.injector`) strikes the simulated
hardware; the helpers here model the *same adversary* one abstraction up, so
campaigns can measure countermeasure coverage on the Python ladder and the
protocol layers without paying simulator time (DESIGN.md §7):

* :class:`LadderFault` — corrupt one ladder-state coordinate after one
  chosen rung, via the ``step_hook`` seam of
  :func:`repro.scalarmult.montgomery_ladder_x`.
* :class:`FaultyMult` — wrap a scalar-multiplication backend and corrupt
  the result (coordinate bit flip) or the scalar (transient bit flip) of
  exactly one call, leaving retries clean — the single-transient-fault
  model protocol hardening is designed against.
* :func:`flip_element` — the shared one-bit field-element corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

from ..curves.montgomery import XZPoint
from ..curves.point import AffinePoint, MaybePoint
from ..field.element import FpElement

__all__ = [
    "FaultyMult",
    "LadderFault",
    "flip_element",
    "generate_ladder_faults",
    "generate_mult_faults",
]


def flip_element(element: FpElement, bit: int) -> FpElement:
    """Return *element* with one bit of its canonical residue inverted."""
    return element.field.from_int(element.to_int() ^ (1 << bit))


@dataclass(frozen=True)
class LadderFault:
    """Flip one bit of one ladder-state coordinate after one rung.

    ``register`` selects R0 (the accumulating point) or R1 (the +P
    companion); ``coord`` the X or Z coordinate; ``rung`` counts processed
    scalar bits MSB-first starting at 0.
    """

    rung: int
    register: str  # "r0" | "r1"
    coord: str     # "x" | "z"
    bit: int

    def __post_init__(self) -> None:
        if self.register not in ("r0", "r1"):
            raise ValueError("register must be 'r0' or 'r1'")
        if self.coord not in ("x", "z"):
            raise ValueError("coord must be 'x' or 'z'")
        if self.rung < 0 or self.bit < 0:
            raise ValueError("rung and bit must be non-negative")

    def hook(self) -> Callable:
        """A ``step_hook`` for the ladder applying this fault once."""
        def step_hook(rung: int, r0: XZPoint, r1: XZPoint):
            if rung != self.rung:
                return None
            point = r0 if self.register == "r0" else r1
            x, z = point.x, point.z
            if self.coord == "x":
                x = flip_element(x, self.bit)
            else:
                z = flip_element(z, self.bit)
            faulted = XZPoint(x, z)
            return (faulted, r1) if self.register == "r0" else (r0, faulted)
        return step_hook

    def as_dict(self) -> dict:
        return {"rung": self.rung, "register": self.register,
                "coord": self.coord, "bit": self.bit}


def generate_ladder_faults(n: int, seed: int, rungs: int,
                           bits: int = 160) -> List[LadderFault]:
    """Seeded ladder-state faults (uniform over rung, register, coord, bit)."""
    rng = random.Random(seed)
    faults = []
    for _ in range(n):
        faults.append(LadderFault(
            rung=rng.randrange(rungs),
            register=("r0", "r1")[rng.randrange(2)],
            coord=("x", "z")[rng.randrange(2)],
            bit=rng.randrange(bits),
        ))
    return faults


class FaultyMult:
    """Corrupt exactly one call of a scalar-multiplication backend.

    ``kind="x"``/``"y"`` flips one bit of that coordinate of the returned
    point; ``kind="scalar"`` flips one bit of the scalar *used inside the
    corrupted call* (the stored key material is untouched, so a clean
    retry recomputes correctly — a transient datapath fault, not key
    corruption).  Calls are counted from 0 across the wrapper's lifetime.
    """

    def __init__(self, mult: Callable[[int, AffinePoint], MaybePoint],
                 call_index: int = 0, kind: str = "x", bit: int = 0):
        if kind not in ("x", "y", "scalar"):
            raise ValueError("kind must be 'x', 'y' or 'scalar'")
        self.mult = mult
        self.call_index = call_index
        self.kind = kind
        self.bit = bit
        self.calls = 0

    def __call__(self, k: int, point: AffinePoint) -> MaybePoint:
        index = self.calls
        self.calls += 1
        if index != self.call_index:
            return self.mult(k, point)
        if self.kind == "scalar":
            return self.mult(k ^ (1 << self.bit), point)
        result = self.mult(k, point)
        if result is None:
            return result
        if self.kind == "x":
            return AffinePoint(flip_element(result.x, self.bit), result.y)
        return AffinePoint(result.x, flip_element(result.y, self.bit))

    def as_dict(self) -> dict:
        return {"call_index": self.call_index, "kind": self.kind,
                "bit": self.bit}


def generate_mult_faults(n: int, seed: int, bits: int = 160) -> List[dict]:
    """Seeded parameter dicts for :class:`FaultyMult` (call 0 of each run)."""
    rng = random.Random(seed)
    faults = []
    for _ in range(n):
        kind = ("x", "y", "scalar")[rng.randrange(3)]
        faults.append({"call_index": 0, "kind": kind,
                       "bit": rng.randrange(bits)})
    return faults
