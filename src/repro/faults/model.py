"""The fault model: seeded, reproducible ``(cycle, target, kind)`` triples.

Every injected fault is a :class:`FaultSpec` — a frozen description of *when*
(a trigger cycle), *where* (an architectural target) and *what* (the
corruption applied).  Campaigns draw their fault lists from
:func:`generate_faults` with an explicit seed, so a campaign is a pure
function of ``(program, operands, n, seed)`` and reruns byte-identically.
The taxonomy (DESIGN.md §7 "Fault model & countermeasures"):

========  =========  =====================================================
target    kind       effect at the trigger cycle
========  =========  =====================================================
sram      bitflip    one bit of one data-space byte inverted
reg       bitflip    one bit of one general-purpose register inverted
acc       bitflip    one bit of the MAC accumulator (R0..R8) inverted
code      skip       the next instruction is fetched but not executed
code      opcode     one bit of the next fetched instruction word inverted
                     for a single execution (transient corruption; the
                     flash word is restored afterwards)
========  =========  =====================================================

All faults are *transient single faults* — the standard adversary model for
glitch/EM injection on microcontrollers.  Permanent (stuck-at) faults and
multi-fault adversaries are out of scope; the countermeasure analysis in
DESIGN.md states which guarantees survive which model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULT_TARGETS",
    "FaultDetectedError",
    "FaultSpec",
    "generate_faults",
]

FAULT_TARGETS = ("sram", "reg", "acc", "code")
FAULT_KINDS = ("bitflip", "skip", "opcode")

#: Accumulator register window (the ISE MAC unit owns R0..R8).
ACC_REGISTERS = 9


class FaultDetectedError(RuntimeError):
    """A hardened computation refused to emit a (possibly) corrupted result.

    Raised by the checked ladder, the self-verifying protocol paths and the
    kernel output validators when a countermeasure trips and bounded retry
    (where applicable) is exhausted.  Campaigns classify any run ending in
    this exception as *detected*.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: trigger cycle, target, kind, location.

    ``address`` is a data-space byte address for ``sram``, a register index
    for ``reg``, an accumulator byte index (0..8, i.e. R0..R8) for ``acc``
    and unused for ``code`` faults (which strike the instruction at the
    program counter reached at the trigger cycle).  ``bit`` selects the bit
    flipped: 0..7 for byte targets, 0..15 for ``opcode`` word corruption,
    unused for ``skip``.

    The trigger fires at the first *instruction boundary* at which the
    core's cycle counter has reached ``cycle`` — the same boundary under
    the reference interpreter and the fast engine, which is what makes the
    injection engine-independent.
    """

    cycle: int
    target: str
    kind: str
    address: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("trigger cycle must be non-negative")
        if self.target not in FAULT_TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "bitflip":
            if self.target == "code":
                raise ValueError("bitflip faults target sram/reg/acc")
            if not 0 <= self.bit < 8:
                raise ValueError("byte bitflips select bit 0..7")
            if self.target == "reg" and not 0 <= self.address < 32:
                raise ValueError("register fault address must be 0..31")
            if self.target == "acc" and not 0 <= self.address < ACC_REGISTERS:
                raise ValueError("accumulator fault address must be 0..8")
        else:
            if self.target != "code":
                raise ValueError(f"{self.kind} faults target 'code'")
            if self.kind == "opcode" and not 0 <= self.bit < 16:
                raise ValueError("opcode corruption selects bit 0..15")

    def describe(self) -> str:
        if self.kind == "bitflip":
            return (f"{self.target}[{self.address:#06x}] bit {self.bit} "
                    f"@ cycle {self.cycle}")
        if self.kind == "skip":
            return f"instruction skip @ cycle {self.cycle}"
        return f"opcode bit {self.bit} @ cycle {self.cycle}"

    def as_dict(self) -> dict:
        return {"cycle": self.cycle, "target": self.target,
                "kind": self.kind, "address": self.address, "bit": self.bit}


def generate_faults(n: int, seed: int, max_cycle: int,
                    sram_ranges: Sequence[Tuple[int, int]] = (),
                    registers: bool = True,
                    accumulator: bool = False,
                    code: bool = True) -> List[FaultSpec]:
    """Draw *n* seeded faults with trigger cycles in ``[1, max_cycle)``.

    ``sram_ranges`` lists half-open byte-address windows eligible for SRAM
    flips (normally the kernel's operand/state region — faults in untouched
    SRAM are trivially benign and would only dilute the campaign).
    ``accumulator`` should be enabled for ISE-mode campaigns only; CA/FAST
    cores have no MAC unit to strike.
    """
    if n < 0:
        raise ValueError("fault count must be non-negative")
    if max_cycle < 2:
        raise ValueError("max_cycle must leave room for a trigger >= 1")
    menu: List[str] = []
    if sram_ranges:
        menu.append("sram")
    if registers:
        menu.append("reg")
    if accumulator:
        menu.append("acc")
    if code:
        menu.extend(["skip", "opcode"])
    if not menu:
        raise ValueError("no fault targets enabled")
    rng = random.Random(seed)
    faults: List[FaultSpec] = []
    for _ in range(n):
        cycle = rng.randrange(1, max_cycle)
        choice = menu[rng.randrange(len(menu))]
        if choice == "sram":
            lo, hi = sram_ranges[rng.randrange(len(sram_ranges))]
            faults.append(FaultSpec(cycle, "sram", "bitflip",
                                    rng.randrange(lo, hi), rng.randrange(8)))
        elif choice == "reg":
            faults.append(FaultSpec(cycle, "reg", "bitflip",
                                    rng.randrange(32), rng.randrange(8)))
        elif choice == "acc":
            faults.append(FaultSpec(cycle, "acc", "bitflip",
                                    rng.randrange(ACC_REGISTERS),
                                    rng.randrange(8)))
        elif choice == "skip":
            faults.append(FaultSpec(cycle, "code", "skip"))
        else:
            faults.append(FaultSpec(cycle, "code", "opcode",
                                    bit=rng.randrange(16)))
    return faults
