"""Deterministic fault injection (DESIGN.md §7 "Fault model & countermeasures").

Three layers, lowest first:

* :mod:`repro.faults.model` — the fault taxonomy: seeded
  ``(cycle, target, kind)`` :class:`FaultSpec` triples and the
  :class:`FaultDetectedError` contract hardened code signals with.
* :mod:`repro.faults.injector` — applies specs to a running
  :class:`~repro.avr.core.AvrCore`, engine-independently: identical
  fault placement under the reference interpreter and the block-compiling
  fast engine.
* :mod:`repro.faults.pyfaults` — the same adversary against the Python
  algorithms (ladder-state flips, corrupted scalar-mult backends).

Campaigns over these live in :mod:`repro.analysis.faults`
(``python -m repro faults``).
"""

from .injector import AppliedFault, FaultInjector
from .model import (
    FAULT_KINDS,
    FAULT_TARGETS,
    FaultDetectedError,
    FaultSpec,
    generate_faults,
)
from .pyfaults import (
    FaultyMult,
    LadderFault,
    flip_element,
    generate_ladder_faults,
    generate_mult_faults,
)

__all__ = [
    "AppliedFault",
    "FAULT_KINDS",
    "FAULT_TARGETS",
    "FaultDetectedError",
    "FaultInjector",
    "FaultSpec",
    "FaultyMult",
    "LadderFault",
    "flip_element",
    "generate_faults",
    "generate_ladder_faults",
    "generate_mult_faults",
]
