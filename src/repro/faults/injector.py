"""Deterministic fault injection into a running :class:`AvrCore`.

The injector drives the core itself so that a fault lands at a precise,
engine-independent point: the first **instruction boundary** at which the
cycle counter has reached the fault's trigger cycle.  On a ``reference``
core that boundary is reached by single-stepping.  On a ``fast`` core the
injector advances in compiled-block strides (:meth:`FastEngine.step_block`)
while the trigger is provably more than one block away — a block can cost at
most ``MAX_BLOCK_INSTRUCTIONS * _MAX_INSTR_CYCLES`` cycles — and switches to
single-stepping for the final approach.  Both engines therefore interrupt
at the *same* boundary with the same architectural state, which is what the
engine-parity tests in ``tests/test_faults.py`` assert.

Fault application (see :mod:`repro.faults.model` for the taxonomy):

* ``sram`` / ``reg`` / ``acc`` bit flips write the data space directly —
  a physical SEU on the SRAM macro or register file, not a bus access, so
  no I/O hooks fire.
* ``skip`` decodes the instruction at PC and advances PC past it without
  executing — the classic glitch effect.
* ``opcode`` XORs one bit into the flash word at PC, executes exactly one
  instruction through the reference interpreter, then restores the word.
  Both writes bump :attr:`ProgramMemory.version`, so the decode cache and
  any compiled blocks covering the corrupted word are invalidated and the
  fast engine recompiles (hitting the global block cache once the original
  word is back) — transient corruption never leaks into later execution.

After all faults are applied the program runs to completion (``BREAK``)
with the core's configured engine.  Crashes — illegal opcodes, MAC hazards,
out-of-range memory traffic, exceeded step budgets — propagate to the
caller; campaigns classify them as *detected* (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..avr.core import AvrCore
from ..avr.engine import MAX_BLOCK_INSTRUCTIONS
from .model import FaultSpec

__all__ = ["AppliedFault", "FaultInjector"]

#: Conservative upper bound on the cycles one instruction can consume
#: (longest CALL/RET timing plus MAC stall drain headroom in ISE mode).
_MAX_INSTR_CYCLES = 16

#: A compiled block can never cost more cycles than this.
_BLOCK_CYCLE_BOUND = MAX_BLOCK_INSTRUCTIONS * _MAX_INSTR_CYCLES


@dataclass(frozen=True)
class AppliedFault:
    """Where a fault actually landed: the PC/cycle at its boundary."""

    spec: FaultSpec
    pc: int
    cycle: int
    applied: bool  # False when the program halted before the trigger


class FaultInjector:
    """Run a core to completion with faults injected at their triggers.

    The core must be freshly staged (operands loaded, ``reset()`` done) and
    must not have a profiler attached — profiled fast-engine runs fold
    their tallies only at run end, which an interposed fault would split.
    """

    def __init__(self, core: AvrCore, faults: Sequence[FaultSpec],
                 max_steps: int = 200_000_000):
        if core.profiler is not None:
            raise ValueError("fault injection does not support an attached "
                             "profiler; detach it first")
        self.core = core
        # Stable sort: faults sharing a trigger apply in list order.
        self.faults = sorted(faults, key=lambda s: s.cycle)
        self.max_steps = max_steps
        self._engine = None
        if core.engine in ("fast", "trace"):
            # Superblocks carry no fault hooks: trace-engine cores advance
            # on the fast tier between triggers, exactly as the trace
            # dispatcher's own fallback ladder prescribes.
            from ..avr.engine import FastEngine
            if core._fast_engine is None:
                core._fast_engine = FastEngine(core)
            self._engine = core._fast_engine

    # -- driving ------------------------------------------------------------

    def _steps_used(self) -> int:
        return self.core.instructions_retired

    def _advance_to(self, trigger: int) -> None:
        """Run until the first instruction boundary with cycles >= trigger."""
        core = self.core
        engine = self._engine
        while not core.halted and core.cycles < trigger:
            if engine is not None and (
                    core.cycles + _BLOCK_CYCLE_BOUND < trigger):
                engine.step_block()
            else:
                core.step()
            if self._steps_used() > self.max_steps:
                from ..avr.core import ExecutionError
                raise ExecutionError(
                    f"step budget of {self.max_steps} exceeded while "
                    f"advancing to fault trigger {trigger}"
                )

    # -- fault application --------------------------------------------------

    def _apply(self, spec: FaultSpec) -> None:
        core = self.core
        if spec.kind == "bitflip":
            address = spec.address
            if spec.target == "sram":
                if not 0 <= address < core.data.size:
                    raise ValueError(
                        f"sram fault address {address:#06x} outside the "
                        f"data space")
            # reg/acc addresses are register indices == data addresses.
            core.data._mem[address] ^= 1 << spec.bit
        elif spec.kind == "skip":
            _spec, _ops, words = core.decode_at(core.pc)
            core.pc += words
        else:  # opcode
            pc = core.pc
            original = core.program.fetch(pc)
            core.program.write_word(pc, original ^ (1 << spec.bit))
            try:
                core.step()
            finally:
                core.program.write_word(pc, original)

    # -- entry point --------------------------------------------------------

    def run(self) -> List[AppliedFault]:
        """Inject every fault at its trigger, then run to completion.

        Returns the per-fault application log.  Any exception the faulted
        program raises (illegal opcode, MAC hazard, memory range error,
        step budget) propagates after the architectural state has been
        synchronized — callers classify it.
        """
        core = self.core
        log: List[AppliedFault] = []
        for spec in self.faults:
            self._advance_to(spec.cycle)
            if core.halted:
                log.append(AppliedFault(spec, core.pc, core.cycles, False))
                continue
            log.append(AppliedFault(spec, core.pc, core.cycles, True))
            self._apply(spec)
        if not core.halted:
            remaining = self.max_steps - self._steps_used()
            if remaining <= 0:
                from ..avr.core import ExecutionError
                raise ExecutionError(
                    f"step budget of {self.max_steps} exhausted before "
                    f"completion")
            core.run(max_steps=remaining)
        return log
