"""Birational maps between the curve families.

Every Montgomery curve is birationally equivalent to a twisted Edwards curve
and isomorphic (over F_p) to a short Weierstraß curve.  The reproduction uses
these maps in two ways:

* to *generate* a consistent Montgomery/Edwards pair of curves (so the two
  families can be cross-checked against each other in tests), and
* to validate the x-only ladder against full-point arithmetic.

Exceptional points of the rational maps (v = 0 or u = -1 on the Montgomery
side, y = 1 or x = 0 on the Edwards side) are rejected with ``ValueError``;
callers that may hit them (the identity and the 2-torsion) must special-case.
"""

from __future__ import annotations

from typing import Tuple

from .edwards import TwistedEdwardsCurve
from .montgomery import MontgomeryCurve
from .point import AffinePoint
from .weierstrass import WeierstrassCurve


def montgomery_to_edwards_params(curve: MontgomeryCurve) -> Tuple[int, int]:
    """(a, d) of the twisted Edwards curve equivalent to a Montgomery curve.

    a = (A + 2)/B and d = (A - 2)/B.
    """
    p = curve.field.p
    b_inv = pow(curve.b_int, -1, p)
    a = (curve.a_int + 2) * b_inv % p
    d = (curve.a_int - 2) * b_inv % p
    return a, d


def edwards_to_montgomery_params(curve: TwistedEdwardsCurve) -> Tuple[int, int]:
    """(A, B) of the Montgomery curve equivalent to a twisted Edwards curve.

    A = 2(a + d)/(a - d) and B = 4/(a - d).
    """
    p = curve.field.p
    diff_inv = pow((curve.a_int - curve.d_int) % p, -1, p)
    big_a = 2 * (curve.a_int + curve.d_int) * diff_inv % p
    big_b = 4 * diff_inv % p
    return big_a, big_b


def montgomery_to_weierstrass_params(curve: MontgomeryCurve) -> Tuple[int, int]:
    """(a, b) of the short Weierstraß form of a Montgomery curve.

    a = (3 - A^2) / (3 B^2),  b = (2 A^3 - 9 A) / (27 B^3).
    """
    p = curve.field.p
    big_a, big_b = curve.a_int, curve.b_int
    inv3b2 = pow(3 * big_b * big_b % p, -1, p)
    inv27b3 = pow(27 * pow(big_b, 3, p) % p, -1, p)
    a = (3 - big_a * big_a) * inv3b2 % p
    b = (2 * pow(big_a, 3, p) - 9 * big_a) * inv27b3 % p
    return a, b


def montgomery_point_to_edwards(mont: MontgomeryCurve,
                                edw: TwistedEdwardsCurve,
                                point: AffinePoint) -> AffinePoint:
    """(u, v) -> (x, y) = (u/v, (u - 1)/(u + 1))."""
    f = mont.field
    if point.y.is_zero():
        raise ValueError("2-torsion point (v = 0) is exceptional for the map")
    if (point.x + f.one).is_zero():
        raise ValueError("point with u = -1 is exceptional for the map")
    x = point.x / point.y
    y = (point.x - f.one) / (point.x + f.one)
    out = AffinePoint(x, y)
    if not edw.is_on_curve(out):
        raise AssertionError("Montgomery→Edwards map produced an off-curve point")
    return out


def edwards_point_to_montgomery(edw: TwistedEdwardsCurve,
                                mont: MontgomeryCurve,
                                point: AffinePoint) -> AffinePoint:
    """(x, y) -> (u, v) = ((1 + y)/(1 - y), (1 + y)/((1 - y) x))."""
    f = edw.field
    if point.x.is_zero():
        raise ValueError("point with x = 0 is exceptional for the map")
    if (f.one - point.y).is_zero():
        raise ValueError("point with y = 1 is exceptional for the map")
    ratio = (f.one + point.y) / (f.one - point.y)
    u = ratio
    v = ratio / point.x
    out = AffinePoint(u, v)
    if not mont.is_on_curve(out):
        raise AssertionError("Edwards→Montgomery map produced an off-curve point")
    return out


def montgomery_point_to_weierstrass(mont: MontgomeryCurve,
                                    weier: WeierstrassCurve,
                                    point: AffinePoint) -> AffinePoint:
    """(u, v) -> (t, s) = (u/B + A/(3B), v/B)."""
    f = mont.field
    b_inv = mont.b.invert()
    three_inv = f.from_int(pow(3, -1, f.p))
    t = point.x * b_inv + mont.a * three_inv * b_inv
    s = point.y * b_inv
    out = AffinePoint(t, s)
    if not weier.is_on_curve(out):
        raise AssertionError(
            "Montgomery→Weierstraß map produced an off-curve point"
        )
    return out


def edwards_curve_of(mont: MontgomeryCurve) -> TwistedEdwardsCurve:
    """The birationally equivalent twisted Edwards curve object."""
    a, d = montgomery_to_edwards_params(mont)
    return TwistedEdwardsCurve(mont.field, a, d,
                               name=f"edwards-of-{mont.name}")


def weierstrass_curve_of(mont: MontgomeryCurve) -> WeierstrassCurve:
    """The isomorphic short Weierstraß curve object."""
    a, b = montgomery_to_weierstrass_params(mont)
    return WeierstrassCurve(mont.field, a, b,
                            name=f"weierstrass-of-{mont.name}")
