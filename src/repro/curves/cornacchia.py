"""Point counting for j = 0 curves via Cornacchia's algorithm.

For a prime ``p ≡ 1 mod 3`` write ``p = a^2 + 3b^2`` (always possible, and
computable with Cornacchia's algorithm).  The six twists ``y^2 = x^3 + c``
then have traces of Frobenius in ``{±2a, ±(a + 3b), ±(a - 3b)}``, i.e. the
group order of any such curve is ``p + 1 - t`` for one of six known values.
Which trace belongs to which ``c`` depends on the sextic residue class of
``c``; instead of evaluating characters we simply test the candidates against
random points — enough points pin the order down uniquely.

This is what lets the parameter generator produce a *GLV curve of exactly
known (and prime) order* without a general-purpose SEA implementation.
"""

from __future__ import annotations

import random
from math import isqrt
from typing import List, Optional, Tuple

from ..field.inversion import tonelli_shanks_sqrt
from .weierstrass import WeierstrassCurve


def cornacchia_3(p: int) -> Tuple[int, int]:
    """Solve ``p = a^2 + 3*b^2`` for a prime ``p ≡ 1 mod 3``.

    Classic Cornacchia descent: start from a root of ``x^2 ≡ -3 (mod p)``
    and run the Euclidean algorithm until the remainder drops below
    ``sqrt(p)``; that remainder is ``a``.
    """
    if p % 3 != 1:
        raise ValueError("p = a^2 + 3b^2 requires p ≡ 1 mod 3")
    root = tonelli_shanks_sqrt((-3) % p, p)
    for r0 in (root, p - root):
        a, b = p, r0
        limit = isqrt(p)
        while b > limit:
            a, b = b, a % b
        remainder = p - b * b
        if remainder % 3 == 0:
            c = remainder // 3
            sc = isqrt(c)
            if sc * sc == c:
                if b * b + 3 * sc * sc != p:
                    raise AssertionError("Cornacchia postcondition failed")
                return b, sc
    raise ArithmeticError(f"Cornacchia failed for p = {p}")


def j0_order_candidates(p: int) -> List[int]:
    """The six possible group orders of ``y^2 = x^3 + c`` over F_p."""
    a, b = cornacchia_3(p)
    traces = {2 * a, -2 * a,
              a + 3 * b, -(a + 3 * b),
              a - 3 * b, -(a - 3 * b)}
    orders = sorted(p + 1 - t for t in traces)
    # Hasse bound sanity check.
    bound = 2 * isqrt(p)
    for n in orders:
        if not p + 1 - bound - 1 <= n <= p + 1 + bound + 1:
            raise AssertionError(f"candidate order {n} violates the Hasse bound")
    return orders


def determine_j0_order(curve: WeierstrassCurve, trials: int = 16,
                       rng: Optional[random.Random] = None) -> int:
    """The exact group order of a j = 0 curve ``y^2 = x^3 + b``.

    Tests the six Cornacchia candidates against random points; a candidate
    survives only if it annihilates every sampled point.  With enough
    independent points exactly one candidate survives (two candidates can
    share a common multiple of a point's order only with negligible
    probability once the point orders are large).
    """
    if curve.a_int != 0:
        raise ValueError("order determination requires a j = 0 curve (a = 0)")
    rng = rng or random.Random(0xC0FFEE)
    candidates = j0_order_candidates(curve.field.p)
    for _ in range(trials):
        point = curve.random_point(rng)
        survivors = [n for n in candidates
                     if curve.affine_scalar_mult(n, point) is None]
        if not survivors:
            raise AssertionError(
                "no candidate order annihilates a sampled point; "
                "Cornacchia trace set must be wrong"
            )
        candidates = survivors
        if len(candidates) == 1:
            return candidates[0]
    raise ArithmeticError(
        f"order ambiguous after {trials} trials: {candidates}"
    )
