"""Shared point types for the curve packages.

Affine points are the exchange format between curve families, protocols and
tests; each family additionally has its own projective representation
(Jacobian for Weierstraß/GLV, extended coordinates for twisted Edwards,
X:Z for the Montgomery ladder) defined in its own module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..field.element import FpElement


@dataclass(frozen=True)
class AffinePoint:
    """An affine point (x, y).  The point at infinity is ``None`` by
    convention wherever ``Optional[AffinePoint]`` appears."""

    x: FpElement
    y: FpElement

    def __repr__(self) -> str:
        return f"AffinePoint(x={self.x.to_int():#x}, y={self.y.to_int():#x})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffinePoint):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))


#: Type alias used across the curve modules.
MaybePoint = Optional[AffinePoint]
