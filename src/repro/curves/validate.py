"""Protocol input validation — the first fault/invalid-curve countermeasure.

Every hardened protocol path (DESIGN.md §7 "Fault model & countermeasures")
funnels untrusted inputs through these checks before any secret-dependent
arithmetic runs:

* :func:`validate_scalar` — range sanity for private scalars: positive,
  below (and not a multiple of) the subgroup order when it is known,
  within the fixed-length bit budget otherwise.
* :func:`validate_public_point` — membership of the *named* curve (the
  classic invalid-curve/twist attack gate) plus, when the prime subgroup
  order is known, an ``order * P == O`` subgroup check that also rejects
  every small-order point.
* :func:`validate_montgomery_x` — the x-only variant: lifts the received
  x-coordinate (rejecting twist x-values, since the reproduction's curves
  are not twist-secure) and refuses ``x = 0``, the order-2 point ``(0, 0)``
  a fault or a malicious peer could use to force a degenerate shared
  secret.

Validation failures raise ``ValueError`` — these are *input* rejections,
distinct from :class:`~repro.faults.model.FaultDetectedError`, which
hardened code raises when its own computation trips a countermeasure.
"""

from __future__ import annotations

from typing import Optional

from .montgomery import MontgomeryCurve
from .point import AffinePoint

__all__ = [
    "validate_montgomery_x",
    "validate_public_point",
    "validate_scalar",
]


def validate_scalar(k: int, order: Optional[int] = None,
                    bits: Optional[int] = None) -> int:
    """Check a private scalar; returns it unchanged on success."""
    if not isinstance(k, int):
        raise ValueError("scalar must be an int")
    if k <= 0:
        raise ValueError("scalar must be positive")
    if order is not None:
        if k % order == 0:
            raise ValueError("scalar is a multiple of the group order")
        if k >= order:
            raise ValueError("scalar must be below the group order")
    if bits is not None and k.bit_length() > bits:
        raise ValueError(f"scalar does not fit in {bits} bits")
    return k


def validate_public_point(curve, point: AffinePoint,
                          order: Optional[int] = None) -> AffinePoint:
    """Check a received public point; returns it unchanged on success.

    Works for any curve family exposing ``is_on_curve`` and (when *order*
    is given) ``affine_scalar_mult`` — Weierstraß, GLV, Montgomery.
    """
    if point is None:
        raise ValueError("public point must not be the point at infinity")
    if not curve.is_on_curve(point):
        raise ValueError("public point is not on the curve")
    if order is not None:
        if curve.affine_scalar_mult(order, point) is not None:
            raise ValueError(
                "public point is not in the prime-order subgroup")
    return point


def validate_montgomery_x(curve: MontgomeryCurve, x: int,
                          order: Optional[int] = None) -> AffinePoint:
    """Check a received x-only public value; returns a lifted point.

    ``lift_x`` raises for x-coordinates without a point on the curve
    (i.e. values on the quadratic twist); ``x = 0`` is the order-2 point.
    """
    if x % curve.field.p == 0:
        raise ValueError("x = 0 is the small-order point (0, 0)")
    try:
        point = curve.lift_x(x)
    except ValueError:
        raise ValueError(
            "x-coordinate has no point on the curve (twist value)"
        ) from None
    if order is not None:
        if curve.affine_scalar_mult(order, point) is not None:
            raise ValueError(
                "public point is not in the prime-order subgroup")
    return point
