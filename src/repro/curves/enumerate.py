"""Brute-force group enumeration for toy curves.

Only usable for small fields (the constructor refuses anything above 2^16);
the test suite uses it to validate group laws, orders and the Cornacchia
candidates against ground truth.
"""

from __future__ import annotations

from typing import List, Optional

from .edwards import TwistedEdwardsCurve
from .montgomery import MontgomeryCurve
from .point import AffinePoint
from .weierstrass import WeierstrassCurve

_MAX_TOY_FIELD = 1 << 16


def _check_toy(p: int) -> None:
    if p > _MAX_TOY_FIELD:
        raise ValueError(f"refusing to enumerate a field of size {p}")


def enumerate_weierstrass(curve: WeierstrassCurve) -> List[Optional[AffinePoint]]:
    """All points of a Weierstraß (or Montgomery-form-able) toy curve,
    including the point at infinity (represented as ``None``)."""
    _check_toy(curve.field.p)
    f = curve.field
    points: List[Optional[AffinePoint]] = [None]
    squares = {}
    for y in range(f.p):
        squares.setdefault(y * y % f.p, []).append(y)
    for x in range(f.p):
        fx = f.from_int(x)
        rhs = (fx.square() * fx + curve.a * fx + curve.b).to_int()
        for y in squares.get(rhs, []):
            points.append(AffinePoint(fx, f.from_int(y)))
    return points


def enumerate_montgomery(curve: MontgomeryCurve) -> List[Optional[AffinePoint]]:
    """All points of a Montgomery toy curve (including infinity)."""
    _check_toy(curve.field.p)
    f = curve.field
    points: List[Optional[AffinePoint]] = [None]
    b_inv = pow(curve.b_int, -1, f.p)
    squares = {}
    for y in range(f.p):
        squares.setdefault(y * y % f.p, []).append(y)
    for x in range(f.p):
        rhs = (x * x * x + curve.a_int * x * x + x) * b_inv % f.p
        for y in squares.get(rhs, []):
            points.append(AffinePoint(f.from_int(x), f.from_int(y)))
    return points


def enumerate_edwards(curve: TwistedEdwardsCurve) -> List[AffinePoint]:
    """All affine points of a twisted Edwards toy curve.

    For complete curves (a square, d non-square) this is the whole group;
    the identity (0, 1) is included as an ordinary affine point.
    """
    _check_toy(curve.field.p)
    f = curve.field
    points: List[AffinePoint] = []
    for x in range(f.p):
        for y in range(f.p):
            lhs = (curve.a_int * x * x + y * y) % f.p
            rhs = (1 + curve.d_int * x * x * y * y) % f.p
            if lhs == rhs:
                points.append(AffinePoint(f.from_int(x), f.from_int(y)))
    return points


def group_order_weierstrass(curve: WeierstrassCurve) -> int:
    """|E(F_p)| of a toy Weierstraß curve by exhaustive count."""
    return len(enumerate_weierstrass(curve))


def point_order(curve: WeierstrassCurve, point: AffinePoint,
                group_order: int) -> int:
    """Order of a point given the group order (checks divisors in order)."""
    divisors = sorted(
        d for d in range(1, group_order + 1) if group_order % d == 0
    )
    for d in divisors:
        if curve.affine_scalar_mult(d, point) is None:
            return d
    raise AssertionError("point order must divide the group order")
