"""Montgomery curves with x-only (X : Z) ladder arithmetic.

A Montgomery curve ``B*y^2 = x^3 + A*x^2 + x`` supports differential
addition: the x-coordinate of P + Q is computable from the x-coordinates of
P, Q and P - Q.  With the base point kept in affine form (Z = 1) the per-bit
cost of the Montgomery ladder is 5M + 4S plus one multiplication by the
small constant (A + 2)/4 — the paper's "5.3 M + 4 S per bit" once the small
multiplication is priced at 0.25-0.3 M.

Okeya-Sakurai y-recovery is included so ladder outputs can be validated
against full-point arithmetic (and so protocols can obtain complete points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..field.element import FpElement
from ..field.prime_field import PrimeField
from ..obs.trace import traced
from .point import AffinePoint, MaybePoint

#: Resolves the tracing counter from a bound point-op call.
_curve_counter = lambda self, *a, **k: self.field.counter  # noqa: E731


@dataclass(frozen=True)
class XZPoint:
    """x-only projective point (X : Z); the ladder's working representation.

    Z = 0 encodes the point at infinity.
    """

    x: FpElement
    z: FpElement

    def is_infinity(self) -> bool:
        return self.z.is_zero()


class MontgomeryCurve:
    """B*y^2 = x^3 + A*x^2 + x over a prime field.

    ``A`` is expected to be chosen so that (A + 2)/4 is a short integer (the
    paper multiplies by it with a ~0.27M small-constant multiplication); the
    constructor accepts any A and tracks whether the shortcut applies.
    """

    family = "montgomery"

    def __init__(self, field: PrimeField, a: int, b: int,
                 name: Optional[str] = None):
        a %= field.p
        b %= field.p
        if b == 0 or (a * a - 4) % field.p == 0:
            raise ValueError("invalid Montgomery curve: B(A^2 - 4) = 0")
        self.field = field
        self.a = field.from_int(a)
        self.b = field.from_int(b)
        self.a_int = a
        self.b_int = b
        if (a + 2) % 4 == 0 and (a + 2) // 4 < (1 << 16):
            #: (A + 2)/4 as a short plain constant, if it is one.
            self.a24_small: Optional[int] = (a + 2) // 4
        else:
            self.a24_small = None
        inv4 = pow(4, -1, field.p)
        self.a24 = field.from_int((a + 2) * inv4 % field.p)
        self.name = name or f"montgomery/{field.name}"

    # -- predicates -----------------------------------------------------------

    def is_on_curve(self, point: MaybePoint) -> bool:
        if point is None:
            return True
        lhs = self.b * point.y.square()
        rhs = (point.x.square() + self.a * point.x + self.field.one) * point.x
        return lhs == rhs

    # -- conversions ------------------------------------------------------------

    def xz_from_affine(self, point: AffinePoint) -> XZPoint:
        return XZPoint(point.x, self.field.one)

    def xz_from_x(self, x: int) -> XZPoint:
        return XZPoint(self.field.from_int(x), self.field.one)

    def x_affine(self, point: XZPoint) -> FpElement:
        """Affine x-coordinate (one inversion); raises at infinity."""
        if point.is_infinity():
            raise ValueError("the point at infinity has no affine x")
        return point.x * point.z.invert()

    # -- differential arithmetic ---------------------------------------------

    @traced("xdbl", kind="point", counter=_curve_counter)
    def xdbl(self, p: XZPoint) -> XZPoint:
        """x-only doubling: 2M + 2S + 1 small-constant multiplication."""
        s = (p.x + p.z).square()
        d = (p.x - p.z).square()
        c = s - d  # = 4 X Z
        x2 = s * d
        if self.a24_small is not None:
            t = c.mul_small(self.a24_small)
        else:
            t = c * self.a24
        z2 = c * (d + t)
        return XZPoint(x2, z2)

    @traced("xadd", kind="point", counter=_curve_counter)
    def xadd(self, p: XZPoint, q: XZPoint, diff: XZPoint) -> XZPoint:
        """Differential addition: x(P + Q) from x(P), x(Q) and x(P - Q).

        4M + 2S in general; 3M + 2S when the difference is affine (Z = 1),
        which is how the ladder uses it (the difference is the base point).
        """
        da = (p.x + p.z) * (q.x - q.z)
        cb = (p.x - p.z) * (q.x + q.z)
        plus = (da + cb).square()
        minus = (da - cb).square()
        if diff.z.is_one():
            x3 = plus  # multiplication by Z(diff) = 1 elided
        else:
            x3 = diff.z * plus
        z3 = diff.x * minus
        return XZPoint(x3, z3)

    def ladder_step(self, r0: XZPoint, r1: XZPoint,
                    base: XZPoint) -> Tuple[XZPoint, XZPoint]:
        """One Montgomery-ladder rung: (R0, R1) -> (2*R0, R0 + R1)."""
        return self.xdbl(r0), self.xadd(r0, r1, base)

    # -- y-recovery and full-point reference arithmetic ----------------------

    def recover_y(self, base: AffinePoint, xq: FpElement,
                  x_next: FpElement) -> AffinePoint:
        """Okeya-Sakurai y-coordinate recovery.

        Given the affine base point P, the affine x of Q = k*P and the affine
        x of (k+1)*P, return Q with its y coordinate.
        """
        f = self.field
        two_a = self.a + self.a
        t1 = base.x * xq + f.one
        t2 = base.x + xq + two_a
        t3 = (base.x - xq).square() * x_next
        numerator = t1 * t2 - two_a - t3
        denominator = (self.b + self.b) * base.y
        return AffinePoint(xq, numerator / denominator)

    def affine_add(self, p: MaybePoint, q: MaybePoint) -> MaybePoint:
        """Full affine chord-and-tangent addition (reference only)."""
        if p is None:
            return q
        if q is None:
            return p
        f = self.field
        if p.x == q.x:
            if p.y == q.y:
                if p.y.is_zero():
                    return None
                num = p.x.square() * 3 + self.a * (p.x + p.x) + f.one
                den = self.b * (p.y + p.y)
            else:
                return None
        else:
            num = q.y - p.y
            den = q.x - p.x
        slope = num / den
        x3 = self.b * slope.square() - self.a - p.x - q.x
        y3 = slope * (p.x - x3) - p.y
        return AffinePoint(x3, y3)

    def affine_neg(self, p: MaybePoint) -> MaybePoint:
        if p is None:
            return None
        return AffinePoint(p.x, -p.y)

    def affine_scalar_mult(self, k: int, p: MaybePoint) -> MaybePoint:
        """Reference scalar multiplication via affine double-and-add."""
        if k < 0:
            return self.affine_scalar_mult(-k, self.affine_neg(p))
        result: MaybePoint = None
        addend = p
        while k:
            if k & 1:
                result = self.affine_add(result, addend)
            addend = self.affine_add(addend, addend)
            k >>= 1
        return result

    def lift_x(self, x: int, y_parity: int = 0) -> AffinePoint:
        """Find a point with the given x coordinate (raises if none)."""
        f = self.field
        fx = f.from_int(x)
        rhs = (fx.square() + self.a * fx + f.one) * fx / self.b
        y = rhs.sqrt()
        if y.to_int() % 2 != y_parity % 2:
            y = -y
        return AffinePoint(fx, y)

    def random_point(self, rng=None) -> AffinePoint:
        import random as _random

        rng = rng or _random
        while True:
            x = rng.randrange(self.field.p)
            try:
                return self.lift_x(x, rng.randrange(2))
            except ValueError:
                continue

    def __repr__(self) -> str:
        return f"MontgomeryCurve({self.name})"
