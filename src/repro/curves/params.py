"""Frozen 160-bit curve parameters for the reproduction.

The OPF suite was produced by :mod:`repro.curves.paramgen` (re-run it to
re-derive everything); secp160r1 uses the public SECG constants.  The test
suite re-verifies every value: primality, curve-equation membership of the
base points, the GLV order/β/λ relations, and the Montgomery↔Edwards
birational link.

Naming follows the paper's Table II rows:

* ``SECP160R1``  — the standardized reference curve (generalized-Mersenne
  prime, separate assembly-style arithmetic path).
* ``OPF_WEIERSTRASS``, ``OPF_MONTGOMERY``, ``OPF_EDWARDS`` — over the
  paper's example prime ``p = 65356 * 2^144 + 1``.
* ``OPF_GLV`` — over ``p = 65361 * 2^144 + 1`` (p ≡ 1 mod 3), with exact
  prime group order obtained via Cornacchia point counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..field.opf import OptimalPrimeField
from ..field.prime_field import GenericPrimeField, PrimeField
from ..field.secp160r1_field import Secp160r1Field
from .edwards import TwistedEdwardsCurve
from .glv import GLVCurve
from .montgomery import MontgomeryCurve
from .point import AffinePoint
from .weierstrass import WeierstrassCurve

# ---------------------------------------------------------------------------
# OPF primes (u * 2^144 + 1 with a 16-bit u)
# ---------------------------------------------------------------------------

#: The paper's example prime (Section II-A); p ≡ 2 mod 3, p ≡ 1 mod 4.
OPF_U = 65356
OPF_K = 144
OPF_P = OPF_U * (1 << OPF_K) + 1

#: The GLV family needs p ≡ 1 mod 3; the paper's example prime does not
#: satisfy that, so the GLV curve gets its own 16-bit-u OPF prime.
GLV_U = 65361
GLV_K = 144
GLV_P = GLV_U * (1 << GLV_K) + 1

# ---------------------------------------------------------------------------
# Generated curve constants (see module docstring)
# ---------------------------------------------------------------------------

#: Weierstraß curve y^2 = x^3 - 3x + b over OPF_P.
WEIERSTRASS_B = 1
WEIERSTRASS_GX = 0x2877256B46FAE7CD55DEA538368CC5B9735CDF57
WEIERSTRASS_GY = 0x9DAE63B8B43BD0AF1A07D78035B8DE168067B335

#: Montgomery curve B*y^2 = x^3 + A*x^2 + x over OPF_P with (A + 2)/4 = 3
#: and B = -(A + 2) so the Edwards partner below has a = -1.
MONTGOMERY_A = 10
MONTGOMERY_B = (-(MONTGOMERY_A + 2)) % OPF_P
MONTGOMERY_GX = 0x9D9B532ABA4E6C3686FF0DE26A7698065AAB0A37
MONTGOMERY_GY = 0x9A621A29E7ACCAA07B6CC35DE9016437FC161B2E

#: Twisted Edwards curve -x^2 + y^2 = 1 + d*x^2*y^2, birationally equivalent
#: to the Montgomery curve above (d is a non-square => complete addition).
EDWARDS_A = OPF_P - 1
EDWARDS_D = 0x5519555555555555555555555555555555555555
EDWARDS_GX = 0xCA2BAD213558F3326D2BD4687B8F26EA0AC60D96
EDWARDS_GY = 0x7FCA84672D61C69A79BE3AA35D32F411443BBD97

#: GLV curve y^2 = x^3 + 10 over GLV_P; prime order determined exactly by
#: Cornacchia point counting (j = 0 trace candidates).
GLV_B = 10
GLV_ORDER = 0xFF5100000000000000006A92D0A9AE5E1FD462B3
GLV_BETA = 0x0EB9978168CC3A7992AD00A29DF1DCBA6A69FEE6
GLV_LAMBDA = 0xAC4416C3D631BA4983EB0ED28ABA4AA0A26B619A
GLV_GX = 0xCABE7B77153540B694D074334BAC57B96DCA890F
GLV_GY = 0x679667D0A59E7A841D6CEC1F0C15051FCB1E6FCB

# ---------------------------------------------------------------------------
# secp160r1 (SECG SEC 2 standard constants)
# ---------------------------------------------------------------------------

SECP160R1_P = (1 << 160) - (1 << 31) - 1
SECP160R1_A = SECP160R1_P - 3
SECP160R1_B = 0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45
SECP160R1_GX = 0x4A96B5688EF573284664698968C38BB913CBFC82
SECP160R1_GY = 0x23A628553168947D59DCC912042351377AC5FB32
SECP160R1_N = 0x0100000000000000000001F4C8F927AED3CA752257
SECP160R1_H = 1

# ---------------------------------------------------------------------------
# Curve-suite bundles
# ---------------------------------------------------------------------------


@dataclass
class CurveSuite:
    """A named curve instance bound to a freshly constructed field.

    Each call to a factory below builds a *new* field object so that the
    embedded operation counters start from zero — benchmark runs never
    contaminate each other.
    """

    key: str
    curve: object
    base: AffinePoint
    field: PrimeField
    #: Subgroup order of the base point when exactly known, else None.
    order: Optional[int]
    #: Bit length used for fixed-length (constant-round) algorithms.
    scalar_bits: int = 160


def _affine(field: PrimeField, x: int, y: int) -> AffinePoint:
    return AffinePoint(field.from_int(x), field.from_int(y))


def _fresh(suite: CurveSuite) -> CurveSuite:
    """Zero the counters so construction costs don't pollute measurements."""
    suite.field.counter.reset()
    return suite


def make_secp160r1(functional: bool = False) -> CurveSuite:
    """The standardized reference curve (Table II row 'secp160r1')."""
    field: PrimeField
    if functional:
        field = GenericPrimeField(SECP160R1_P, name="secp160r1-functional")
    else:
        field = Secp160r1Field()
    curve = WeierstrassCurve(field, SECP160R1_A, SECP160R1_B, name="secp160r1")
    base = _affine(field, SECP160R1_GX, SECP160R1_GY)
    return _fresh(CurveSuite("secp160r1", curve, base, field, SECP160R1_N))


def _opf_field(functional: bool, u: int = OPF_U, k: int = OPF_K,
               tag: str = "opf160") -> PrimeField:
    if functional:
        return GenericPrimeField(u * (1 << k) + 1, name=f"{tag}-functional")
    return OptimalPrimeField(u, k, name=tag)


def make_weierstrass(functional: bool = False) -> CurveSuite:
    """OPF Weierstraß curve (Table II row 'Weierstraß')."""
    field = _opf_field(functional)
    curve = WeierstrassCurve(field, -3, WEIERSTRASS_B, name="opf-weierstrass")
    base = _affine(field, WEIERSTRASS_GX, WEIERSTRASS_GY)
    return _fresh(CurveSuite("weierstrass", curve, base, field, None))


def make_montgomery(functional: bool = False) -> CurveSuite:
    """OPF Montgomery curve (Table II row 'Montgomery')."""
    field = _opf_field(functional)
    curve = MontgomeryCurve(field, MONTGOMERY_A, MONTGOMERY_B,
                            name="opf-montgomery")
    base = _affine(field, MONTGOMERY_GX, MONTGOMERY_GY)
    return _fresh(CurveSuite("montgomery", curve, base, field, None))


def make_edwards(functional: bool = False) -> CurveSuite:
    """OPF twisted Edwards curve (Table II row 'Edwards')."""
    field = _opf_field(functional)
    curve = TwistedEdwardsCurve(field, EDWARDS_A, EDWARDS_D,
                                name="opf-edwards")
    base = _affine(field, EDWARDS_GX, EDWARDS_GY)
    return _fresh(CurveSuite("edwards", curve, base, field, None))


def make_glv(functional: bool = False) -> CurveSuite:
    """OPF GLV curve (Table II row 'GLV'), exact prime order."""
    field = _opf_field(functional, GLV_U, GLV_K, tag="opf160-glv")
    curve = GLVCurve(field, GLV_B, GLV_BETA, GLV_LAMBDA, GLV_ORDER,
                     name="opf-glv")
    base = _affine(field, GLV_GX, GLV_GY)
    return _fresh(CurveSuite("glv", curve, base, field, GLV_ORDER))


#: Factories keyed the way the tables name their rows.
SUITE_FACTORIES: dict = {
    "secp160r1": make_secp160r1,
    "weierstrass": make_weierstrass,
    "edwards": make_edwards,
    "montgomery": make_montgomery,
    "glv": make_glv,
}


def make_suite(key: str, functional: bool = False) -> CurveSuite:
    """Construct a fresh curve suite by table-row name."""
    try:
        factory = SUITE_FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown curve suite {key!r}; "
            f"choose from {sorted(SUITE_FACTORIES)}"
        ) from None
    return factory(functional=functional)
