"""Twisted Edwards curves in extended coordinates (Hişil et al.).

The paper uses the extended twisted Edwards coordinates of Hişil, Wong,
Carter and Dawson (ASIACRYPT 2008): addition costs 7M in the mixed
(Z2 = 1) dedicated form, doubling costs 3M + 4S when the T coordinate of the
result is not needed (i.e. when the next operation is another doubling).
The addition law is *complete* for a square ``a`` and non-square ``d`` — the
property that makes the double-and-add-always algorithm straightforward on
Edwards curves (paper Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..field.element import FpElement
from ..field.prime_field import PrimeField
from ..obs.trace import traced
from .point import AffinePoint, MaybePoint

#: Resolves the tracing counter from a bound point-op call.
_curve_counter = lambda self, *a, **k: self.field.counter  # noqa: E731


@dataclass(frozen=True)
class ExtendedPoint:
    """(X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.

    ``t`` may be ``None`` for intermediate results of the cheap doubling
    formula; such a point must be re-extended (one multiplication) before it
    can be an *input* to an addition.
    """

    x: FpElement
    y: FpElement
    z: FpElement
    t: Optional[FpElement]

    def is_identity(self) -> bool:
        return self.x.is_zero() and self.y == self.z


@dataclass(frozen=True)
class NielsPoint:
    """Precomputed affine operand (y - x, y + x, 2d*x*y) for 7M additions."""

    y_minus_x: FpElement
    y_plus_x: FpElement
    t2d: FpElement


class TwistedEdwardsCurve:
    """a*x^2 + y^2 = 1 + d*x^2*y^2 over a prime field.

    The identity element is the affine point (0, 1).  For ``a = -1`` the
    dedicated 8M addition (7M mixed) is used; otherwise the unified
    Hişil formula with multiplications by the small constants ``a``/``d``.
    """

    family = "edwards"

    def __init__(self, field: PrimeField, a: int, d: int,
                 name: Optional[str] = None):
        if a % field.p == d % field.p:
            raise ValueError("twisted Edwards curve requires a != d")
        if a % field.p == 0 or d % field.p == 0:
            raise ValueError("twisted Edwards curve requires a, d != 0")
        self.field = field
        self.a = field.from_int(a)
        self.d = field.from_int(d)
        self.a_int = a % field.p
        self.d_int = d % field.p
        self.name = name or f"edwards/{field.name}"

    # -- predicates -------------------------------------------------------

    def is_on_curve(self, point: MaybePoint) -> bool:
        if point is None:
            return True  # by analogy; Edwards identity is affine (0, 1)
        x_sq = point.x.square()
        y_sq = point.y.square()
        lhs = self.a * x_sq + y_sq
        rhs = self.field.one + self.d * x_sq * y_sq
        return lhs == rhs

    def is_complete(self) -> bool:
        """True when the unified addition law is complete (a square, d not)."""
        f = self.field
        return f.is_square(self.a) and not f.is_square(self.d)

    # -- conversions ---------------------------------------------------------

    @property
    def identity(self) -> ExtendedPoint:
        f = self.field
        return ExtendedPoint(f.zero, f.one, f.one, f.zero)

    def affine_identity(self) -> AffinePoint:
        return AffinePoint(self.field.zero, self.field.one)

    def from_affine(self, point: MaybePoint) -> ExtendedPoint:
        if point is None:
            return self.identity
        return ExtendedPoint(point.x, point.y, self.field.one,
                             point.x * point.y)

    def to_affine(self, point: ExtendedPoint) -> AffinePoint:
        z_inv = point.z.invert()
        return AffinePoint(point.x * z_inv, point.y * z_inv)

    def reextend(self, point: ExtendedPoint) -> ExtendedPoint:
        """Recompute a missing T coordinate.

        T = XY/Z; for a point fresh out of the 3M+4S doubling we know
        E = X*Y/Z is available as E*H decomposition, but in this model we
        simply recompute T = (X*Y) * Z^-1-free trick is unavailable, so we
        use the doubling-with-T variant instead when the next op is an add.
        """
        if point.t is not None:
            return point
        raise ValueError(
            "cannot cheaply re-extend a T-less point; "
            "request compute_t=True from double() instead"
        )

    # -- group operations -------------------------------------------------------

    def neg(self, point: ExtendedPoint) -> ExtendedPoint:
        t = None if point.t is None else -point.t
        return ExtendedPoint(-point.x, point.y, point.z, t)

    def affine_neg(self, point: AffinePoint) -> AffinePoint:
        return AffinePoint(-point.x, point.y)

    @traced("double", kind="point", counter=_curve_counter)
    def double(self, point: ExtendedPoint,
               compute_t: bool = True) -> ExtendedPoint:
        """Extended-coordinate doubling.

        3M + 4S when ``compute_t`` is False (next op is another doubling),
        4M + 4S otherwise.  Does not require the input's T coordinate.
        """
        x1, y1, z1 = point.x, point.y, point.z
        a_sq = x1.square()
        b_sq = y1.square()
        z_sq = z1.square()
        c = z_sq + z_sq
        if self.a_int == self.field.p - 1:
            d_term = -a_sq
        else:
            d_term = self.a * a_sq
        e = (x1 + y1).square() - a_sq - b_sq
        g = d_term + b_sq
        f = g - c
        h = d_term - b_sq
        x3 = e * f
        y3 = g * h
        z3 = f * g
        t3 = e * h if compute_t else None
        return ExtendedPoint(x3, y3, z3, t3)

    @traced("add", kind="point", counter=_curve_counter)
    def add(self, p: ExtendedPoint, q: ExtendedPoint,
            compute_t: bool = True) -> ExtendedPoint:
        """Unified extended addition (works for P = Q, handles identity).

        9M plus multiplications by the constants a and d; complete when
        a is a square and d is not.  Both inputs need their T coordinate.
        """
        if p.t is None or q.t is None:
            raise ValueError("unified addition requires extended inputs (T)")
        a_term = p.x * q.x
        b_term = p.y * q.y
        c_term = self.d * (p.t * q.t)
        d_term = p.z * q.z
        e = (p.x + p.y) * (q.x + q.y) - a_term - b_term
        f = d_term - c_term
        g = d_term + c_term
        h = b_term - self.a * a_term
        x3 = e * f
        y3 = g * h
        z3 = f * g
        t3 = e * h if compute_t else None
        return ExtendedPoint(x3, y3, z3, t3)

    def add_dedicated_am1(self, p: ExtendedPoint, q: ExtendedPoint,
                          compute_t: bool = True) -> ExtendedPoint:
        """Dedicated a = -1 addition (Hişil et al., 8M; 7M mixed).

        Not unified: requires P != ±Q and neither input the identity.
        """
        if self.a_int != self.field.p - 1:
            raise ValueError("dedicated formula requires a = -1")
        if p.t is None or q.t is None:
            raise ValueError("dedicated addition requires extended inputs (T)")
        a_term = (p.y - p.x) * (q.y - q.x)
        b_term = (p.y + p.x) * (q.y + q.x)
        c_term = p.t * (self.d + self.d) * q.t
        d_term = p.z * (q.z + q.z)
        e = b_term - a_term
        f = d_term - c_term
        g = d_term + c_term
        h = b_term + a_term
        x3 = e * f
        y3 = g * h
        z3 = f * g
        t3 = e * h if compute_t else None
        return ExtendedPoint(x3, y3, z3, t3)

    def add_mixed(self, p: ExtendedPoint, q: MaybePoint,
                  compute_t: bool = True) -> ExtendedPoint:
        """Mixed addition with an affine second operand (Z2 = 1, saves 1M)."""
        if q is None:
            return p
        return self.add(p, self.from_affine(q), compute_t)

    def precompute(self, q: AffinePoint) -> "NielsPoint":
        """Cache the (y-x, y+x, 2d*x*y) triple of an affine point.

        With this precomputation the dedicated a = -1 addition drops to the
        paper's 7M (:meth:`add_precomputed`).
        """
        if self.a_int != self.field.p - 1:
            raise ValueError("precomputed form is defined for a = -1 curves")
        two_d = self.d + self.d
        return NielsPoint(q.y - q.x, q.y + q.x, two_d * (q.x * q.y))

    def add_precomputed(self, p: ExtendedPoint, q: "NielsPoint",
                        compute_t: bool = True) -> ExtendedPoint:
        """Dedicated a = -1 mixed addition with a precomputed operand: 7M.

        This is the cost the paper quotes for twisted Edwards point addition
        (Section II-C).  Not unified: P must not equal ±Q and neither input
        may be the identity.
        """
        if p.t is None:
            raise ValueError("precomputed addition requires an extended input")
        a_term = (p.y - p.x) * q.y_minus_x
        b_term = (p.y + p.x) * q.y_plus_x
        c_term = p.t * q.t2d
        d_term = p.z + p.z
        e = b_term - a_term
        f = d_term - c_term
        g = d_term + c_term
        h = b_term + a_term
        x3 = e * f
        y3 = g * h
        z3 = f * g
        t3 = e * h if compute_t else None
        return ExtendedPoint(x3, y3, z3, t3)

    # -- affine reference arithmetic -----------------------------------------

    def affine_add(self, p: MaybePoint, q: MaybePoint) -> MaybePoint:
        """The (twisted) Edwards addition law on affine points.

        x3 = (x1 y2 + y1 x2) / (1 + d x1 x2 y1 y2)
        y3 = (y1 y2 - a x1 x2) / (1 - d x1 x2 y1 y2)
        """
        if p is None:
            p = self.affine_identity()
        if q is None:
            q = self.affine_identity()
        f = self.field
        xx = p.x * q.x
        yy = p.y * q.y
        dxy = self.d * xx * yy
        x3 = (p.x * q.y + p.y * q.x) / (f.one + dxy)
        y3 = (yy - self.a * xx) / (f.one - dxy)
        return AffinePoint(x3, y3)

    def affine_scalar_mult(self, k: int, p: MaybePoint) -> AffinePoint:
        """Reference affine double-and-add."""
        if p is None:
            p = self.affine_identity()
        if k < 0:
            return self.affine_scalar_mult(-k, self.affine_neg(p))
        result = self.affine_identity()
        addend = p
        while k:
            if k & 1:
                result = self.affine_add(result, addend)
            addend = self.affine_add(addend, addend)
            k >>= 1
        return result

    def random_point(self, rng=None) -> AffinePoint:
        """Random affine point via rejection sampling on y."""
        import random as _random

        rng = rng or _random
        f = self.field
        while True:
            y = f.from_int(rng.randrange(f.p))
            y_sq = y.square()
            denom = self.a - self.d * y_sq
            if denom.is_zero():
                continue
            x_sq = (f.one - y_sq) / denom
            # a x^2 + y^2 = 1 + d x^2 y^2  =>  x^2 (a - d y^2) = 1 - y^2
            if not f.is_square(x_sq):
                continue
            x = x_sq.sqrt()
            if rng.randrange(2):
                x = -x
            return AffinePoint(x, y)

    def __repr__(self) -> str:
        return f"TwistedEdwardsCurve({self.name})"
