"""Generation of the 160-bit OPF curve-parameter suite.

The paper does not publish its OPF curve constants, so this module derives a
functionally equivalent suite (the frozen result lives in
:mod:`repro.curves.params`):

* ``OPF-W``   — a Weierstraß curve with a = -3 over the paper's example prime
  ``p = 65356 * 2^144 + 1``.
* ``OPF-M``   — a Montgomery curve over the same prime with a short
  ``(A + 2)/4`` constant, and ``B = -(A + 2)`` so that …
* ``OPF-E``   — … its birationally equivalent twisted Edwards curve has
  ``a = -1`` (enabling the 7M additions) and a non-square ``d`` (making the
  unified addition law complete).  Montgomery and Edwards results can then be
  cross-checked point by point.
* ``OPF-GLV`` — a j = 0 curve over ``p = 65361 * 2^144 + 1`` (the paper's
  prime has p ≡ 2 mod 3, so the GLV family needs its own OPF prime with
  p ≡ 1 mod 3) whose *exact, prime* group order is computed with
  Cornacchia's algorithm — giving a verified λ with φ(P) = λ·P.

Everything here is reproducible and self-checking; the test suite re-derives
small cases and re-verifies every frozen constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..field.prime_field import GenericPrimeField
from .cornacchia import determine_j0_order
from .glv import cube_roots_of_unity
from .point import AffinePoint
from .weierstrass import WeierstrassCurve


def is_probable_prime(n: int, rounds: int = 48,
                      rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test (deterministic enough at 48 rounds)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for sp in small_primes:
        if n % sp == 0:
            return n == sp
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or random.Random(0x5EED)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_opf_primes(k: int = 144, u_bits: int = 16,
                    residue_mod_3: Optional[int] = None) -> list:
    """All u values (of exactly *u_bits* bits) with ``u * 2^k + 1`` prime.

    Optionally filter by the residue of the prime modulo 3 (the GLV family
    requires p ≡ 1 mod 3).
    """
    lo, hi = 1 << (u_bits - 1), 1 << u_bits
    out = []
    for u in range(lo, hi):
        p = u * (1 << k) + 1
        if residue_mod_3 is not None and p % 3 != residue_mod_3:
            continue
        if is_probable_prime(p):
            out.append(u)
    return out


@dataclass(frozen=True)
class GeneratedMontgomeryPair:
    """A Montgomery curve plus its a = -1 twisted Edwards partner."""

    mont_a: int
    mont_b: int
    edwards_a: int
    edwards_d: int


def generate_montgomery_edwards_pair(p: int,
                                     max_a: int = 1 << 17,
                                     ) -> GeneratedMontgomeryPair:
    """Smallest Montgomery A giving a complete a = -1 Edwards partner.

    Constraints:
      * A ≡ 2 (mod 4) so (A + 2)/4 is an integer, and (A + 2)/4 < 2^16 so
        the paper's small-constant multiplication applies;
      * B = -(A + 2), which maps a = (A + 2)/B to -1 on the Edwards side;
      * d = (A - 2)/B must be a non-square so the Edwards addition law is
        complete (requires p ≡ 1 mod 4 so that a = -1 is a square).
    """
    if p % 4 != 1:
        raise ValueError("need p ≡ 1 mod 4 so that -1 is a square")

    def is_square(v: int) -> bool:
        v %= p
        return v == 0 or pow(v, (p - 1) // 2, p) == 1

    a = 6
    while a < max_a:
        if (a * a - 4) % p != 0:
            big_b = (-(a + 2)) % p
            d = (a - 2) * pow(big_b, -1, p) % p
            if d not in (0, 1) and not is_square(d):
                return GeneratedMontgomeryPair(
                    mont_a=a, mont_b=big_b,
                    edwards_a=p - 1, edwards_d=d,
                )
        a += 4
    raise ArithmeticError("no suitable Montgomery A found in range")


@dataclass(frozen=True)
class GeneratedGLV:
    """A j = 0 curve with verified prime order and matching (β, λ)."""

    b: int
    order: int
    beta: int
    lam: int
    gx: int
    gy: int


def generate_glv_curve(p: int, max_b: int = 200,
                       rng: Optional[random.Random] = None) -> GeneratedGLV:
    """Search ``y^2 = x^3 + b`` for a curve of prime order over F_p.

    The order comes from the Cornacchia trace candidates (exact, no SEA
    needed); λ is the root of ``x^2 + x + 1 mod n`` that matches the cube
    root of unity β on an actual point.
    """
    if p % 3 != 1:
        raise ValueError("GLV j = 0 curves require p ≡ 1 mod 3")
    rng = rng or random.Random(0x61A5)
    field = GenericPrimeField(p, name=f"paramgen-F_{p:#x}")
    betas = cube_roots_of_unity(p)
    for b in range(1, max_b):
        curve = WeierstrassCurve(field, 0, b)
        try:
            order = determine_j0_order(curve, rng=random.Random(b))
        except ArithmeticError:
            continue
        if not is_probable_prime(order):
            continue
        # λ solves λ^2 + λ + 1 ≡ 0 (mod n): λ = (-1 ± sqrt(-3)) / 2.
        from ..field.inversion import tonelli_shanks_sqrt

        try:
            sqrt_m3 = tonelli_shanks_sqrt((-3) % order, order)
        except ValueError:
            continue
        inv2 = pow(2, -1, order)
        lam_candidates = [(-1 + sqrt_m3) * inv2 % order,
                          (-1 - sqrt_m3) * inv2 % order]
        base = curve.random_point(rng)
        for beta in betas:
            phi_base = AffinePoint(base.x * field.from_int(beta), base.y)
            for lam in lam_candidates:
                if curve.affine_scalar_mult(lam, base) == phi_base:
                    return GeneratedGLV(
                        b=b, order=order, beta=beta, lam=lam,
                        gx=base.x.to_int(), gy=base.y.to_int(),
                    )
        # One of the combinations must match for a prime-order curve.
        raise AssertionError(f"no (β, λ) pairing matched for b = {b}")
    raise ArithmeticError(f"no prime-order j = 0 curve with b < {max_b}")


def generate_weierstrass_curve(p: int, rng: Optional[random.Random] = None,
                               ) -> Tuple[int, int, int]:
    """An a = -3 Weierstraß curve with a verified base point.

    Returns (b, gx, gy).  The group order is left undetermined (counting a
    general 160-bit curve needs SEA, see DESIGN.md) — none of the paper's
    performance experiments need it.
    """
    rng = rng or random.Random(0xB00)
    field = GenericPrimeField(p, name=f"paramgen-F_{p:#x}")
    b = 1
    while True:
        try:
            curve = WeierstrassCurve(field, -3, b)
        except ValueError:
            b += 1
            continue
        try:
            base = curve.random_point(rng)
        except ValueError:
            b += 1
            continue
        return b, base.x.to_int(), base.y.to_int()
