"""Weierstraß curves with Jacobian-coordinate arithmetic.

The paper evaluates a conventional Weierstraß curve (and secp160r1) using
Jacobian coordinates with mixed Jacobian-affine addition — 8M + 3S per
addition, 4M + 4S per doubling for a = -3, and 3M + 4S per doubling for the
GLV case a = 0 (Section II-D).  All of those formula variants are implemented
here and selected automatically from the curve's ``a`` parameter, so the
field-operation counts seen by the cycle model match the paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..field.element import FpElement
from ..field.prime_field import PrimeField
from ..obs.trace import traced
from .point import AffinePoint, MaybePoint

#: Resolves the tracing counter from a bound point-op call.
_curve_counter = lambda self, *a, **k: self.field.counter  # noqa: E731


@dataclass(frozen=True)
class JacobianPoint:
    """A point (X : Y : Z) with x = X/Z^2, y = Y/Z^3; infinity has Z = 0."""

    x: FpElement
    y: FpElement
    z: FpElement

    def is_infinity(self) -> bool:
        return self.z.is_zero()


class WeierstrassCurve:
    """y^2 = x^3 + a*x + b over a prime field.

    Provides affine reference arithmetic (used by tests and toy-field
    enumeration) and the Jacobian formulas used for performance accounting.
    The generic scalar-multiplication algorithms in :mod:`repro.scalarmult`
    drive the curve exclusively through :meth:`double`, :meth:`add`,
    :meth:`add_mixed`, :meth:`neg` and the conversion helpers.
    """

    family = "weierstrass"

    def __init__(self, field: PrimeField, a: int, b: int,
                 name: Optional[str] = None):
        self.field = field
        self.a = field.from_int(a)
        self.b = field.from_int(b)
        self.a_int = a % field.p
        self.name = name or f"weierstrass/{field.name}"
        disc = 4 * pow(a, 3, field.p) + 27 * pow(b, 2, field.p)
        if disc % field.p == 0:
            raise ValueError("singular curve: 4a^3 + 27b^2 = 0")

    # -- predicates -----------------------------------------------------------

    def is_on_curve(self, point: MaybePoint) -> bool:
        """Affine curve-equation check (infinity is on the curve)."""
        if point is None:
            return True
        x, y = point.x, point.y
        lhs = y.square()
        rhs = x.square() * x + self.a * x + self.b
        return lhs == rhs

    # -- conversions -----------------------------------------------------------

    @property
    def identity(self) -> JacobianPoint:
        one = self.field.one
        return JacobianPoint(one, one, self.field.zero)

    def from_affine(self, point: MaybePoint) -> JacobianPoint:
        if point is None:
            return self.identity
        return JacobianPoint(point.x, point.y, self.field.one)

    def to_affine(self, point: JacobianPoint) -> MaybePoint:
        """Projective-to-affine conversion: one inversion, 3M + 1S."""
        if point.is_infinity():
            return None
        z_inv = point.z.invert()
        z_inv2 = z_inv.square()
        x = point.x * z_inv2
        y = point.y * z_inv2 * z_inv
        return AffinePoint(x, y)

    # -- group operations (Jacobian) ---------------------------------------------

    def neg(self, point: JacobianPoint) -> JacobianPoint:
        return JacobianPoint(point.x, -point.y, point.z)

    @traced("double", kind="point", counter=_curve_counter)
    def double(self, point: JacobianPoint) -> JacobianPoint:
        """Jacobian doubling; the half-trace term depends on ``a``:

        * a = 0  : M3 = 3X^2            -> 3M + 4S   (GLV curves)
        * a = -3 : M3 = 3(X-Z^2)(X+Z^2) -> 4M + 4S   (secp160r1 & friends)
        * else   : M3 = 3X^2 + aZ^4     -> 4M + 6S
        """
        if point.is_infinity() or point.y.is_zero():
            return self.identity
        f = self.field
        x, y, z = point.x, point.y, point.z
        y_sq = y.square()
        y_quad = y_sq.square()
        s = x * y_sq
        s = s + s
        s = s + s  # S = 4 * X * Y^2
        if self.a_int == 0:
            x_sq = x.square()
            m3 = x_sq + x_sq + x_sq
        elif self.a_int == f.p - 3:
            z_sq = z.square()
            t = (x - z_sq) * (x + z_sq)
            m3 = t + t + t
        else:
            x_sq = x.square()
            z_sq = z.square()
            z_quad = z_sq.square()
            m3 = x_sq + x_sq + x_sq + self.a * z_quad
        x3 = m3.square() - (s + s)
        eight_y4 = y_quad + y_quad
        eight_y4 = eight_y4 + eight_y4
        eight_y4 = eight_y4 + eight_y4
        y3 = m3 * (s - x3) - eight_y4
        z3 = y * z
        z3 = z3 + z3
        return JacobianPoint(x3, y3, z3)

    @traced("add", kind="point", counter=_curve_counter)
    def add(self, p: JacobianPoint, q: JacobianPoint) -> JacobianPoint:
        """Full Jacobian-Jacobian addition (12M + 4S)."""
        if p.is_infinity():
            return q
        if q.is_infinity():
            return p
        z1_sq = p.z.square()
        z2_sq = q.z.square()
        u1 = p.x * z2_sq
        u2 = q.x * z1_sq
        s1 = p.y * z2_sq * q.z
        s2 = q.y * z1_sq * p.z
        h = u2 - u1
        r = s2 - s1
        if h.is_zero():
            if r.is_zero():
                return self.double(p)
            return self.identity
        h_sq = h.square()
        h_cu = h * h_sq
        v = u1 * h_sq
        x3 = r.square() - h_cu - (v + v)
        y3 = r * (v - x3) - s1 * h_cu
        z3 = p.z * q.z * h
        return JacobianPoint(x3, y3, z3)

    @traced("add_mixed", kind="point", counter=_curve_counter)
    def add_mixed(self, p: JacobianPoint, q: MaybePoint) -> JacobianPoint:
        """Mixed Jacobian-affine addition (8M + 3S), the paper's workhorse."""
        if q is None:
            return p
        if p.is_infinity():
            return self.from_affine(q)
        z1_sq = p.z.square()
        u2 = q.x * z1_sq
        s2 = q.y * z1_sq * p.z
        h = u2 - p.x
        r = s2 - p.y
        if h.is_zero():
            if r.is_zero():
                return self.double(p)
            return self.identity
        h_sq = h.square()
        h_cu = h * h_sq
        v = p.x * h_sq
        x3 = r.square() - h_cu - (v + v)
        y3 = r * (v - x3) - p.y * h_cu
        z3 = p.z * h
        return JacobianPoint(x3, y3, z3)

    # -- affine reference arithmetic -------------------------------------------

    def affine_add(self, p: MaybePoint, q: MaybePoint) -> MaybePoint:
        """Textbook affine chord-and-tangent addition (reference only)."""
        if p is None:
            return q
        if q is None:
            return p
        if p.x == q.x:
            if p.y == q.y:
                if p.y.is_zero():
                    return None
                slope = (p.x.square() * 3 + self.a) / (p.y + p.y)
            else:
                return None
        else:
            slope = (q.y - p.y) / (q.x - p.x)
        x3 = slope.square() - p.x - q.x
        y3 = slope * (p.x - x3) - p.y
        return AffinePoint(x3, y3)

    def affine_neg(self, p: MaybePoint) -> MaybePoint:
        if p is None:
            return None
        return AffinePoint(p.x, -p.y)

    def affine_scalar_mult(self, k: int, p: MaybePoint) -> MaybePoint:
        """Reference scalar multiplication via affine double-and-add."""
        if k < 0:
            return self.affine_scalar_mult(-k, self.affine_neg(p))
        result: MaybePoint = None
        addend = p
        while k:
            if k & 1:
                result = self.affine_add(result, addend)
            addend = self.affine_add(addend, addend)
            k >>= 1
        return result

    def lift_x(self, x: int, y_parity: int = 0) -> AffinePoint:
        """Find a point with the given x coordinate (raises if none)."""
        fx = self.field.from_int(x)
        rhs = fx.square() * fx + self.a * fx + self.b
        y = rhs.sqrt()
        if y.to_int() % 2 != y_parity % 2:
            y = -y
        return AffinePoint(fx, y)

    def random_point(self, rng=None) -> AffinePoint:
        """A uniformly-ish random affine point (rejection sampling on x)."""
        import random as _random

        rng = rng or _random
        while True:
            x = rng.randrange(self.field.p)
            try:
                return self.lift_x(x, rng.randrange(2))
            except ValueError:
                continue

    def __repr__(self) -> str:
        return f"WeierstrassCurve({self.name})"
