"""Worker-process side of the ECC service.

Each pool worker owns a :class:`WorkerState`: freshly constructed curve
suites (so no field-operation counter is ever shared across processes),
protocol objects wired to a fixed-base-aware scalar multiplier, cached
RSA Montgomery engines, and — via :func:`init_worker` — a metrics
registry isolated from the parent with :func:`~repro.obs.metrics
.MetricsRegistry.reset_for_fork`.  Batches return their counter deltas
alongside the replies and the server merges them into the parent
registry (:meth:`~repro.obs.metrics.MetricsRegistry.merge_counters`),
which is the fork-safe aggregation path documented in DESIGN.md §8.

Every handler is **deterministic**: key generation derives scalars from
the request's seed (HKDF-ish SHA-256 expansion), signatures use the
RFC-6979-style nonces of :mod:`repro.protocols`, and nothing reads a
TRNG — the property the load generator's byte-stable summaries and the
serve determinism tests rely on.

All functions at module top level are picklable pool entry points;
:func:`execute_request` doubles as the in-process "direct" execution
path (the load generator's single-request baseline and the test
suite's pool-free harness).
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..curves.params import CurveSuite, make_suite
from ..curves.point import AffinePoint
from ..faults.model import FaultDetectedError
from ..obs.metrics import METRICS, render_prometheus
from ..obs.trace import Tracer, span_to_dict
from ..protocols import Ecdsa, Rsa, RsaKeyPair, Schnorr, XOnlyEcdh
from ..protocols.ecdh import FullPointEcdh, KeyPair
from ..scalarmult import adapter_for, montgomery_ladder_x, scalar_mult_naf
from ..scalarmult.fixed_base import (
    DEFAULT_WIDTH,
    TABLE_CACHE,
    scalar_mult_fixed_base,
)
from . import protocol
from .protocol import ProtocolError, from_hex, point_param, to_hex

__all__ = [
    "WorkerState",
    "derive_scalar",
    "execute_batch",
    "execute_request",
    "init_worker",
    "worker_keys",
    "worker_state",
]

import hashlib

#: Default scalar range for curves without an exactly known order.
_DEFAULT_SCALAR_BITS = 159

_REQUESTS = METRICS.counter(
    "serve_worker_requests_total", "requests executed by this worker")
_ERRORS = METRICS.counter(
    "serve_worker_errors_total", "requests that produced an error reply")
_BATCHES = METRICS.counter(
    "serve_worker_batches_total", "batches executed by this worker")


def derive_scalar(seed: str, order: Optional[int] = None,
                  bits: int = _DEFAULT_SCALAR_BITS) -> int:
    """Deterministic private scalar from a request seed.

    ``order`` given: uniform-ish in [1, order-1].  Otherwise: *bits* wide
    with the top bit clamped set, mirroring
    :meth:`~repro.protocols.ecdh.XOnlyEcdh.generate_keypair`.
    """
    digest = hashlib.sha256(b"repro-serve-keygen:" + seed.encode()).digest()
    digest += hashlib.sha256(digest).digest()
    value = int.from_bytes(digest, "big")
    if order is not None:
        return 1 + value % (order - 1)
    return (value & ((1 << (bits - 1)) - 1)) | (1 << (bits - 2))


class WorkerState:
    """Per-process suites, protocol objects and fixed-base plumbing."""

    def __init__(self, hardened: bool = False, fb_width: int = DEFAULT_WIDTH,
                 fixed_base: bool = True):
        self.hardened = hardened
        self.fb_width = fb_width
        self.fixed_base = fixed_base
        self._suites: Dict[str, CurveSuite] = {}
        self._protos: Dict[Any, Any] = {}
        self._rsa: Dict[int, Rsa] = {}
        #: Field instances whose op counters this worker owns a share of,
        #: keyed by object identity with the baseline seen at first
        #: sight.  Suites created here start at a zero baseline; a comb
        #: table inherited copy-on-write from the parent process carries
        #: the parent's historical tallies on *its* field, so its
        #: baseline is captured at adoption time — this worker reports
        #: only ops it performed itself.
        self._fields: Dict[int, Any] = {}
        self._field_baselines: Dict[int, Dict[str, int]] = {}
        self._field_reported: Dict[str, int] = {}

    # -- lazy construction ---------------------------------------------------

    def _track_field(self, field, fresh: bool = False) -> None:
        fid = id(field)
        if fid in self._fields:
            return
        self._fields[fid] = field
        snap = field.counter.snapshot()
        self._field_baselines[fid] = (
            dict.fromkeys(self._FIELD_OPS, 0) if fresh
            else {op: snap[op] for op in self._FIELD_OPS})

    def suite(self, key: str) -> CurveSuite:
        suite = self._suites.get(key)
        if suite is None:
            suite = self._suites[key] = make_suite(key)
            self._track_field(suite.field, fresh=True)
        return suite

    def fixed_table(self, key: str):
        """The comb table for *key*'s base point (cached process-wide).

        May hand back a table built by another process's suite (fork
        inheritance); its field is adopted into the op accounting at its
        current counter value.
        """
        suite = self.suite(key)
        table = TABLE_CACHE.get(suite.curve, suite.base, width=self.fb_width)
        self._track_field(table.curve.field)
        return table

    def warm(self, curves) -> None:
        """Pre-build the fixed-base tables the workload will hit."""
        if not self.fixed_base:
            return
        for key in curves:
            if key == "montgomery":
                continue  # x-only ladder path; no comb table
            self.fixed_table(key)

    def mult_for(self, key: str) -> Callable:
        """A ``(k, point) -> MaybePoint`` backend: comb table when the
        point is the curve's fixed base and the scalar fits, NAF
        double-and-add otherwise."""
        suite = self.suite(key)

        def mult(k: int, point: AffinePoint):
            if (self.fixed_base and point.x == suite.base.x
                    and point.y == suite.base.y):
                try:
                    return self.fixed_table(key).multiply(k)
                except ValueError:
                    pass  # oversized (e.g. blinded) scalar: variable-base
            return scalar_mult_naf(adapter_for(suite.curve, point), k)

        return mult

    def _proto(self, kind: str, key: str, factory: Callable):
        cache_key = (kind, key)
        proto = self._protos.get(cache_key)
        if proto is None:
            proto = self._protos[cache_key] = factory()
        return proto

    def ecdsa(self, key: str) -> Ecdsa:
        suite = self.suite(key)
        return self._proto("ecdsa", key, lambda: Ecdsa(
            suite.curve, suite.base, suite.order,
            mult=self.mult_for(key), hardened=self.hardened))

    def schnorr(self, key: str) -> Schnorr:
        suite = self.suite(key)
        return self._proto("schnorr", key, lambda: Schnorr(
            suite.curve, suite.base, suite.order,
            mult=self.mult_for(key), hardened=self.hardened))

    def ecdh(self, key: str) -> FullPointEcdh:
        suite = self.suite(key)
        return self._proto("ecdh", key, lambda: FullPointEcdh(
            suite.curve, suite.base, suite.order,
            mult=self.mult_for(key), hardened=self.hardened))

    def xonly(self) -> XOnlyEcdh:
        suite = self.suite("montgomery")
        return self._proto("xonly", "montgomery", lambda: XOnlyEcdh(
            suite.curve, suite.base, scalar_bits=suite.scalar_bits,
            hardened=self.hardened))

    def rsa(self, n: int, e: int, d: int) -> Rsa:
        engine = self._rsa.get(n)
        if engine is None or engine.key.e != e or engine.key.d != d:
            if len(self._rsa) >= 4:  # tiny LRU-ish bound; keys rarely churn
                self._rsa.pop(next(iter(self._rsa)))
            engine = self._rsa[n] = Rsa(
                RsaKeyPair(n=n, e=e, d=d, bits=n.bit_length()))
        return engine

    # -- field-counter aggregation (fork-safe: all per-process) --------------

    _FIELD_OPS = ("add", "sub", "mul", "sqr", "inv")

    def field_ops_delta(self) -> Dict[str, int]:
        """Field-op tallies accrued across this process's tracked fields
        since the previous call (counters are per-field-instance and
        therefore already fork-isolated; each field's adoption baseline
        strips any history it carried in from the parent; this folds the
        rest into one process-level number per op)."""
        totals = dict.fromkeys(self._FIELD_OPS, 0)
        for fid, field in self._fields.items():
            snap = field.counter.snapshot()
            base = self._field_baselines[fid]
            for op in self._FIELD_OPS:
                totals[op] += snap[op] - base[op]
        delta = {op: totals[op] - self._field_reported.get(op, 0)
                 for op in self._FIELD_OPS}
        self._field_reported = totals
        return delta


_STATE: Optional[WorkerState] = None
_KEYS = None  # the process's KeyRegistry (lazy; see worker_keys)


def worker_state() -> WorkerState:
    """The process's state, created on demand (pool or in-process use)."""
    global _STATE
    if _STATE is None:
        _STATE = WorkerState()
    return _STATE


def worker_keys():
    """The process's named-key registry (:mod:`repro.serve.keys`).

    A pool worker gets a **read-only** attach over the server's journal
    from :func:`init_worker` — it resolves ``(tenant, name,
    generation)`` to scalars itself, tailing the journal on a lookup
    miss, so key material is never serialized into batch chunks.  On
    the pool-free direct path this lazily builds a writable in-memory
    registry instead, which is what makes the ``key_*`` handlers below
    work without a server front-end.
    """
    global _KEYS
    if _KEYS is None:
        from .keys import KeyRegistry

        _KEYS = KeyRegistry()
    return _KEYS


def init_worker(hardened: bool = False, fb_width: int = DEFAULT_WIDTH,
                fixed_base: bool = True, warm_curves: tuple = (),
                store_name: Optional[str] = None,
                keys_journal: Optional[str] = None) -> None:
    """Pool initializer: isolate inherited metrics, build fresh state.

    Runs in the child process.  The inherited ``METRICS`` registry is
    reset so the worker reports only its own deltas; the parent merges
    them back per batch reply (never shared memory).

    With *store_name*, the worker attaches the supervisor's shared
    comb-table store read-only (:mod:`repro.scalarmult.table_store`)
    before warming: warm tables deserialize from the segment instead of
    precomputing, so ``fixed_base_tables_built`` stays flat however
    many workers fork.  A missing or corrupt segment degrades to local
    builds rather than killing the pool.

    With *keys_journal*, the worker attaches the server's named-key
    journal **read-only**: batched requests that reference a stored key
    (``params.key``) are resolved in this process from the journal's
    replayed state, never from secrets travelling in the batch payload.
    """
    global _STATE, _KEYS
    METRICS.reset_for_fork()
    if keys_journal is not None:
        from .keys import KeyRegistry

        _KEYS = KeyRegistry(journal_path=keys_journal, writable=False)
    if store_name is not None:
        from ..scalarmult.table_store import TableStore, TableStoreError

        try:
            TABLE_CACHE.attach_store(TableStore.attach(store_name))
        except (TableStoreError, FileNotFoundError, OSError) as exc:
            TABLE_CACHE.attach_store(None)
            print(f"worker {os.getpid()}: table store {store_name!r} "
                  f"unusable ({exc}); building tables locally",
                  file=sys.stderr)
    _STATE = WorkerState(hardened=hardened, fb_width=fb_width,
                         fixed_base=fixed_base)
    _STATE.warm(warm_curves)


# -- handlers ----------------------------------------------------------------


def _affine(suite: CurveSuite, obj: Any, what: str) -> AffinePoint:
    coords = point_param(obj, what)
    return AffinePoint(suite.field.from_int(coords["x"]),
                       suite.field.from_int(coords["y"]))


def _point_result(point) -> Dict[str, Any]:
    if point is None:
        return {"infinity": True}
    return {"point": {"x": to_hex(point.x.to_int()),
                      "y": to_hex(point.y.to_int())}}


def _secret_scalar(curve: Optional[str], params: Dict[str, Any],
                   what: str = "private") -> int:
    """The op's secret scalar: inline hex, or a named-key resolution.

    ``params.key`` carries a stored key's name (the tenant was injected
    into the params by :func:`execute_request`; the server pinned
    ``key_generation`` at admission).  The scalar comes out of this
    process's registry — it was never on the wire or in the batch
    chunk.
    """
    if "key" in params:
        registry = worker_keys()
        ref = registry.resolve(params.get("tenant") or "",
                               params["key"],
                               params.get("key_generation"))
        if curve is not None and ref.curve != curve:
            raise ProtocolError(
                f"key {params['key']!r} lives on curve {ref.curve!r}, "
                f"not {curve!r}")
        return ref.private
    return from_hex(params[what], what)


def _handle_keygen(state: WorkerState, curve: str,
                   params: Dict[str, Any]) -> Dict[str, Any]:
    seed = params["seed"]
    if not isinstance(seed, str) or not seed:
        raise ProtocolError("seed must be a nonempty string")
    suite = state.suite(curve)
    if curve == "montgomery":
        private = derive_scalar(seed, bits=suite.scalar_bits)
        xz = montgomery_ladder_x(suite.curve, private, suite.base,
                                 bits=suite.scalar_bits)
        return {"private": to_hex(private),
                "public_x": to_hex(suite.curve.x_affine(xz).to_int())}
    private = derive_scalar(seed, order=suite.order)
    public = state.mult_for(curve)(private, suite.base)
    if public is None:
        raise ProtocolError("derived private key maps the base to infinity")
    result = _point_result(public)
    result["private"] = to_hex(private)
    result["public"] = result.pop("point")
    return result


def _handle_ecdh(state: WorkerState, curve: str,
                 params: Dict[str, Any]) -> Dict[str, Any]:
    private = _secret_scalar(curve, params)
    suite = state.suite(curve)
    if curve == "montgomery":
        from ..protocols.ecdh import XOnlyKeyPair

        peer_x = from_hex(params["peer"], "peer")
        ecdh = state.xonly()
        own = XOnlyKeyPair(private=private, public_x=0)  # only .private used
        shared = ecdh.shared_secret(own, peer_x)
        return {"shared_x": to_hex(shared)}
    peer = _affine(suite, params["peer"], "peer")
    ecdh = state.ecdh(curve)
    own = KeyPair(private=private, public=suite.base)
    shared = ecdh.shared_secret(own, peer)
    return {"shared": {"x": to_hex(shared.x.to_int()),
                       "y": to_hex(shared.y.to_int())}}


def _handle_scalarmult(state: WorkerState, curve: str,
                       params: Dict[str, Any]) -> Dict[str, Any]:
    k = from_hex(params["k"], "k")
    suite = state.suite(curve)
    if curve == "montgomery":
        if "point" in params:
            x = from_hex(params["point"], "point")
            base = suite.curve.lift_x(x)
        else:
            base = suite.base
        xz = montgomery_ladder_x(suite.curve, k, base,
                                 bits=suite.scalar_bits)
        if xz.is_infinity():
            return {"infinity": True}
        return {"x": to_hex(suite.curve.x_affine(xz).to_int())}
    if "point" in params:
        point = _affine(suite, params["point"], "point")
        if not suite.curve.is_on_curve(point):
            raise ProtocolError("point is not on the curve")
        result = scalar_mult_naf(adapter_for(suite.curve, point), k)
    else:
        result = state.mult_for(curve)(k, suite.base)
    return _point_result(result)


def _msg_bytes(params: Dict[str, Any]) -> bytes:
    msg = params["msg"]
    if not isinstance(msg, str):
        raise ProtocolError("msg must be a hex string")
    try:
        return bytes.fromhex(msg) if msg else b""
    except ValueError:
        raise ProtocolError("msg is not valid hex") from None


def _handle_ecdsa_sign(state: WorkerState, curve: str,
                       params: Dict[str, Any]) -> Dict[str, Any]:
    signature = state.ecdsa(curve).sign(
        _secret_scalar(curve, params), _msg_bytes(params))
    return {"r": to_hex(signature.r), "s": to_hex(signature.s)}


def _handle_ecdsa_verify(state: WorkerState, curve: str,
                         params: Dict[str, Any]) -> Dict[str, Any]:
    from ..protocols.ecdsa import Signature

    suite = state.suite(curve)
    public = _affine(suite, params["public"], "public")
    signature = Signature(r=from_hex(params["r"], "r"),
                          s=from_hex(params["s"], "s"))
    valid = state.ecdsa(curve).verify(public, _msg_bytes(params), signature)
    return {"valid": bool(valid)}


def _handle_schnorr_sign(state: WorkerState, curve: str,
                         params: Dict[str, Any]) -> Dict[str, Any]:
    signature = state.schnorr(curve).sign(
        _secret_scalar(curve, params), _msg_bytes(params))
    return {"e": to_hex(signature.challenge),
            "s": to_hex(signature.response)}


def _handle_schnorr_verify(state: WorkerState, curve: str,
                           params: Dict[str, Any]) -> Dict[str, Any]:
    from ..protocols.schnorr import SchnorrSignature

    suite = state.suite(curve)
    public = _affine(suite, params["public"], "public")
    signature = SchnorrSignature(challenge=from_hex(params["e"], "e"),
                                 response=from_hex(params["s"], "s"))
    valid = state.schnorr(curve).verify(public, _msg_bytes(params), signature)
    return {"valid": bool(valid)}


def _handle_rsa_sign(state: WorkerState, curve: Optional[str],
                     params: Dict[str, Any]) -> Dict[str, Any]:
    rsa = state.rsa(from_hex(params["n"], "n"), from_hex(params["e"], "e"),
                    from_hex(params["d"], "d"))
    digest = from_hex(params["digest"], "digest")
    if not 0 <= digest < rsa.key.n:
        raise ProtocolError("digest out of range for the modulus")
    return {"sig": to_hex(rsa.sign(digest))}


def _handle_rsa_verify(state: WorkerState, curve: Optional[str],
                       params: Dict[str, Any]) -> Dict[str, Any]:
    n = from_hex(params["n"], "n")
    e = from_hex(params["e"], "e")
    engine = state._rsa.get(n)
    if engine is not None and engine.key.e == e:
        rsa = engine
    else:
        rsa = Rsa(RsaKeyPair(n=n, e=e, d=0, bits=n.bit_length()))
    sig = from_hex(params["sig"], "sig")
    if not 0 <= sig < n:
        raise ProtocolError("signature out of range for the modulus")
    valid = rsa.verify(from_hex(params["digest"], "digest"), sig)
    return {"valid": bool(valid)}


def _handle_stats(state: WorkerState, curve: Optional[str],
                  params: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-local telemetry (the pool-free direct path's ``stats``).

    A live :class:`~repro.serve.server.EccServer` intercepts ``stats``
    at accept and answers with server-level queue/batch state; this
    handler serves the same schema from a single process's registry so
    ``--workers 0`` / in-process callers get a useful answer too.
    """
    fmt = params.get("format", "json")
    scope = params.get("scope", "shard")
    if scope not in ("shard", "cluster"):
        raise ProtocolError(
            f"stats scope must be 'shard' or 'cluster', got {scope!r}")
    # No shard siblings on the direct path: "cluster" is this process.
    if fmt == "prometheus":
        return {"format": "prometheus", "text": render_prometheus(METRICS)}
    if fmt != "json":
        raise ProtocolError(
            f"stats format must be 'json' or 'prometheus', got {fmt!r}")
    return {
        "format": "json",
        "scope": "shard",
        "shard": None,
        "pid": os.getpid(),
        "queue_depth": 0,
        "queue_capacity": 0,
        "batch_occupancy": 0.0,
        "counters": {k: v for k, v in METRICS.counters_snapshot().items()
                     if k.startswith(("serve_", "fixed_base_"))},
        "histograms": METRICS.histogram_summaries(prefix="serve_"),
    }


def _handle_key_create(state: WorkerState, curve: str,
                       params: Dict[str, Any]) -> Dict[str, Any]:
    """Named-key lifecycle, direct-path edition.

    A live :class:`~repro.serve.server.EccServer` answers the ``key_*``
    ops inline at accept against its own writable registry (like
    ``stats``); these handlers give the pool-free direct path the same
    semantics against the process-local registry of
    :func:`worker_keys`.
    """
    return worker_keys().create(params.get("tenant") or "",
                                params["name"], curve,
                                params.get("seed"))


def _handle_key_rotate(state: WorkerState, curve: Optional[str],
                       params: Dict[str, Any]) -> Dict[str, Any]:
    return worker_keys().rotate(params.get("tenant") or "",
                                params["name"], params.get("seed"))


def _handle_key_delete(state: WorkerState, curve: Optional[str],
                       params: Dict[str, Any]) -> Dict[str, Any]:
    return worker_keys().delete(params.get("tenant") or "",
                                params["name"])


def _handle_key_info(state: WorkerState, curve: Optional[str],
                     params: Dict[str, Any]) -> Dict[str, Any]:
    return worker_keys().info(params.get("tenant") or "",
                              params["name"])


_HANDLERS: Dict[str, Callable] = {
    "stats": _handle_stats,
    "key_create": _handle_key_create,
    "key_rotate": _handle_key_rotate,
    "key_delete": _handle_key_delete,
    "key_info": _handle_key_info,
    "keygen": _handle_keygen,
    "ecdh": _handle_ecdh,
    "scalarmult": _handle_scalarmult,
    "ecdsa_sign": _handle_ecdsa_sign,
    "ecdsa_verify": _handle_ecdsa_verify,
    "schnorr_sign": _handle_schnorr_sign,
    "schnorr_verify": _handle_schnorr_verify,
    "rsa_sign": _handle_rsa_sign,
    "rsa_verify": _handle_rsa_verify,
}

assert set(_HANDLERS) == set(protocol.OPS), "handler table drifted from OPS"


def execute_request(req: Dict[str, Any],
                    state: Optional[WorkerState] = None) -> Dict[str, Any]:
    """Run one validated request to a reply dict (never raises)."""
    state = state or worker_state()
    _REQUESTS.inc()
    METRICS.counter(f"serve_worker_op_{req['op']}_total").inc()
    params = req.get("params") or {}
    if "tenant" in req:
        # Tenant-scoped request: hand the tenant down to the handler so
        # named-key resolution stays (tenant, name)-scoped.  A copy —
        # the inbound request object is never mutated.
        params = dict(params, tenant=req["tenant"])
    try:
        result = _HANDLERS[req["op"]](state, req.get("curve"), params)
        return protocol.ok_reply(req["id"], result)
    except ProtocolError as exc:
        _ERRORS.inc()
        return protocol.error_reply(req["id"], exc.error_type, str(exc))
    except (ValueError, ZeroDivisionError, KeyError, TypeError) as exc:
        _ERRORS.inc()
        return protocol.error_reply(req["id"], "BadRequest", str(exc))
    except FaultDetectedError as exc:
        _ERRORS.inc()
        return protocol.error_reply(req["id"], "Internal",
                                    f"fault countermeasure tripped: {exc}")
    except Exception as exc:  # pragma: no cover - defense in depth
        _ERRORS.inc()
        return protocol.error_reply(req["id"], "Internal",
                                    f"{type(exc).__name__}: {exc}")


def _execute_traced(
        req: Dict[str, Any], state: WorkerState, trace_id: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Run one request under a fresh tracer; returns (reply, span dicts).

    The root span is tagged with the inbound trace context and this
    worker's pid; the spans PR 2 threaded through scalarmult / curves /
    field nest underneath automatically, so the shard the server joins
    (:mod:`repro.obs.assemble`) reaches down to the kernel level.
    """
    tracer = Tracer()
    with tracer:
        with tracer.span("worker", kind="serve", trace=trace_id,
                         op=req["op"], curve=req.get("curve"),
                         pid=os.getpid()):
            reply = execute_request(req, state)
    return reply, [span_to_dict(root) for root in tracer.roots]


def execute_batch(requests: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Pool entry point: one batch in, replies + isolated metrics out.

    The metrics field carries this worker's *cumulative* counter values;
    the server keeps a per-worker baseline and merges only the delta, so
    restarts and multiple pools aggregate correctly.  Requests carrying
    a ``trace`` id additionally return their worker-side span shard in
    the parallel ``spans`` list (``None`` for untraced requests — the
    hot path pays one dict lookup).
    """
    state = worker_state()
    _BATCHES.inc()
    replies: List[Dict[str, Any]] = []
    spans: List[Optional[List[Dict[str, Any]]]] = []
    for req in requests:
        trace_id = req.get("trace")
        if trace_id is None:
            replies.append(execute_request(req, state))
            spans.append(None)
        else:
            reply, shard = _execute_traced(req, state, trace_id)
            replies.append(reply)
            spans.append(shard)
    for op, delta in state.field_ops_delta().items():
        if delta:
            METRICS.counter(f"serve_field_{op}_total").inc(delta)
    return {
        "pid": os.getpid(),
        "replies": replies,
        "spans": spans,
        "metrics": METRICS.counters_snapshot(),
    }
