"""Wire protocol of the ECC service: newline-delimited JSON.

One request per line, one reply per line, correlated by a caller-chosen
``id`` (replies may arrive out of order — the server batches compatible
requests and worker completion order is not arrival order).

Request grammar::

    {"id": <int>=0>, "op": <op>, "curve": <curve|absent>,
     "params": {...}, "deadline_ms": <number, optional>,
     "trace": <8..32 lowercase hex chars, optional>,
     "tenant": <tenant name, key ops and named key use only>,
     "token": <tenant auth token, paired with tenant>}

Reply grammar::

    {"id": <int>, "ok": true,  "result": {...}, "meta": {...}?}
    {"id": <int>, "ok": false, "error": {"type": <type>, "message": str},
     "meta": {...}?}

``trace`` is the distributed-tracing context (DESIGN.md §8): a client
that sets it (or a server started with ``--tracing``, which stamps one
at accept) gets worker-side spans recorded under that id and the id
echoed back in the reply's ``meta.trace``, joinable into one
end-to-end span tree by :mod:`repro.obs.assemble`.  The ``stats`` op is
the operational telemetry endpoint: it takes no curve, is answered by
the server front-end without queueing (so it stays reachable under
overload), and returns queue depth, batch occupancy, shed counts and
per-(op, curve) latency percentiles — or, with ``params.format =
"prometheus"``, the whole metrics registry in Prometheus text
exposition format.  Under the shard supervisor of
:mod:`repro.serve.shard`, ``params.scope = "cluster"`` makes any one
shard answer for the whole cluster (counters summed across the
shards' stats board); the default ``scope = "shard"`` stays local and
carries the answering shard's index.  The ``stats`` result is JSON by
default and the full Prometheus text exposition with ``params.format =
"prometheus"`` (shard scope only; ``scope = "cluster"`` with the
Prometheus format is a ``BadRequest``).

**Named keys and tenancy** (DESIGN.md §8, :mod:`repro.serve.keys`):
the ``key_create`` / ``key_rotate`` / ``key_delete`` / ``key_info``
lifecycle ops manage server-resident keys in a per-tenant namespace.
They require the top-level ``tenant`` (matching :data:`TENANT_NAME`)
and ``token`` fields; so does any request whose ``params.key`` names a
server-resident key instead of carrying an inline secret.  The
secret-bearing ops (``ecdsa_sign``, ``schnorr_sign``, ``ecdh``) take
*exactly one* of ``params.private`` (inline hex scalar) or
``params.key`` (a stored key's name, :data:`KEY_NAME`); with ``key``,
the optional ``params.key_generation`` pins a specific generation
(the server pins the current one at admission otherwise, so rotation
never races in-flight work).  On any other request, ``tenant`` /
``token`` are rejected — tenancy is opt-in per request, never ambient.

Error types are closed-world (:data:`ERROR_TYPES`): ``BadRequest``
(malformed or semantically invalid request — never retry),
``Overloaded`` (bounded queue was full, the typed load-shed reply —
retry with backoff), ``DeadlineExceeded`` (the request's budget elapsed
while queued), ``Unauthorized`` (unknown tenant or bad token — fix
credentials, never retry as-is), ``QuotaExceeded`` (the *tenant's*
budget — key count or request rate — is exhausted, distinct from
``Overloaded`` so callers can tell their own quota from server
saturation; retry with backoff or raise the quota), ``Internal``
(handler raised — server-side log has the detail).

All big integers travel as lowercase hex strings without an ``0x``
prefix (:func:`to_hex` / :func:`from_hex`); points as ``{"x": hex,
"y": hex}`` objects, x-only Montgomery values as bare hex.  The op
table (:data:`OPS`) names, for every operation, the curve families it
supports and the parameter schema — :func:`validate_request` enforces
all of it server-side so workers only ever see well-formed requests.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

__all__ = [
    "CURVES",
    "ERROR_TYPES",
    "KEY_NAME",
    "KEY_OPS",
    "OPS",
    "ORDER_CURVES",
    "ProtocolError",
    "Overloaded",
    "DeadlineExceeded",
    "Unauthorized",
    "QuotaExceeded",
    "OpSpec",
    "TENANT_NAME",
    "TRACE_ID",
    "decode_reply",
    "decode_request",
    "encode_reply",
    "encode_request",
    "error_reply",
    "from_hex",
    "ok_reply",
    "point_param",
    "to_hex",
    "validate_request",
]

#: Curve keys the service accepts (the suite registry of
#: :mod:`repro.curves.params`).
CURVES: FrozenSet[str] = frozenset(
    {"secp160r1", "weierstrass", "edwards", "montgomery", "glv"})

#: Curves with an exactly known prime group order — the only ones that
#: can run order-arithmetic protocols (ECDSA, Schnorr).
ORDER_CURVES: FrozenSet[str] = frozenset({"secp160r1", "glv"})

ERROR_TYPES = ("BadRequest", "Overloaded", "DeadlineExceeded",
               "Unauthorized", "QuotaExceeded", "Internal")

#: Wire form of a trace id: 8..32 lowercase hex chars (the generator,
#: :func:`repro.obs.trace.new_trace_id`, emits 16).
TRACE_ID = re.compile(r"[0-9a-f]{8,32}")

#: Tenant names double as Prometheus metric-name fragments
#: (``serve_tenant_<name>_requests_total``), so the charset is the
#: metric-safe subset: lowercase alphanumerics and underscores only.
TENANT_NAME = re.compile(r"[a-z][a-z0-9_]{0,23}")

#: Named-key names: same shape as tenant names but allowing dashes and
#: dots (they never appear in metric names), up to 64 chars.
KEY_NAME = re.compile(r"[a-z][a-z0-9_.-]{0,63}")

#: The key-lifecycle ops: answered inline by the server front-end
#: (like ``stats``), always tenant-scoped.
KEY_OPS: FrozenSet[str] = frozenset(
    {"key_create", "key_rotate", "key_delete", "key_info"})


class ProtocolError(ValueError):
    """A request that violates the wire protocol (maps to BadRequest)."""

    error_type = "BadRequest"


class Overloaded(ProtocolError):
    """Typed load-shed: the server's bounded queue was full."""

    error_type = "Overloaded"


class DeadlineExceeded(ProtocolError):
    """The request's deadline elapsed before a worker picked it up."""

    error_type = "DeadlineExceeded"


class Unauthorized(ProtocolError):
    """Unknown tenant (strict mode) or wrong auth token."""

    error_type = "Unauthorized"


class QuotaExceeded(ProtocolError):
    """The tenant's own budget (key count or request rate) is spent.

    Deliberately distinct from :class:`Overloaded`: that one means the
    *server* is saturated; this one means *you* are over quota and no
    amount of server capacity will admit the request.
    """

    error_type = "QuotaExceeded"


def to_hex(value: int) -> str:
    """Canonical integer encoding: lowercase hex, no prefix, no sign."""
    if value < 0:
        raise ProtocolError("negative integers are not representable")
    return format(value, "x")


def from_hex(text: Any, what: str = "integer") -> int:
    if not isinstance(text, str) or not text:
        raise ProtocolError(f"{what} must be a nonempty hex string")
    try:
        return int(text, 16)
    except ValueError:
        raise ProtocolError(f"{what} is not valid hex: {text[:40]!r}") from None


def point_param(obj: Any, what: str = "point") -> Dict[str, int]:
    """Decode a ``{"x": hex, "y": hex}`` object to plain ints."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"{what} must be an object with x and y")
    return {"x": from_hex(obj.get("x"), f"{what}.x"),
            "y": from_hex(obj.get("y"), f"{what}.y")}


@dataclass(frozen=True)
class OpSpec:
    """Validation schema of one operation."""

    name: str
    #: Curve families the op runs on; empty = the op takes no curve.
    curves: FrozenSet[str]
    #: Required parameter names (presence is checked; each handler does
    #: the value-level decode via from_hex/point_param).
    required: FrozenSet[str]
    #: Optional parameter names.
    optional: FrozenSet[str] = frozenset()
    #: Name of the op's inline-secret parameter, if it has one.  Such
    #: ops take *exactly one* of the secret or ``key`` (a stored key's
    #: name, tenant-scoped); ``key_generation`` is only valid with
    #: ``key``.
    secret: Optional[str] = None


def _spec(name: str, curves, required, optional=(),
          secret: Optional[str] = None) -> OpSpec:
    return OpSpec(name, frozenset(curves), frozenset(required),
                  frozenset(optional), secret)


#: The service's operation table.
OPS: Dict[str, OpSpec] = {spec.name: spec for spec in (
    _spec("keygen", CURVES, ["seed"]),
    _spec("ecdh", CURVES, ["peer"], secret="private"),
    _spec("scalarmult", CURVES, ["k"], ["point"]),
    _spec("ecdsa_sign", ORDER_CURVES, ["msg"], secret="private"),
    _spec("ecdsa_verify", ORDER_CURVES, ["public", "msg", "r", "s"]),
    _spec("schnorr_sign", ORDER_CURVES, ["msg"], secret="private"),
    _spec("schnorr_verify", ORDER_CURVES, ["public", "msg", "e", "s"]),
    _spec("rsa_sign", (), ["n", "e", "d", "digest"]),
    _spec("rsa_verify", (), ["n", "e", "digest", "sig"]),
    # Operational telemetry: answered inline by the server front-end
    # (never queued, so it works under overload); the worker handler
    # covers the pool-free direct path.  ``scope="cluster"`` asks a
    # sharded server to aggregate across its sibling shards.
    _spec("stats", (), [], ["format", "scope"]),
    # Named-key lifecycle (repro.serve.keys): tenant-scoped, answered
    # inline at accept like ``stats`` — mutations hit the journal, not
    # the batch queue.  ``key_create`` takes the curve the key lives
    # on; the others resolve it from the stored record.
    _spec("key_create", CURVES, ["name"], ["seed"]),
    _spec("key_rotate", (), ["name"], ["seed"]),
    _spec("key_delete", (), ["name"]),
    _spec("key_info", (), ["name"]),
)}


def validate_request(obj: Any) -> Dict[str, Any]:
    """Structural + semantic validation; returns the request dict.

    Raises :class:`ProtocolError` with a caller-actionable message on
    any violation.  Parameter *values* are validated by the worker's
    handlers (which decode hex and run the curve-level checks).
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    req_id = obj.get("id")
    if not isinstance(req_id, int) or isinstance(req_id, bool) or req_id < 0:
        raise ProtocolError("request id must be a non-negative integer")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}")
    spec = OPS[op]
    curve = obj.get("curve")
    if spec.curves:
        if curve not in spec.curves:
            raise ProtocolError(
                f"op {op!r} requires curve in {sorted(spec.curves)}, "
                f"got {curve!r}")
    elif curve is not None:
        raise ProtocolError(f"op {op!r} takes no curve")
    params = obj.get("params")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object")
    missing = spec.required - params.keys()
    if missing:
        raise ProtocolError(
            f"op {op!r} is missing params {sorted(missing)}")
    allowed = spec.required | spec.optional
    if spec.secret is not None:
        allowed = allowed | {spec.secret, "key", "key_generation"}
    unknown = params.keys() - allowed
    if unknown:
        raise ProtocolError(
            f"op {op!r} got unknown params {sorted(unknown)}")
    uses_key = False
    if spec.secret is not None:
        has_secret = spec.secret in params
        has_key = "key" in params
        if has_secret == has_key:
            raise ProtocolError(
                f"op {op!r} takes exactly one of params.{spec.secret} "
                "(inline secret) or params.key (stored key name)")
        if has_key:
            uses_key = True
            key = params["key"]
            if not isinstance(key, str) or not KEY_NAME.fullmatch(key):
                raise ProtocolError(
                    "params.key must name a stored key "
                    "([a-z][a-z0-9_.-], max 64 chars)")
            generation = params.get("key_generation")
            if generation is not None and (
                    not isinstance(generation, int)
                    or isinstance(generation, bool) or generation < 1):
                raise ProtocolError(
                    "params.key_generation must be a positive integer")
        elif "key_generation" in params:
            raise ProtocolError(
                "params.key_generation is only valid with params.key")
    if op in KEY_OPS:
        name = params.get("name")
        if not isinstance(name, str) or not KEY_NAME.fullmatch(name):
            raise ProtocolError(
                "params.name must be a key name "
                "([a-z][a-z0-9_.-], max 64 chars)")
        seed = params.get("seed")
        if seed is not None and not isinstance(seed, str):
            raise ProtocolError("params.seed must be a string")
    tenant = obj.get("tenant")
    if op in KEY_OPS or uses_key:
        if not isinstance(tenant, str) or not TENANT_NAME.fullmatch(tenant):
            raise ProtocolError(
                f"op {op!r} requires a tenant "
                "([a-z][a-z0-9_], max 24 chars)")
        token = obj.get("token")
        if not isinstance(token, str) or not token:
            raise ProtocolError(
                "tenant-scoped requests require a token string")
    elif tenant is not None or obj.get("token") is not None:
        raise ProtocolError(
            "tenant/token are only valid on key ops or named-key use")
    deadline = obj.get("deadline_ms")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
                deadline, bool) or deadline <= 0:
            raise ProtocolError("deadline_ms must be a positive number")
    trace = obj.get("trace")
    if trace is not None:
        if not isinstance(trace, str) or not TRACE_ID.fullmatch(trace):
            raise ProtocolError(
                "trace must be 8..32 lowercase hex characters")
    unknown_top = obj.keys() - {"id", "op", "curve", "params",
                                "deadline_ms", "trace", "tenant", "token"}
    if unknown_top:
        raise ProtocolError(
            f"unknown request fields {sorted(unknown_top)}")
    return obj


# -- encode / decode ---------------------------------------------------------


def encode_request(req: Dict[str, Any]) -> bytes:
    """One validated request as an NDJSON line (canonical key order)."""
    validate_request(req)
    return (json.dumps(req, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse + validate one request line."""
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    return validate_request(obj)


def ok_reply(req_id: int, result: Dict[str, Any],
             meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"id": req_id, "ok": True, "result": result}
    if meta:
        reply["meta"] = meta
    return reply


def error_reply(req_id: int, error_type: str, message: str,
                meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    if error_type not in ERROR_TYPES:
        raise ValueError(f"unknown error type {error_type!r}")
    reply: Dict[str, Any] = {
        "id": req_id, "ok": False,
        "error": {"type": error_type, "message": message},
    }
    if meta:
        reply["meta"] = meta
    return reply


def encode_reply(reply: Dict[str, Any]) -> bytes:
    return (json.dumps(reply, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def decode_reply(line: bytes) -> Dict[str, Any]:
    """Parse + structurally validate one reply line (client side)."""
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"reply is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("reply must be a JSON object")
    if not isinstance(obj.get("id"), int):
        raise ProtocolError("reply lacks an integer id")
    ok = obj.get("ok")
    if ok is True:
        if not isinstance(obj.get("result"), dict):
            raise ProtocolError("ok reply lacks a result object")
    elif ok is False:
        error = obj.get("error")
        if not isinstance(error, dict) or error.get("type") not in ERROR_TYPES:
            raise ProtocolError("error reply lacks a typed error object")
    else:
        raise ProtocolError("reply lacks a boolean ok")
    return obj
