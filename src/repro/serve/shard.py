"""Scale-out serving: N shard processes behind one listening port.

``python -m repro serve --shards N`` (and the loadgen's ``--shards``)
runs through this module.  The **supervisor** process:

1. builds the warm curves' comb tables once and serializes them into a
   shared-memory :class:`~repro.scalarmult.table_store.TableStore`
   (then clears its own in-process cache, so nothing is inherited
   copy-on-write — children *must* attach the store to be fast);
2. creates a :class:`StatsBoard` — one crc-framed shared-memory slot
   per shard that each shard periodically publishes its stats payload
   into, which is what lets any single shard answer ``stats`` with
   ``scope="cluster"``;
3. forks N **shard** processes, each running its own event loop with a
   full :class:`~repro.serve.server.EccServer` (accept loop, bounded
   queue, batcher, worker pool — the workers attach the table store
   read-only via the pool initializer);
4. monitors the children and **respawns** any shard that dies, without
   the listening port ever going away.

Two ingress modes:

* **SO_REUSEPORT** (default where the platform has it): every shard
  binds the same (host, port) and the kernel spreads incoming
  connections across their accept queues.  The supervisor holds an
  extra bound-but-never-listening socket on the port for the cluster's
  lifetime, so the port survives even a moment where every shard is
  mid-respawn and an ephemeral port (``--port 0``) cannot be stolen.
* **Port-per-shard redirector** (``--no-reuseport``, or platforms
  without the option): shards listen on their own ephemeral ports and
  the supervisor runs a tiny round-robin TCP byte proxy on the public
  port.  Deterministic connection placement makes this the mode the
  benchmark legs use; production prefers SO_REUSEPORT (no extra hop).

Each shard stamps ``shard="<i>"`` as a registry-wide metric label
(:meth:`~repro.obs.metrics.MetricsRegistry.set_label`), so per-shard
Prometheus scrapes stay distinguishable after aggregation.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import multiprocessing
import os
import signal
import socket
import struct
import sys
import time
import zlib
from dataclasses import replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional

from ..obs.metrics import METRICS
from ..scalarmult.fixed_base import TABLE_CACHE
from ..scalarmult.table_store import TableStore, TableStoreError, \
    _untrack, build_store
from .server import EccServer, ServeConfig

__all__ = [
    "PUBLISH_INTERVAL",
    "ShardCluster",
    "StatsBoard",
    "reuseport_available",
    "run_cluster",
]

_RESPAWNS = METRICS.counter(
    "serve_shard_respawns_total",
    "shard processes respawned by the supervisor")

#: Seconds between a shard's periodic stats-board publications (each
#: ``scope="cluster"`` request also publishes the answering shard
#: fresh, so this only bounds the staleness of the *other* slots).
PUBLISH_INTERVAL = float(
    os.environ.get("REPRO_SHARD_PUBLISH_INTERVAL", "0.25"))

#: Seconds the supervisor's monitor sleeps between liveness sweeps.
_MONITOR_INTERVAL = 0.2

#: Seconds to wait for a freshly spawned shard to report its port.
_SPAWN_TIMEOUT = 60.0


def reuseport_available() -> bool:
    """Whether this platform can share one listening port across
    processes (Linux/BSD yes; the fallback is the redirector)."""
    return hasattr(socket, "SO_REUSEPORT")


# -- the cross-shard stats board ---------------------------------------------

_BOARD_MAGIC = b"RSB1"
_BOARD_HEADER = struct.Struct(">4sII")  # magic, slots, slot_size
_SLOT_HEADER = struct.Struct(">II")     # crc32(payload), payload length


class StatsBoard:
    """One shared-memory slot per shard for JSON stats payloads.

    Single writer per slot (the owning shard), any number of readers.
    Writers lay the payload down first and the crc32+length header
    last; a reader that catches a torn write sees a crc mismatch and
    skips the slot rather than parsing garbage — there are no locks.
    """

    #: Per-slot capacity; a full stats payload is a few KiB.
    SLOT_SIZE = 32768

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 slot_size: int, owner: bool):
        self._shm = shm
        self.slots = slots
        self.slot_size = slot_size
        self._owner = owner

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, slots: int,
               slot_size: int = SLOT_SIZE) -> "StatsBoard":
        if slots < 1:
            raise ValueError("a stats board needs at least one slot")
        size = _BOARD_HEADER.size + slots * slot_size
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:size] = b"\x00" * size  # all slot headers = empty
        shm.buf[:_BOARD_HEADER.size] = _BOARD_HEADER.pack(
            _BOARD_MAGIC, slots, slot_size)
        return cls(shm, slots, slot_size, owner=True)

    @classmethod
    def attach(cls, name: str) -> "StatsBoard":
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        if shm.size < _BOARD_HEADER.size:
            shm.close()
            raise TableStoreError(f"segment {name!r} is too short for a "
                                  "stats board")
        magic, slots, slot_size = _BOARD_HEADER.unpack_from(shm.buf, 0)
        if magic != _BOARD_MAGIC \
                or shm.size < _BOARD_HEADER.size + slots * slot_size:
            shm.close()
            raise TableStoreError(f"segment {name!r} is not a stats board")
        return cls(shm, slots, slot_size, owner=False)

    def _slot_offset(self, index: int) -> int:
        if not 0 <= index < self.slots:
            raise IndexError(f"slot {index} outside 0..{self.slots - 1}")
        return _BOARD_HEADER.size + index * self.slot_size

    def publish(self, index: int, payload: Dict[str, Any]) -> None:
        """Write *payload* into slot *index* (payload first, header
        last).  Oversized payloads drop their ``histograms`` before
        giving up."""
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode()
        limit = self.slot_size - _SLOT_HEADER.size
        if len(data) > limit and "histograms" in payload:
            slim = dict(payload)
            slim.pop("histograms")
            data = json.dumps(slim, sort_keys=True,
                              separators=(",", ":")).encode()
        if len(data) > limit:
            raise ValueError(f"stats payload of {len(data)} bytes exceeds "
                             f"the {limit}-byte slot")
        offset = self._slot_offset(index)
        body = offset + _SLOT_HEADER.size
        self._shm.buf[body:body + len(data)] = data
        self._shm.buf[offset:body] = _SLOT_HEADER.pack(
            zlib.crc32(data), len(data))

    def read(self, index: int) -> Optional[Dict[str, Any]]:
        """Slot *index*'s payload, or ``None`` when empty or torn."""
        offset = self._slot_offset(index)
        crc, length = _SLOT_HEADER.unpack_from(self._shm.buf, offset)
        if length == 0 or length > self.slot_size - _SLOT_HEADER.size:
            return None
        body = offset + _SLOT_HEADER.size
        data = bytes(self._shm.buf[body:body + length])
        if zlib.crc32(data) != crc:
            return None  # torn write in progress; reader skips
        try:
            payload = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def read_all(self) -> List[Dict[str, Any]]:
        """Every readable slot, in slot order."""
        payloads = []
        for index in range(self.slots):
            payload = self.read(index)
            if payload is not None:
                payloads.append(payload)
        return payloads

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if not self._owner:
            raise TableStoreError("only the creating process may unlink")
        self._shm.unlink()


# -- shard child process -----------------------------------------------------


def _shard_entry(index: int, config: ServeConfig, board_name: str,
                 conn) -> None:
    """Child-process entry point of one shard (picklable top-level)."""
    try:
        asyncio.run(_shard_serve(index, config, board_name, conn))
    except KeyboardInterrupt:  # supervisor ^C reaches the process group
        pass


async def _shard_serve(index: int, config: ServeConfig, board_name: str,
                       conn) -> None:
    # Forked process reporting metrics: same doctrine as pool workers —
    # drop the supervisor's inherited tallies, then take the shard
    # identity label (reset keeps labels; workers forked off this
    # shard's pool inherit it in turn).
    METRICS.reset_for_fork()
    METRICS.set_label("shard", str(index))
    try:
        board: Optional[StatsBoard] = StatsBoard.attach(board_name)
    except (TableStoreError, FileNotFoundError, OSError):
        board = None
    server = EccServer(config)
    server.board = board
    try:
        await server.start()
    except OSError as exc:
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
        conn.close()
        return
    conn.send({"port": server.port})
    conn.close()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    with contextlib.suppress(NotImplementedError, ValueError):
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        loop.add_signal_handler(signal.SIGINT, stop.set)
    publisher = asyncio.create_task(
        _publish_loop(server, board, index))
    try:
        await stop.wait()
    finally:
        publisher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await publisher
        await server.stop()
        # stop() leaves the pool draining (shutdown(wait=False)); join
        # the worker processes *before* interpreter exit.  Racing the
        # executor's atexit hook instead occasionally hangs the shard
        # past the supervisor's grace period, whose SIGKILL then
        # orphans the workers mid-pipe-read.
        if server._pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: server._pool.shutdown(wait=True))
        if board is not None:
            board.close()


async def _publish_loop(server: EccServer, board: Optional[StatsBoard],
                        index: int) -> None:
    if board is None:
        return
    while True:
        with contextlib.suppress(ValueError, IndexError):
            board.publish(index, server._shard_payload())
        await asyncio.sleep(PUBLISH_INTERVAL)


# -- the supervisor ----------------------------------------------------------


def _reserve_port(host: str, port: int) -> socket.socket:
    """Bind (never listen) a SO_REUSEPORT socket: reserves the port for
    the cluster's lifetime.  TCP SYNs only match *listening* sockets,
    so this adds no accept queue — it just pins the number while shards
    come and go."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


class ShardCluster:
    """Supervisor of N shard server processes plus their shared state.

    ``await start()`` brings up the store, the board, the shards and
    (without SO_REUSEPORT) the redirector; :attr:`port` is then the one
    public port.  ``await stop()`` tears everything down and unlinks
    the shared segments.  The respawn monitor keeps :attr:`respawns`
    and the ``serve_shard_respawns_total`` counter.
    """

    def __init__(self, shards: int, config: Optional[ServeConfig] = None,
                 *, reuseport: Optional[bool] = None, store: bool = True,
                 respawn: bool = True):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.config = config or ServeConfig()
        self.reuseport = (reuseport_available() if reuseport is None
                          else reuseport)
        if self.reuseport and not reuseport_available():
            raise ValueError("SO_REUSEPORT is not available here; use "
                             "reuseport=False (port-per-shard mode)")
        self.want_store = store
        self.respawn_enabled = respawn
        self.port: Optional[int] = None
        #: Live per-shard listening ports (== [port]*N with reuseport).
        self.shard_ports: List[Optional[int]] = [None] * shards
        self.respawns = 0
        self.store: Optional[TableStore] = None
        self.board: Optional[StatsBoard] = None
        self._ctx = multiprocessing.get_context("fork")
        self._procs: List[Optional[multiprocessing.Process]] = \
            [None] * shards
        self._reserve: Optional[socket.socket] = None
        self._redirector: Optional[asyncio.AbstractServer] = None
        self._monitor: Optional[asyncio.Task] = None
        self._rr = 0
        self._stopping = False
        self._journal_owned = False  # shared temp key journal to unlink

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ShardCluster":
        cfg = self.config
        if cfg.keys_journal is None:
            # One shared named-key journal for the whole cluster: every
            # shard (and every pool worker under it) replays the same
            # append-only file, which is what makes a key created via
            # shard 0 resolvable on shard N — and what lets a respawned
            # shard pick its keys back up (DESIGN.md §8).
            import tempfile

            fd, cfg.keys_journal = tempfile.mkstemp(
                prefix="repro-keys-cluster-", suffix=".ndjson")
            os.close(fd)
            self._journal_owned = True
        if self.want_store and cfg.fixed_base:
            warm = [k for k in cfg.warm_curves if k != "montgomery"]
            if warm:
                self.store = build_store(warm, width=cfg.fb_width)
                # Nothing inherited copy-on-write: the acceptance test
                # for "workers attach read-only" is that their
                # fixed_base_tables_built counters stay at zero.
                TABLE_CACHE.clear()
        self.board = StatsBoard.create(self.shards)
        if self.reuseport:
            self._reserve = _reserve_port(cfg.host, cfg.port)
            self.port = self._reserve.getsockname()[1]
        for index in range(self.shards):
            await self._spawn(index)
        if not self.reuseport:
            self._redirector = await asyncio.start_server(
                self._redirect, cfg.host, cfg.port)
            self.port = self._redirector.sockets[0].getsockname()[1]
        if self.respawn_enabled:
            self._monitor = asyncio.create_task(self._monitor_loop())
        return self

    async def stop(self) -> None:
        self._stopping = True
        if self._monitor is not None:
            self._monitor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor
        if self._redirector is not None:
            self._redirector.close()
            await self._redirector.wait_closed()
        loop = asyncio.get_running_loop()
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is None:
                continue
            await loop.run_in_executor(None, proc.join, 5)
            if proc.is_alive():  # pragma: no cover - stuck shard
                proc.kill()
                await loop.run_in_executor(None, proc.join, 5)
        if self._reserve is not None:
            self._reserve.close()
        if self.board is not None:
            self.board.close()
            self.board.unlink()
        if self.store is not None:
            with contextlib.suppress(FileNotFoundError):
                self.store.unlink()
        if self._journal_owned and self.config.keys_journal:
            with contextlib.suppress(OSError):
                os.unlink(self.config.keys_journal)
            self._journal_owned = False

    async def __aenter__(self) -> "ShardCluster":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- shard processes -----------------------------------------------------

    def _shard_config(self, index: int) -> ServeConfig:
        return replace(
            self.config,
            port=self.port if self.reuseport else 0,
            reuse_port=self.reuseport,
            shard=index,
            store_name=self.store.name if self.store is not None else None,
            # The supervisor owns slowlog dumping, not N clashing files.
            slowlog_out=None,
        )

    async def _spawn(self, index: int) -> None:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_shard_entry, name=f"repro-shard-{index}",
            args=(index, self._shard_config(index), self.board.name,
                  send_conn),
            # Not daemonic: each shard forks its own worker pool, which
            # daemonic processes are forbidden to do.
            daemon=False)
        proc.start()
        send_conn.close()
        try:
            port = await self._await_port(recv_conn, proc)
        finally:
            recv_conn.close()
        self._procs[index] = proc
        self.shard_ports[index] = port

    @staticmethod
    async def _await_port(conn, proc) -> int:
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        while time.monotonic() < deadline:
            if conn.poll():
                msg = conn.recv()
                if isinstance(msg, dict) and "port" in msg:
                    return msg["port"]
                raise RuntimeError(f"shard failed to start: {msg}")
            if not proc.is_alive():
                raise RuntimeError(
                    f"shard died during startup (exit {proc.exitcode})")
            await asyncio.sleep(0.02)
        raise RuntimeError("timed out waiting for a shard to report "
                           "its port")

    async def _monitor_loop(self) -> None:
        """Respawn dead shards; the listener never drops meanwhile (the
        reserve socket or the redirector holds the public port)."""
        while True:
            await asyncio.sleep(_MONITOR_INTERVAL)
            for index in range(self.shards):
                proc = self._procs[index]
                if proc is None or proc.is_alive() or self._stopping:
                    continue
                proc.join()
                self.respawns += 1
                _RESPAWNS.inc()
                print(f"shard {index} exited (code {proc.exitcode}); "
                      "respawning", file=sys.stderr)
                try:
                    await self._spawn(index)
                except RuntimeError as exc:  # pragma: no cover - races
                    print(f"shard {index} respawn failed: {exc}",
                          file=sys.stderr)

    # -- the port-per-shard redirector ---------------------------------------

    async def _redirect(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        """Round-robin one inbound connection onto a live shard and pump
        bytes both ways (protocol-agnostic: NDJSON framing passes
        through untouched)."""
        upstream = None
        for _attempt in range(self.shards):
            index = self._rr % self.shards
            self._rr += 1
            port = self.shard_ports[index]
            if port is None:
                continue
            try:
                upstream = await asyncio.open_connection(
                    self.config.host, port)
                break
            except OSError:
                continue  # dead shard mid-respawn: try the next one
        if upstream is None:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            return
        up_reader, up_writer = upstream

        async def pump(src: asyncio.StreamReader,
                       dst: asyncio.StreamWriter) -> None:
            try:
                while True:
                    data = await src.read(65536)
                    if not data:
                        break
                    dst.write(data)
                    await dst.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            # Half-close so in-flight replies still drain the other way.
            with contextlib.suppress(Exception):
                if dst.can_write_eof():
                    dst.write_eof()

        try:
            await asyncio.gather(pump(reader, up_writer),
                                 pump(up_reader, writer))
        except asyncio.CancelledError:
            pass  # loop teardown mid-pump; finish cleanly, not cancelled
        finally:
            for w in (up_writer, writer):
                w.close()
                with contextlib.suppress(Exception):
                    await w.wait_closed()


def run_cluster(config: ServeConfig, shards: int,
                reuseport: Optional[bool] = None,
                store: bool = True) -> int:
    """Run a shard cluster until SIGINT/SIGTERM (the ``python -m repro
    serve --shards N`` path)."""

    async def _run() -> int:
        cluster = ShardCluster(shards, config, reuseport=reuseport,
                               store=store)
        await cluster.start()
        mode = ("SO_REUSEPORT" if cluster.reuseport
                else "port-per-shard redirector")
        store_note = (f"table store {cluster.store.name}"
                      if cluster.store is not None else "no table store")
        print(f"repro.serve supervisor: {shards} shards on "
              f"{config.host}:{cluster.port} ({mode}; {store_note}; "
              f"{config.workers} workers per shard)", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            loop.add_signal_handler(signal.SIGINT, stop.set)
        try:
            await stop.wait()
        finally:
            await cluster.stop()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 0
