"""The asyncio front-end: batching, backpressure, and the worker pool.

Request lifecycle (the "per-stage" pipeline DESIGN.md §8 documents, each
stage metered).  One of these pipelines is a *shard*; ``--shards N``
runs N of them behind one listening port (SO_REUSEPORT, or the
port-per-shard redirector of :mod:`repro.serve.shard`), all of whose
workers attach one shared comb-table store::

    listen port (SO_REUSEPORT / redirector)
        |-- shard 0 ---------------------------------------------------.
        |   accept -> decode -> [bounded queue] -> batcher -> pool -> reply
        |                |            |               |          |
        |            BadRequest   Overloaded     (curve, op)  workers attach
        |            replies      load-shed      batching     the table store
        |-- shard 1 ... (same pipeline, own event loop + pool)

* **Backpressure** is an explicit bounded :class:`asyncio.Queue`
  (``queue_depth``).  A full queue does not slow the reader down — it
  sheds: the client gets a typed ``Overloaded`` reply immediately and
  the ``serve_shed_total`` counter ticks.  Per-request deadlines are
  honoured at dispatch time: a request whose budget elapsed while
  queued is answered ``DeadlineExceeded`` without touching a worker.
* **Batching**: the batcher drains whatever is queued, groups it by
  ``(op, curve)`` — compatible requests share worker-side state such as
  fixed-base tables and protocol objects — and dispatches chunks of at
  most ``batch_max`` to the :class:`~concurrent.futures
  .ProcessPoolExecutor`.  Batches from different groups run
  concurrently across workers.
* **Observability**: latency histograms (``serve_queue_us``,
  ``serve_worker_us``, ``serve_latency_us``, and one
  ``serve_op_latency_us_<op>_<curve>`` per op/curve pair) and
  throughput/shed counters live in the process-wide registry;
  worker-side counters merge in per batch reply (fork-safe by
  construction — see :mod:`repro.obs.metrics`).  When a tracer is
  installed each batch runs under a ``serve_batch`` span with
  queue/worker timing attrs.
* **Distributed tracing** (``--tracing``, or a client-set ``trace``
  field): traced requests carry their id through the queue, the batch
  and the worker, whose per-request span shard ships back with the
  batch reply; the server joins shard + stage timestamps into a
  :class:`~repro.obs.assemble.RequestTrace` and feeds the
  :class:`~repro.obs.assemble.FlightRecorder` tail-sampling ring
  (``--slowlog`` capacity, ``--slowlog-out`` Chrome-trace dump).
* **Operational endpoint**: the ``stats`` op is answered inline at
  accept — queue depth, batch occupancy, shed counts, per-(op, curve)
  latency percentiles, or the full registry as Prometheus text
  exposition (``params.format = "prometheus"``) — so telemetry stays
  reachable even when the bounded queue is shedding.  Under the shard
  supervisor, ``params.scope = "cluster"`` aggregates counters across
  every shard via the shared stats board, from any one shard's socket.

``python -m repro serve`` is this module's CLI; the in-process
:class:`EccServer` API is what the load generator, the benchmark
harness and the tests drive.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs import trace as _trace
from ..obs.assemble import FlightRecorder, RequestTrace
from ..obs.metrics import METRICS, render_prometheus
from ..obs.trace import new_trace_id
from ..scalarmult.fixed_base import DEFAULT_WIDTH
from . import protocol
from .worker import execute_batch, init_worker

__all__ = ["ServeConfig", "EccServer", "main"]

_REQUESTS = METRICS.counter(
    "serve_requests_total", "requests accepted off the wire")
_BAD = METRICS.counter(
    "serve_bad_requests_total", "lines rejected before queueing")
_SHED = METRICS.counter(
    "serve_shed_total", "requests shed with an Overloaded reply")
_DEADLINE = METRICS.counter(
    "serve_deadline_total", "requests expired while queued")
_BATCHES = METRICS.counter(
    "serve_batches_total", "batches dispatched to the pool")
_REPLIES = METRICS.counter(
    "serve_replies_total", "replies written back to clients")
_QUEUE_US = METRICS.histogram(
    "serve_queue_us", "time from enqueue to dispatch, microseconds")
_WORKER_US = METRICS.histogram(
    "serve_worker_us", "pool round-trip per batch, microseconds")
_LATENCY_US = METRICS.histogram(
    "serve_latency_us", "enqueue-to-reply per request, microseconds")


@dataclass
class ServeConfig:
    """Tunables of one server instance (all exposed as CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral (the bound port lands in EccServer.port)
    workers: int = 2
    batch_max: int = 16
    queue_depth: int = 128
    #: Server-wide default deadline; None = requests wait indefinitely.
    deadline_ms: Optional[float] = None
    hardened: bool = False
    fixed_base: bool = True
    fb_width: int = DEFAULT_WIDTH
    #: Curve suites whose fixed-base tables each worker pre-builds.
    warm_curves: Tuple[str, ...] = ("secp160r1",)
    #: Attach pool workers to this shared comb-table store segment
    #: (:mod:`repro.scalarmult.table_store`); None = each worker builds
    #: its own tables (pre-shard behaviour).
    store_name: Optional[str] = None
    #: This server's index under the shard supervisor (labels metrics
    #: and the ``stats`` reply); None = unsharded.
    shard: Optional[int] = None
    #: Bind the listener with SO_REUSEPORT so sibling shard processes
    #: can share one (host, port) accept queue.
    reuse_port: bool = False
    #: Stamp a trace id on every accepted request (clients may also set
    #: their own ``trace`` field regardless of this switch).
    tracing: bool = False
    #: Flight-recorder capacity: the N slowest traced requests kept.
    slowlog: int = 64
    #: Dump the flight recorder as Chrome trace JSON here on stop().
    slowlog_out: Optional[str] = None
    #: Path of the named-key journal (:mod:`repro.serve.keys`).  None =
    #: the server materializes a private temp journal on start() and
    #: removes it on stop(); the shard supervisor sets one shared path
    #: so every shard (and every pool worker) sees the same keys.
    keys_journal: Optional[str] = None
    #: Strict-mode tenant config (``{name: {token, max_keys, rate,
    #: burst}}``, the parsed ``--tenants-file``); None = open tenancy
    #: (any well-formed tenant self-registers with its derived token).
    tenants: Optional[Dict[str, Dict[str, Any]]] = None


@dataclass
class _Pending:
    request: Dict[str, Any]
    future: "asyncio.Future[Dict[str, Any]]"
    t_enqueue: float
    deadline_s: Optional[float]  # absolute perf_counter() instant
    # Distributed-tracing fields (None/0 on the untraced hot path).
    trace_id: Optional[str] = None
    t_accept_ns: int = 0
    t_dispatch_ns: Optional[int] = None
    worker_pid: Optional[int] = None
    worker_spans: Optional[List[Dict[str, Any]]] = None
    batch_size: int = 0


class EccServer:
    """One TCP service instance bound to one worker pool."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.port: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._dispatches: set = set()
        self._connections: set = set()
        #: Last reported cumulative counters per worker pid (merge base).
        self._worker_baselines: Dict[int, Dict[str, float]] = {}
        #: Tail-sampling ring of the slowest traced requests (--slowlog).
        self.recorder = FlightRecorder(self.config.slowlog)
        #: Cross-shard stats board (:class:`~repro.serve.shard
        #: .StatsBoard`), installed by the shard runtime before start();
        #: None on an unsharded server.
        self.board = None
        #: Writable named-key registry (:mod:`repro.serve.keys`); built
        #: in start() over ``config.keys_journal``.
        self.keys = None
        self._journal_owned = False  # temp journal to unlink on stop()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "EccServer":
        from .keys import KeyRegistry

        cfg = self.config
        if cfg.workers < 1:
            raise ValueError("need at least one worker")
        if cfg.keys_journal is None:
            # Standalone server: a private journal so keys still reach
            # the pool workers (they attach it read-only).  The shard
            # supervisor hands every shard one shared path instead.
            fd, cfg.keys_journal = tempfile.mkstemp(
                prefix="repro-keys-", suffix=".ndjson")
            os.close(fd)
            self._journal_owned = True
        self.keys = KeyRegistry(journal_path=cfg.keys_journal,
                                tenants=cfg.tenants)
        self._pool = ProcessPoolExecutor(
            max_workers=cfg.workers,
            initializer=init_worker,
            initargs=(cfg.hardened, cfg.fb_width, cfg.fixed_base,
                      tuple(cfg.warm_curves), cfg.store_name,
                      cfg.keys_journal),
        )
        self._queue = asyncio.Queue(maxsize=cfg.queue_depth)
        self._batcher = asyncio.create_task(self._batch_loop())
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port,
            reuse_port=cfg.reuse_port or None)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Unblock connection handlers parked in readline() so their
        # tasks finish before the loop tears them down.
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        for task in list(self._dispatches):
            task.cancel()
        if self._dispatches:
            await asyncio.gather(*self._dispatches, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.config.slowlog_out and len(self.recorder):
            written = self.recorder.dump(self.config.slowlog_out)
            print(f"slowlog: {written} slowest request trees -> "
                  f"{self.config.slowlog_out}", file=sys.stderr)
        if self._journal_owned and self.config.keys_journal:
            with contextlib.suppress(OSError):
                os.unlink(self.config.keys_journal)
            self._journal_owned = False

    async def __aenter__(self) -> "EccServer":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        reply_tasks: set = set()

        async def write_reply(reply: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(protocol.encode_reply(reply))
                await writer.drain()
            _REPLIES.inc()

        async def await_and_reply(pending: _Pending) -> None:
            reply = await pending.future
            lat_us = (time.perf_counter() - pending.t_enqueue) * 1e6
            _LATENCY_US.observe(lat_us)
            req = pending.request
            METRICS.histogram(
                f"serve_op_latency_us_{req['op']}_{req.get('curve') or 'all'}",
                "enqueue-to-reply per (op, curve), microseconds",
            ).observe(lat_us)
            if pending.trace_id is not None:
                reply.setdefault("meta", {})["trace"] = pending.trace_id
                self._record_trace(pending, reply)
            await write_reply(reply)

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.isspace():
                    continue
                try:
                    request = protocol.decode_request(line)
                except protocol.ProtocolError as exc:
                    _BAD.inc()
                    req_id = self._salvage_id(line)
                    await write_reply(protocol.error_reply(
                        req_id, "BadRequest", str(exc)))
                    continue
                _REQUESTS.inc()
                if request["op"] == "stats":
                    # Telemetry is answered inline, never queued — the
                    # whole point is reachability while overloaded.
                    await write_reply(self._stats_reply(request))
                    continue
                if "tenant" in request:
                    # Tenant-scoped: authorize + rate-quota, answer key
                    # lifecycle ops inline (journal writes, not worker
                    # work), pin the key generation on named use.
                    reply = self._keys_admission(request)
                    if reply is not None:
                        await write_reply(reply)
                        continue
                if self.config.tracing and "trace" not in request:
                    request["trace"] = new_trace_id()
                pending = self._make_pending(request)
                try:
                    self._queue.put_nowait(pending)
                except asyncio.QueueFull:
                    _SHED.inc()
                    await write_reply(protocol.error_reply(
                        request["id"], "Overloaded",
                        f"queue depth {self.config.queue_depth} exceeded; "
                        "retry with backoff"))
                    continue
                task = asyncio.create_task(await_and_reply(pending))
                reply_tasks.add(task)
                task.add_done_callback(reply_tasks.discard)
            if reply_tasks:
                await asyncio.gather(*reply_tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # server teardown: end the handler cleanly
        finally:
            self._connections.discard(writer)
            for task in reply_tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _keys_admission(self, request: Dict[str, Any]
                        ) -> Optional[Dict[str, Any]]:
        """Admission control for tenant-scoped requests.

        Authorizes the (tenant, token) pair, charges the tenant's rate
        bucket, then either answers a ``key_*`` lifecycle op inline
        (like ``stats`` — a journal write must not wait behind the
        batch queue) or admits a named-key use: the key's **current
        generation is pinned** into ``params.key_generation`` right
        here, so a rotation landing a microsecond later cannot retire
        the key under an in-flight batch, and the ``token`` is stripped
        so credentials never enter the batch payload.  Returns the
        reply to write immediately, or None for an admitted request
        that continues to the queue.
        """
        op = request["op"]
        params = request.get("params") or {}
        try:
            tenant = self.keys.authorize(request["tenant"],
                                         request.get("token"))
            METRICS.counter(
                f"serve_tenant_{tenant.name}_requests_total").inc()
            self.keys.throttle(tenant)
            if op in protocol.KEY_OPS:
                if op == "key_create":
                    result = self.keys.create(
                        tenant.name, params["name"], request["curve"],
                        params.get("seed"))
                elif op == "key_rotate":
                    result = self.keys.rotate(tenant.name, params["name"],
                                              params.get("seed"))
                elif op == "key_delete":
                    result = self.keys.delete(tenant.name, params["name"])
                else:
                    result = self.keys.info(tenant.name, params["name"])
                reply = protocol.ok_reply(request["id"], result)
            else:
                if params.get("key_generation") is None:
                    ref = self.keys.resolve(tenant.name, params["key"])
                    request["params"] = dict(params,
                                             key_generation=ref.generation)
                request.pop("token", None)
                return None
        except protocol.ProtocolError as exc:
            reply = protocol.error_reply(request["id"], exc.error_type,
                                         str(exc))
        trace_id = request.get("trace")
        if trace_id is not None:
            reply.setdefault("meta", {})["trace"] = trace_id
        return reply

    def _make_pending(self, request: Dict[str, Any]) -> _Pending:
        now = time.perf_counter()
        deadline_ms = request.get("deadline_ms", self.config.deadline_ms)
        deadline_s = None if deadline_ms is None else now + deadline_ms / 1e3
        trace_id = request.get("trace")
        return _Pending(request=request,
                        future=asyncio.get_running_loop().create_future(),
                        t_enqueue=now, deadline_s=deadline_s,
                        trace_id=trace_id,
                        t_accept_ns=(time.perf_counter_ns()
                                     if trace_id is not None else 0))

    def _record_trace(self, pending: _Pending,
                      reply: Dict[str, Any]) -> None:
        """Close the book on one traced request: join-ready record in."""
        self.recorder.record(RequestTrace(
            trace_id=pending.trace_id,
            req_id=pending.request["id"],
            op=pending.request["op"],
            curve=pending.request.get("curve"),
            server_pid=os.getpid(),
            t_accept_ns=pending.t_accept_ns,
            t_dispatch_ns=pending.t_dispatch_ns,
            t_reply_ns=time.perf_counter_ns(),
            worker_pid=pending.worker_pid,
            worker_spans=pending.worker_spans or [],
            batch_size=pending.batch_size,
            status="ok" if reply.get("ok") else
                   reply.get("error", {}).get("type", "Internal"),
        ))

    @staticmethod
    def _salvage_id(line: bytes) -> int:
        """Best-effort id recovery so even a BadRequest reply correlates."""
        import json

        try:
            obj = json.loads(line)
            req_id = obj.get("id") if isinstance(obj, dict) else None
            if isinstance(req_id, int) and not isinstance(req_id, bool) \
                    and req_id >= 0:
                return req_id
        except (json.JSONDecodeError, UnicodeDecodeError):
            pass
        return 0

    # -- batching + dispatch -------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the queue, group by (op, curve), dispatch chunks."""
        while True:
            items = [await self._queue.get()]
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            groups: Dict[Tuple[str, Optional[str]], List[_Pending]] = {}
            for item in items:
                key = (item.request["op"], item.request.get("curve"))
                groups.setdefault(key, []).append(item)
            for group in groups.values():
                for i in range(0, len(group), self.config.batch_max):
                    chunk = group[i:i + self.config.batch_max]
                    task = asyncio.create_task(self._dispatch(chunk))
                    self._dispatches.add(task)
                    task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, chunk: List[_Pending]) -> None:
        now = time.perf_counter()
        now_ns = time.perf_counter_ns()
        live: List[_Pending] = []
        for item in chunk:
            _QUEUE_US.observe((now - item.t_enqueue) * 1e6)
            if item.deadline_s is not None and now > item.deadline_s:
                _DEADLINE.inc()
                item.future.set_result(protocol.error_reply(
                    item.request["id"], "DeadlineExceeded",
                    "deadline elapsed while queued"))
            else:
                if item.trace_id is not None:
                    item.t_dispatch_ns = now_ns
                live.append(item)
        if not live:
            return
        for item in live:
            item.batch_size = len(live)
        _BATCHES.inc()
        payload = [item.request for item in live]
        op, curve = live[0].request["op"], live[0].request.get("curve")
        tracer = _trace.CURRENT
        span = tracer.start("serve_batch", kind="serve", op=op,
                            curve=curve, batch=len(live)) if tracer else None
        t0 = time.perf_counter()
        try:
            result = await asyncio.get_running_loop().run_in_executor(
                self._pool, execute_batch, payload)
        except Exception as exc:
            for item in live:
                if not item.future.done():
                    item.future.set_result(protocol.error_reply(
                        item.request["id"], "Internal",
                        f"worker pool failure: {type(exc).__name__}: {exc}"))
            return
        finally:
            if tracer is not None and span is not None:
                tracer.end(span)
        _WORKER_US.observe((time.perf_counter() - t0) * 1e6)
        self._merge_worker_metrics(result["pid"], result["metrics"])
        shards = result.get("spans") or [None] * len(live)
        for item, reply, shard in zip(live, result["replies"], shards):
            if item.trace_id is not None:
                item.worker_pid = result["pid"]
                item.worker_spans = shard
            if not item.future.done():
                item.future.set_result(reply)

    def _merge_worker_metrics(self, pid: int,
                              counters: Dict[str, float]) -> None:
        """Fold a worker's cumulative counters in as deltas vs the last
        report from that pid (worker restarts re-baseline cleanly)."""
        baseline = self._worker_baselines.get(pid, {})
        deltas = {}
        for name, value in counters.items():
            delta = value - baseline.get(name, 0)
            if delta < 0:  # restarted worker reusing a pid: re-baseline
                delta = value
            deltas[name] = delta
        METRICS.merge_counters(deltas)
        self._worker_baselines[pid] = counters

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Flat snapshot of the serve metrics (counters + histograms)."""
        snap = METRICS.snapshot()
        return {name: value for name, value in snap.items()
                if name.startswith(("serve_", "fixed_base_"))}

    def stats_result(self, params: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
        """The ``stats`` op's result object (protocol schema in
        :mod:`repro.serve.protocol`): live queue/batch state plus the
        per-(op, curve) latency percentiles, or the whole registry in
        Prometheus text exposition with ``format="prometheus"``.

        ``scope="cluster"`` (JSON only) answers for every shard on the
        stats board — counters summed, per-shard payloads attached —
        so any one shard's socket serves whole-cluster telemetry."""
        params = params or {}
        fmt = params.get("format", "json")
        scope = params.get("scope", "shard")
        if scope not in ("shard", "cluster"):
            raise protocol.ProtocolError(
                f"stats scope must be 'shard' or 'cluster', got {scope!r}")
        if fmt == "prometheus":
            if scope == "cluster":
                raise protocol.ProtocolError(
                    "cluster scope is JSON-only; scrape each shard for "
                    "labelled expositions")
            self._refresh_gauges()
            return {"format": "prometheus",
                    "text": render_prometheus(METRICS)}
        if fmt != "json":
            raise protocol.ProtocolError(
                f"stats format must be 'json' or 'prometheus', got {fmt!r}")
        if scope == "cluster":
            return self._cluster_stats()
        return self._shard_payload()

    def _shard_payload(self) -> Dict[str, Any]:
        """This process's shard-scope JSON stats (also what the shard
        runtime publishes to the stats board)."""
        counters = {name: value
                    for name, value in METRICS.counters_snapshot().items()
                    if name.startswith(("serve_", "fixed_base_"))}
        batches = counters.get("serve_batches_total", 0)
        executed = counters.get("serve_worker_requests_total", 0)
        return {
            "format": "json",
            "scope": "shard",
            "shard": self.config.shard,
            "pid": os.getpid(),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_capacity": self.config.queue_depth,
            "batch_occupancy": round(executed / batches, 3) if batches
            else 0.0,
            "counters": counters,
            "histograms": METRICS.histogram_summaries(prefix="serve_"),
            "slowlog": {"capacity": self.recorder.capacity,
                        "size": len(self.recorder),
                        "recorded": self.recorder.recorded},
            "tenants": (self.keys.tenants_snapshot()
                        if self.keys is not None else {}),
        }

    def _cluster_stats(self) -> Dict[str, Any]:
        """Cluster-scope aggregation over the shard stats board.

        Publishes this shard's own fresh payload first (so the answer
        is never staler than the asking request), then sums counters
        and queue state across every readable slot.  Unsharded servers
        degrade to a one-shard cluster.  Histogram summaries are
        per-shard only — percentile summaries do not merge — so they
        stay inside each ``shards[i]`` payload.
        """
        own = self._shard_payload()
        if self.board is None:
            shards = [own]
        else:
            self.board.publish(self.config.shard or 0, own)
            shards = self.board.read_all()
        counters: Dict[str, float] = {}
        for payload in shards:
            for name, value in payload.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
        return {
            "format": "json",
            "scope": "cluster",
            "shard_count": len(shards),
            "queue_depth": sum(p.get("queue_depth", 0) for p in shards),
            "queue_capacity": sum(p.get("queue_capacity", 0)
                                  for p in shards),
            "counters": dict(sorted(counters.items())),
            "shards": shards,
        }

    def _refresh_gauges(self) -> None:
        METRICS.gauge(
            "serve_queue_depth", "requests queued right now",
        ).set(self._queue.qsize() if self._queue else 0)
        METRICS.gauge(
            "serve_slowlog_size", "traced requests held by the recorder",
        ).set(len(self.recorder))

    def _stats_reply(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            result = self.stats_result(request.get("params"))
        except protocol.ProtocolError as exc:
            return protocol.error_reply(request["id"], "BadRequest",
                                        str(exc))
        reply = protocol.ok_reply(request["id"], result)
        trace_id = request.get("trace")
        if trace_id is not None:
            reply.setdefault("meta", {})["trace"] = trace_id
        return reply


async def _serve_forever(config: ServeConfig) -> int:
    server = EccServer(config)
    await server.start()
    print(f"repro.serve listening on {config.host}:{server.port} "
          f"({config.workers} workers, batch<={config.batch_max}, "
          f"queue_depth={config.queue_depth})", flush=True)
    loop = asyncio.get_running_loop()
    forever = asyncio.ensure_future(server._server.serve_forever())
    # SIGTERM must drain through stop() too, else the pool workers are
    # orphaned holding inherited fds (SIGINT already unwinds via
    # KeyboardInterrupt -> asyncio.run cancellation).
    with contextlib.suppress(NotImplementedError):
        loop.add_signal_handler(signal.SIGTERM, forever.cancel)
    try:
        await forever
    except asyncio.CancelledError:
        pass
    finally:
        with contextlib.suppress(NotImplementedError):
            loop.remove_signal_handler(signal.SIGTERM)
        await server.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Batched multi-worker ECC service over "
                    "newline-delimited JSON / TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9477,
                        help="TCP port (default 9477; 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes in the pool (per shard "
                             "when --shards > 1)")
    parser.add_argument("--shards", type=int, default=1,
                        help="accept-loop server processes sharing the "
                             "listening port (1 = single process; N > 1 "
                             "starts the shard supervisor with a shared "
                             "comb-table store)")
    parser.add_argument("--no-reuseport", action="store_true",
                        help="with --shards: force the port-per-shard "
                             "supervisor + round-robin redirector even "
                             "where SO_REUSEPORT is available")
    parser.add_argument("--no-store", action="store_true",
                        help="with --shards: skip the shared comb-table "
                             "store (each worker builds its own tables)")
    parser.add_argument("--batch-max", type=int, default=16,
                        help="max requests per dispatched batch")
    parser.add_argument("--queue-depth", type=int, default=128,
                        help="bounded queue size; beyond it requests are "
                             "shed with a typed Overloaded reply")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="server-wide default per-request deadline")
    parser.add_argument("--hardened", action="store_true",
                        help="run the fault-hardened protocol paths "
                             "(slower: redundancy + verify-after-sign)")
    parser.add_argument("--no-fixed-base", action="store_true",
                        help="disable fixed-base comb tables (baseline)")
    parser.add_argument("--fb-width", type=int, default=DEFAULT_WIDTH,
                        help="comb window width in bits")
    parser.add_argument("--warm", default="secp160r1",
                        help="comma-separated curves whose tables each "
                             "worker pre-builds ('' = none)")
    parser.add_argument("--tracing", action="store_true",
                        help="stamp a trace id on every request, collect "
                             "worker span shards and keep the slowest "
                             "request trees in the flight recorder")
    parser.add_argument("--slowlog", type=int, default=64,
                        help="flight-recorder capacity: N slowest traced "
                             "requests retained (default 64)")
    parser.add_argument("--slowlog-out", default=None, metavar="PATH",
                        help="dump the flight recorder as Chrome trace "
                             "JSON on shutdown")
    parser.add_argument("--keys-journal", default=None, metavar="PATH",
                        help="named-key journal path (append-only "
                             "NDJSON; survives restarts). Default: a "
                             "private temp file removed on shutdown")
    parser.add_argument("--tenants-file", default=None, metavar="PATH",
                        help="strict-tenancy config: JSON object of "
                             "{tenant: {token, max_keys, rate, burst}}. "
                             "Default: open tenancy with derived tokens")
    args = parser.parse_args(argv)
    warm = tuple(c for c in args.warm.split(",") if c)
    for curve in warm:
        if curve not in protocol.CURVES:
            parser.error(f"unknown curve {curve!r} in --warm")
    if args.slowlog < 1:
        parser.error("--slowlog must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    tenants = None
    if args.tenants_file is not None:
        import json

        try:
            with open(args.tenants_file, encoding="utf-8") as fh:
                tenants = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"--tenants-file unreadable: {exc}")
        if not isinstance(tenants, dict) or not all(
                isinstance(name, str)
                and protocol.TENANT_NAME.fullmatch(name)
                and isinstance(spec, dict)
                for name, spec in tenants.items()):
            parser.error("--tenants-file must map tenant names "
                         "([a-z][a-z0-9_], max 24 chars) to config "
                         "objects")
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        batch_max=args.batch_max, queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms, hardened=args.hardened,
        fixed_base=not args.no_fixed_base, fb_width=args.fb_width,
        warm_curves=warm, tracing=args.tracing, slowlog=args.slowlog,
        slowlog_out=args.slowlog_out, keys_journal=args.keys_journal,
        tenants=tenants,
    )
    if args.shards > 1:
        from .shard import run_cluster

        return run_cluster(config, shards=args.shards,
                           reuseport=False if args.no_reuseport else None,
                           store=not args.no_store)
    try:
        return asyncio.run(_serve_forever(config))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
