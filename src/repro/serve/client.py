"""Clients for the ECC service: blocking and asyncio.

Both speak the NDJSON protocol of :mod:`repro.serve.protocol` and
correlate replies by request ``id`` — the server batches compatible
requests, so replies can arrive out of order and the clients reorder
them transparently.

* :class:`ServeClient` — synchronous, socket-per-client.  ``call()``
  for one-at-a-time RPC, ``call_many()`` to pipeline a whole request
  list in one write burst (this is what exercises server-side
  batching).
* :class:`AsyncServeClient` — asyncio twin with the same surface;
  ``call()`` is a coroutine and concurrent callers share one
  connection (a background reader task routes replies to futures).

Both clients originate trace context: ``call(..., trace=True)`` stamps
a fresh :func:`~repro.obs.trace.new_trace_id` on the request (or pass a
specific id string), and ``stats()`` wraps the served telemetry op —
``stats(format="prometheus")`` returns the scrape text directly.

Tenant-scoped requests (the named-key subsystem of
:mod:`repro.serve.keys`) take ``tenant=`` on ``call()`` /
``request()``: the auth token defaults to the open-mode derived token
(:func:`~repro.serve.keys.tenant_token`), or pass ``token=`` for
strict-mode deployments.  The ``key_create`` / ``key_rotate`` /
``key_delete`` / ``key_info`` convenience methods wrap the lifecycle
ops; afterwards sign/ECDH with ``params={"key": "<name>"}`` instead of
an inline ``private``.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Any, Dict, List, Optional, Union

from ..obs.trace import new_trace_id
from . import protocol

__all__ = ["ServeClient", "AsyncServeClient", "ServeError"]


def _trace_field(trace: Union[bool, str, None]) -> Optional[str]:
    """Resolve the ``trace=`` convenience argument to a wire trace id."""
    if trace is None or trace is False:
        return None
    if trace is True:
        return new_trace_id()
    return trace


def _tenant_fields(req: Dict[str, Any], tenant: Optional[str],
                   token: Optional[str]) -> Dict[str, Any]:
    """Stamp tenant/token on *req* (token defaults to the derived
    open-mode token of the tenant)."""
    if tenant is not None:
        from .keys import tenant_token

        req["tenant"] = tenant
        req["token"] = token if token is not None else tenant_token(tenant)
    return req


class ServeError(RuntimeError):
    """A typed error reply, surfaced as an exception by ``call()``."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def _raise_on_error(reply: Dict[str, Any]) -> Dict[str, Any]:
    if not reply["ok"]:
        error = reply["error"]
        raise ServeError(error["type"], error["message"])
    return reply["result"]


class ServeClient:
    """Blocking client over one TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9477,
                 timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(self, op: str, curve: Optional[str] = None,
                params: Optional[Dict[str, Any]] = None,
                deadline_ms: Optional[float] = None,
                trace: Union[bool, str, None] = None,
                tenant: Optional[str] = None,
                token: Optional[str] = None) -> Dict[str, Any]:
        """Build a well-formed request dict with a fresh id."""
        req: Dict[str, Any] = {"id": next(self._ids), "op": op,
                               "params": params or {}}
        if curve is not None:
            req["curve"] = curve
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        trace_id = _trace_field(trace)
        if trace_id is not None:
            req["trace"] = trace_id
        return _tenant_fields(req, tenant, token)

    def call(self, op: str, curve: Optional[str] = None,
             params: Optional[Dict[str, Any]] = None,
             deadline_ms: Optional[float] = None,
             trace: Union[bool, str, None] = None,
             tenant: Optional[str] = None,
             token: Optional[str] = None) -> Dict[str, Any]:
        """One RPC; returns the result dict or raises :class:`ServeError`."""
        req = self.request(op, curve, params, deadline_ms, trace,
                           tenant, token)
        [reply] = self.call_raw([req])
        return _raise_on_error(reply)

    # -- named-key lifecycle (repro.serve.keys) ------------------------------

    def key_create(self, tenant: str, name: str,
                   curve: str = "secp160r1", seed: Optional[str] = None,
                   token: Optional[str] = None) -> Dict[str, Any]:
        """Create a server-resident key; returns its public half.

        Sign afterwards with ``params={"key": name}`` — the private
        scalar never travels on the wire."""
        params: Dict[str, Any] = {"name": name}
        if seed is not None:
            params["seed"] = seed
        return self.call("key_create", curve, params,
                         tenant=tenant, token=token)

    def key_rotate(self, tenant: str, name: str,
                   seed: Optional[str] = None,
                   token: Optional[str] = None) -> Dict[str, Any]:
        """Rotate in a new key generation (old ones stay resolvable)."""
        params: Dict[str, Any] = {"name": name}
        if seed is not None:
            params["seed"] = seed
        return self.call("key_rotate", params=params,
                         tenant=tenant, token=token)

    def key_delete(self, tenant: str, name: str,
                   token: Optional[str] = None) -> Dict[str, Any]:
        """Retire a named key (all generations)."""
        return self.call("key_delete", params={"name": name},
                         tenant=tenant, token=token)

    def key_info(self, tenant: str, name: str,
                 token: Optional[str] = None) -> Dict[str, Any]:
        """Public metadata of a named key (never secret material)."""
        return self.call("key_info", params={"name": name},
                         tenant=tenant, token=token)

    def stats(self, format: Optional[str] = None,
              scope: Optional[str] = None) -> Any:
        """The served ``stats`` op.  ``format="prometheus"`` returns the
        exposition text; default returns the structured result dict.
        ``scope="cluster"`` aggregates across a sharded server's lanes
        (JSON only)."""
        params = {k: v for k, v in (("format", format), ("scope", scope))
                  if v}
        result = self.call("stats", params=params or None)
        return result["text"] if format == "prometheus" else result

    def call_raw(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline a request list; replies in *request* order, errors
        returned as reply dicts rather than raised."""
        if not requests:
            return []
        payload = b"".join(protocol.encode_request(r) for r in requests)
        self._sock.sendall(payload)
        by_id: Dict[int, Dict[str, Any]] = {}
        want = {r["id"] for r in requests}
        if len(want) != len(requests):
            raise ValueError("duplicate request ids in one pipeline")
        while len(by_id) < len(requests):
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            reply = protocol.decode_reply(line)
            if reply["id"] in want:
                by_id[reply["id"]] = reply
        return [by_id[r["id"]] for r in requests]

    def call_many(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline + unwrap: list of result dicts, raising on the first
        error reply (use :meth:`call_raw` to inspect errors per-request)."""
        return [_raise_on_error(r) for r in self.call_raw(requests)]


class AsyncServeClient:
    """Asyncio client; concurrent ``call()``s share one connection."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._reader_task: Optional[asyncio.Task] = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 9477) -> "AsyncServeClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port)
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionError("client closed"))
        self._pending.clear()

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                reply = protocol.decode_reply(line)
                future = self._pending.pop(reply["id"], None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection"))
            self._pending.clear()

    async def call_raw_one(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Send one pre-built request, await its reply dict."""
        future = asyncio.get_running_loop().create_future()
        self._pending[req["id"]] = future
        self._writer.write(protocol.encode_request(req))
        await self._writer.drain()
        return await future

    async def call(self, op: str, curve: Optional[str] = None,
                   params: Optional[Dict[str, Any]] = None,
                   deadline_ms: Optional[float] = None,
                   trace: Union[bool, str, None] = None,
                   tenant: Optional[str] = None,
                   token: Optional[str] = None) -> Dict[str, Any]:
        req: Dict[str, Any] = {"id": next(self._ids), "op": op,
                               "params": params or {}}
        if curve is not None:
            req["curve"] = curve
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        trace_id = _trace_field(trace)
        if trace_id is not None:
            req["trace"] = trace_id
        reply = await self.call_raw_one(_tenant_fields(req, tenant, token))
        return _raise_on_error(reply)

    async def key_create(self, tenant: str, name: str,
                         curve: str = "secp160r1",
                         seed: Optional[str] = None,
                         token: Optional[str] = None) -> Dict[str, Any]:
        """Async twin of :meth:`ServeClient.key_create`."""
        params: Dict[str, Any] = {"name": name}
        if seed is not None:
            params["seed"] = seed
        return await self.call("key_create", curve, params,
                               tenant=tenant, token=token)

    async def key_rotate(self, tenant: str, name: str,
                         seed: Optional[str] = None,
                         token: Optional[str] = None) -> Dict[str, Any]:
        """Async twin of :meth:`ServeClient.key_rotate`."""
        params: Dict[str, Any] = {"name": name}
        if seed is not None:
            params["seed"] = seed
        return await self.call("key_rotate", params=params,
                               tenant=tenant, token=token)

    async def key_delete(self, tenant: str, name: str,
                         token: Optional[str] = None) -> Dict[str, Any]:
        """Async twin of :meth:`ServeClient.key_delete`."""
        return await self.call("key_delete", params={"name": name},
                               tenant=tenant, token=token)

    async def key_info(self, tenant: str, name: str,
                       token: Optional[str] = None) -> Dict[str, Any]:
        """Async twin of :meth:`ServeClient.key_info`."""
        return await self.call("key_info", params={"name": name},
                               tenant=tenant, token=token)

    async def stats(self, format: Optional[str] = None,
                    scope: Optional[str] = None) -> Any:
        """Async twin of :meth:`ServeClient.stats`."""
        params = {k: v for k, v in (("format", format), ("scope", scope))
                  if v}
        result = await self.call("stats", params=params or None)
        return result["text"] if format == "prometheus" else result

    async def call_raw(
            self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline a request list concurrently; replies in request order."""
        return list(await asyncio.gather(
            *(self.call_raw_one(r) for r in requests)))
