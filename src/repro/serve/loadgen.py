"""Deterministic load generator + serving benchmark.

``python -m repro loadgen`` builds a reproducible request stream from a
seed and a mix spec, drives it at a server (external ``--target``, an
in-process server with ``--workers N``, or the pool-free direct path
with ``--workers 0``), and writes a **byte-stable** JSONL summary:
every request's reply keyed by id, canonical JSON, no timestamps — two
runs with the same seed against a correct server produce identical
bytes.  That property is the serve determinism gate (``--check`` runs
the stream twice against fresh servers and compares).

``--bench`` switches to the serving benchmark: keygen on secp160r1
measured through four execution paths —

* ``direct``      one request at a time, variable-base NAF
                  double-and-add (the repository's pre-serve
                  capability: the baseline),
* ``fixedbase``   one request at a time through the comb tables of
                  :mod:`repro.scalarmult.fixed_base`,
* ``pool<N>``     the full pipeline: pipelined client, batching
                  server, N-worker pool, fixed-base tables,
* ``pool<N>_traced``  the widest pool with end-to-end request tracing
                  on — its ratio to the untraced twin is the measured
                  tracing overhead,

plus the scale-out legs ``mixed/secp160r1/shard<N>``: the default
mixed workload against a fresh N-shard cluster of
:mod:`repro.serve.shard` (port-per-shard mode, ``4*N`` round-robin
client connections, one worker per shard so the shard count is the
only parallelism knob), and the tenancy legs of
:mod:`repro.serve.keys` — ``ecdsa/secp160r1/inline_shard<N>`` vs
``named_shard<N>`` (the same ECDSA stream with inline private scalars
vs server-resident named keys, per shard count; their ratio is the
named-key overhead, floored by ``REPRO_NAMED_MIN_RATIO``) and
``ecdsa/secp160r1/quota`` (a deliberately over-budget tenant stream;
the recorded ``named/quota_shed_fraction`` must clear
``REPRO_QUOTA_SHED_MIN``, proving the token bucket actually sheds).

``--tenants N`` switches the normal run to named-key mode: the
secret-bearing ops in the mix reference per-tenant server-resident
keys (created by a deterministic setup phase before the clock starts)
instead of carrying inline scalars, spread round-robin over N tenants.

Results append to ``BENCH_serve.json`` using the run-record schema of
:mod:`repro.analysis.bench` (``family: "serve"``; ``ips`` is operations
per second).  Served entries also carry a ``latency_ms`` summary
(count/mean/p50/p95/p99 of per-request accept-to-reply latency).
Four floors gate the run (all env-overridable):
``pool4/direct >= SERVE_MIN_SCALING``, ``fixedbase/direct >=
FIXED_BASE_MIN_SPEEDUP``, ``pool<N>_traced/pool<N> >=
TRACED_MIN_RATIO`` (the tracing hot-path guard) and ``shard<N>/shard1
>= SHARD_MIN_SCALING`` — with two or more cores; a single-core host
falls back to the ``SHARD_SINGLE_CORE_MIN`` anti-regression check,
since parallel shards cannot outrun one shard there.  On a single-core
host the *pool* scaling floor is carried by the fixed-base algorithmic
win (measured ~4-5x on secp160r1), not by parallelism — by design, so
the gate is meaningful on any CI shape.

``--trace`` turns on request tracing for the normal (non-bench) run:
every reply's trace id is joined into a cross-process span tree by
:mod:`repro.obs.assemble`, the merged Chrome export is schema-checked,
and ``--slowlog PATH`` dumps the slowest trees.  ``--scrape`` pulls the
Prometheus text exposition through the wire after the run.
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import hashlib
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import bench
from ..curves.params import CurveSuite, make_suite
from ..obs.assemble import FlightRecorder, RequestTrace, assemble, \
    records_to_chrome
from ..obs.export import validate_chrome
from ..scalarmult import adapter_for, montgomery_ladder_x, scalar_mult_naf
from ..scalarmult.fixed_base import TABLE_CACHE
from . import protocol, worker
from .client import AsyncServeClient
from .keys import tenant_token
from .protocol import to_hex
from .server import EccServer, ServeConfig
from .worker import WorkerState, derive_scalar, execute_request

__all__ = [
    "DEFAULT_MIX",
    "FIXED_BASE_MIN_SPEEDUP",
    "NAMED_MIN_RATIO",
    "QUOTA_SHED_MIN",
    "SERVE_MIN_SCALING",
    "SERVE_OUTPUT",
    "SHARD_MIN_SCALING",
    "SHARD_SINGLE_CORE_MIN",
    "TRACED_MIN_RATIO",
    "build_key_setup",
    "build_requests",
    "check_serve_against_baseline",
    "main",
    "parse_mix",
    "run_bench_serve",
    "run_direct",
    "run_served",
    "run_sharded",
    "summarize",
]

#: Ops the generator can synthesise parameters for without a prior
#: server round-trip (the verify ops need a signature to verify and are
#: exercised by the test suite instead).
LOADGEN_OPS = frozenset(
    {"keygen", "ecdh", "scalarmult", "ecdsa_sign", "schnorr_sign"})

DEFAULT_MIX = ("keygen:secp160r1=6,ecdsa_sign:secp160r1=2,"
               "schnorr_sign:secp160r1=1,scalarmult:secp160r1=1")

#: Floor on served (4-worker, batched, fixed-base) vs direct
#: single-request throughput for keygen/secp160r1.
SERVE_MIN_SCALING = float(os.environ.get("REPRO_SERVE_MIN_SCALING", "2.0"))

#: Floor on the fixed-base comb speedup over variable-base NAF alone.
FIXED_BASE_MIN_SPEEDUP = float(
    os.environ.get("REPRO_FIXED_BASE_MIN_SPEEDUP", "1.5"))

#: Floor on traced/untraced pool throughput: the tracing hot-path
#: guard.  A same-run ratio (not an absolute wall-clock) so it holds on
#: any CI shape; measured ~0.9+ locally, the floor leaves headroom for
#: noisy shared runners.
TRACED_MIN_RATIO = float(os.environ.get("REPRO_SERVE_TRACED_MIN", "0.70"))

#: Floor on multi-shard vs one-shard throughput (same run, mixed
#: workload) — the scale-out gate.  Only meaningful where there are
#: cores to scale onto; see :data:`SHARD_SINGLE_CORE_MIN`.
SHARD_MIN_SCALING = float(os.environ.get("REPRO_SHARD_MIN_SCALING", "1.5"))

#: On a single-core host sharding cannot beat one shard — the gate
#: degrades to an anti-regression check: the supervisor/redirector
#: fan-out must not *collapse* throughput below this fraction of the
#: one-shard figure.
SHARD_SINGLE_CORE_MIN = float(
    os.environ.get("REPRO_SHARD_SINGLE_CORE_MIN", "0.6"))

#: Floor on named-key vs inline-key throughput at the same shard count.
#: Named use adds admission work (auth, token bucket, generation pin)
#: and a worker-side registry lookup, but no extra curve arithmetic —
#: it must stay within striking distance of the inline path.
NAMED_MIN_RATIO = float(os.environ.get("REPRO_NAMED_MIN_RATIO", "0.6"))

#: Floor on the quota leg's shed fraction: a stream sized several times
#: over its tenant's burst+rate budget must actually get the majority
#: of itself shed with QuotaExceeded — a bucket that admits everything
#: is a bug the throughput numbers would never catch.
QUOTA_SHED_MIN = float(os.environ.get("REPRO_QUOTA_SHED_MIN", "0.2"))

SERVE_OUTPUT = "BENCH_serve.json"

#: Serve throughput wobbles more than the ISS microbenchmarks (pool
#: startup, batching) — the regression gate is correspondingly loose.
SERVE_CHECK_THRESHOLD = 0.50


# -- request synthesis -------------------------------------------------------


def parse_mix(spec: str) -> List[Tuple[Tuple[str, str], int]]:
    """``op:curve=weight,...`` -> [((op, curve), weight)] (order kept)."""
    entries: List[Tuple[Tuple[str, str], int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            opcurve, weight_s = part.split("=")
            op, curve = opcurve.split(":")
            weight = int(weight_s)
        except ValueError:
            raise ValueError(
                f"mix entry {part!r} is not op:curve=weight") from None
        if op not in LOADGEN_OPS:
            raise ValueError(
                f"op {op!r} not generatable; pick from {sorted(LOADGEN_OPS)}")
        spec_op = protocol.OPS[op]
        if curve not in spec_op.curves:
            raise ValueError(
                f"op {op!r} does not run on curve {curve!r} "
                f"(supported: {sorted(spec_op.curves)})")
        if weight < 1:
            raise ValueError(f"weight must be >= 1 in {part!r}")
        entries.append(((op, curve), weight))
    if not entries:
        raise ValueError("mix selects no operations")
    return entries


class _SuiteCache:
    def __init__(self):
        self._suites: Dict[str, CurveSuite] = {}

    def __call__(self, key: str) -> CurveSuite:
        suite = self._suites.get(key)
        if suite is None:
            suite = self._suites[key] = make_suite(key)
        return suite


def _peer_param(suites: _SuiteCache, curve: str, seed: str) -> Any:
    """A deterministic valid peer public key for ecdh requests."""
    suite = suites(curve)
    tag = f"{seed}:peer:{curve}"
    if curve == "montgomery":
        private = derive_scalar(tag, bits=suite.scalar_bits)
        xz = montgomery_ladder_x(suite.curve, private, suite.base,
                                 bits=suite.scalar_bits)
        return to_hex(suite.curve.x_affine(xz).to_int())
    private = derive_scalar(tag, order=suite.order)
    public = scalar_mult_naf(adapter_for(suite.curve, suite.base), private)
    return {"x": to_hex(public.x.to_int()), "y": to_hex(public.y.to_int())}


def _key_name(curve: str) -> str:
    """The loadgen's per-curve named-key name (one key per tenant per
    curve keeps the setup phase small)."""
    return f"lg-{curve}"


def build_key_setup(tenants: int, mix: str = DEFAULT_MIX,
                    seed: int = 0) -> List[Dict[str, Any]]:
    """The deterministic ``key_create`` phase for a named-key stream.

    One key per (tenant, curve-with-a-secret-op-in-the-mix) pair, ids
    from 1000001 so they never collide with stream ids.  Driven before
    the clock starts; :func:`build_requests` with the same *tenants*
    emits the matching ``params.key`` references.
    """
    weights = parse_mix(mix)
    curves = sorted({curve for (op, curve), _ in weights
                     if protocol.OPS[op].secret is not None})
    requests: List[Dict[str, Any]] = []
    rid = 1000000
    for t in range(tenants):
        tenant = f"t{t}"
        for curve in curves:
            rid += 1
            requests.append({
                "id": rid, "op": "key_create", "curve": curve,
                "params": {"name": _key_name(curve),
                           "seed": f"lg:{seed}"},
                "tenant": tenant, "token": tenant_token(tenant)})
    return requests


def build_requests(n: int, mix: str = DEFAULT_MIX, seed: int = 0,
                   tenants: int = 0) -> List[Dict[str, Any]]:
    """The deterministic request stream: same (n, mix, seed) -> same list.

    With ``tenants > 0`` the secret-bearing ops (sign, ECDH) reference
    the per-tenant server-resident keys of :func:`build_key_setup`
    (``params.key``) instead of carrying inline scalars, round-robin
    over ``t0 .. t<tenants-1>`` — still fully deterministic, since the
    named keys derive from the same seed machinery.
    """
    weights = parse_mix(mix)
    pattern: List[Tuple[str, str]] = []
    for opcurve, weight in weights:
        pattern.extend([opcurve] * weight)
    suites = _SuiteCache()
    peers: Dict[str, Any] = {}
    requests: List[Dict[str, Any]] = []
    for i in range(n):
        op, curve = pattern[i % len(pattern)]
        tag = hashlib.sha256(
            f"repro-loadgen:{seed}:{i}".encode()).hexdigest()
        named = tenants > 0 and protocol.OPS[op].secret is not None
        if op == "keygen":
            params: Dict[str, Any] = {"seed": tag}
        elif op == "scalarmult":
            params = {"k": to_hex(derive_scalar(tag))}
        elif op == "ecdh":
            if curve not in peers:
                peers[curve] = _peer_param(suites, curve, str(seed))
            if named:
                params = {"key": _key_name(curve), "peer": peers[curve]}
            else:
                suite = suites(curve)
                if curve == "montgomery":
                    private = derive_scalar(tag, bits=suite.scalar_bits)
                elif suite.order is not None:
                    private = derive_scalar(tag, order=suite.order)
                else:
                    private = derive_scalar(tag)
                params = {"private": to_hex(private),
                          "peer": peers[curve]}
        else:  # ecdsa_sign / schnorr_sign: order curves only (parse_mix)
            if named:
                params = {"key": _key_name(curve), "msg": tag}
            else:
                suite = suites(curve)
                params = {"private": to_hex(derive_scalar(
                    tag, order=suite.order)), "msg": tag}
        request = {"id": i + 1, "op": op, "curve": curve,
                   "params": params}
        if named:
            tenant = f"t{i % tenants}"
            request["tenant"] = tenant
            request["token"] = tenant_token(tenant)
        requests.append(request)
    return requests


def summarize(requests: Sequence[Dict[str, Any]],
              replies: Sequence[Dict[str, Any]]) -> bytes:
    """The byte-stable JSONL: one canonical line per request, id order.

    Deliberately carries no timestamps or latencies — only fields that
    are deterministic under a fixed seed, so the bytes double as the
    determinism gate's comparison key.
    """
    lines = []
    for req, reply in zip(requests, replies):
        row: Dict[str, Any] = {"id": req["id"], "op": req["op"],
                               "curve": req.get("curve"),
                               "ok": reply["ok"]}
        row["result" if reply["ok"] else "error"] = (
            reply["result"] if reply["ok"] else reply["error"])
        lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
    return ("\n".join(lines) + "\n").encode()


# -- execution paths ---------------------------------------------------------


def run_direct(requests: Sequence[Dict[str, Any]],
               fixed_base: bool = True,
               warm: Sequence[str] = ("secp160r1",),
               setup: Sequence[Dict[str, Any]] = ()
               ) -> Tuple[List[Dict[str, Any]], float]:
    """One request at a time, in-process, no server: the baseline path.

    With ``fixed_base=False`` this is exactly the repository's pre-serve
    capability — variable-base NAF per request.  Table builds happen
    before the clock starts so the wall time measures steady state.
    A named-key *setup* phase (``build_key_setup``) runs against a
    fresh in-process key registry, also before the clock.
    """
    state = WorkerState(fixed_base=fixed_base)
    state.warm(warm)
    if setup:
        # Fresh registry per run so --check's second pass can re-create
        # the same keys (the direct path's registry is process-global).
        worker._KEYS = None
        for req in setup:
            reply = execute_request(req, state)
            if not reply["ok"]:
                raise RuntimeError(
                    f"direct key setup failed: {reply['error']}")
    t0 = time.perf_counter()
    replies = [execute_request(req, state) for req in requests]
    return replies, time.perf_counter() - t0


async def _drive(targets: Sequence[Tuple[str, int]],
                 requests: Sequence[Dict[str, Any]],
                 rate: float = 0.0,
                 client_times: Optional[Dict[str, Tuple[int, int]]] = None,
                 connections: int = 1
                 ) -> Tuple[List[Dict[str, Any]], List[float], float]:
    """Pipeline the stream at *targets*; per-request latencies in ms.

    Opens ``connections`` client connections, connection *j* to
    ``targets[j % len(targets)]`` (deterministic round-robin — this is
    how the shard benchmark spreads load without depending on the
    kernel's SO_REUSEPORT hashing), and sends request *i* down
    connection ``i % connections``.  The single-server single-connection
    case is ``targets=[(host, port)], connections=1``.

    With *client_times*, each traced reply's send/receive
    ``perf_counter_ns`` stamps are stored under its trace id — the
    client half of the joined span tree.
    """
    if not targets:
        raise ValueError("need at least one (host, port) target")
    connections = max(1, min(connections, max(1, len(requests))))
    clients = []
    try:
        for j in range(connections):
            host, port = targets[j % len(targets)]
            clients.append(await AsyncServeClient.connect(host, port))
        latencies: List[float] = [0.0] * len(requests)
        loop = asyncio.get_running_loop()
        t_start = loop.time()

        async def one(i: int, req: Dict[str, Any]) -> Dict[str, Any]:
            if rate > 0:
                delay = t_start + i / rate - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            t0_ns = time.perf_counter_ns()
            reply = await clients[i % connections].call_raw_one(req)
            t1_ns = time.perf_counter_ns()
            latencies[i] = (t1_ns - t0_ns) / 1e6
            if client_times is not None:
                trace_id = (reply.get("meta") or {}).get("trace")
                if trace_id:
                    client_times[trace_id] = (t0_ns, t1_ns)
            return reply

        t0 = time.perf_counter()
        replies = list(await asyncio.gather(
            *(one(i, req) for i, req in enumerate(requests))))
        wall = time.perf_counter() - t0
    finally:
        for client in clients:
            await client.close()
    return replies, latencies, wall


async def _scrape(host: str, port: int) -> str:
    """One wire round-trip of the Prometheus stats exposition."""
    async with await AsyncServeClient.connect(host, port) as client:
        return await client.stats(format="prometheus")


async def _run_setup(targets: Sequence[Tuple[str, int]],
                     setup: Sequence[Dict[str, Any]]) -> None:
    """Drive a ``key_create`` setup phase (untimed) and insist it took."""
    if not setup:
        return
    replies, _lat, _wall = await _drive(targets, setup)
    bad = [r for r in replies if not r["ok"]]
    if bad:
        raise RuntimeError(f"key setup failed: {bad[0]['error']}")


async def run_served(requests: Sequence[Dict[str, Any]],
                     workers: int = 1, rate: float = 0.0,
                     target: Optional[Tuple[str, int]] = None,
                     batch_max: int = 16,
                     queue_depth: Optional[int] = None,
                     fixed_base: bool = True,
                     warm: Sequence[str] = ("secp160r1",),
                     tracing: bool = False,
                     trace_sink: Optional[List[RequestTrace]] = None,
                     scrape_sink: Optional[List[str]] = None,
                     client_times: Optional[Dict[str, Tuple[int, int]]] = None,
                     connections: int = 1,
                     setup: Sequence[Dict[str, Any]] = (),
                     tenants_config: Optional[Dict[str, Any]] = None
                     ) -> Tuple[List[Dict[str, Any]], List[float], float]:
    """Drive the stream at ``target`` or a fresh in-process server.

    ``connections`` client connections share the stream round-robin
    (the high-concurrency mode; default one pipelined connection).
    A named-key *setup* phase (``build_key_setup``) is driven before
    the timed stream; ``tenants_config`` applies a strict-tenancy /
    quota config to the in-process server (:class:`~repro.serve.server
    .ServeConfig` ``tenants``).  In-process extras: ``tracing`` turns
    on server-side trace stamping, ``trace_sink`` receives the server's
    :class:`RequestTrace` records after the run, ``scrape_sink``
    receives one Prometheus exposition scraped through the wire while
    the server is still up, and ``client_times`` collects client-side
    stamps (see :func:`_drive`).
    """
    if target is not None:
        await _run_setup([target], setup)
        result = await _drive([target], requests, rate, client_times,
                              connections)
        if scrape_sink is not None:
            scrape_sink.append(await _scrape(target[0], target[1]))
        return result
    if queue_depth is None:
        # Open-loop pipelining enqueues the whole stream at once; size
        # the queue so the loadgen itself never triggers load-shedding.
        queue_depth = max(2 * len(requests), 128)
    # When the caller wants every record, the flight recorder must not
    # evict: size it past the stream length.
    slowlog = max(64, 2 * len(requests)) if trace_sink is not None else 64
    config = ServeConfig(port=0, workers=workers, batch_max=batch_max,
                         queue_depth=queue_depth, fixed_base=fixed_base,
                         warm_curves=tuple(warm), tracing=tracing,
                         slowlog=slowlog, tenants=tenants_config)
    server = EccServer(config)
    await server.start()
    try:
        await _run_setup([(config.host, server.port)], setup)
        result = await _drive([(config.host, server.port)], requests,
                              rate, client_times, connections)
        if scrape_sink is not None:
            scrape_sink.append(await _scrape(config.host, server.port))
        if trace_sink is not None:
            trace_sink.extend(server.recorder.slowest())
        return result
    finally:
        await server.stop()


async def run_sharded(requests: Sequence[Dict[str, Any]],
                      shards: int, workers: int = 1,
                      connections: Optional[int] = None,
                      rate: float = 0.0, batch_max: int = 16,
                      fixed_base: bool = True,
                      warm: Sequence[str] = ("secp160r1",),
                      reuseport: bool = False,
                      setup: Sequence[Dict[str, Any]] = (),
                      tenants_config: Optional[Dict[str, Any]] = None
                      ) -> Tuple[List[Dict[str, Any]], List[float], float]:
    """Drive the stream at a fresh N-shard cluster of
    :mod:`repro.serve.shard`.

    Defaults to port-per-shard mode with the client round-robining its
    connections across the shards' direct ports — deterministic load
    placement, which is what the benchmark legs need (the kernel's
    SO_REUSEPORT hashing assigns whole connections arbitrarily).  With
    ``reuseport=True`` every connection goes to the one shared public
    port instead.  ``connections`` defaults to ``4 * shards`` so each
    shard sees concurrent load.  A named-key *setup* phase is driven
    through shard 0 only — the cross-shard journal is what makes the
    keys visible to every other shard, so this doubles as a live
    exercise of that property.
    """
    from .shard import ShardCluster  # deferred: keeps import cycles out

    if connections is None:
        connections = 4 * shards
    queue_depth = max(2 * len(requests), 128)
    config = ServeConfig(port=0, workers=workers, batch_max=batch_max,
                         queue_depth=queue_depth, fixed_base=fixed_base,
                         warm_curves=tuple(warm), tenants=tenants_config)
    cluster = ShardCluster(shards, config, reuseport=reuseport)
    await cluster.start()
    try:
        if reuseport:
            targets = [(config.host, cluster.port)]
        else:
            targets = [(config.host, port)
                       for port in cluster.shard_ports if port is not None]
        await _run_setup(targets[:1], setup)
        return await _drive(targets, requests, rate,
                            connections=connections)
    finally:
        await cluster.stop()


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _latency_report(latencies: Sequence[float], wall: float,
                    n_err: int) -> str:
    ordered = sorted(latencies)
    n = len(ordered)
    ops = n / wall if wall > 0 else 0.0
    return (f"{n} requests in {wall:.2f} s ({ops:.1f} ops/s), "
            f"{n_err} errors; latency ms "
            f"p50={_percentile(ordered, 50):.1f} "
            f"p95={_percentile(ordered, 95):.1f} "
            f"p99={_percentile(ordered, 99):.1f}")


def _latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    """Per-request latency histogram summary for a bench entry (ms)."""
    ordered = sorted(latencies)
    n = len(ordered)
    return {"count": n,
            "mean": sum(ordered) / n if n else 0.0,
            "p50": _percentile(ordered, 50),
            "p95": _percentile(ordered, 95),
            "p99": _percentile(ordered, 99)}


# -- serving benchmark -------------------------------------------------------


def _bench_entry(engine: str, n: int, wall: float,
                 latencies: Optional[Sequence[float]] = None,
                 kernel: str = "keygen") -> Dict[str, Any]:
    entry = {
        "name": f"{kernel}/secp160r1/{engine}",
        "family": "serve",
        "kernel": kernel,
        "mode": "secp160r1",
        "engine": engine,
        "reps": n,
        "instructions": 1,  # one keygen per rep; ips is ops per second
        "cycles_per_run": 0,
        "wall_s": wall,
        "ips": n / wall if wall > 0 else 0.0,
    }
    if latencies:
        entry["latency_ms"] = _latency_summary(latencies)
    return entry


def _assert_all_ok(replies: Sequence[Dict[str, Any]], what: str) -> None:
    errors = [r for r in replies if not r["ok"]]
    if errors:
        raise RuntimeError(
            f"{what}: {len(errors)} error replies, first: "
            f"{errors[0]['error']}")


def run_bench_serve(n: Optional[int] = None, smoke: bool = False,
                    pools: Sequence[int] = (1, 2, 4),
                    shard_counts: Optional[Sequence[int]] = None,
                    label: Optional[str] = None) -> Dict[str, Any]:
    """Measure the serving execution paths; return a schema-1 run record.

    Covers the single-server paths (direct / fixedbase / pool<N> /
    traced) on a keygen stream, then the shard-scaling legs
    (``mixed/secp160r1/shard<N>``): the DEFAULT_MIX workload against a
    fresh N-shard cluster in deterministic port-per-shard mode, with
    ``4 * N`` client connections.  Raises ``RuntimeError`` on any error
    reply.  Floor checking is the caller's job (:func:`main` gates on
    the record's speedups).
    """
    if n is None:
        n = 8 if smoke else 24
    if shard_counts is None:
        shard_counts = (1, 2) if smoke else (1, 2, 4)
    requests = build_requests(n, mix="keygen:secp160r1=1", seed=1601)
    # Warm the parent's comb table before any pool exists: forked
    # workers inherit it copy-on-write and skip the per-worker build.
    suite = make_suite("secp160r1")
    TABLE_CACHE.get(suite.curve, suite.base)

    entries: List[Dict[str, Any]] = []
    replies, wall = run_direct(requests, fixed_base=False)
    _assert_all_ok(replies, "direct")
    entries.append(_bench_entry("direct", n, wall))

    replies, wall = run_direct(requests, fixed_base=True)
    _assert_all_ok(replies, "fixedbase")
    entries.append(_bench_entry("fixedbase", n, wall))

    for workers in pools:
        replies, lat, wall = asyncio.run(
            run_served(requests, workers=workers))
        _assert_all_ok(replies, f"pool{workers}")
        entries.append(_bench_entry(f"pool{workers}", n, wall, lat))

    # Tracing-overhead leg: the widest pool again, with per-request
    # tracing on.  Its ratio to the untraced twin is the measured
    # overhead, floor-checked by check_floors.
    traced_workers = max(pools) if pools else 1
    replies, lat, wall = asyncio.run(
        run_served(requests, workers=traced_workers, tracing=True))
    _assert_all_ok(replies, f"pool{traced_workers}_traced")
    entries.append(_bench_entry(f"pool{traced_workers}_traced", n, wall, lat))

    direct_ips = entries[0]["ips"]
    speedups = {
        f"keygen/secp160r1/{e['engine']}:direct": e["ips"] / direct_ips
        for e in entries[1:]
    }
    untraced = next(e for e in entries
                    if e["engine"] == f"pool{traced_workers}")
    speedups[f"keygen/secp160r1/pool{traced_workers}_traced:"
             f"pool{traced_workers}"] = (
        entries[-1]["ips"] / untraced["ips"] if untraced["ips"] else 0.0)

    # Shard-scaling legs: the mixed workload against fresh N-shard
    # clusters, port-per-shard + client round-robin for deterministic
    # placement, one worker per shard so the shard count is the only
    # parallelism knob.
    n_shard = 24 if smoke else 60
    shard_requests = build_requests(n_shard, mix=DEFAULT_MIX, seed=1602)
    shard_ips: Dict[int, float] = {}
    for count in shard_counts:
        replies, lat, wall = asyncio.run(run_sharded(
            shard_requests, shards=count, workers=1,
            connections=4 * count))
        _assert_all_ok(replies, f"shard{count}")
        entry = _bench_entry(f"shard{count}", n_shard, wall, lat,
                             kernel="mixed")
        entries.append(entry)
        shard_ips[count] = entry["ips"]
    base_count = min(shard_counts) if shard_counts else None
    if base_count is not None and shard_ips.get(base_count):
        for count in shard_counts:
            if count == base_count:
                continue
            speedups[f"mixed/secp160r1/shard{count}:shard{base_count}"] = (
                shard_ips[count] / shard_ips[base_count])

    # Tenancy legs (repro.serve.keys): the same ECDSA stream through a
    # fresh cluster twice per shard count — inline private scalars vs
    # server-resident named keys over two tenants (setup through shard
    # 0; resolution everywhere else rides the shared journal).  Their
    # ratio is the full cost of auth + token bucket + generation pin +
    # worker-side key resolution.
    n_sign = 12 if smoke else 24
    sign_mix = "ecdsa_sign:secp160r1=1"
    inline_requests = build_requests(n_sign, mix=sign_mix, seed=1603)
    named_requests = build_requests(n_sign, mix=sign_mix, seed=1603,
                                    tenants=2)
    named_setup = build_key_setup(2, sign_mix, seed=1603)
    for count in (1, 2):
        replies, lat, wall = asyncio.run(run_sharded(
            inline_requests, shards=count, workers=1,
            connections=4 * count))
        _assert_all_ok(replies, f"inline_shard{count}")
        inline = _bench_entry(f"inline_shard{count}", n_sign, wall, lat,
                              kernel="ecdsa")
        entries.append(inline)
        replies, lat, wall = asyncio.run(run_sharded(
            named_requests, shards=count, workers=1,
            connections=4 * count, setup=named_setup))
        _assert_all_ok(replies, f"named_shard{count}")
        named = _bench_entry(f"named_shard{count}", n_sign, wall, lat,
                             kernel="ecdsa")
        entries.append(named)
        if inline["ips"]:
            speedups[f"ecdsa/secp160r1/named_shard{count}:"
                     f"inline_shard{count}"] = named["ips"] / inline["ips"]

    # Quota-shed leg: one tenant with a deliberately tiny budget (burst
    # 8, 25/s) under an open-loop stream several times that size.  The
    # token bucket must shed the overflow with typed QuotaExceeded
    # replies — anything else (Overloaded, errors) fails the run, and
    # the recorded shed fraction is floor-checked.
    n_quota = 40
    quota_requests = build_requests(n_quota, mix=sign_mix, seed=1604,
                                    tenants=1)
    quota_setup = build_key_setup(1, sign_mix, seed=1604)
    quota_config = {"t0": {"rate": 25.0, "burst": 8}}
    replies, lat, wall = asyncio.run(run_served(
        quota_requests, workers=1, setup=quota_setup,
        tenants_config=quota_config))
    shed = sum(1 for r in replies if not r["ok"]
               and r["error"]["type"] == "QuotaExceeded")
    stray = [r for r in replies if not r["ok"]
             and r["error"]["type"] != "QuotaExceeded"]
    if stray:
        raise RuntimeError(
            f"quota leg: {len(stray)} non-QuotaExceeded errors, first: "
            f"{stray[0]['error']}")
    entries.append(_bench_entry("quota", n_quota, wall, lat,
                                kernel="ecdsa"))
    speedups["named/quota_shed_fraction"] = shed / n_quota

    record = {
        "schema": 1,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "label": label or ("serve-smoke" if smoke else "serve"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": max(pools) if pools else 1,
        "entries": entries,
        "speedups": speedups,
    }
    bench.validate_run_record(record)
    return record


def render_serve(record: Dict[str, Any]) -> str:
    lines = [f"serving throughput ({record['label']}; keygen legs "
             f"n={record['entries'][0]['reps']}, shard legs run the "
             "default mixed workload)", ""]
    lines.append(f"{'path':<28}{'reps':>6}{'wall s':>9}{'ops/s':>10}")
    lines.append("-" * 53)
    for entry in record["entries"]:
        lines.append(f"{entry['name']:<28}{entry['reps']:>6}"
                     f"{entry['wall_s']:>9.2f}{entry['ips']:>10.1f}")
    lines.append("")
    lines.append("speedups (vs the direct path; shardN vs one shard):")
    for key in sorted(record["speedups"]):
        lines.append(f"  {key:<40}{record['speedups'][key]:>6.2f}x")
    return "\n".join(lines)


def check_floors(record: Dict[str, Any],
                 scaling_floor: float = SERVE_MIN_SCALING,
                 fixed_base_floor: float = FIXED_BASE_MIN_SPEEDUP,
                 traced_floor: float = TRACED_MIN_RATIO,
                 shard_floor: float = SHARD_MIN_SCALING,
                 cpus: Optional[int] = None) -> int:
    """Enforce the serve speedup floors; returns a shell exit code.

    The shard floor compares multi-shard to one-shard throughput from
    the same run and needs cores to be meaningful: with ``cpus`` (or
    ``os.cpu_count()``) below 2, it degrades to the
    :data:`SHARD_SINGLE_CORE_MIN` anti-regression check instead.
    Records without shard legs (pre-scale-out history) skip the gate.
    """
    speedups = record["speedups"]
    failed = False
    fb = speedups.get("keygen/secp160r1/fixedbase:direct", 0.0)
    if fb < fixed_base_floor:
        print(f"FAIL: fixed-base speedup {fb:.2f}x is below the "
              f"{fixed_base_floor:.2f}x floor")
        failed = True
    pool_keys = [k for k in speedups
                 if "/pool" in k and k.endswith(":direct")
                 and "_traced" not in k]
    best_key = max(pool_keys, key=lambda k: speedups[k], default=None)
    if best_key is None or speedups[best_key] < scaling_floor:
        got = speedups.get(best_key, 0.0) if best_key else 0.0
        print(f"FAIL: served throughput scaling {got:.2f}x is below the "
              f"{scaling_floor:.2f}x floor")
        failed = True
    # The tracing hot-path guard: traced throughput as a fraction of
    # its untraced twin, from the same run.
    for key in sorted(k for k in speedups if "_traced:pool" in k):
        ratio = speedups[key]
        if ratio < traced_floor:
            print(f"FAIL: traced/untraced throughput ratio {ratio:.2f} "
                  f"({key}) is below the {traced_floor:.2f} floor")
            failed = True
    # The scale-out gate: best multi-shard/one-shard ratio.
    shard_keys = [k for k in speedups
                  if k.startswith("mixed/secp160r1/shard")
                  and ":shard" in k]
    shard_note = ""
    if shard_keys:
        if cpus is None:
            cpus = os.cpu_count() or 1
        best_shard = max(speedups[k] for k in shard_keys)
        if cpus >= 2:
            if best_shard < shard_floor:
                print(f"FAIL: shard scaling {best_shard:.2f}x is below "
                      f"the {shard_floor:.2f}x floor ({cpus} cpus)")
                failed = True
            shard_note = (f", shards {best_shard:.2f}x >= "
                          f"{shard_floor:.2f}x")
        else:
            # One core: parallel shards cannot outrun one shard; only
            # guard against the fan-out collapsing throughput.
            if best_shard < SHARD_SINGLE_CORE_MIN:
                print(f"FAIL: single-core shard throughput ratio "
                      f"{best_shard:.2f} is below the "
                      f"{SHARD_SINGLE_CORE_MIN:.2f} anti-regression floor")
                failed = True
            shard_note = (f", shards {best_shard:.2f}x >= "
                          f"{SHARD_SINGLE_CORE_MIN:.2f}x "
                          "(single-core fallback)")
    # The named-key overhead gate: named/inline throughput per shard
    # count must stay above NAMED_MIN_RATIO.  Records predating the key
    # subsystem carry no such entries and skip the gate.
    named_note = ""
    named_keys = [k for k in speedups
                  if "/named_shard" in k and ":inline_shard" in k]
    if named_keys:
        worst_key = min(named_keys, key=lambda k: speedups[k])
        worst = speedups[worst_key]
        if worst < NAMED_MIN_RATIO:
            print(f"FAIL: named/inline throughput ratio {worst:.2f} "
                  f"({worst_key}) is below the {NAMED_MIN_RATIO:.2f} "
                  "floor")
            failed = True
        named_note = f", named {worst:.2f} >= {NAMED_MIN_RATIO:.2f}"
    quota = speedups.get("named/quota_shed_fraction")
    if quota is not None:
        if quota < QUOTA_SHED_MIN:
            print(f"FAIL: quota shed fraction {quota:.2f} is below the "
                  f"{QUOTA_SHED_MIN:.2f} floor (the token bucket is not "
                  "shedding)")
            failed = True
        named_note += f", quota shed {quota:.2f} >= {QUOTA_SHED_MIN:.2f}"
    if not failed:
        print(f"OK: fixed-base {fb:.2f}x >= {fixed_base_floor:.2f}x, "
              f"served {speedups[best_key]:.2f}x >= {scaling_floor:.2f}x, "
              f"traced ratio floors hold{shard_note}{named_note}")
    return 1 if failed else 0


def check_serve_against_baseline(path: str = SERVE_OUTPUT,
                                 threshold: float = SERVE_CHECK_THRESHOLD
                                 ) -> int:
    """Fresh smoke serve-bench vs the last committed BENCH_serve.json
    record (read-only; called from ``python -m repro bench --check``)."""
    if not os.path.exists(path):
        print(f"serve --check: no baseline at {path}; skipping")
        return 0
    with open(path, "r", encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list) or not records:
        print(f"serve --check: {path} holds no run records")
        return 1
    baseline = records[-1]
    bench.validate_run_record(baseline)
    fresh = run_bench_serve(smoke=True, label="check")
    rows = bench.compare_records(fresh, baseline, threshold)
    if not rows:
        print("serve --check: no overlapping entries with the baseline")
        return 1
    print(f"serve --check vs {baseline['label']} run of "
          f"{baseline['timestamp']} (tolerance -{threshold:.0%})\n")
    print(f"{'path':<28}{'baseline ops/s':>15}{'fresh ops/s':>13}"
          f"{'ratio':>8}")
    print("-" * 64)
    failed = False
    for row in rows:
        flag = "  REGRESSED" if row["regressed"] else ""
        failed = failed or row["regressed"]
        print(f"{row['name']:<28}{row['baseline_ips']:>15.1f}"
              f"{row['fresh_ips']:>13.1f}{row['ratio']:>8.2f}{flag}")
    print()
    print("FAIL: serving throughput regressed beyond tolerance" if failed
          else "OK: serving throughput within tolerance")
    return 1 if failed else 0


# -- trace reporting ---------------------------------------------------------


def _report_traces(records: List[RequestTrace],
                   client_times: Dict[str, Tuple[int, int]],
                   replies: Sequence[Dict[str, Any]],
                   slowlog_path: Optional[str]) -> int:
    """Join, validate and (optionally) dump the run's trace records.

    Every traced reply must resolve to an assembled span tree and the
    merged Chrome export must pass :func:`validate_chrome`; returns a
    shell exit code.
    """
    for rec in records:
        stamps = client_times.get(rec.trace_id)
        if stamps is not None:
            rec.client_t0_ns, rec.client_t1_ns = stamps
    trees = assemble(records)
    chrome = records_to_chrome(records)
    validate_chrome(chrome)
    traced = [r for r in replies if (r.get("meta") or {}).get("trace")]
    joined = sum(1 for r in traced if r["meta"]["trace"] in trees)
    print(f"tracing: {joined}/{len(traced)} traced replies joined into "
          f"span trees ({len(chrome['traceEvents'])} chrome events, "
          "validate_chrome clean)", file=sys.stderr)
    if not traced or joined != len(traced):
        print("loadgen --trace: FAIL, not every reply resolved to an "
              "assembled span tree", file=sys.stderr)
        return 1
    if slowlog_path:
        ring = FlightRecorder(capacity=min(32, max(1, len(records))))
        for rec in records:
            ring.record(rec)
        written = ring.dump(slowlog_path)
        print(f"slowlog: wrote the {written} slowest request trees to "
              f"{slowlog_path}", file=sys.stderr)
    return 0


# -- CLI ---------------------------------------------------------------------


def _parse_target(text: str) -> Tuple[str, int]:
    host, _, port_s = text.rpartition(":")
    try:
        return (host or "127.0.0.1"), int(port_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"target must be host:port, got {text!r}") from None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Deterministic ECC-service load generator and "
                    "serving benchmark.",
    )
    parser.add_argument("--target", type=_parse_target, default=None,
                        help="host:port of a running server (default: "
                             "start an in-process one)")
    parser.add_argument("--workers", type=int, default=1,
                        help="in-process server pool size; 0 = no server "
                             "(direct in-process execution); per shard "
                             "with --shards")
    parser.add_argument("--shards", type=int, default=0,
                        help="drive a fresh N-shard cluster (port-per-"
                             "shard, deterministic round-robin); 0 = "
                             "single server (default)")
    parser.add_argument("--connections", type=int, default=0,
                        help="client connections to spread the stream "
                             "over (default 1, or 4 per shard with "
                             "--shards)")
    parser.add_argument("--n", type=int, default=200,
                        help="requests to send (ignored with --duration)")
    parser.add_argument("--mix", default=DEFAULT_MIX,
                        help="op:curve=weight list (default: %(default)s)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="requests per second; 0 = open loop "
                             "(pipeline everything at once)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds to run at --rate (sets n = "
                             "rate * duration; requires --rate > 0)")
    parser.add_argument("--seed", type=int, default=7,
                        help="stream seed; same seed -> same bytes")
    parser.add_argument("--tenants", type=int, default=0,
                        help="spread secret-bearing ops over N tenants "
                             "using server-resident named keys (one "
                             "untimed key_create per tenant and curve "
                             "before the stream); 0 = inline secrets "
                             "(default)")
    parser.add_argument("--out", default="-",
                        help="JSONL summary path ('-' = stdout)")
    parser.add_argument("--check", action="store_true",
                        help="determinism gate: run the stream twice "
                             "against fresh servers, require zero errors "
                             "and identical summary bytes")
    parser.add_argument("--bench", action="store_true",
                        help="serving benchmark (direct / fixedbase / "
                             "pool1 / pool2 / pool4 on keygen/secp160r1, "
                             "shard1 / shard2 / shard4 clusters on the "
                             "mixed workload, named-key vs inline ECDSA "
                             "legs and a quota-shed leg); appends to "
                             "BENCH_serve.json and enforces the speedup "
                             "floors")
    parser.add_argument("--bench-output", default=SERVE_OUTPUT,
                        help="run-record file for --bench (default "
                             f"{SERVE_OUTPUT}; 'none' disables writing)")
    parser.add_argument("--smoke", action="store_true",
                        help="with --bench: smaller rep count")
    parser.add_argument("--no-fixed-base", action="store_true",
                        help="disable fixed-base tables on the in-process "
                             "server / direct path")
    parser.add_argument("--batch-max", type=int, default=16)
    parser.add_argument("--label", default=None,
                        help="free-form label stored in the bench record")
    parser.add_argument("--trace", action="store_true",
                        help="end-to-end request tracing: stamp every "
                             "request, join the cross-process span trees "
                             "and schema-check the merged Chrome export "
                             "(in-process server only)")
    parser.add_argument("--slowlog", default=None, metavar="PATH",
                        help="with --trace: dump the slowest request "
                             "trees as Chrome trace JSON to PATH")
    parser.add_argument("--scrape", action="store_true",
                        help="scrape the server's Prometheus stats "
                             "exposition through the wire after the run "
                             "and print it to stdout")
    args = parser.parse_args(argv)

    if args.bench:
        record = run_bench_serve(smoke=args.smoke, label=args.label)
        print(render_serve(record))
        print()
        status = check_floors(record)
        if args.bench_output != "none":
            bench.append_record(record, args.bench_output)
            print(f"appended run record to {args.bench_output}")
        return status

    if args.duration is not None:
        if args.rate <= 0:
            parser.error("--duration requires --rate > 0")
        n = max(1, int(args.rate * args.duration))
    else:
        n = args.n
    fixed_base = not args.no_fixed_base
    if args.tenants < 0:
        parser.error("--tenants must be >= 0")
    if args.tenants and args.check and args.target is not None:
        parser.error("--check with --tenants needs fresh servers (the "
                     "second pass would re-create the keys); drop "
                     "--target")
    requests = build_requests(n, mix=args.mix, seed=args.seed,
                              tenants=args.tenants)
    setup = (build_key_setup(args.tenants, args.mix, seed=args.seed)
             if args.tenants else [])

    if args.shards < 0:
        parser.error("--shards must be >= 0")
    if args.connections < 0:
        parser.error("--connections must be >= 0")
    if args.shards:
        if args.target is not None:
            parser.error("--shards starts its own cluster; it cannot be "
                         "used with --target")
        if args.trace:
            parser.error("--trace joins in-process records; shard "
                         "processes are out of reach (use the server's "
                         "--tracing + slowlog instead)")
        if args.scrape:
            parser.error("--scrape reads one server; against a cluster "
                         "use the stats op with scope=cluster")
        if args.workers < 1:
            parser.error("--shards needs --workers >= 1 per shard")
    if args.trace and args.target is not None:
        parser.error("--trace joins records from the in-process server; "
                     "it cannot be used with --target")
    if (args.trace or args.scrape) and args.target is None \
            and args.workers == 0:
        parser.error("--trace/--scrape need a server (--workers >= 1 "
                     "or --target)")
    if args.slowlog and not args.trace:
        parser.error("--slowlog requires --trace")
    connections = args.connections or (4 * args.shards if args.shards
                                       else 1)
    trace_sink: Optional[List[RequestTrace]] = [] if args.trace else None
    scrape_sink: Optional[List[str]] = [] if args.scrape else None
    client_times: Dict[str, Tuple[int, int]] = {}

    def one_run() -> Tuple[List[Dict[str, Any]], List[float], float]:
        if args.shards:
            return asyncio.run(run_sharded(
                requests, shards=args.shards, workers=args.workers,
                connections=connections, rate=args.rate,
                batch_max=args.batch_max, fixed_base=fixed_base,
                setup=setup))
        if args.target is None and args.workers == 0:
            replies, wall = run_direct(requests, fixed_base=fixed_base,
                                       setup=setup)
            return replies, [], wall
        return asyncio.run(run_served(
            requests, workers=args.workers, rate=args.rate,
            target=args.target, batch_max=args.batch_max,
            fixed_base=fixed_base, tracing=args.trace,
            trace_sink=trace_sink, scrape_sink=scrape_sink,
            client_times=client_times if args.trace else None,
            connections=connections, setup=setup))

    replies, latencies, wall = one_run()
    summary = summarize(requests, replies)
    n_err = sum(1 for r in replies if not r["ok"])
    if args.check:
        replies2, _lat2, _wall2 = one_run()
        summary2 = summarize(requests, replies2)
        if n_err:
            print(f"loadgen --check: FAIL, {n_err} error replies")
            return 1
        if summary != summary2:
            print("loadgen --check: FAIL, summaries differ between runs")
            return 1
        print(f"loadgen --check: OK, {n} requests, zero errors, "
              "byte-identical summaries across two runs")
    if args.out == "-":
        if not args.check:
            sys.stdout.buffer.write(summary)
            sys.stdout.buffer.flush()
    else:
        with open(args.out, "wb") as fh:
            fh.write(summary)
    print(_latency_report(latencies, wall, n_err) if latencies
          else f"{n} requests in {wall:.2f} s "
               f"({n / wall if wall else 0.0:.1f} ops/s), {n_err} errors",
          file=sys.stderr)
    if trace_sink is not None:
        status = _report_traces(trace_sink, client_times, replies,
                                args.slowlog)
        if status:
            return status
    if scrape_sink:
        sys.stdout.write(scrape_sink[-1])
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
