"""Server-resident named keys: tenancy, quotas and the key journal.

The serving stack's multi-tenant key subsystem (DESIGN.md §8 "Named
keys").  Instead of hauling private scalars over the wire on every
request, a tenant creates a **named key** once (``key_create``) and
signs or agrees with ``params.key = "<name>"`` afterwards — the secret
never appears in a request or reply again.  Three cooperating pieces:

* :class:`KeyRegistry` — the per-process view of the key namespace.
  The server front-end owns a *writable* registry (it answers the
  ``key_create`` / ``key_rotate`` / ``key_delete`` / ``key_info`` ops
  inline at accept, like ``stats``); every pool worker attaches a
  *read-only* registry over the same journal and resolves
  ``(tenant, name, generation)`` to a private scalar itself — key
  material is never serialized into batch chunks.
* **The journal** — an append-only NDJSON file, one line per mutation.
  Writers append with ``O_APPEND`` + fsync (single lines, atomic on
  POSIX), readers tail it from their last offset, tolerating a
  trailing partial line.  Replay is how keys survive shard respawns
  and how sibling shards (separate processes appending to the same
  file) see each other's mutations: a lookup miss triggers a tail
  refresh before failing.  File order is the total order — every
  reader folds the same lines the same way.
* **Tenants + quotas** — each tenant has an auth token, a live-key
  budget (``max_keys``) and a request-rate token bucket
  (``rate`` / ``burst``).  A drained bucket sheds with the typed
  ``QuotaExceeded`` reply — deliberately distinct from ``Overloaded``
  (the *server's* bounded queue), so clients can tell "you are over
  your budget" from "the service is saturated".  In the default
  **open** mode any well-formed tenant name self-registers with the
  derived token of :func:`tenant_token`; a ``tenants=`` config dict
  (the server's ``--tenants-file``) switches to **strict** mode where
  unknown tenants are ``Unauthorized``.

Rotation is **generation-tagged**: ``key_rotate`` appends a new
generation rather than overwriting, and the server pins each admitted
request to the generation it saw at admission (``params
.key_generation``), so a batch already in flight completes under the
key it was admitted with while new requests pick up the new
generation.  All generations stay resolvable from the journal;
``key_delete`` retires the whole name.

Key derivation is deterministic (the serve doctrine: nothing reads a
TRNG): the private scalar is derived from
``(tenant, name, generation, seed)`` via the same double-SHA-256
expansion the ``keygen`` op uses, so the loadgen's byte-stable
summaries hold for named-key streams too.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs.metrics import METRICS
from .protocol import (
    KEY_NAME,
    TENANT_NAME,
    ProtocolError,
    QuotaExceeded,
    Unauthorized,
    to_hex,
)

__all__ = [
    "DEFAULT_BURST",
    "DEFAULT_MAX_KEYS",
    "DEFAULT_RATE",
    "KeyRecord",
    "KeyRef",
    "KeyRegistry",
    "Tenant",
    "TokenBucket",
    "derive_key_scalar",
    "tenant_token",
]

#: Default per-tenant quota knobs (open mode; a ``tenants=`` config
#: overrides them per tenant).  Env-tunable so operators can raise the
#: fleet default without a config file.
DEFAULT_MAX_KEYS = int(os.environ.get("REPRO_TENANT_MAX_KEYS", "32"))
DEFAULT_RATE = float(os.environ.get("REPRO_TENANT_RATE", "200"))
DEFAULT_BURST = int(os.environ.get("REPRO_TENANT_BURST", "64"))

_CREATES = METRICS.counter(
    "serve_keys_created_total", "named keys created")
_ROTATES = METRICS.counter(
    "serve_keys_rotated_total", "named-key generations rotated in")
_DELETES = METRICS.counter(
    "serve_keys_deleted_total", "named keys deleted")
_RESOLVES = METRICS.counter(
    "serve_key_resolves_total", "named-key lookups resolved to a scalar")
_REPLAYS = METRICS.counter(
    "serve_key_journal_replays_total", "journal tail refreshes applied")
_QUOTA_SHED = METRICS.counter(
    "serve_quota_shed_total",
    "requests shed with a QuotaExceeded reply (all tenants)")


def tenant_token(name: str) -> str:
    """The derived auth token of *name* in open-tenancy mode.

    Deterministic on purpose: tests, the loadgen and quick-start
    clients need no out-of-band secret exchange.  Production strict
    mode replaces it with per-tenant tokens from ``--tenants-file``.
    """
    digest = hashlib.sha256(b"repro-serve-tenant-token:" + name.encode())
    return digest.hexdigest()[:32]


def derive_key_scalar(tenant: str, name: str, generation: int,
                      seed: str, order: Optional[int] = None,
                      bits: int = 159) -> int:
    """Deterministic private scalar for one key generation.

    Mirrors the ``keygen`` op's derivation (double SHA-256 expansion,
    uniform-ish in ``[1, order-1]`` when the order is known, top-bit
    clamped otherwise) over a tag that binds tenant, name, generation
    and caller seed — rotating always lands on a fresh scalar.
    """
    from .worker import derive_scalar

    tag = f"key:{tenant}:{name}:{generation}:{seed}"
    return derive_scalar(tag, order=order, bits=bits)


class TokenBucket:
    """Per-tenant request-rate limiter (the quota shed's clockwork).

    Classic leaky-bucket refill: ``level`` tokens up to ``burst``,
    refilled at ``rate`` per second of *time_fn* time; :meth:`allow`
    takes one token or reports the bucket dry.  Refill happens lazily
    on each call, so an idle bucket costs nothing.  ``time_fn`` is
    injectable for the boundary tests.
    """

    __slots__ = ("rate", "burst", "level", "_t_last", "_time")

    def __init__(self, rate: float, burst: int,
                 time_fn: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst < 1:
            raise ValueError("need rate > 0 and burst >= 1")
        self.rate = rate
        self.burst = burst
        self.level = float(burst)  # a fresh tenant starts with full burst
        self._time = time_fn
        self._t_last = time_fn()

    def _refill(self) -> None:
        now = self._time()
        elapsed = now - self._t_last
        if elapsed > 0:
            self.level = min(float(self.burst),
                             self.level + elapsed * self.rate)
        self._t_last = now

    def allow(self) -> bool:
        """Take one token; False = shed (no partial admission)."""
        self._refill()
        if self.level >= 1.0:
            self.level -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Current level after a refill (telemetry, not admission)."""
        self._refill()
        return self.level


@dataclass
class KeyRecord:
    """One named key: current generation plus its retained history."""

    tenant: str
    name: str
    curve: str
    generation: int
    #: Generation -> private scalar.  All generations stay resolvable
    #: (the journal is append-only) so in-flight batches pinned to an
    #: older generation complete under the key they were admitted with.
    generations: Dict[int, int] = field(default_factory=dict)
    #: Wire-form public part of the *current* generation: a point
    #: object for Weierstrass/Edwards curves, ``{"x": hex}`` for the
    #: x-only Montgomery lane.
    public: Optional[Dict[str, str]] = None
    deleted: bool = False

    def info(self) -> Dict[str, Any]:
        """The ``key_info`` result object (no secret material)."""
        return {"name": self.name, "curve": self.curve,
                "generation": self.generation,
                "generations": len(self.generations),
                "public": self.public, "deleted": self.deleted}


@dataclass
class KeyRef:
    """A resolved key use: what a worker signs with."""

    private: int
    generation: int
    curve: str


class Tenant:
    """One tenant's auth token, quota state and key namespace."""

    def __init__(self, name: str, token: str, max_keys: int,
                 rate: float, burst: int,
                 time_fn: Callable[[], float] = time.monotonic):
        self.name = name
        self.token = token
        self.max_keys = max_keys
        self.bucket = TokenBucket(rate, burst, time_fn)
        self.keys: Dict[str, KeyRecord] = {}

    def live_keys(self) -> int:
        return sum(1 for rec in self.keys.values() if not rec.deleted)

    def snapshot(self) -> Dict[str, Any]:
        """The tenant's row in the ``stats`` op's ``tenants`` section."""
        return {
            "keys": self.live_keys(),
            "max_keys": self.max_keys,
            "rate": self.bucket.rate,
            "burst": self.bucket.burst,
            "tokens": round(self.bucket.tokens, 3),
        }


class KeyRegistry:
    """One process's view of the tenant/key namespace.

    With a *journal_path*, every mutation appends one NDJSON line
    (``O_APPEND`` + fsync) and every lookup miss tails the file for
    lines other processes appended since — which is all the cross-shard
    coordination there is.  Without a path the registry is memory-only
    (the pool-free direct execution path).  ``writable=False`` marks a
    worker-side attach: mutations raise, resolution works.
    """

    def __init__(self, journal_path: Optional[str] = None,
                 tenants: Optional[Dict[str, Dict[str, Any]]] = None,
                 time_fn: Callable[[], float] = time.monotonic,
                 writable: bool = True):
        self.journal_path = journal_path
        self.writable = writable
        self._time = time_fn
        self._offset = 0
        self._partial = b""
        #: Strict-mode tenant config (None = open mode: any well-formed
        #: name self-registers with the derived token).
        self._config = tenants
        self._tenants: Dict[str, Tenant] = {}
        if tenants is not None:
            for name, spec in tenants.items():
                if not TENANT_NAME.fullmatch(name):
                    raise ValueError(f"bad tenant name {name!r}")
                self._materialize(name, spec)
        self.refresh()

    # -- tenancy -------------------------------------------------------------

    def _materialize(self, name: str,
                     spec: Optional[Dict[str, Any]] = None) -> Tenant:
        spec = spec or {}
        tenant = Tenant(
            name,
            token=spec.get("token", tenant_token(name)),
            max_keys=int(spec.get("max_keys", DEFAULT_MAX_KEYS)),
            rate=float(spec.get("rate", DEFAULT_RATE)),
            burst=int(spec.get("burst", DEFAULT_BURST)),
            time_fn=self._time)
        self._tenants[name] = tenant
        return tenant

    def _tenant(self, name: str) -> Tenant:
        """The tenant's state, self-registering in open mode."""
        tenant = self._tenants.get(name)
        if tenant is None:
            if self._config is not None:
                raise Unauthorized(f"unknown tenant {name!r}")
            tenant = self._materialize(name)
        return tenant

    def authorize(self, name: str, token: Any) -> Tenant:
        """Token check; raises :class:`Unauthorized` on mismatch."""
        tenant = self._tenant(name)
        if not isinstance(token, str) or token != tenant.token:
            raise Unauthorized(f"bad token for tenant {name!r}")
        return tenant

    def throttle(self, tenant: Tenant) -> None:
        """One request's worth of rate quota; raises
        :class:`QuotaExceeded` (the typed shed) when the bucket is dry."""
        if not tenant.bucket.allow():
            _QUOTA_SHED.inc()
            METRICS.counter(
                f"serve_tenant_{tenant.name}_quota_shed_total").inc()
            raise QuotaExceeded(
                f"tenant {tenant.name!r} is over its "
                f"{tenant.bucket.rate:g}/s rate (burst "
                f"{tenant.bucket.burst}); retry with backoff")

    def tenants_snapshot(self) -> Dict[str, Any]:
        """Per-tenant quota/key state for the ``stats`` op."""
        return {name: tenant.snapshot()
                for name, tenant in sorted(self._tenants.items())}

    # -- the journal ---------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        if self.journal_path is None:
            return
        line = (json.dumps(entry, sort_keys=True, separators=(",", ":"))
                + "\n").encode()
        # O_APPEND single-write: concurrent shard appends interleave at
        # line granularity, never mid-line.
        fd = os.open(self.journal_path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o600)
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)
        self._offset += len(line)

    def refresh(self) -> int:
        """Tail the journal from the last offset; returns lines applied.

        A trailing partial line (a concurrent writer mid-append, or a
        crash between write and fsync) is buffered and retried on the
        next refresh rather than parsed as garbage.
        """
        if self.journal_path is None \
                or not os.path.exists(self.journal_path):
            return 0
        with open(self.journal_path, "rb") as fh:
            fh.seek(self._offset)
            data = self._partial + fh.read()
            self._offset = fh.tell()
        lines = data.split(b"\n")
        self._partial = lines.pop()  # b"" when data ends in a newline
        applied = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # a torn historical line; skip, never crash
            if isinstance(entry, dict):
                self._apply(entry)
                applied += 1
        if applied:
            _REPLAYS.inc(applied)
        return applied

    def _apply(self, entry: Dict[str, Any]) -> None:
        """Fold one journal line into the in-memory state (file order
        is the total order; every reader applies identically)."""
        action = entry.get("action")
        tenant_name = entry.get("tenant")
        name = entry.get("name")
        if not isinstance(tenant_name, str) or not isinstance(name, str):
            return
        try:
            tenant = self._tenant(tenant_name)
        except Unauthorized:
            return  # strict mode dropped this tenant; ignore its keys
        if action in ("create", "rotate"):
            try:
                generation = int(entry["generation"])
                private = int(entry["private"], 16)
            except (KeyError, TypeError, ValueError):
                return
            record = tenant.keys.get(name)
            if record is None or record.deleted:
                record = KeyRecord(tenant=tenant_name, name=name,
                                   curve=entry.get("curve", "secp160r1"),
                                   generation=generation)
                tenant.keys[name] = record
            record.generations[generation] = private
            if generation >= record.generation:
                record.generation = generation
                record.public = entry.get("public")
                record.deleted = False
        elif action == "delete":
            record = tenant.keys.get(name)
            if record is not None:
                record.deleted = True

    # -- the lifecycle ops ---------------------------------------------------

    def _require_writable(self) -> None:
        if not self.writable:
            raise ProtocolError(
                "this registry is a read-only attach; key mutations "
                "belong to the server front-end")

    def _public_for(self, curve: str, private: int) -> Dict[str, str]:
        """The wire-form public part (computed once per mutation; the
        front-end pays this, never the batch path)."""
        from ..curves.params import make_suite
        from ..scalarmult import (
            adapter_for,
            montgomery_ladder_x,
            scalar_mult_naf,
        )

        suite = make_suite(curve)
        if curve == "montgomery":
            xz = montgomery_ladder_x(suite.curve, private, suite.base,
                                     bits=suite.scalar_bits)
            return {"x": to_hex(suite.curve.x_affine(xz).to_int())}
        point = scalar_mult_naf(adapter_for(suite.curve, suite.base),
                                private)
        if point is None:
            raise ProtocolError(
                "derived private key maps the base to infinity")
        return {"x": to_hex(point.x.to_int()),
                "y": to_hex(point.y.to_int())}

    def _derive(self, curve: str, tenant: str, name: str,
                generation: int, seed: str) -> int:
        from ..curves.params import make_suite

        suite = make_suite(curve)
        if curve == "montgomery":
            return derive_key_scalar(tenant, name, generation, seed,
                                     bits=suite.scalar_bits)
        if suite.order is not None:
            return derive_key_scalar(tenant, name, generation, seed,
                                     order=suite.order)
        return derive_key_scalar(tenant, name, generation, seed)

    def create(self, tenant_name: str, name: str, curve: str,
               seed: Optional[str] = None) -> Dict[str, Any]:
        """``key_create``: derive generation 1, journal it, return the
        public half (the private scalar never leaves the server)."""
        self._require_writable()
        self.refresh()
        tenant = self._tenant(tenant_name)
        record = tenant.keys.get(name)
        if record is not None and not record.deleted:
            raise ProtocolError(
                f"key {name!r} already exists (generation "
                f"{record.generation}); rotate or delete it")
        if tenant.live_keys() >= tenant.max_keys:
            _QUOTA_SHED.inc()
            METRICS.counter(
                f"serve_tenant_{tenant_name}_quota_shed_total").inc()
            raise QuotaExceeded(
                f"tenant {tenant_name!r} is at its {tenant.max_keys}-key "
                "budget; delete a key first")
        generation = 1
        private = self._derive(curve, tenant_name, name, generation,
                               seed or name)
        public = self._public_for(curve, private)
        self._append({"action": "create", "tenant": tenant_name,
                      "name": name, "curve": curve,
                      "generation": generation,
                      "private": to_hex(private), "public": public})
        self._apply({"action": "create", "tenant": tenant_name,
                     "name": name, "curve": curve,
                     "generation": generation,
                     "private": to_hex(private), "public": public})
        _CREATES.inc()
        METRICS.counter(f"serve_tenant_{tenant_name}_keys_total").inc()
        return {"name": name, "curve": curve, "generation": generation,
                "public": public}

    def rotate(self, tenant_name: str, name: str,
               seed: Optional[str] = None) -> Dict[str, Any]:
        """``key_rotate``: append the next generation.  Requests already
        admitted stay pinned to the generation they saw; everything
        admitted after this returns uses the new one."""
        self._require_writable()
        self.refresh()
        record = self._record(tenant_name, name)
        generation = record.generation + 1
        private = self._derive(record.curve, tenant_name, name, generation,
                               seed or f"{name}:{generation}")
        public = self._public_for(record.curve, private)
        self._append({"action": "rotate", "tenant": tenant_name,
                      "name": name, "curve": record.curve,
                      "generation": generation,
                      "private": to_hex(private), "public": public})
        self._apply({"action": "rotate", "tenant": tenant_name,
                     "name": name, "curve": record.curve,
                     "generation": generation,
                     "private": to_hex(private), "public": public})
        _ROTATES.inc()
        return {"name": name, "curve": record.curve,
                "generation": generation, "public": public}

    def delete(self, tenant_name: str, name: str) -> Dict[str, Any]:
        """``key_delete``: retire the name (all generations)."""
        self._require_writable()
        self.refresh()
        record = self._record(tenant_name, name)
        self._append({"action": "delete", "tenant": tenant_name,
                      "name": name})
        self._apply({"action": "delete", "tenant": tenant_name,
                     "name": name})
        _DELETES.inc()
        return {"name": name, "deleted": True}

    def info(self, tenant_name: str, name: str) -> Dict[str, Any]:
        """``key_info``: public metadata, never secret material."""
        self.refresh()
        return self._record(tenant_name, name).info()

    def _record(self, tenant_name: str, name: str) -> KeyRecord:
        tenant = self._tenant(tenant_name)
        record = tenant.keys.get(name)
        if record is None or record.deleted:
            # Another shard may have created it since our last tail.
            self.refresh()
            record = tenant.keys.get(name)
        if record is None:
            raise ProtocolError(
                f"tenant {tenant_name!r} has no key {name!r}")
        if record.deleted:
            raise ProtocolError(f"key {name!r} was deleted")
        return record

    def resolve(self, tenant_name: str, name: str,
                generation: Optional[int] = None) -> KeyRef:
        """``(tenant, name[, generation])`` -> the scalar to use.

        No generation asks for the current one; an explicit generation
        (the server's admission pin, or a client pin) must exist —
        retired generations stay resolvable, unknown ones are
        ``BadRequest``.  Misses tail the journal before failing, which
        is how a worker sees a key the front-end created moments ago.
        """
        record = self._record(tenant_name, name)
        if generation is None:
            generation = record.generation
        private = record.generations.get(generation)
        if private is None:
            self.refresh()
            private = record.generations.get(generation)
        if private is None:
            raise ProtocolError(
                f"key {name!r} has no generation {generation}")
        _RESOLVES.inc()
        return KeyRef(private=private, generation=generation,
                      curve=record.curve)

    # -- bookkeeping ---------------------------------------------------------

    def key_count(self) -> int:
        return sum(t.live_keys() for t in self._tenants.values())
