"""repro.serve — the batched, multi-worker ECC service.

An asyncio TCP front-end (:mod:`repro.serve.server`) speaking
newline-delimited JSON (:mod:`repro.serve.protocol`), dispatching
batches of compatible requests to a :mod:`multiprocessing` worker pool
(:mod:`repro.serve.worker`) whose fixed-base comb tables
(:mod:`repro.scalarmult.fixed_base`) make the common fixed-point
operations several times faster than the variable-base path.  Clients
live in :mod:`repro.serve.client`; the deterministic load generator /
benchmark driver in :mod:`repro.serve.loadgen`.
"""

from .protocol import (
    CURVES,
    ERROR_TYPES,
    OPS,
    ORDER_CURVES,
    DeadlineExceeded,
    Overloaded,
    ProtocolError,
)
from .server import EccServer, ServeConfig

__all__ = [
    "CURVES",
    "ERROR_TYPES",
    "OPS",
    "ORDER_CURVES",
    "DeadlineExceeded",
    "EccServer",
    "Overloaded",
    "ProtocolError",
    "ServeConfig",
]
