"""repro.serve — the batched, multi-worker ECC service.

An asyncio TCP front-end (:mod:`repro.serve.server`) speaking
newline-delimited JSON (:mod:`repro.serve.protocol`), dispatching
batches of compatible requests to a :mod:`multiprocessing` worker pool
(:mod:`repro.serve.worker`) whose fixed-base comb tables
(:mod:`repro.scalarmult.fixed_base`) make the common fixed-point
operations several times faster than the variable-base path.
Server-resident named keys, tenancy and quotas live in
:mod:`repro.serve.keys` (the ``key_create`` / ``key_rotate`` /
``key_delete`` / ``key_info`` ops, plus ``params.key`` on sign/ECDH).
Clients live in :mod:`repro.serve.client`; the deterministic load
generator / benchmark driver in :mod:`repro.serve.loadgen`.
"""

from .keys import KeyRegistry, TokenBucket, tenant_token
from .protocol import (
    CURVES,
    ERROR_TYPES,
    KEY_OPS,
    OPS,
    ORDER_CURVES,
    DeadlineExceeded,
    Overloaded,
    ProtocolError,
    QuotaExceeded,
    Unauthorized,
)
from .server import EccServer, ServeConfig

__all__ = [
    "CURVES",
    "ERROR_TYPES",
    "KEY_OPS",
    "KeyRegistry",
    "OPS",
    "ORDER_CURVES",
    "DeadlineExceeded",
    "EccServer",
    "Overloaded",
    "ProtocolError",
    "QuotaExceeded",
    "ServeConfig",
    "TokenBucket",
    "Unauthorized",
    "tenant_token",
]
