"""Optimal Prime Fields (OPFs): p = u * 2^k + 1 with a short u.

OPF elements are stored in the Montgomery domain (radix ``R = 2^(s*w)``) and
*incompletely reduced*: the internal value may be anywhere in ``[0, R)`` as
long as it is congruent to the represented element.  Addition/subtraction use
the branch-less double-conditional-subtraction from paper Section III-A;
multiplication and squaring use the OPF-optimised FIPS Montgomery routine
(``s^2 + s`` word multiplications).  This means every field operation at the
Python API level actually executes the word-level algorithm the paper's AVR
assembly implements.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..mpa.addsub import modadd_incomplete, modsub_incomplete
from ..mpa.montgomery import MontgomeryContext, fips_montgomery_opf
from ..mpa.words import DEFAULT_WORD_BITS, from_words, to_words
from .inversion import kaliski_almost_inverse
from .prime_field import PrimeField


def is_opf_prime_shape(p: int, word_bits: int = DEFAULT_WORD_BITS) -> bool:
    """True when ``p`` has the low-weight OPF word pattern ``u * 2^k + 1``.

    Checks the *word-array* property the arithmetic relies on: LSW == 1, MSW
    non-zero, all interior words zero.
    """
    s = -(-p.bit_length() // word_bits)
    words = to_words(p, s, word_bits)
    return (
        words[0] == 1
        and words[-1] != 0
        and all(w == 0 for w in words[1:-1])
    )


class OptimalPrimeField(PrimeField):
    """A 'low-weight' prime field with Montgomery-domain OPF arithmetic.

    Args:
        u: the short multiplier (at most 16 bits in the paper).
        k: the power-of-two exponent; ``p = u * 2^k + 1``.
        word_bits: word size *w* (32 in the paper; 8 makes handy toy fields).
        name: optional human-readable identifier.

    Raises ``ValueError`` if the resulting modulus does not have the
    low-weight word shape (e.g. if ``k`` is not a multiple of *word_bits*
    plus the final partial word arrangement required).
    """

    cost_profile = "opf"

    def __init__(self, u: int, k: int, word_bits: int = DEFAULT_WORD_BITS,
                 name: Optional[str] = None):
        if u <= 0:
            raise ValueError(f"u must be positive, got {u}")
        p = u * (1 << k) + 1
        super().__init__(p, name or f"OPF({u}*2^{k}+1)")
        self.u = u
        self.k = k
        self.word_bits = word_bits
        if not is_opf_prime_shape(p, word_bits):
            raise ValueError(
                f"p = {u}*2^{k}+1 does not have the OPF word shape "
                f"for w = {word_bits}"
            )
        self.mont = MontgomeryContext.create(p, word_bits)
        self.num_words = self.mont.num_words
        self.radix_bits = self.num_words * word_bits
        self._p_words = self.mont.p_words
        #: Phase-1 iteration counts of every inversion performed — exposed for
        #: the leakage analysis of the projective-to-affine conversion.
        self.inversion_iteration_counts: List[int] = []

    # -- representation -----------------------------------------------------

    def int_to_internal(self, value: int) -> int:
        """Enter the Montgomery domain (one counted FIPS multiplication).

        The constants 0 and 1 are free: their Montgomery forms (0 and
        ``R mod p``) would live in ROM on the real device.
        """
        value %= self.p
        if value == 0:
            return 0
        if value == 1:
            return self.mont.r % self.p
        self.counter.mul += 1
        v_words = to_words(value, self.num_words, self.word_bits)
        r2_words = to_words(self.mont.r2, self.num_words, self.word_bits)
        out = fips_montgomery_opf(v_words, r2_words, self.mont,
                                  self.counter.words)
        return from_words(out, self.word_bits)

    def internal_to_int(self, internal: int) -> int:
        """Leave the Montgomery domain and fully reduce (uncounted read-out)."""
        r_inv = pow(self.mont.r, -1, self.p)
        return (internal * r_inv) % self.p

    # -- word helpers --------------------------------------------------------

    def _words(self, internal: int) -> List[int]:
        return to_words(internal, self.num_words, self.word_bits)

    # -- arithmetic -----------------------------------------------------------

    def _add(self, x: int, y: int) -> int:
        out = modadd_incomplete(self._words(x), self._words(y), self._p_words,
                                self.word_bits, self.counter.words)
        return from_words(out, self.word_bits)

    def _sub(self, x: int, y: int) -> int:
        out = modsub_incomplete(self._words(x), self._words(y), self._p_words,
                                self.word_bits, self.counter.words)
        return from_words(out, self.word_bits)

    def _mul(self, x: int, y: int) -> int:
        out = fips_montgomery_opf(self._words(x), self._words(y), self.mont,
                                  self.counter.words)
        return from_words(out, self.word_bits)

    def _mul_small(self, x: int, constant: int) -> int:
        # Multiplying the Montgomery form by a *plain* short constant keeps
        # the result in the Montgomery domain: (a*R) * c = (a*c) * R.
        # Functionally we reduce with big-int mod; the cycle model prices
        # this operation at the paper's 0.25-0.3 M.
        return (x * constant) % self.p

    def _inv(self, x: int) -> int:
        # x = a * R (mod p, possibly incompletely reduced).  The inverse in
        # internal form is a^-1 * R = x^-1 * R^2 mod p.
        plain = x % self.p
        almost, k = kaliski_almost_inverse(plain, self.p)
        self.inversion_iteration_counts.append(k)
        # almost = plain^-1 * 2^k; adjust the exponent to reach R^2 = 2^(2n).
        target = 2 * self.radix_bits
        result = almost
        if k <= target:
            for _ in range(target - k):
                result = result * 2
                if result >= self.p:
                    result -= self.p
        else:  # pragma: no cover - cannot happen for k <= 2 * bitlen(p)
            result = (result * pow(2, target - k, self.p)) % self.p
        return result

    def random_element(self, rng: Optional[random.Random] = None):
        """Uniformly random element; may be produced incompletely reduced."""
        return super().random_element(rng)
