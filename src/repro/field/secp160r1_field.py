"""The field of the standardized curve secp160r1.

secp160r1 uses the pseudo-Mersenne prime ``p = 2^160 - 2^31 - 1``; the paper
implements its field multiplication with an unrolled variant of Gura et al.'s
*hybrid* method plus a prime-specific reduction (Section V-B).  Reduction for
this prime works by folding: ``2^160 ≡ 2^31 + 1 (mod p)``, so the high half
of a product is multiplied by the small constant ``2^31 + 1`` and added back —
additions rather than the multiplication-based reduction of OPFs, which is
exactly the contrast the paper draws between generalized-Mersenne-style
primes and OPFs.
"""

from __future__ import annotations

from typing import Optional

from ..mpa.mul import byte_muls_per_word_mul, mul_product_scanning
from ..mpa.words import DEFAULT_WORD_BITS, from_words, to_words
from .inversion import binary_euclid_inverse
from .prime_field import PrimeField

#: The SECG secp160r1 prime.
SECP160R1_P = (1 << 160) - (1 << 31) - 1


class Secp160r1Field(PrimeField):
    """F_p for p = 2^160 - 2^31 - 1 with fold-based fast reduction.

    Elements are stored as plain residues.  Multiplication runs the real
    word-level product (Comba/hybrid organisation, with byte-level MUL
    counting) followed by the two-fold pseudo-Mersenne reduction.
    """

    cost_profile = "secp160r1"

    def __init__(self, word_bits: int = DEFAULT_WORD_BITS,
                 name: Optional[str] = None):
        super().__init__(SECP160R1_P, name or "secp160r1")
        self.word_bits = word_bits
        self.num_words = -(-self.bits // word_bits)
        self.byte_muls_per_field_mul = (
            self.num_words ** 2 * byte_muls_per_word_mul(word_bits)
        )

    # -- representation -----------------------------------------------------

    def int_to_internal(self, value: int) -> int:
        return value % self.p

    def internal_to_int(self, internal: int) -> int:
        return internal % self.p

    # -- reduction ------------------------------------------------------------

    def reduce_product(self, t: int) -> int:
        """Fold a double-length product back below ``p``.

        Uses ``2^160 ≡ 2^31 + 1 (mod p)`` twice, then at most two conditional
        subtractions — the generalized-Mersenne-style 'reduction via
        additions' the paper contrasts with OPF reduction via MAC operations.
        """
        if t < 0:
            raise ValueError("product must be non-negative")
        fold = (1 << 31) + 1
        hi, lo = t >> 160, t & ((1 << 160) - 1)
        t = lo + hi * fold
        hi, lo = t >> 160, t & ((1 << 160) - 1)
        t = lo + hi * fold
        while t >= self.p:
            t -= self.p
        return t

    # -- arithmetic -------------------------------------------------------------

    def _add(self, x: int, y: int) -> int:
        t = x + y
        return t - self.p if t >= self.p else t

    def _sub(self, x: int, y: int) -> int:
        t = x - y
        return t + self.p if t < 0 else t

    def _mul(self, x: int, y: int) -> int:
        xw = to_words(x, self.num_words, self.word_bits)
        yw = to_words(y, self.num_words, self.word_bits)
        product = from_words(
            mul_product_scanning(xw, yw, self.word_bits, self.counter.words),
            self.word_bits,
        )
        return self.reduce_product(product)

    def _mul_small(self, x: int, constant: int) -> int:
        return self.reduce_product(x * constant)

    def _inv(self, x: int) -> int:
        return binary_euclid_inverse(x, self.p)
