"""Prime-field layer: generic F_p, Optimal Prime Fields, and secp160r1.

The field API (:class:`~repro.field.prime_field.PrimeField` /
:class:`~repro.field.element.FpElement`) is what all curve arithmetic is
written against.  Concrete fields differ in their internal representation and
word-level algorithms:

* :class:`~repro.field.prime_field.GenericPrimeField` — plain residues
  (functional baseline, toy fields).
* :class:`~repro.field.opf.OptimalPrimeField` — the paper's OPF library:
  Montgomery domain, incomplete reduction, OPF-optimised FIPS.
* :class:`~repro.field.secp160r1_field.Secp160r1Field` — pseudo-Mersenne
  fold reduction for the standardized reference curve.
"""

from .counters import FieldOpCounter
from .element import FpElement
from .inversion import (
    binary_euclid_inverse,
    fermat_inverse,
    kaliski_almost_inverse,
    kaliski_montgomery_inverse,
    tonelli_shanks_sqrt,
)
from .opf import OptimalPrimeField, is_opf_prime_shape
from .prime_field import GenericPrimeField, PrimeField
from .secp160r1_field import SECP160R1_P, Secp160r1Field

__all__ = [
    "SECP160R1_P",
    "FieldOpCounter",
    "FpElement",
    "GenericPrimeField",
    "OptimalPrimeField",
    "PrimeField",
    "Secp160r1Field",
    "binary_euclid_inverse",
    "fermat_inverse",
    "is_opf_prime_shape",
    "kaliski_almost_inverse",
    "kaliski_montgomery_inverse",
    "tonelli_shanks_sqrt",
]
