"""Immutable field-element wrapper with operator overloading.

Elements carry a reference to their :class:`~repro.field.prime_field.PrimeField`
and an *internal* representation (Montgomery-domain and possibly incompletely
reduced for OPFs, plain residue for generic fields).  All arithmetic routes
through the field object so that operation counting and the word-level
algorithms are exercised uniformly, no matter which curve or protocol sits on
top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .prime_field import PrimeField

IntoElement = Union["FpElement", int]


class FpElement:
    """An element of a prime field.

    Instances are immutable; arithmetic returns new elements.  Mixed
    operations with Python ints are supported (the int is mapped into the
    field first), but elements of *different* fields never mix.
    """

    __slots__ = ("field", "internal")

    def __init__(self, field: "PrimeField", internal: int):
        self.field = field
        self.internal = internal

    # -- representation -------------------------------------------------

    def to_int(self) -> int:
        """Canonical (fully reduced, plain-domain) value in ``[0, p)``."""
        return self.field.internal_to_int(self.internal)

    def __int__(self) -> int:
        return self.to_int()

    def __repr__(self) -> str:
        return f"FpElement({self.to_int():#x} in {self.field.name})"

    # -- helpers ---------------------------------------------------------

    def _coerce(self, other: IntoElement) -> "FpElement":
        if isinstance(other, FpElement):
            if other.field is not self.field:
                raise ValueError(
                    f"cannot mix elements of {self.field.name} "
                    f"and {other.field.name}"
                )
            return other
        if isinstance(other, int):
            return self.field.from_int(other)
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: IntoElement) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.field.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: IntoElement) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.field.sub(self, other)

    def __rsub__(self, other: IntoElement) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.field.sub(other, self)

    def __neg__(self) -> "FpElement":
        return self.field.neg(self)

    def __mul__(self, other: IntoElement) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.field.mul(self, other)

    __rmul__ = __mul__

    def square(self) -> "FpElement":
        """Field squaring (counted separately from multiplication)."""
        return self.field.sqr(self)

    def mul_small(self, constant: int) -> "FpElement":
        """Multiplication by a short (≤ 16-bit) plain constant.

        The paper measures this at 0.25-0.3 of a full field multiplication;
        it is counted in its own category so the cycle model can price it.
        """
        return self.field.mul_small(self, constant)

    def invert(self) -> "FpElement":
        """Multiplicative inverse (Montgomery/Kaliski inverse underneath)."""
        return self.field.inv(self)

    def __truediv__(self, other: IntoElement) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.field.mul(self, self.field.inv(other))

    def __pow__(self, exponent: int) -> "FpElement":
        if not isinstance(exponent, int):
            return NotImplemented
        return self.field.pow(self, exponent)

    def sqrt(self) -> "FpElement":
        """A square root, if one exists (raises ``ValueError`` otherwise)."""
        return self.field.sqrt(self)

    # -- predicates / comparisons -----------------------------------------

    def is_zero(self) -> bool:
        return self.to_int() == 0

    def is_one(self) -> bool:
        return self.to_int() == 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FpElement):
            if other.field is not self.field:
                return False
            return self.to_int() == other.to_int()
        if isinstance(other, int):
            return self.to_int() == other % self.field.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.p, self.to_int()))

    def __bool__(self) -> bool:
        return not self.is_zero()
