"""Prime-field base class and the generic (plain-residue) implementation.

:class:`PrimeField` defines the API all curve and protocol code is written
against; concrete subclasses provide the internal representation and the
word-level arithmetic:

* :class:`GenericPrimeField` — plain residues with Python big-int reduction.
  Used for toy fields in tests and as the functional baseline.
* :class:`~repro.field.opf.OptimalPrimeField` — Montgomery-domain,
  incompletely reduced OPF arithmetic on 32-bit words (the paper's library).
* :class:`~repro.field.secp160r1_field.Secp160r1Field` — the standardized
  curve's field with its dedicated pseudo-Mersenne reduction.

Every field owns a :class:`~repro.field.counters.FieldOpCounter`; the
element operators bump it, which is how the cycle model later prices a whole
scalar multiplication.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..obs import trace as _trace
from .counters import FieldOpCounter
from .element import FpElement
from .inversion import binary_euclid_inverse, tonelli_shanks_sqrt


class PrimeField:
    """Abstract prime field F_p.

    Subclasses must implement the ``_``-prefixed representation hooks; user
    code only ever touches :class:`~repro.field.element.FpElement` values
    produced by :meth:`from_int` / :attr:`zero` / :attr:`one`.
    """

    #: Identifier used by the cycle model to pick per-operation costs.
    cost_profile = "generic"

    def __init__(self, p: int, name: Optional[str] = None):
        if p < 3:
            raise ValueError(f"modulus must be >= 3, got {p}")
        self.p = p
        self.bits = p.bit_length()
        self.name = name or f"F_{p}"
        self.counter = FieldOpCounter()

    # -- representation hooks (subclass responsibility) --------------------

    def int_to_internal(self, value: int) -> int:
        """Map a plain integer (any sign/magnitude) to the internal form."""
        raise NotImplementedError

    def internal_to_int(self, internal: int) -> int:
        """Map internal form back to the canonical residue in ``[0, p)``."""
        raise NotImplementedError

    def _add(self, x: int, y: int) -> int:
        raise NotImplementedError

    def _sub(self, x: int, y: int) -> int:
        raise NotImplementedError

    def _mul(self, x: int, y: int) -> int:
        raise NotImplementedError

    def _sqr(self, x: int) -> int:
        return self._mul(x, x)

    def _mul_small(self, x: int, constant: int) -> int:
        raise NotImplementedError

    def _neg(self, x: int) -> int:
        """Negation; default is a subtraction from the internal zero."""
        return self._sub(self._zero_internal(), x)

    def _zero_internal(self) -> int:
        """Internal representation of 0 (free of charge on any backend)."""
        return 0

    def _inv(self, x: int) -> int:
        raise NotImplementedError

    # -- element construction ----------------------------------------------

    def from_int(self, value: int) -> FpElement:
        """Create an element from a plain integer (reduced mod p)."""
        return FpElement(self, self.int_to_internal(value % self.p))

    @property
    def zero(self) -> FpElement:
        return self.from_int(0)

    @property
    def one(self) -> FpElement:
        return self.from_int(1)

    def random_element(self, rng: Optional[random.Random] = None) -> FpElement:
        """Uniformly random element (for tests and blinding)."""
        rng = rng or random
        return self.from_int(rng.randrange(self.p))

    def all_elements(self) -> List[FpElement]:
        """Every element — only sensible for toy fields in tests."""
        if self.p > 1 << 16:
            raise ValueError("refusing to enumerate a large field")
        return [self.from_int(v) for v in range(self.p)]

    # -- counted operations -------------------------------------------------
    #
    # Each operation is individually traceable: when a tracer is installed
    # *and* opted into per-field-op spans (``Tracer(field_ops=True)``), the
    # whole counted body runs under a span so the counter delta captures
    # the op itself plus the word-level work it decomposed into.  The
    # untraced path pays one global load and one comparison.

    def add(self, a: FpElement, b: FpElement) -> FpElement:
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("add", kind="field", counter=self.counter):
                self.counter.add += 1
                return FpElement(self, self._add(a.internal, b.internal))
        self.counter.add += 1
        return FpElement(self, self._add(a.internal, b.internal))

    def sub(self, a: FpElement, b: FpElement) -> FpElement:
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("sub", kind="field", counter=self.counter):
                self.counter.sub += 1
                return FpElement(self, self._sub(a.internal, b.internal))
        self.counter.sub += 1
        return FpElement(self, self._sub(a.internal, b.internal))

    def neg(self, a: FpElement) -> FpElement:
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("neg", kind="field", counter=self.counter):
                self.counter.neg += 1
                return FpElement(self, self._neg(a.internal))
        self.counter.neg += 1
        return FpElement(self, self._neg(a.internal))

    def mul(self, a: FpElement, b: FpElement) -> FpElement:
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("mul", kind="field", counter=self.counter):
                self.counter.mul += 1
                return FpElement(self, self._mul(a.internal, b.internal))
        self.counter.mul += 1
        return FpElement(self, self._mul(a.internal, b.internal))

    def sqr(self, a: FpElement) -> FpElement:
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("sqr", kind="field", counter=self.counter):
                self.counter.sqr += 1
                return FpElement(self, self._sqr(a.internal))
        self.counter.sqr += 1
        return FpElement(self, self._sqr(a.internal))

    def mul_small(self, a: FpElement, constant: int) -> FpElement:
        if not 0 <= constant < (1 << 16):
            raise ValueError(
                f"mul_small constant must fit in 16 bits, got {constant}"
            )
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("mul_small", kind="field", counter=self.counter):
                self.counter.mul_small += 1
                return FpElement(self, self._mul_small(a.internal, constant))
        self.counter.mul_small += 1
        return FpElement(self, self._mul_small(a.internal, constant))

    def inv(self, a: FpElement) -> FpElement:
        if a.is_zero():
            raise ZeroDivisionError("zero has no inverse")
        tr = _trace.CURRENT
        if tr is not None and tr.field_ops:
            with tr.span("inv", kind="field", counter=self.counter):
                self.counter.inv += 1
                return FpElement(self, self._inv(a.internal))
        self.counter.inv += 1
        return FpElement(self, self._inv(a.internal))

    def pow(self, a: FpElement, exponent: int) -> FpElement:
        """Square-and-multiply exponentiation through counted operations."""
        if exponent < 0:
            return self.pow(self.inv(a), -exponent)
        result = self.one
        if exponent == 0:
            return result
        started = False
        for bit in bin(exponent)[2:]:
            if started:
                result = self.sqr(result)
            if bit == "1":
                result = self.mul(result, a) if started else a
                started = True
        return result

    def sqrt(self, a: FpElement) -> FpElement:
        """Square root via Tonelli-Shanks on the plain value (uncounted)."""
        return self.from_int(tonelli_shanks_sqrt(a.to_int(), self.p))

    def is_square(self, a: FpElement) -> bool:
        """Euler criterion on the plain value (uncounted)."""
        v = a.to_int()
        return v == 0 or pow(v, (self.p - 1) // 2, self.p) == 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, bits={self.bits})"


class GenericPrimeField(PrimeField):
    """Plain-residue field using Python's big-int reduction.

    This is the functional baseline: correct for any odd prime, with
    operation counting but no word-level modelling.  Toy fields in the test
    suite and reference cross-checks use it.
    """

    cost_profile = "generic"

    def int_to_internal(self, value: int) -> int:
        return value % self.p

    def internal_to_int(self, internal: int) -> int:
        return internal % self.p

    def _add(self, x: int, y: int) -> int:
        t = x + y
        return t - self.p if t >= self.p else t

    def _sub(self, x: int, y: int) -> int:
        t = x - y
        return t + self.p if t < 0 else t

    def _mul(self, x: int, y: int) -> int:
        return (x * y) % self.p

    def _mul_small(self, x: int, constant: int) -> int:
        return (x * constant) % self.p

    def _inv(self, x: int) -> int:
        return binary_euclid_inverse(x, self.p)
