"""Field-level operation counters.

The paper prices a scalar multiplication as a weighted sum of field
operations (e.g. "5.3 M + 4 S per bit" for the Montgomery ladder).  Every
:class:`~repro.field.prime_field.PrimeField` carries a
:class:`FieldOpCounter`; the point arithmetic and scalar-multiplication
algorithms are instrumented simply by being written on top of the field API.
The cycle model (:mod:`repro.model.opcost`) converts these tallies into
cycle estimates per processor mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..mpa.counters import WordOpCounter


@dataclass
class FieldOpCounter:
    """Tallies of field-level operations plus embedded word-level tallies."""

    add: int = 0
    sub: int = 0
    neg: int = 0
    mul: int = 0
    sqr: int = 0
    mul_small: int = 0
    inv: int = 0
    words: WordOpCounter = field(default_factory=WordOpCounter)

    def reset(self) -> None:
        """Zero all field- and word-level tallies."""
        self.add = 0
        self.sub = 0
        self.neg = 0
        self.mul = 0
        self.sqr = 0
        self.mul_small = 0
        self.inv = 0
        self.words.reset()

    def snapshot(self) -> Dict[str, int]:
        """Current field-level tallies as a plain dict."""
        return {
            "add": self.add,
            "sub": self.sub,
            "neg": self.neg,
            "mul": self.mul,
            "sqr": self.sqr,
            "mul_small": self.mul_small,
            "inv": self.inv,
        }

    def mul_equivalents(self, sqr_weight: float = 1.0, addsub_weight: float = 0.05,
                        mul_small_weight: float = 0.27) -> float:
        """Rough cost in units of one field multiplication.

        Default weights follow the paper: squaring is implemented by the same
        multiplication routine (weight 1.0), a multiplication by a short
        constant costs 0.25-0.3 M (we use the midpoint), and addition or
        subtraction is roughly 240/3314 of a multiplication in CA mode.
        """
        return (
            self.mul
            + sqr_weight * self.sqr
            + mul_small_weight * self.mul_small
            + addsub_weight * (self.add + self.sub + self.neg)
        )

    def delta(self, earlier: "FieldOpCounter") -> "FieldOpCounter":
        """Tallies accumulated since *earlier* (a snapshot copy).

        Carries the embedded word-level delta as well, so a delta of an
        OPF field counter prices both the field ops and the word ops
        they decomposed into.
        """
        return FieldOpCounter(
            add=self.add - earlier.add,
            sub=self.sub - earlier.sub,
            neg=self.neg - earlier.neg,
            mul=self.mul - earlier.mul,
            sqr=self.sqr - earlier.sqr,
            mul_small=self.mul_small - earlier.mul_small,
            inv=self.inv - earlier.inv,
            words=self.words.delta(earlier.words),
        )

    def copy(self) -> "FieldOpCounter":
        """Independent copy of the field- and word-level tallies."""
        return FieldOpCounter(
            add=self.add,
            sub=self.sub,
            neg=self.neg,
            mul=self.mul,
            sqr=self.sqr,
            mul_small=self.mul_small,
            inv=self.inv,
            words=self.words.copy(),
        )
