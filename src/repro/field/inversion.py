"""Modular inversion algorithms.

The paper's projective-to-affine conversion uses the *Montgomery inverse*
(Kaliski's two-phase binary algorithm), which is why its "constant runtime"
implementations are only constant-time in the scalar-multiplication main
loop — the final inversion is data-dependent (Section V-B).  We implement:

* :func:`binary_euclid_inverse` — the classic binary extended Euclidean
  algorithm on plain residues,
* :func:`kaliski_almost_inverse` / :func:`kaliski_montgomery_inverse` —
  Kaliski's phase-1 "almost Montgomery inverse" (returns ``a^-1 * 2^k mod p``
  together with the data-dependent iteration count ``k``) and the phase-2
  correction,
* :func:`fermat_inverse` — the constant-time exponentiation alternative.

The phase-1 iteration count is exposed so leakage benchmarks can show the
operand dependence the paper acknowledges.
"""

from __future__ import annotations

from typing import Callable, Tuple


def binary_euclid_inverse(a: int, p: int) -> int:
    """Inverse of ``a`` modulo an odd prime ``p`` via binary extended Euclid."""
    a %= p
    if a == 0:
        raise ZeroDivisionError("zero has no modular inverse")
    u, v = a, p
    x1, x2 = 1, 0
    while u != 1 and v != 1:
        while u % 2 == 0:
            u //= 2
            x1 = x1 // 2 if x1 % 2 == 0 else (x1 + p) // 2
        while v % 2 == 0:
            v //= 2
            x2 = x2 // 2 if x2 % 2 == 0 else (x2 + p) // 2
        if u >= v:
            u -= v
            x1 -= x2
        else:
            v -= u
            x2 -= x1
    inv = x1 if u == 1 else x2
    inv %= p
    if (a * inv) % p != 1:
        raise AssertionError("binary extended Euclid produced a wrong inverse")
    return inv


def kaliski_almost_inverse(a: int, p: int) -> Tuple[int, int]:
    """Kaliski phase 1: returns ``(r, k)`` with ``r = a^-1 * 2^k mod p``.

    ``k`` lies in ``[bitlen(p), 2*bitlen(p)]`` and depends on the operand —
    the source of the residual timing leakage the paper mentions for its
    projective-to-affine conversion.
    """
    a %= p
    if a == 0:
        raise ZeroDivisionError("zero has no modular inverse")
    u, v = p, a
    r, s = 0, 1
    k = 0
    while v > 0:
        if u % 2 == 0:
            u //= 2
            s *= 2
        elif v % 2 == 0:
            v //= 2
            r *= 2
        elif u > v:
            u = (u - v) // 2
            r += s
            s *= 2
        else:
            v = (v - u) // 2
            s += r
            r *= 2
        k += 1
    if u != 1:
        raise ValueError(f"operand {a} is not invertible modulo {p}")
    if r >= p:
        r -= p
    return p - r, k


def kaliski_montgomery_inverse(a: int, p: int, radix_bits: int) -> Tuple[int, int]:
    """Montgomery inverse ``a^-1 * 2^radix_bits mod p`` plus the phase-1 count.

    Given an operand in the ordinary domain this produces the inverse in the
    Montgomery domain of radix ``R = 2^radix_bits`` — the form the OPF library
    needs right before the final conversion to affine coordinates.
    """
    r, k = kaliski_almost_inverse(a, p)
    # Phase 2: multiply by 2 until the exponent reaches 2 * radix_bits ...
    target = 2 * radix_bits
    if k > target:
        raise ValueError(
            f"phase-1 exponent {k} exceeds target {target}; "
            f"radix too small for modulus"
        )
    # r = a^-1 * 2^k; we want a^-1 * 2^radix = r * 2^(radix - k) * ... using
    # Montgomery halving/doubling steps.  Doubling (radix - k + radix) times
    # then one Montgomery reduction by R is equivalent to multiplying by
    # 2^(target - k) / 2^radix = 2^(radix - k).
    for _ in range(target - k):
        r = r * 2
        if r >= p:
            r -= p
    inv_r = pow(2, radix_bits, p)
    result = (r * pow(inv_r, -1, p)) % p
    expected = (pow(a, -1, p) * pow(2, radix_bits, p)) % p
    if result != expected:
        raise AssertionError("Montgomery inverse correction failed")
    return result, k


def fermat_inverse(a: int, p: int,
                   mul: Callable[[int, int], int] = None) -> int:
    """Constant-time inverse via ``a^(p-2) mod p`` (square-and-multiply).

    If *mul* is given it is used for every multiplication/squaring so callers
    can route the exponentiation through an instrumented field (making the
    M/S counts visible to the cycle model); otherwise plain integers are used.
    """
    a %= p
    if a == 0:
        raise ZeroDivisionError("zero has no modular inverse")
    if mul is None:
        return pow(a, p - 2, p)
    result = None
    exponent = p - 2
    for bit in bin(exponent)[2:]:
        if result is not None:
            result = mul(result, result)
        if bit == "1":
            result = a if result is None else mul(result, a)
    if result is None:
        raise AssertionError("exponent p - 2 must be positive")
    return result


def tonelli_shanks_sqrt(a: int, p: int) -> int:
    """A square root of ``a`` modulo an odd prime ``p``.

    Used by the parameter generator (Cornacchia decomposition, point
    sampling).  Raises :class:`ValueError` when ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if pow(a, (p - 1) // 2, p) != 1:
        raise ValueError(f"{a} is a quadratic non-residue modulo {p}")
    if p % 4 == 3:
        root = pow(a, (p + 1) // 4, p)
    else:
        # General Tonelli-Shanks.
        q, s = p - 1, 0
        while q % 2 == 0:
            q //= 2
            s += 1
        z = 2
        while pow(z, (p - 1) // 2, p) != p - 1:
            z += 1
        m, c, t = s, pow(z, q, p), pow(a, q, p)
        root = pow(a, (q + 1) // 2, p)
        while t != 1:
            i, t2 = 0, t
            while t2 != 1:
                t2 = t2 * t2 % p
                i += 1
                if i == m:
                    raise AssertionError("Tonelli-Shanks failed to converge")
            b = pow(c, 1 << (m - i - 1), p)
            m, c = i, b * b % p
            t = t * c % p
            root = root * b % p
    if root * root % p != a:
        raise AssertionError("square-root postcondition failed")
    return root
