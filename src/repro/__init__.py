"""Reproduction of "An 8-bit AVR-Based Elliptic Curve Cryptographic RISC
Processor for the Internet of Things" (Wenger & Großschädl).

Layers, bottom-up:

* :mod:`repro.avr` — JAAVR, an ATmega128-compatible instruction-set
  simulator with CA/FAST timing modes and the (32 x 4)-bit MAC extension
  (ISE mode), plus an assembler/disassembler.
* :mod:`repro.mpa` — word-level multi-precision arithmetic (carry chains,
  Comba, hybrid, SOS/CIOS/FIPS Montgomery, OPF-optimised FIPS).
* :mod:`repro.field` — prime fields: generic, Optimal Prime Fields
  (Montgomery domain, incomplete reduction) and secp160r1.
* :mod:`repro.curves` — Weierstraß, twisted Edwards, Montgomery and GLV
  curves; birational maps; exact j = 0 point counting; the frozen 160-bit
  parameter suite.
* :mod:`repro.scalarmult` — NAF/DAAA double-and-add, the x-only Montgomery
  ladder, the co-Z ladder, and GLV-with-JSF.
* :mod:`repro.kernels` — generated AVR assembly for the OPF field
  operations, executed on the simulator (Table I).
* :mod:`repro.model` — cycle/area/power/SARP models and the paper's data.
* :mod:`repro.protocols` — ECDH, ECDSA, Schnorr.
* :mod:`repro.analysis` — regeneration of every table with paper-vs-
  measured deltas.

Quickstart::

    from repro.curves.params import make_montgomery
    from repro.protocols import XOnlyEcdh

    suite = make_montgomery()
    ecdh = XOnlyEcdh(suite.curve, suite.base)
    alice = ecdh.generate_keypair()
    bob = ecdh.generate_keypair()
    assert (ecdh.shared_secret(alice, bob.public_x)
            == ecdh.shared_secret(bob, alice.public_x))
"""

__version__ = "1.0.0"

from .avr import AvrCore, Mode, assemble
from .curves.params import (
    CurveSuite,
    make_edwards,
    make_glv,
    make_montgomery,
    make_secp160r1,
    make_suite,
    make_weierstrass,
)
from .field import GenericPrimeField, OptimalPrimeField, Secp160r1Field

__all__ = [
    "AvrCore",
    "CurveSuite",
    "GenericPrimeField",
    "Mode",
    "OptimalPrimeField",
    "Secp160r1Field",
    "__version__",
    "assemble",
    "make_edwards",
    "make_glv",
    "make_montgomery",
    "make_secp160r1",
    "make_suite",
    "make_weierstrass",
]
