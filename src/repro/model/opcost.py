"""Pricing point multiplications: field-op counts × per-op cycle costs.

This is the paper's own accounting ("5.3 M + 4 S per bit" etc.) made
executable: a scalar multiplication runs on the *instrumented* field, its
exact operation counts are captured, and the cycle estimate is the weighted
sum under a :class:`~repro.model.cycles.FieldOpCosts`.

``measure_point_mult`` runs one (curve, method) cell of Table II/III on a
fresh suite and returns both the counts and the cycle estimates for every
mode, so the benchmark harness just formats rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..avr.timing import Mode
from ..curves.params import CurveSuite, make_suite
from ..field.counters import FieldOpCounter
from ..scalarmult import (
    adapter_for,
    coz_ladder_xy,
    glv_scalar_mult,
    montgomery_ladder_x,
    scalar_mult_daaa,
    scalar_mult_naf,
)
from .cycles import FieldOpCosts, costs_for

#: Table II methods per curve: high-speed and constant-round selections.
HIGHSPEED_METHODS: Dict[str, str] = {
    "secp160r1": "naf",
    "weierstrass": "naf",
    "edwards": "naf",
    "montgomery": "ladder",
    "glv": "glv-jsf",
}

CONSTANT_METHODS: Dict[str, str] = {
    "secp160r1": "coz-ladder",
    "weierstrass": "coz-ladder",
    "edwards": "daaa",
    "montgomery": "ladder",
    "glv": "coz-ladder",
}


def price(counter: FieldOpCounter, costs: FieldOpCosts) -> float:
    """Cycle estimate for a batch of counted field operations."""
    return (
        counter.add * costs.add
        + counter.sub * costs.sub
        + counter.neg * costs.neg
        + counter.mul * costs.mul
        + counter.sqr * costs.sqr
        + counter.mul_small * costs.mul_small
        + counter.inv * costs.inv
    )


@dataclass
class PointMultMeasurement:
    """One (curve, method) cell: counts plus per-mode cycle estimates."""

    curve: str
    method: str
    scalar: int
    counts: FieldOpCounter
    #: mode name -> estimated cycles (under the chosen cost source)
    cycles: Dict[str, float]
    cost_source: str

    @property
    def kcycles(self) -> Dict[str, float]:
        return {mode: cyc / 1000.0 for mode, cyc in self.cycles.items()}


def run_method(suite: CurveSuite, method: str, k: int) -> None:
    """Execute one scalar multiplication; counts accumulate in the field."""
    curve, base = suite.curve, suite.base
    if method == "naf":
        scalar_mult_naf(adapter_for(curve, base), k)
    elif method == "daaa":
        scalar_mult_daaa(adapter_for(curve, base), k, bits=suite.scalar_bits)
    elif method == "ladder":
        xz = montgomery_ladder_x(curve, k, base, bits=suite.scalar_bits)
        if not xz.is_infinity():
            curve.x_affine(xz)  # final inversion, as in the paper
    elif method == "coz-ladder":
        # The register-light (X, Y)-only variant, as in the paper.
        coz_ladder_xy(curve, k, base)
    elif method == "glv-jsf":
        glv_scalar_mult(curve, k, base)
    else:
        raise ValueError(f"unknown method {method!r}")


def measure_point_mult(curve_key: str, method: str,
                       scalar: Optional[int] = None,
                       source: str = "paper",
                       seed: int = 0xEC) -> PointMultMeasurement:
    """Run one scalar multiplication and price it for all three modes.

    A fresh suite is constructed so the counters start at zero; the scalar
    defaults to a random 160-bit value with the top bit set (a full-length
    scalar, as the constant-round methods assume).
    """
    if scalar is None:
        rng = random.Random(seed)
        scalar = rng.getrandbits(160) | (1 << 159)
        if curve_key == "glv":
            scalar %= make_suite("glv").order
    suite = make_suite(curve_key)
    profile = suite.field.cost_profile
    if profile == "generic":
        profile = "opf"
    run_method(suite, method, scalar)
    counts = suite.field.counter.copy()
    cycles = {
        mode.value: price(counts, costs_for(mode, source, profile))
        for mode in (Mode.CA, Mode.FAST, Mode.ISE)
    }
    return PointMultMeasurement(
        curve=curve_key, method=method, scalar=scalar,
        counts=counts, cycles=cycles, cost_source=source,
    )
