"""Silicon-area model (gate equivalents), calibrated against Table III.

We cannot synthesize a 130 nm UMC netlist in Python, so the model is a
decomposition with coefficients fitted to the paper's own synthesis data:

    total_GE = core_GE(mode) + rom_coeff * ROM_bytes + ram_GE(RAM_bytes)

* ``core_GE`` comes straight from Table I (6,166 / 6,800 / 8,344 GE).
* ``rom_coeff`` is the least-squares slope over the eight Table III ROM
  entries (the paper's program memories are synthesized from logic cells,
  so GE scales essentially linearly with bytes, ≈ 1.41 GE/byte).
* RAM macros have a size-dependent overhead, so ``ram_GE`` is an affine fit
  over the four RAM entries.

The fit quality (reported by :func:`calibration_report` and asserted by the
tests) is within a few percent on every Table III row, which is what makes
the SARP reproduction meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..avr.timing import Mode
from .paper_data import RAM_BYTES, TABLE1_JAAVR_AREA_GE, TABLE3


def _fit_proportional(points: List[Tuple[float, float]]) -> float:
    """Least-squares slope through the origin."""
    num = sum(x * y for x, y in points)
    den = sum(x * x for x, y in points)
    return num / den


def _fit_affine(points: List[Tuple[float, float]]) -> Tuple[float, float]:
    """Ordinary least-squares (intercept, slope)."""
    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    slope = (n * sxy - sx * sy) / (n * sxx - sx * sx)
    intercept = (sy - slope * sx) / n
    return intercept, slope


def _rom_points() -> List[Tuple[float, float]]:
    return [(row.rom_bytes, row.rom_ge) for row in TABLE3]


def _ram_points() -> List[Tuple[float, float]]:
    return [(RAM_BYTES[row.curve], row.ram_ge) for row in TABLE3
            if row.mode == "CA"]


@dataclass(frozen=True)
class AreaModel:
    """GE estimator with the fitted coefficients exposed for inspection."""

    rom_ge_per_byte: float
    ram_intercept_ge: float
    ram_ge_per_byte: float

    @classmethod
    def calibrated(cls) -> "AreaModel":
        rom = _fit_proportional(_rom_points())
        ram_b, ram_m = _fit_affine(_ram_points())
        return cls(rom_ge_per_byte=rom, ram_intercept_ge=ram_b,
                   ram_ge_per_byte=ram_m)

    def core_ge(self, mode: Mode) -> int:
        return TABLE1_JAAVR_AREA_GE[mode.value]

    def rom_ge(self, rom_bytes: int) -> float:
        return self.rom_ge_per_byte * rom_bytes

    def ram_ge(self, ram_bytes: int) -> float:
        return self.ram_intercept_ge + self.ram_ge_per_byte * ram_bytes

    def total_ge(self, mode: Mode, rom_bytes: int, ram_bytes: int) -> float:
        return (self.core_ge(mode) + self.rom_ge(rom_bytes)
                + self.ram_ge(ram_bytes))

    def estimate_row(self, curve: str, mode: Mode,
                     rom_bytes: int) -> Dict[str, float]:
        """Full GE decomposition for one Table III configuration."""
        ram_bytes = RAM_BYTES[curve]
        return {
            "jaavr_ge": float(self.core_ge(mode)),
            "rom_ge": self.rom_ge(rom_bytes),
            "ram_ge": self.ram_ge(ram_bytes),
            "total_ge": self.total_ge(mode, rom_bytes, ram_bytes),
        }


def calibration_report() -> List[Dict[str, float]]:
    """Model-vs-paper residuals over every Table III row."""
    model = AreaModel.calibrated()
    out = []
    for row in TABLE3:
        est = model.estimate_row(row.curve, Mode(row.mode), row.rom_bytes)
        out.append({
            "curve": row.curve,
            "mode": row.mode,
            "paper_total_ge": row.total_ge,
            "model_total_ge": est["total_ge"],
            "error_pct": 100.0 * (est["total_ge"] / row.total_ge - 1.0),
        })
    return out
