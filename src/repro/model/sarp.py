"""The Scaled Area-Runtime Product (SARP) of Table III.

SARP normalises the area-time product to the Weierstraß/CA configuration:

    SARP(c, m) = (A_ref * T_ref) / (A(c, m) * T(c, m))

Higher is better.  The paper's qualitative findings — GLV wins SARP in CA
and FAST mode, Edwards wins (narrowly, 5.27 vs 5.06-5.13) in ISE mode — are
asserted by the Table III benchmark using this function.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .paper_data import TABLE3, table3_row

#: Reference configuration for the scaling.
REFERENCE = ("weierstrass", "CA")


def sarp(area_ge: float, cycles: float,
         ref_area_ge: float, ref_cycles: float) -> float:
    """Scaled area-runtime product (higher = better area-time product)."""
    if area_ge <= 0 or cycles <= 0:
        raise ValueError("area and runtime must be positive")
    return (ref_area_ge * ref_cycles) / (area_ge * cycles)


def reference_product() -> Tuple[float, float]:
    """(area, cycles) of the paper's reference row (Weierstraß, CA)."""
    row = table3_row(*REFERENCE)
    if row is None:  # pragma: no cover - static data
        raise AssertionError("reference row missing from TABLE3")
    return float(row.total_ge), float(row.point_mult_cycles)


def sarp_table(measurements: Dict[Tuple[str, str], Tuple[float, float]],
               ) -> Dict[Tuple[str, str], float]:
    """SARP for a set of (curve, mode) -> (area_ge, cycles) measurements.

    The reference is taken from the measurement set itself (so a fully
    self-measured table normalises against its own Weierstraß/CA row, just
    as the paper normalises against its own).
    """
    try:
        ref_area, ref_cycles = measurements[REFERENCE]
    except KeyError:
        raise KeyError(
            "the measurement set must include the reference "
            f"configuration {REFERENCE}"
        ) from None
    return {
        key: sarp(area, cycles, ref_area, ref_cycles)
        for key, (area, cycles) in measurements.items()
    }


def paper_sarp_check() -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Recompute SARP from the paper's own area/cycle columns.

    Returns (recomputed, printed) pairs — the benches show these agree to
    the printed precision, validating our reading of the metric.
    """
    ref_area, ref_cycles = reference_product()
    out = {}
    for row in TABLE3:
        value = sarp(row.total_ge, row.point_mult_cycles,
                     ref_area, ref_cycles)
        out[(row.curve, row.mode)] = (value, row.sarp)
    return out
