"""Every number the paper reports, as structured data.

These constants serve two purposes: (1) the benchmark harnesses print
paper-vs-measured columns from them, and (2) the area/power models are
calibrated against Table III (we cannot synthesize a 130 nm UMC netlist in
Python; DESIGN.md documents this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# Table I: OPF field-operation runtimes (cycles) and JAAVR core area (GE)
# ---------------------------------------------------------------------------

TABLE1_RUNTIMES: Dict[str, Dict[str, int]] = {
    "addition": {"CA": 240, "FAST": 145, "ISE": 145},
    "subtraction": {"CA": 240, "FAST": 145, "ISE": 145},
    "multiplication": {"CA": 3314, "FAST": 2537, "ISE": 552},
    "inversion": {"CA": 189_000, "FAST": 128_000, "ISE": 124_000},
}

TABLE1_JAAVR_AREA_GE: Dict[str, int] = {"CA": 6166, "FAST": 6800, "ISE": 8344}

# ---------------------------------------------------------------------------
# Table II: point-multiplication times on a standard ATmega128 (kCycles)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    curve: str
    highspeed_method: str
    highspeed_kcycles: float
    constant_method: str
    constant_kcycles: float


TABLE2: Tuple[Table2Row, ...] = (
    Table2Row("secp160r1", "NAF", 7136, "Mon", 8722),
    Table2Row("weierstrass", "NAF", 6983, "Mon", 8824),
    Table2Row("edwards", "NAF", 5597, "DAAA", 8251),
    Table2Row("montgomery", "Mon", 5545, "Mon", 5545),
    Table2Row("glv", "End, JSF", 3930, "Mon", 8132),
)

# ---------------------------------------------------------------------------
# Table III: synthesis results per curve and mode
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    curve: str
    mode: str
    point_mult_cycles: int
    rom_bytes: int
    jaavr_ge: int
    rom_ge: int
    ram_ge: int
    total_ge: int
    jaavr_uw: float
    rom_uw: float
    total_uw: float
    sarp: float


TABLE3: Tuple[Table3Row, ...] = (
    Table3Row("weierstrass", "CA", 6_982_629, 6224, 6166, 9091, 4485,
              19742, 18.8, 109.5, 138.8, 1.00),
    Table3Row("edwards", "CA", 5_596_860, 6022, 6166, 8694, 4712,
              19572, 18.0, 81.9, 110.1, 1.26),
    Table3Row("montgomery", "CA", 5_545_078, 6824, 6167, 9542, 4359,
              20068, 17.9, 60.0, 88.9, 1.24),
    Table3Row("glv", "CA", 3_930_256, 8638, 6166, 12413, 6450,
              25029, 16.8, 87.1, 115.7, 1.40),
    Table3Row("weierstrass", "FAST", 5_254_706, 6224, 6800, 9071, 4485,
              20355, 18.6, 60.2, 89.7, 1.29),
    Table3Row("edwards", "FAST", 4_214_289, 6022, 6802, 8695, 4712,
              20208, 19.4, 50.1, 80.9, 1.62),
    Table3Row("montgomery", "FAST", 4_165_405, 6824, 6803, 9533, 4359,
              20695, 18.3, 15.4, 45.4, 1.60),
    Table3Row("glv", "FAST", 2_939_929, 8638, 6802, 12413, 6450,
              25665, 19.5, 68.0, 99.9, 1.83),
    Table3Row("weierstrass", "ISE", 1_542_981, 6290, 8344, 8718, 4485,
              21546, 18.7, 58.4, 88.5, 4.15),
    Table3Row("edwards", "ISE", 1_230_663, 6128, 8345, 8562, 4359,
              21266, 20.7, 67.3, 99.8, 5.27),
    Table3Row("montgomery", "ISE", 1_299_598, 5752, 8343, 7926, 4712,
              20980, 21.8, 14.4, 49.5, 5.06),
    Table3Row("glv", "ISE", 1_001_302, 8640, 8330, 12078, 6450,
              26858, 19.5, 78.5, 111.1, 5.13),
)

#: Data-memory (RAM) requirements per curve, bytes (Section V-C).
RAM_BYTES: Dict[str, int] = {
    "weierstrass": 528,
    "montgomery": 505,
    "edwards": 567,
    "glv": 865,
}

# ---------------------------------------------------------------------------
# Table IV: related hardware implementations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    reference: str
    field_type: str
    field_bits: int
    runtime_kcycles: int
    area_ge: int


TABLE4_RELATED: Tuple[Table4Row, ...] = (
    Table4Row("Koschuch et al. [15]", "GF(2^m)", 163, 1190, 29491),
    Table4Row("Fuerbass et al. [5]", "GF(p)", 160, 362, 19000),
    Table4Row("Hein et al. [11]", "GF(2^m)", 163, 296, 13250),
    Table4Row("Lee et al. [16]", "GF(2^m)", 163, 302, 12506),
    Table4Row("Wenger et al. [25]", "GF(p)", 192, 1377, 11686),
)

TABLE4_OUR_WORK = Table4Row("Our Work (Mon)", "GF(p)", 160, 1300, 20980)

# ---------------------------------------------------------------------------
# Table V: related ATmega128 software implementations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table5Row:
    reference: str
    curve: str
    kcycles: float


TABLE5_RELATED: Tuple[Table5Row, ...] = (
    Table5Row("Wang et al. [23]", "secp160r1", 15060),
    Table5Row("Liu et al. (TinyECC) [17]", "secp160r1", 9953),
    Table5Row("Ugus et al. [22]", "Weierstrass, GM prime", 9376),
    Table5Row("Szczechowiak et al. [21]", "secp160r1", 7594),
    Table5Row("Gura et al. [9]", "secp160r1", 6480),
    Table5Row("Grossschaedl et al. [8]", "GLV, OPF", 5480),
)

TABLE5_OUR_ROWS: Tuple[Table5Row, ...] = (
    Table5Row("Our Work (Montgomery, OPF)", "Montgomery, OPF", 5545),
    Table5Row("Our Work (GLV, OPF)", "GLV, OPF", 3930),
)

# ---------------------------------------------------------------------------
# Section IV-A: the 552-cycle ISE multiplication's instruction mix
# ---------------------------------------------------------------------------

ISE_MUL_INSTRUCTION_MIX: Dict[str, int] = {
    "loads": 204,          # LD + LDD, of which ...
    "mac_triggering_loads": 100,
    "stores": 40,
    "movw": 83,
    "swap": 40,
    "nop": 31,
}

#: Further paper facts used by benches and tests.
INNER_LOOP_CYCLES = 101           # FIPS inner-loop iteration (Section III-B)
MUL_NO_REDUCTION_CYCLES = 2840    # 160x160 product without reduction
ENERGY_RANGE_UJ = (455.0, 969.0)  # CA-mode energy per point mult (GLV..Weier)
CLOCK_MHZ = 20                    # desired operating frequency
MICAZ_CLOCK_MHZ = 7.3728          # footnote 1


def table3_row(curve: str, mode: str) -> Optional[Table3Row]:
    """Lookup helper used by the models and benches."""
    for row in TABLE3:
        if row.curve == curve and row.mode == mode:
            return row
    return None
