"""A grounded cycle model for the Montgomery (Kaliski) inversion.

Table I reports 189k/128k/124k cycles for inversion but the paper gives no
algorithmic breakdown.  This model *traces* the Kaliski phase-1 binary loop
on real operands — every iteration performs a parity test, one multi-word
halving, and one or more multi-word additions/subtractions — and prices each
primitive with AVR byte-level costs over **fixed-length** operands (20 bytes
for u/v, 24 bytes for the r/s bookkeeping values, which grow to ~2p), the
way a straightforward unoptimised AVR loop would process them:

* halving an n-byte value in SRAM: n * (LD + ROR + ST),
* adding/subtracting n-byte values: n * (2 LD + ADC/SBC + ST),
* the loop frame (parity tests, comparison, branches, pointers).

The result lands at roughly 60% of the paper's Table I figure — consistent
with the paper's implementation carrying extra per-iteration overhead (e.g.
a full multi-byte magnitude comparison per round) that a trace model cannot
see.  The model is therefore used for two things the scaled paper value
cannot provide: the *operand-dependence* of the inversion time (the timing
leak the paper acknowledges for its projective-to-affine conversion) and
sanity-checking that the paper's figure implies a binary-EEA-style
algorithm (a Fermat inversion would cost ~740k cycles = 222 multiplications
at 3,314 cycles; the reported 189k excludes it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import List, Optional, Tuple

from ..avr.timing import Mode

#: Byte-primitive costs per mode: (load, store, alu) cycles.
_BYTE_COSTS = {
    Mode.CA: (2, 2, 1),
    Mode.FAST: (1, 1, 1),
    Mode.ISE: (1, 1, 1),   # the MAC unit does not accelerate inversion
}

#: Fixed operand lengths a simple AVR loop processes every iteration.
UV_BYTES = 20
RS_BYTES = 24

#: Per-iteration loop frame: parity test, the u-vs-v magnitude comparison
#: (multi-byte CP/CPC walk, ~20 bytes x LD+CPC on average half the value),
#: branches and pointer bookkeeping.
LOOP_FRAME_CYCLES = 70

#: One-time costs: phase-2 exponent correction, calls, memory setup.
FIXED_OVERHEAD_CYCLES = 1500


@dataclass(frozen=True)
class InversionTrace:
    """Operation counts of one Kaliski phase-1 run."""

    iterations: int
    even_steps: int       # u or v even: one halving + one r/s doubling
    odd_steps: int        # both odd: subtract, halve, r/s add + doubling
    phase2_doublings: int


def trace_kaliski(a: int, p: int) -> InversionTrace:
    """Run Kaliski phase 1, recording the step mix."""
    a %= p
    if a == 0:
        raise ZeroDivisionError("zero has no inverse")
    u, v = p, a
    r, s = 0, 1
    even_steps = odd_steps = 0
    while v > 0:
        if u % 2 == 0:
            u //= 2
            s *= 2
            even_steps += 1
        elif v % 2 == 0:
            v //= 2
            r *= 2
            even_steps += 1
        elif u > v:
            u = (u - v) // 2
            r += s
            s *= 2
            odd_steps += 1
        else:
            v = (v - u) // 2
            s += r
            r *= 2
            odd_steps += 1
    iterations = even_steps + odd_steps
    phase2 = max(0, 2 * p.bit_length() - iterations)
    return InversionTrace(
        iterations=iterations,
        even_steps=even_steps,
        odd_steps=odd_steps,
        phase2_doublings=phase2,
    )


def price_trace(trace: InversionTrace, mode: Mode) -> float:
    """Cycle estimate for one traced inversion (fixed-length loop body)."""
    load, store, alu = _BYTE_COSTS[mode]
    shift_uv = UV_BYTES * (load + store + alu)
    shift_rs = RS_BYTES * (load + store + alu)
    addsub_uv = UV_BYTES * (2 * load + store + alu)
    addsub_rs = RS_BYTES * (2 * load + store + alu)
    even_cost = shift_uv + shift_rs
    odd_cost = addsub_uv + shift_uv + addsub_rs + shift_rs
    frame = trace.iterations * LOOP_FRAME_CYCLES
    phase2 = trace.phase2_doublings * (
        UV_BYTES * (load + store + alu) + 10
    )
    return (trace.even_steps * even_cost + trace.odd_steps * odd_cost
            + frame + phase2 + FIXED_OVERHEAD_CYCLES)


def estimate_inversion_cycles(p: int, mode: Mode, samples: int = 16,
                              rng: Optional[random.Random] = None) -> float:
    """Average inversion cost over random operands (the usable figure)."""
    rng = rng or random.Random(0x1273)
    estimates = [
        price_trace(trace_kaliski(rng.randrange(1, p), p), mode)
        for _ in range(samples)
    ]
    return mean(estimates)


def inversion_cycle_spread(p: int, mode: Mode, samples: int = 32,
                           rng: Optional[random.Random] = None,
                           ) -> Tuple[float, float, List[float]]:
    """(min, max, all) estimated cycles — quantifies the timing leak the
    paper acknowledges in its projective-to-affine conversion."""
    rng = rng or random.Random(0xF00D)
    values = [
        price_trace(trace_kaliski(rng.randrange(1, p), p), mode)
        for _ in range(samples)
    ]
    return min(values), max(values), values


def fermat_inversion_cycles(mode: Mode, mul_cycles: float,
                            bits: int = 160) -> float:
    """What a constant-time Fermat inversion would cost: ~n squarings plus
    ~n/2 multiplications through the field multiplier."""
    squarings = bits - 1
    multiplications = bits // 2 - 1
    return (squarings + multiplications) * mul_cycles
