"""Per-field-operation cycle costs for the three processor modes.

Two cost sources:

* ``paper`` — Table I of the paper (240/145-cycle add, 3314/2537/552-cycle
  multiplication, 189k/128k/124k-cycle inversion).
* ``measured`` — our assembly kernels executed on the JAAVR simulator
  (:mod:`repro.kernels`); inversion, which has no kernel, is the paper value
  scaled by the measured-vs-paper multiplication ratio.

The secp160r1 profile has no Table I column of its own; the paper's Table II
shows its NAF point multiplication running 2.2% above the OPF Weierstraß
curve, so its multiplication is priced at that documented ratio (its
generalized-Mersenne reduction is adds-only but the hybrid product is the
same size).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from ..avr.timing import Mode
from ..kernels.addsub_kernel import generate_modadd, generate_modsub
from ..kernels.layout import OpfConstants
from ..kernels.mul_kernels import generate_opf_mul_comba, generate_opf_mul_mac
from ..kernels.runner import KernelRunner
from ..kernels.secp_kernel import generate_secp160r1_mul
from .paper_data import TABLE1_RUNTIMES

#: Ratio of a small-constant multiplication to a full multiplication
#: (paper Section II-B: "some 0.25-0.3 M"; we use the midpoint).
MUL_SMALL_RATIO = 0.27

#: secp160r1 multiplication cost relative to the OPF multiplication
#: (derived from the paper's Table II secp160r1-vs-Weierstraß gap).
SECP160R1_MUL_RATIO = 7136.0 / 6983.0


@dataclass(frozen=True)
class FieldOpCosts:
    """Cycle costs of each counted field operation."""

    add: float
    sub: float
    neg: float
    mul: float
    sqr: float
    mul_small: float
    inv: float
    source: str = "paper"
    mode: str = "CA"

    def scaled(self, factor: float, source: str) -> "FieldOpCosts":
        return FieldOpCosts(
            add=self.add, sub=self.sub, neg=self.neg,
            mul=self.mul * factor, sqr=self.sqr * factor,
            mul_small=self.mul_small * factor, inv=self.inv,
            source=source, mode=self.mode,
        )


def paper_costs(mode: Mode, profile: str = "opf") -> FieldOpCosts:
    """Table I costs (squaring priced as a multiplication, as in the paper's
    library, which has no dedicated squaring routine)."""
    key = mode.value
    add = float(TABLE1_RUNTIMES["addition"][key])
    mul = float(TABLE1_RUNTIMES["multiplication"][key])
    inv = float(TABLE1_RUNTIMES["inversion"][key])
    costs = FieldOpCosts(
        add=add, sub=add, neg=add, mul=mul, sqr=mul,
        mul_small=MUL_SMALL_RATIO * mul, inv=inv,
        source="paper", mode=key,
    )
    if profile == "secp160r1":
        return costs.scaled(SECP160R1_MUL_RATIO, "paper/secp160r1")
    if profile in ("opf", "generic"):
        return costs
    raise ValueError(f"unknown cost profile {profile!r}")


@lru_cache(maxsize=None)
def _measured_table(u: int, k: int) -> Dict[str, Dict[str, int]]:
    """Run the kernels once per (u, k) and cache their cycle counts."""
    constants = OpfConstants(u=u, k=k)
    sample_a = (0xA5A5 << 128) | 0x1357_9BDF
    sample_b = (0x5A5A << 120) | 0x2468_ACE0
    out: Dict[str, Dict[str, int]] = {"addition": {}, "subtraction": {},
                                      "multiplication": {},
                                      "secp_multiplication": {}}
    for mode in (Mode.CA, Mode.FAST):
        add = KernelRunner(generate_modadd(constants), mode=mode)
        sub = KernelRunner(generate_modsub(constants), mode=mode)
        mul = KernelRunner(generate_opf_mul_comba(constants), mode=mode)
        secp = KernelRunner(generate_secp160r1_mul(), mode=mode)
        out["addition"][mode.value] = add.run(sample_a, sample_b)[1]
        out["subtraction"][mode.value] = sub.run(sample_a, sample_b)[1]
        out["multiplication"][mode.value] = mul.run(sample_a, sample_b)[1]
        out["secp_multiplication"][mode.value] = secp.run(sample_a,
                                                          sample_b)[1]
    mac = KernelRunner(generate_opf_mul_mac(constants), mode=Mode.ISE)
    out["addition"]["ISE"] = out["addition"]["FAST"]
    out["subtraction"]["ISE"] = out["subtraction"]["FAST"]
    out["multiplication"]["ISE"] = mac.run(sample_a, sample_b)[1]
    # secp160r1's generalized-Mersenne reduction gains nothing from the MAC
    # unit's reduction trick, but the hybrid product does; model its ISE
    # multiplication as the OPF MAC product plus the fold-reduction excess.
    fold_excess = (out["secp_multiplication"]["FAST"]
                   - out["multiplication"]["FAST"])
    out["secp_multiplication"]["ISE"] = (
        out["multiplication"]["ISE"] + max(0, fold_excess)
    )
    return out


def measured_costs(mode: Mode, profile: str = "opf",
                   u: int = 65356, k: int = 144) -> FieldOpCosts:
    """Costs measured by running our kernels on the simulator.

    Inversion (no kernel) is the paper figure scaled by the measured/paper
    multiplication ratio for the mode.
    """
    table = _measured_table(u, k)
    key = mode.value
    add = float(table["addition"][key])
    mul = float(table["multiplication"][key])
    paper_mul = float(TABLE1_RUNTIMES["multiplication"][key])
    inv = float(TABLE1_RUNTIMES["inversion"][key]) * (mul / paper_mul)
    if profile == "secp160r1":
        mul = float(table["secp_multiplication"][key])
        inv = float(TABLE1_RUNTIMES["inversion"][key]) * (mul / paper_mul)
        return FieldOpCosts(
            add=add, sub=float(table["subtraction"][key]), neg=add,
            mul=mul, sqr=mul, mul_small=MUL_SMALL_RATIO * mul, inv=inv,
            source="measured/secp160r1", mode=key,
        )
    return FieldOpCosts(
        add=add, sub=float(table["subtraction"][key]), neg=add,
        mul=mul, sqr=mul, mul_small=MUL_SMALL_RATIO * mul, inv=inv,
        source="measured", mode=key,
    )


def costs_for(mode: Mode, source: str = "paper",
              profile: str = "opf") -> FieldOpCosts:
    """Dispatch on the cost source ('paper' or 'measured')."""
    if source == "paper":
        return paper_costs(mode, profile)
    if source == "measured":
        return measured_costs(mode, profile)
    raise ValueError(f"unknown cost source {source!r}")
