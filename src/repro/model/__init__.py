"""Cycle, area, power and SARP models plus the paper's published data.

* :mod:`~repro.model.paper_data` — every table of the paper as data.
* :mod:`~repro.model.cycles` — per-field-op costs (paper Table I or
  measured on our simulator kernels).
* :mod:`~repro.model.opcost` — instrumented scalar multiplications priced
  into cycle estimates (Tables II and III).
* :mod:`~repro.model.area` / :mod:`~repro.model.power` — GE and µW models
  calibrated against Table III.
* :mod:`~repro.model.sarp` — the scaled area-runtime product.
"""

from .area import AreaModel, calibration_report
from .cycles import (
    MUL_SMALL_RATIO,
    FieldOpCosts,
    costs_for,
    measured_costs,
    paper_costs,
)
from .inversion_model import (
    InversionTrace,
    estimate_inversion_cycles,
    fermat_inversion_cycles,
    inversion_cycle_spread,
    price_trace,
    trace_kaliski,
)
from .opcost import (
    CONSTANT_METHODS,
    HIGHSPEED_METHODS,
    PointMultMeasurement,
    measure_point_mult,
    price,
    run_method,
)
from .power import PowerEstimate, PowerModel, energy_uj, paper_energy_range
from .sarp import REFERENCE, paper_sarp_check, reference_product, sarp, sarp_table

__all__ = [
    "InversionTrace",
    "estimate_inversion_cycles",
    "fermat_inversion_cycles",
    "inversion_cycle_spread",
    "price_trace",
    "trace_kaliski",
    "AreaModel",
    "CONSTANT_METHODS",
    "FieldOpCosts",
    "HIGHSPEED_METHODS",
    "MUL_SMALL_RATIO",
    "PointMultMeasurement",
    "PowerEstimate",
    "PowerModel",
    "REFERENCE",
    "calibration_report",
    "costs_for",
    "energy_uj",
    "measure_point_mult",
    "measured_costs",
    "paper_costs",
    "paper_energy_range",
    "paper_sarp_check",
    "price",
    "reference_product",
    "run_method",
    "sarp",
    "sarp_table",
]
