"""Power and energy model (placed-and-routed simulation substitutes).

The paper reports simulated power at 1 MHz for the CPU (17-22 µW), the RAM
(1.2-5.4 µW) and the synthesized program memory (up to 110 µW, dominated by
access activity).  Those numbers come from gate-level simulation we cannot
rerun, so:

* For the twelve Table III configurations the model returns the paper's own
  values (calibration data).
* For novel configurations it falls back to a regression: CPU power is the
  per-mode mean, ROM power scales with ROM bytes (the activity-dependent
  residual is documented as the model's uncertainty).

The *energy* computation on top is exact arithmetic, and reproduces the
paper's 455-969 µJ range: E [µJ] = total µW × cycles / f(1 MHz) / 10^6.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, Optional, Tuple

from ..avr.timing import Mode
from .paper_data import TABLE3, table3_row


@dataclass(frozen=True)
class PowerEstimate:
    cpu_uw: float
    rom_uw: float
    total_uw: float
    source: str  # 'paper' or 'regression'


class PowerModel:
    """Per-configuration power at 1 MHz."""

    def __init__(self):
        self._cpu_mean: Dict[str, float] = {}
        rom_points = []
        for mode in ("CA", "FAST", "ISE"):
            rows = [r for r in TABLE3 if r.mode == mode]
            self._cpu_mean[mode] = mean(r.jaavr_uw for r in rows)
        for r in TABLE3:
            rom_points.append((r.rom_bytes, r.rom_uw))
        num = sum(x * y for x, y in rom_points)
        den = sum(x * x for x, _ in rom_points)
        self._rom_uw_per_byte = num / den

    def estimate(self, curve: str, mode: Mode,
                 rom_bytes: Optional[int] = None) -> PowerEstimate:
        row = table3_row(curve, mode.value)
        if row is not None and (rom_bytes is None
                                or rom_bytes == row.rom_bytes):
            return PowerEstimate(cpu_uw=row.jaavr_uw, rom_uw=row.rom_uw,
                                 total_uw=row.total_uw, source="paper")
        rom_bytes = rom_bytes if rom_bytes is not None else 6000
        cpu = self._cpu_mean[mode.value]
        rom = self._rom_uw_per_byte * rom_bytes
        # RAM power (1.2-5.4 µW) folded into a midpoint constant.
        ram = 3.3
        return PowerEstimate(cpu_uw=cpu, rom_uw=rom,
                             total_uw=cpu + rom + ram, source="regression")


def energy_uj(total_uw: float, cycles: float,
              clock_hz: float = 1_000_000.0) -> float:
    """Energy of one operation: power × time.

    At the paper's 1 MHz reference clock a 6.98 Mcycle Weierstraß point
    multiplication at 138.8 µW costs 969 µJ — exactly Table/Section V-C.
    """
    seconds = cycles / clock_hz
    return total_uw * seconds


def paper_energy_range() -> Tuple[float, float]:
    """Min/max CA-mode energy per point multiplication from Table III."""
    values = []
    for row in TABLE3:
        if row.mode == "CA":
            values.append(energy_uj(row.total_uw, row.point_mult_cycles))
    return min(values), max(values)
