"""AVR data space and program memory.

The data space follows the classic AVR map: the 32 general-purpose registers
at addresses 0x00-0x1F, the 64 I/O registers at 0x20-0x5F (I/O address n maps
to data address n + 0x20), and internal SRAM from 0x60 upward.  The stack
pointer lives in I/O registers SPL/SPH (0x3D/0x3E) and SREG in 0x3F, exactly
as on the ATmega128 (compatibility mode).

Program memory is an array of 16-bit words (flash).  The assembler fills it;
the core fetches from it; its used size in bytes is what the area model
reports as "ROM bytes" for Table III.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

REGISTER_BASE = 0x00
NUM_REGISTERS = 32
IO_BASE = 0x20
NUM_IO = 64
SRAM_BASE = 0x60

# I/O addresses (not data addresses) of the CPU registers.
IO_SPL = 0x3D
IO_SPH = 0x3E
IO_SREG = 0x3F

# Pointer register pairs.
REG_X = 26
REG_Y = 28
REG_Z = 30


class DataSpace:
    """Unified register / I/O / SRAM address space."""

    def __init__(self, sram_size: int = 4096):
        if sram_size <= 0:
            raise ValueError("SRAM size must be positive")
        self.sram_size = sram_size
        self.size = SRAM_BASE + sram_size
        self._mem = bytearray(self.size)
        #: Optional I/O write hooks: io_addr -> callable(value).  The MAC
        #: unit's control register registers itself here.
        self.io_write_hooks: Dict[int, Callable[[int], None]] = {}
        self.io_read_hooks: Dict[int, Callable[[], int]] = {}

    # -- raw byte access -----------------------------------------------------

    def read(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise IndexError(f"data-space read out of range: {address:#06x}")
        if IO_BASE <= address < SRAM_BASE:
            hook = self.io_read_hooks.get(address - IO_BASE)
            if hook is not None:
                return hook() & 0xFF
        return self._mem[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.size:
            raise IndexError(f"data-space write out of range: {address:#06x}")
        self._mem[address] = value & 0xFF
        if IO_BASE <= address < SRAM_BASE:
            hook = self.io_write_hooks.get(address - IO_BASE)
            if hook is not None:
                hook(value & 0xFF)

    # -- general-purpose registers ------------------------------------------

    def reg(self, index: int) -> int:
        if not 0 <= index < NUM_REGISTERS:
            raise IndexError(f"register index out of range: {index}")
        return self._mem[index]

    def set_reg(self, index: int, value: int) -> None:
        if not 0 <= index < NUM_REGISTERS:
            raise IndexError(f"register index out of range: {index}")
        self._mem[index] = value & 0xFF

    def reg_pair(self, low_index: int) -> int:
        """16-bit little-endian register pair (e.g. X = R27:R26)."""
        return self._mem[low_index] | (self._mem[low_index + 1] << 8)

    def set_reg_pair(self, low_index: int, value: int) -> None:
        self._mem[low_index] = value & 0xFF
        self._mem[low_index + 1] = (value >> 8) & 0xFF

    def reg_window(self, start: int, count: int) -> int:
        """Little-endian integer view of ``count`` consecutive registers."""
        return int.from_bytes(self._mem[start:start + count], "little")

    def set_reg_window(self, start: int, count: int, value: int) -> None:
        self._mem[start:start + count] = value.to_bytes(
            count, "little", signed=False
        )

    # -- I/O space -------------------------------------------------------------

    def io_read(self, io_addr: int) -> int:
        if not 0 <= io_addr < NUM_IO:
            raise IndexError(f"I/O address out of range: {io_addr:#04x}")
        return self.read(IO_BASE + io_addr)

    def io_write(self, io_addr: int, value: int) -> None:
        if not 0 <= io_addr < NUM_IO:
            raise IndexError(f"I/O address out of range: {io_addr:#04x}")
        self.write(IO_BASE + io_addr, value)

    # -- stack pointer ----------------------------------------------------------

    @property
    def sp(self) -> int:
        return self.io_read(IO_SPL) | (self.io_read(IO_SPH) << 8)

    @sp.setter
    def sp(self, value: int) -> None:
        self.io_write(IO_SPL, value & 0xFF)
        self.io_write(IO_SPH, (value >> 8) & 0xFF)

    # -- bulk helpers -----------------------------------------------------------

    def load_bytes(self, address: int, data: bytes) -> None:
        """Copy raw bytes into the data space (test/kernel setup)."""
        if address < 0 or address + len(data) > self.size:
            raise IndexError("bulk load exceeds the data space")
        self._mem[address:address + len(data)] = data

    def dump_bytes(self, address: int, length: int) -> bytes:
        if address < 0 or address + length > self.size:
            raise IndexError("bulk dump exceeds the data space")
        return bytes(self._mem[address:address + length])


class ProgramMemory:
    """Flash: an array of 16-bit instruction words.

    Every mutation (a bulk :meth:`load` or a single-word :meth:`write_word`)
    bumps :attr:`version`.  Consumers that cache decoded or compiled views of
    the flash image — the core's decode cache, the block-compiling fast
    engine — compare against this counter and invalidate when it moves, so a
    reloaded or self-modified program never executes stale decodes.
    """

    def __init__(self, num_words: int = 65536):
        self.num_words = num_words
        self.words: List[int] = [0] * num_words
        self.used_words = 0
        #: Monotonic modification counter (decode/compile cache invalidation).
        self.version = 0

    def load(self, words: Sequence[int], origin: int = 0) -> None:
        if origin < 0 or origin + len(words) > self.num_words:
            raise IndexError("program does not fit in flash")
        for i, w in enumerate(words):
            if not 0 <= w <= 0xFFFF:
                raise ValueError(f"flash word {i} out of range: {w:#x}")
            self.words[origin + i] = w
        self.used_words = max(self.used_words, origin + len(words))
        self.version += 1

    def write_word(self, word_address: int, value: int) -> None:
        """Write a single flash word (the SELF_MODIFY/reload hook)."""
        if not 0 <= word_address < self.num_words:
            raise IndexError(
                f"flash write out of range: {word_address:#06x}"
            )
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"flash word out of range: {value:#x}")
        self.words[word_address] = value
        self.used_words = max(self.used_words, word_address + 1)
        self.version += 1

    def fetch(self, word_address: int) -> int:
        if not 0 <= word_address < self.num_words:
            raise IndexError(f"flash fetch out of range: {word_address:#06x}")
        return self.words[word_address]

    def read_byte(self, byte_address: int) -> int:
        """LPM-style byte access (little-endian within each word)."""
        word = self.fetch(byte_address >> 1)
        return (word >> 8) & 0xFF if byte_address & 1 else word & 0xFF

    @property
    def used_bytes(self) -> int:
        """Code size in bytes — the Table III 'ROM' figure for a kernel."""
        return self.used_words * 2
