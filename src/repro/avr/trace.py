"""The superblock trace engine: an AOT-specialized third execution tier.

The block-compiling fast engine (:mod:`repro.avr.engine`) stops every
compiled run at the first control transfer, so a measured kernel — a
straight-line multiplication body behind an ``RCALL``, a ladder step of a
dozen subroutine calls — re-enters the dispatcher thousands of times per
run and keeps every register in the ``bytearray`` backing the data space.
This module compiles **superblocks** instead: maximal straight-line paths
stitched *across* CALL/RET and fall-through boundaries, specialised into a
single Python function per entry point.

What a superblock buys over a basic block:

* **Registers live in Python locals** for the whole path.  Every ``m[17]``
  subscript of the fast engine becomes a ``LOAD_FAST``; the register file
  is read once in the prologue and written back once at each exit.  (In
  ISE mode R0..R8 stay in memory — they *are* the MAC accumulator, and the
  accumulator flush writes ``m[0:9]``.)
* **Dead SREG flags are elided.**  A backward liveness pass over the whole
  path finds flag bits that are overwritten before any possible reader
  (``BRxx``, ``ADC``/``SBC``/``ROR``, ``BLD``, ``IN 0x3F``) or exit; the
  per-instruction flag equations are only emitted for live bits.  In the
  unrolled carry chains of the field kernels this removes most of the
  H/S/V/N computations, which dominate the fast engine's per-ALU-op cost.
* **Control flow is predicted statically** and compiled out: CALL pushes
  its return address and falls through into the callee, RET is guarded
  against the compile-time return address, backward conditional branches
  are predicted taken, forward branches and skips predicted not taken.
  The unpredicted arm of every guard is a **side exit** that synchronises
  the architectural state and returns to the dispatcher.
* **No per-instruction I/O checks.**  Instructions that reach the I/O
  space or hooked addresses (``IN``/``OUT`` except SREG, ``SBI``/``CBI``/
  ``SBIC``/``SBIS``, out-of-SRAM ``LDS``/``STS``) terminate the superblock
  *before* they execute; indirect memory traffic carries a single bounds
  test (the same test the fast engine pays) that doubles as the side exit.
  Inside a superblock, memory-mapped I/O is therefore provably untouched.
* The MAC nibble queue of ISE mode is inlined exactly as in the fast
  engine (the emitters are shared), with the pending-drain schedule woven
  through the stitched path.

Fallback ladder (the tier is legal only when its guards hold):

* ``core.program.version`` is checked on every dispatch — a flash write
  invalidates all superblocks before the next one runs.
* ``core.watchpoints`` non-empty hands the rest of the run to
  :meth:`AvrCore.run_watched` (reference stepping with hit recording);
  arming a watchpoint from an I/O hook therefore takes effect at the next
  dispatch boundary, and the interrupted superblock has already side-exited
  *before* the hooked instruction ran.
* An attached profiler delegates the whole run to :class:`FastEngine`,
  which carries exact per-block tallies; taint tracking and fault
  injection drive the fast engine / reference stepping themselves.
* A PC whose first instruction is ineligible (I/O escape, illegal opcode)
  executes one reference :meth:`AvrCore.step` — hooks and exceptions
  behave exactly as in the interpreter.

Exactness contract: identical to the fast engine's — registers, SRAM,
SREG, PC, cycle count, retired-instruction count and exception behaviour
match the reference interpreter bit for bit.  ``tests/test_avr_trace.py``
asserts this three ways (directed kernels, SREG liveness property tests,
forced mid-superblock fallbacks) and ``tests/test_avr_fuzz.py`` runs the
three-way engine differential fuzz.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import METRICS
from .encoding import sign_extend
from .isa import InstructionSpec, instruction_words
from .mac import MacHazardError, conflicts_with_mac
from .timing import Mode, base_cycles
from .engine import (
    _ACC_MASK,
    _CONDITIONAL,
    _INDIRECT,
    _LOAD_NAMES,
    _Gen,
    _emit_instruction,
    _emit_pop_return,
    _emit_push_return,
    _touched_regs,
)

__all__ = ["TraceEngine", "compile_superblock", "MAX_TRACE_INSTRUCTIONS"]

_M_COMPILED = METRICS.counter(
    "avr_superblocks_compiled", "superblocks compiled to closures")
_M_CACHE_HITS = METRICS.counter(
    "avr_superblock_cache_hits", "superblocks served from the global cache")

#: Superblock length cap.  Large enough to swallow a full unrolled field
#: multiplication behind its CALL; small enough to keep single-function
#: compile latency in the tens of milliseconds.
MAX_TRACE_INSTRUCTIONS = 2400

#: Compile-time return-address stack depth for CALL/RET stitching.
_MAX_CALL_DEPTH = 64


class _SideExit(Exception):
    """Internal: a superblock guard failed; state is synced by the handler."""


#: Semantics that may exit or raise *before* their architectural writes
#: commit (memory-bounds side exits, stack traffic, flash reads) — full
#: SREG liveness is required on entry to them.
_PRECHECK_SEMS = frozenset(_INDIRECT) | frozenset({
    "ldd_y", "ldd_z", "std_y", "std_z", "push", "pop",
    "rcall", "call", "icall", "ret", "reti",
    "lpm_r0", "lpm_z", "lpm_zp",
})

#: SREG bits architecturally written per semantics (full layout:
#: C=0x01 Z=0x02 N=0x04 V=0x08 S=0x10 H=0x20 T=0x40 I=0x80).
_SREG_WRITES = {
    "add": 0x3F, "adc": 0x3F, "sub": 0x3F, "sbc": 0x3F, "subi": 0x3F,
    "sbci": 0x3F, "cp": 0x3F, "cpc": 0x3F, "cpi": 0x3F, "neg": 0x3F,
    "adiw": 0x1F, "sbiw": 0x1F,
    "and": 0x1E, "andi": 0x1E, "or": 0x1E, "ori": 0x1E, "eor": 0x1E,
    "inc": 0x1E, "dec": 0x1E,
    "com": 0x1F, "lsr": 0x1F, "ror": 0x1F, "asr": 0x1F,
    "mul": 0x03, "muls": 0x03, "mulsu": 0x03,
    "fmul": 0x03, "fmuls": 0x03, "fmulsu": 0x03,
    "bst": 0x40, "reti": 0x80,
}


def _sreg_rw(sem: str, ops: dict) -> Tuple[int, int]:
    """(reads, writes) SREG bit masks of one instruction."""
    reads = 0
    if sem in ("adc", "ror"):
        reads = 0x01
    elif sem in ("sbc", "sbci", "cpc"):
        reads = 0x03  # borrow in, and Z is kept (multi-byte compares)
    elif sem == "bld":
        reads = 0x40
    elif sem in ("brbs", "brbc"):
        reads = 1 << ops["s"]
    elif sem == "in" and ops.get("A") == 0x3F:
        reads = 0xFF
    if sem in ("bset", "bclr"):
        writes = 1 << ops["s"]
    elif sem == "out" and ops.get("A") == 0x3F:
        writes = 0xFF
    else:
        writes = _SREG_WRITES.get(sem, 0)
    return reads, writes


def _is_escape(spec: InstructionSpec, ops: dict, size: int) -> bool:
    """Would this instruction reach I/O hooks / non-SRAM constant space?

    Such instructions terminate the superblock: the dispatcher executes
    them on the reference interpreter, where every hook semantics holds.
    LPM is escaped too — its flash read is the one in-superblock operation
    that could raise from an uncontrolled site, and the static MAC/pointer
    state fixups below are only emitted at explicit exit sites.
    """
    sem = spec.semantics
    if sem in ("sbi", "cbi", "sbic", "sbis"):
        return True
    if sem in ("in", "out"):
        return ops["A"] != 0x3F
    if sem in ("lds", "sts"):
        return not (0x5F < ops["k"] < size)
    if sem in ("lpm_r0", "lpm_z", "lpm_zp"):
        return True
    return False


def _flag_liveness(items: List[tuple], mode: Mode,
                   exit_ics: Optional[set] = None) -> List[int]:
    """Backward SREG liveness: the live-bit mask *after* each trace index.

    Every potential exporter of SREG forces full liveness: side-exit arms
    and RET guards export after their instruction retires; instructions
    that can exit or raise *before* committing export ahead of themselves.
    Without *exit_ics* every prechecked / MAC-hazard-candidate semantics
    is assumed to be such an exporter; with it (the second compilation
    pass) only the instruction indices that actually emitted an exit or
    raise site — hoisted epoch guards, residual inline bounds tests,
    unconditional hazard raises — count, which strips the flag
    materialisation the memory traffic of the first pass forced.
    """
    ise = mode is Mode.ISE
    n = len(items)
    live = [0xFF] * n
    cur = 0xFF  # liveness at the superblock end (the epilogue exports SREG)
    for i in range(n - 1, -1, -1):
        _, spec, ops, flow = items[i]
        if flow[0] in ("branch", "skip", "ret"):
            cur = 0xFF  # the unpredicted arm / guard mismatch side-exits
        live[i] = cur
        reads, writes = _sreg_rw(spec.semantics, ops)
        cur = (cur & ~writes & 0xFF) | reads
        if exit_ics is not None:
            if i in exit_ics:
                cur = 0xFF  # a real pre-instruction exit/raise site
        elif spec.semantics in _PRECHECK_SEMS or (
                ise and conflicts_with_mac(spec.name, ops)):
            cur = 0xFF  # potential pre-instruction exit/raise site
    return live


class _TraceGen(_Gen):
    """Code generator specialising the fast-engine emitters to a superblock.

    Retargets registers to locals, intersects flag materialisation with the
    liveness pass, turns memory bounds checks into side exits and — the big
    ISE win — evaluates the whole MAC nibble-queue evolution at compile
    time.  Along a straight-line path the queue is deterministic: pushes
    happen at trigger loads (``load_enabled`` cannot change inside a
    superblock, because ``OUT MACCR`` is an I/O escape), drains consume
    ``min(cycles, pre-pending)`` per instruction, and stall/hazard verdicts
    follow from the queue length.  Given the entry state ``(pending length,
    load_enabled, swap_enabled)`` — part of the superblock key — every
    ``if pl:`` / ``if dirty:`` / ``if not mok:`` test of the fast engine
    becomes either nothing or an unconditional statement.
    """

    def __init__(self, mode: Mode, policy: str, size: int,
                 pcs: List[int], live: List[int],
                 mac_entry: Optional[tuple]):
        super().__init__(mode, policy, size, profiled=False)
        self._pcs = pcs
        self._live = live
        self.rused: set = set()
        self.rwritten: set = set()
        self.sp_used = False
        self.sp_written = False
        self._stalled = False
        self._stall_sx = 0
        self._region_start = 0
        # Lowest promoted register: ISE keeps the MAC accumulator R0..R8
        # in memory — the lazy accumulator flush writes m[0:9] directly.
        self._lo = 9 if self.ise else 0
        # Deferred pointer write-back: X/Y/Z updates park in the ``p26``/
        # ``p28``/``p30`` locals; the register bytes materialise on first
        # architectural read/write of R26..R31 and at every exit site.
        self._pdirty: Dict[int, bool] = {}
        # Static MAC model (ISE): the whole queue evolution is evaluated
        # at compile time.  ``_nibq`` holds one (expr, pair, half) entry
        # per pending nibble — entry nibbles read ``pend[j]`` in place,
        # in-trace pushes are materialised into unique ``w{n}`` byte
        # locals.  ``_ndrained`` counts issued nibble MACs (it *is* the
        # ``mops`` delta and, with the entry counter ``_mc0``, the shift
        # position of every issue); ``_ncons`` counts consumed entry
        # nibbles (the ``del pend[:c]`` at exits).
        if mac_entry is not None:
            pl0, self._mc0, self._lden, self._swen = mac_entry
        else:
            pl0, self._mc0 = 0, 0
            self._lden = self._swen = False
        self._nibq: List[tuple] = [(f"pend[{j}]", None, 0)
                                   for j in range(pl0)]
        self._ncons = 0
        self._ndrained = 0
        self._wn = 0
        self._mdirty = False
        self._mmok = False
        self._pp_cap = pl0
        # Deferred accumulator terms: issued nibble MACs park here as
        # (expr, absolute counter index, pair, half) and are emitted as a
        # single factored ``acc += mulc * (...)`` at the next flush point
        # (accumulator read, multiplicand reload, exit, or the size cap).
        self._accbuf: List[tuple] = []
        # Affine bounds-guard hoisting: per pointer/SP local, one *epoch*
        # of statically known ±k updates.  All accesses of an epoch are
        # covered by a single range guard patched in at :meth:`finalize`;
        # the per-access bounds tests are elided.
        self._aff: Dict[str, dict] = {}
        self._guards: List[dict] = []
        self._last_adef: Optional[Tuple[str, int]] = None
        #: Instruction indices that emitted a pre-commit exit/raise site
        #: (epoch guard, inline bounds test, hazard raise).  Feeds the
        #: second-pass flag liveness refinement.
        self.exit_ics: set = set()

    # -- state-access hook overrides ---------------------------------------

    def _ptr_materialize(self, base: int) -> None:
        if self._pdirty.get(base):
            self._pdirty[base] = False
            self.rwritten.add(base)
            self.rwritten.add(base + 1)
            self.w(f"r{base} = p{base} & 0xFF")
            self.w(f"r{base + 1} = p{base} >> 8")

    def reg(self, i: int) -> str:
        if i < self._lo:
            return f"m[{i}]"
        if 26 <= i <= 31:
            self._ptr_materialize(26 if i < 28 else 28 if i < 30 else 30)
        self.rused.add(i)
        return f"r{i}"

    def wreg(self, i: int, expr: str) -> None:
        if i < self._lo:
            self.w(f"m[{i}] = {expr}")
            return
        if 26 <= i <= 31:
            # The sibling byte must hold its architectural value before
            # this one is overwritten (the pair cache is then dropped by
            # the caller's ptr_invalidate).
            self._ptr_materialize(26 if i < 28 else 28 if i < 30 else 30)
        self.rwritten.add(i)
        self.w(f"r{i} = {expr}")

    def sp_load(self) -> None:
        self.sp_used = True  # loaded once in the prologue

    def sp_store(self) -> None:
        self.sp_used = True
        self.sp_written = True  # written back at every exit

    def ptr_use(self, base: int) -> str:
        var = f"p{base}"
        if not self.ptrs.get(base):
            self.w(f"{var} = {self.reg(base)} | ({self.reg(base + 1)} << 8)")
            self.ptrs[base] = True
        return var

    def ptr_sync(self, base: int) -> None:
        # Deferred: the pointer's truth lives in the local until a register
        # read/write or an exit forces the bytes out (``_ptr_materialize``).
        self._pdirty[base] = True

    def mark(self, ic: int) -> None:
        self._peephole(self._region_start)
        super().mark(ic)
        self._region_start = len(self.lines)
        self._stalled = False
        self._last_adef = None

    def finalize(self) -> None:
        self._peephole(self._region_start)
        self._region_start = len(self.lines)
        self._patch_guards()

    def extra(self, amount: str) -> None:
        # The stall-cycle local ``sx`` of the fast engine is a compile-time
        # constant here (the stall drain count is static).
        if amount == "sx":
            amount = str(self._stall_sx)
        super().extra(amount)

    def precheck(self, addr: str) -> None:
        # The bounds test the fast engine pays on every indirect access,
        # turned into a side exit that fires *before* the instruction
        # commits any state; the reference interpreter then re-executes it
        # with full hook semantics.  Stall-drain cycles already paid (the
        # drains mutated the MAC state) are exported with the exit so the
        # re-execution, which finds the queue empty, totals exactly the
        # reference count.  When the address is an affine offset of a
        # tracked pointer epoch the per-access test is elided entirely —
        # the epoch's hoisted range guard (:meth:`_aff_access`) subsumes
        # it.
        if addr == "A":
            adef = self._last_adef
            if adef is not None and self._aff_access(adef[0], adef[1]):
                return
        elif addr == "sp" or addr.startswith("p"):
            if self._aff_access(addr, 0):
                return
        i = self.cur_ic
        self.exit_ics.add(i)
        sx = f"x += {self._stall_sx}; " if self._stalled else ""
        fix = "".join(s + "; " for s in self._exit_stmts())
        self.w(f"if not (0x5F < {addr} < {self.size}): "
               f"{fix}epc = {self._pcs[i]}; ei = {i}; {sx}raise _SX")

    # -- affine bounds-guard hoisting ----------------------------------------

    # Pointer/SP evolution inside a superblock is almost entirely affine:
    # ``ld -X`` / ``st Z+`` / ``push`` move the pointer by a compile-time
    # constant, ``ldd``/``std`` access at a constant displacement.  The
    # tracker below parses exactly those emitted line shapes; any other
    # assignment to a tracked local ends its *epoch*.  Every epoch gets
    # one hoisted guard at its first access — ``LO < p < HI`` with LO/HI
    # folding the extreme access offset *and* the extreme pointer
    # position (so no ``& 0xFFFF`` wrap can occur past the guard) — and
    # all later accesses of the epoch are emitted bare.  A guard failure
    # side-exits at the *guard's* instruction boundary; the dispatcher
    # resumes there and the re-dispatched path (whose own first access
    # re-guards, eventually at instruction index 0) falls back to a
    # reference step.

    _AFF_UPD = re.compile(r"^(p\d+|sp) = \(\1 ([+-]) (\d+)\) & 0xFFFF$")
    _AFF_ADEF = re.compile(r"^A = \((p\d+|sp) ([+-]) (\d+)\) & 0xFFFF$")
    _AFF_ADEF_Q = re.compile(r"^A = (p\d+) \+ (\d+)$")
    _AFF_KILL = re.compile(r"^(p\d+|sp) = ")

    def w(self, line: str) -> None:
        if self.ind == 2:  # top-level instruction body only
            self._aff_track(line)
        super().w(line)

    def _aff_track(self, line: str) -> None:
        m = self._AFF_UPD.match(line)
        if m:
            k = int(m.group(3))
            self._aff_shift(m.group(1), k if m.group(2) == "+" else -k)
            return
        m = self._AFF_ADEF.match(line)
        if m:
            k = int(m.group(3))
            self._last_adef = (m.group(1),
                               k if m.group(2) == "+" else -k)
            return
        m = self._AFF_ADEF_Q.match(line)
        if m:
            self._last_adef = (m.group(1), int(m.group(2)))
            return
        if line.startswith("A = "):
            self._last_adef = None  # unrecognised address form
            return
        m = self._AFF_KILL.match(line)
        if m:
            var = m.group(1)
            adef = self._last_adef
            if line == f"{var} = A" and adef is not None \
                    and adef[0] == var:
                # Pre-decrement commit: the pointer takes the already
                # checked affine address.
                self._aff_shift(var, adef[1])
            else:
                self._aff.pop(var, None)  # reload/unknown: epoch over

    def _aff_shift(self, var: str, delta: int) -> None:
        ep = self._aff.get(var)
        if ep is None:
            return  # moves before an epoch's first access need no range
        ep["delta"] += delta
        gd = ep["g"]
        if ep["delta"] < gd["pmin"]:
            gd["pmin"] = ep["delta"]
        elif ep["delta"] > gd["pmax"]:
            gd["pmax"] = ep["delta"]

    def _aff_access(self, var: str, off: int) -> bool:
        """Register an access at ``var + off``; True if guard-covered."""
        if self.ind != 2:
            return False  # guards are hoisted at top level only
        ep = self._aff.get(var)
        if ep is None:
            i = self.cur_ic
            self.exit_ics.add(i)
            gd = {
                "var": var, "tag": f"#G{len(self._guards)}",
                "epc": self._pcs[i], "ei": i,
                "sx": self._stall_sx if self._stalled else 0,
                "fix": self._exit_stmts(),
                "amin": off, "amax": off, "pmin": 0, "pmax": 0,
            }
            self._guards.append(gd)
            self._aff[var] = {"delta": 0, "g": gd}
            self.w(gd["tag"])  # placeholder, patched in _patch_guards
            return True
        gd = ep["g"]
        a = ep["delta"] + off
        if a < gd["amin"]:
            gd["amin"] = a
        elif a > gd["amax"]:
            gd["amax"] = a
        return True

    def _patch_guards(self) -> None:
        """Replace guard placeholders with the final epoch range tests.

        For a guard-time pointer value ``V``, every epoch access lands at
        ``V + a`` with ``a`` in [amin, amax] and the pointer itself visits
        ``V + q`` with ``q`` in [pmin, pmax]; the test keeps all accesses
        inside SRAM *and* all pointer positions inside 16 bits, so every
        masked update past the guard equals its unmasked affine value.
        The side exit re-uses the state fixups captured at the guard site
        — the exit happens at that instruction boundary, exactly as the
        per-access test it replaces.
        """
        if not self._guards:
            return
        ind = "    " * 2
        where = {ln[len(ind):]: j for j, ln in enumerate(self.lines)
                 if ln.startswith(ind + "#G")}
        for gd in self._guards:
            lo = max(0x5F - gd["amin"], -gd["pmin"] - 1)
            hi = min(self.size - gd["amax"], 0x10000 - gd["pmax"])
            sx = f"x += {gd['sx']}; " if gd["sx"] else ""
            fix = "".join(s + "; " for s in gd["fix"])
            self.lines[where[gd["tag"]]] = (
                f"{ind}if not ({lo} < {gd['var']} < {hi}): "
                f"{fix}epc = {gd['epc']}; ei = {gd['ei']}; {sx}raise _SX")

    # -- load-fusing peephole -----------------------------------------------

    _PEEP_LOAD = re.compile(r"^(\s*)v = (m\[[^\]]+\])$")
    _PEEP_V = re.compile(r"\bv\b")
    _PEEP_A = re.compile(r"^(\s*)A = (.+)$")
    _PEEP_AUSE = re.compile(r"\bA\b")

    def _peephole(self, start: int) -> None:
        """Fuse the ``A``/``v`` temporaries out of one instruction's lines.

        The ``A`` pass folds a single-use address temporary into its one
        consumer (``v = m[A]``, ``m[A] = X`` or a pre-decrement commit
        ``pN = A``) — with the per-access bounds test hoisted into the
        epoch guard, most address temporaries become single-use.  The
        ``v`` pass then fuses the load temporary: ``v = m[E]; rN = v;
        wK = v`` (a MAC trigger load) becomes ``wK = m[E]; rN = wK``, and
        a plain ``v = m[E]; rN = v`` with no later ``v`` use becomes
        ``rN = m[E]``.  Runs before the next :meth:`mark`, so the
        line→instruction map stays exact.
        """
        lines = self.lines
        i = start
        while i < len(lines) - 1:
            ma = self._PEEP_A.match(lines[i])
            if ma:
                ind, expr = ma.group(1), ma.group(2)
                uses = [j for j in range(i + 1, len(lines))
                        if self._PEEP_AUSE.search(lines[j])]
                if len(uses) == 1 and uses[0] == i + 1:
                    nxt = lines[i + 1]
                    repl = None
                    m = re.match(rf"^{ind}(\w+) = m\[A\]$", nxt)
                    if m:
                        repl = f"{ind}{m.group(1)} = m[{expr}]"
                    else:
                        m = re.match(rf"^{ind}m\[A\] = (.+)$", nxt)
                        if m:
                            repl = f"{ind}m[{expr}] = {m.group(1)}"
                        else:
                            m = re.match(rf"^{ind}(p\d+|sp) = A$", nxt)
                            if m:
                                repl = f"{ind}{m.group(1)} = {expr}"
                    if repl is not None:
                        lines[i] = repl
                        del lines[i + 1]
                        continue
            i += 1
        i = start
        while i < len(lines) - 1:
            mload = self._PEEP_LOAD.match(lines[i])
            if mload:
                ind, src = mload.group(1), mload.group(2)
                mreg = re.match(rf"^{ind}(r\d+|m\[\d+\]) = v$",
                                lines[i + 1])
                if mreg:
                    dst = mreg.group(1)
                    mw = (re.match(rf"^{ind}(w\d+) = v$", lines[i + 2])
                          if i + 2 < len(lines) else None)
                    if mw:
                        wv = mw.group(1)
                        lines[i] = f"{ind}{wv} = {src}"
                        lines[i + 1] = f"{ind}{dst} = {wv}"
                        del lines[i + 2]
                        i += 2
                        continue
                    if not any(self._PEEP_V.search(x)
                               for x in lines[i + 2:]):
                        lines[i] = f"{ind}{dst} = {src}"
                        del lines[i + 1]
                        i += 1
                        continue
            i += 1

    # -- static MAC model ---------------------------------------------------

    #: Deferred-term cap: bounds both the factored expression length and
    #: the copies of the pending flush embedded in cold exit chains.
    _ACCBUF_MAX = 12

    def mac_snapshot(self) -> tuple:
        return (list(self._nibq), self._ncons, self._ndrained,
                self._mdirty, self._mmok, dict(self._pdirty),
                list(self._accbuf))

    def mac_restore(self, snap: tuple) -> None:
        (nibq, self._ncons, self._ndrained,
         self._mdirty, self._mmok, pdirty, accbuf) = snap
        self._nibq = list(nibq)
        self._pdirty = dict(pdirty)
        self._accbuf = list(accbuf)

    def _mac_lazy(self) -> None:
        if not self._mdirty:
            self.w("acc = int.from_bytes(m[0:9], 'little')")
            self.w("dirty = True")
            self._mdirty = True
        if not self._mmok:
            # Deferred terms reference the *current* ``mulc`` value: they
            # must land in ``acc`` before the local is reassigned.
            self._flush_acc()
            self.w(f"mulc = {self.reg(16)} | ({self.reg(17)} << 8)"
                   f" | ({self.reg(18)} << 16) | ({self.reg(19)} << 24)")
            self._mmok = True

    def _acc_sum(self) -> str:
        """Factored sum of the deferred terms, lo/hi pairs recombined.

        A pushed byte ``w`` whose two nibbles issued back to back (and
        without crossing a counter wrap) contributes ``w << 4*pos`` —
        the nibble decomposition of Algorithm 2 cancels out — so a whole
        epoch of nibble MACs costs one wide multiply.
        """
        parts = []
        buf = self._accbuf
        j = 0
        while j < len(buf):
            expr, ab, pair, half = buf[j]
            if (pair is not None and half == 0 and j + 1 < len(buf)
                    and buf[j + 1][2] == pair
                    and buf[j + 1][1] == ab + 1 and (ab & 7) != 7):
                expr = f"w{pair}"
                j += 2
            else:
                j += 1
            sh = (ab & 7) << 2
            parts.append(expr if sh == 0 else f"({expr} << {sh})")
        return parts[0] if len(parts) == 1 else \
            "(" + " + ".join(parts) + ")"

    def _acc_flush_stmt(self) -> Optional[str]:
        if not self._accbuf:
            return None
        return f"acc += mulc * {self._acc_sum()}"

    def _flush_acc(self) -> None:
        stmt = self._acc_flush_stmt()
        if stmt is not None:
            self.w(stmt)
            self._accbuf = []

    def _issue_batch(self, k: int) -> None:
        """Drain *k* pending nibbles into the deferred-term buffer.

        Every issue's counter position is a compile-time constant, so the
        terms carry static shifts and the whole batch is bookkeeping-free
        at runtime until the next flush point.
        """
        self._mac_lazy()
        taken = self._nibq[:k]
        del self._nibq[:k]
        self._ncons += sum(1 for _, pair, _ in taken if pair is None)
        ab = self._mc0 + self._ndrained
        for expr, pair, half in taken:
            self._accbuf.append(
                (f"({expr})" if pair is None else expr, ab, pair, half))
            ab += 1
        self._ndrained += k
        if len(self._accbuf) >= self._ACCBUF_MAX:
            self._flush_acc()

    def mac_issue(self, nibble_expr: str = "", from_pend: bool = False
                  ) -> None:
        # Direct issue (SWAP snooping): one nibble at the current static
        # counter position, bypassing the queue.  Materialised into a
        # unique local — the source operand is a transient.
        self._mac_lazy()
        wid = self._wn
        self._wn += 1
        self.w(f"w{wid} = {nibble_expr}")
        self._accbuf.append(
            (f"w{wid}", self._mc0 + self._ndrained, None, 0))
        self._ndrained += 1
        if len(self._accbuf) >= self._ACCBUF_MAX:
            self._flush_acc()

    def mac_sched(self, expr: str) -> None:
        wid = self._wn
        self._wn += 1
        self.w(f"w{wid} = {expr}")
        self._nibq.append((f"(w{wid} & 0xF)", wid, 0))
        self._nibq.append((f"(w{wid} >> 4)", wid, 1))

    def mac_load_trigger(self, expr: str) -> None:
        if self._lden:
            self.mac_sched(expr)

    def mac_swap_snoop(self, expr: str) -> None:
        if self._swen:
            self.mac_issue(expr)

    def mac_flush_low(self) -> None:
        if self._mdirty:
            self._flush_acc()
            self.w(f"m[0:9] = (acc & {_ACC_MASK}).to_bytes(9, 'little')")
            self.w("dirty = False")
            self._mdirty = False

    def mac_invalidate_mulc(self) -> None:
        self._mmok = False

    def hazards(self, pc: int, spec: InstructionSpec, ops: dict) -> bool:
        """Compile-time MAC hazard resolution.

        The queue length is static, so the verdict is too: conflicts either
        emit nothing (queue empty), an unconditional raise (error policy)
        or exactly the right number of unrolled stall drains (stall
        policy), with the stall-cycle count folded into :meth:`extra`.
        """
        self._stalled = False
        if not self.ise:
            return False
        mpl = len(self._nibq)
        if mpl and conflicts_with_mac(spec.name, ops):
            trigger = spec.name in _LOAD_NAMES and ops.get("d") == 24
            if trigger:
                if mpl > 1:
                    if self.policy == "error":
                        msg = (f"MAC issue-rate exceeded at pc={pc:#06x}: "
                               f"{mpl} nibble MACs still pending")
                        self._emit_hazard_raise(msg)
                    elif self.policy == "stall":
                        self._issue_batch(mpl - 1)
                        self._stall_sx = mpl - 1
                        self._stalled = True
            else:
                if self.policy == "error":
                    msg = (f"{spec.name} touches MAC-owned registers at "
                           f"pc={pc:#06x} while {mpl} MAC(s) pending")
                    self._emit_hazard_raise(msg)
                elif self.policy == "stall":
                    self._issue_batch(mpl)
                    self._stall_sx = mpl
                    self._stalled = True
        self._pp_cap = len(self._nibq)
        return self._stalled

    def _emit_hazard_raise(self, msg: str) -> None:
        # The raise always fires (the queue depth is static), so the exit
        # fixups run unconditionally right before it and the generic
        # exception handler sees synchronised mc/mops/pend/pointer state.
        self.exit_ics.add(self.cur_ic)
        for s in self._exit_stmts():
            self.w(s)
        self.w(f"raise MacHazardError({msg!r})")

    def drains(self, cycles: int) -> None:
        if not self.ise:
            return
        k = min(cycles, self._pp_cap)
        if k > 0:
            self._issue_batch(k)

    def flag_need(self, written: int) -> int:
        return written & self._live[self.cur_ic]

    def escape(self, *calls: str) -> None:  # pragma: no cover - scanner bug
        raise AssertionError("superblock scanner let an I/O escape through")

    def mem_read(self, dest: str, addr: str, wrap: bool = False) -> None:
        # precheck() already proved 0x5F < addr < size.
        self.w(f"{dest} = m[{addr}]")

    def mem_write(self, addr: str, value: str, wrap: bool = False) -> None:
        self.w(f"m[{addr}] = {value}")

    # -- exit-state fixups and side exits -----------------------------------

    def _exit_stmts(self) -> List[str]:
        """Statements restoring the externally visible state at an exit.

        The hot path carries none of the fast engine's per-instruction
        ``mc``/``mops``/``pend``/pointer bookkeeping — it is all static —
        so every site where control can leave the superblock re-creates
        that state from compile-time knowledge.  Pure: the fall-through
        path continues from the unchanged compile-time state.
        """
        out: List[str] = []
        if self.ise:
            flush = self._acc_flush_stmt()
            if flush is not None:
                out.append(flush)
            if self._ndrained:
                out.append(f"mc = {(self._mc0 + self._ndrained) & 7}")
                out.append(f"mops = {self._ndrained}")
            if self._ncons:
                out.append(f"del pend[:{self._ncons}]")
            rem = [e for e, pair, _ in self._nibq if pair is not None]
            if rem:
                tail = ",)" if len(rem) == 1 else ")"
                out.append("pend += (" + ", ".join(rem) + tail)
        for b in (26, 28, 30):
            if self._pdirty.get(b):
                self.rwritten.add(b)
                self.rwritten.add(b + 1)
                out.append(f"r{b} = p{b} & 0xFF")
                out.append(f"r{b + 1} = p{b} >> 8")
        return out

    def emit_exit_fixups(self) -> None:
        for s in self._exit_stmts():
            self.w(s)

    def side_exit(self, ei: int, epc) -> None:
        """Exit to the dispatcher with *ei* instructions retired, PC *epc*."""
        fix = "".join(s + "; " for s in self._exit_stmts())
        self.w(f"{fix}epc = {epc}; ei = {ei}; raise _SX")


# ---------------------------------------------------------------------------
# Superblock scanning
# ---------------------------------------------------------------------------


def _scan_superblock(core, start_pc: int):
    """Collect the straight-line stitched path at *start_pc*.

    Returns ``(items, trailing_npc, skip_lookahead, key_words)``.  Each
    item is ``(pc, spec, ops, flow)`` where *flow* describes how the path
    continues past the instruction:

    ``("line",)``
        ordinary fall-through instruction.
    ``("goto", target)``
        RJMP/JMP stitched through; the path continues at *target*.
    ``("call", target, return_pc)``
        RCALL/CALL stitched into its callee; *return_pc* is pushed both
        architecturally and onto the compile-time return stack.
    ``("ret", expected)``
        RET whose popped address is guarded against the compile-time
        *expected*; a mismatch side-exits.
    ``("branch", target, predicted_taken)``
        conditional branch; the unpredicted arm side-exits.
    ``("skip", skip_pc, skip_words)``
        CPSE/SBRC/SBRS predicted not to skip; skipping side-exits.
    ``("terminal",)``
        last instruction, emitted exactly as in a fast-engine block (both
        arms set ``npc``; the epilogue exports state).

    The scan ends at: the instruction cap, a PC already on the path (loop
    closed), an I/O escape or undecodable word (left to the dispatcher;
    *trailing_npc* is then that PC), BREAK/IJMP/ICALL/RETI, RET with an
    empty stack, or a branch whose predicted successor is already on the
    path.
    """
    prog = core.program
    size = core.data.size
    items: List[tuple] = []
    key_words: List[int] = []
    visited = set()
    ret_stack: List[int] = []
    skip_lookahead: Optional[int] = None
    trailing_npc: Optional[int] = None
    pc = start_pc

    while True:
        if len(items) >= MAX_TRACE_INSTRUCTIONS or pc in visited:
            trailing_npc = pc
            break
        try:
            spec, ops, words = core.decode_at(pc)
        except Exception:
            trailing_npc = pc  # dispatcher re-raises via a reference step
            break
        if _is_escape(spec, ops, size):
            trailing_npc = pc  # dispatcher runs the hooked instruction
            break
        visited.add(pc)
        for off in range(words):
            key_words.append(prog.fetch(pc + off))
        sem = spec.semantics

        if sem in ("break", "ijmp", "icall", "reti"):
            items.append((pc, spec, ops, ("terminal",)))
            break
        if sem in ("rjmp", "jmp"):
            target = (ops["k"] if sem == "jmp"
                      else pc + 1 + sign_extend(ops["k"], 12))
            if target in visited or target < 0:
                items.append((pc, spec, ops, ("terminal",)))
                break
            items.append((pc, spec, ops, ("goto", target)))
            pc = target
            continue
        if sem in ("rcall", "call"):
            target = (ops["k"] if sem == "call"
                      else pc + 1 + sign_extend(ops["k"], 12))
            if (target in visited or target < 0
                    or len(ret_stack) >= _MAX_CALL_DEPTH):
                items.append((pc, spec, ops, ("terminal",)))
                break
            ret_stack.append(pc + words)
            items.append((pc, spec, ops, ("call", target, pc + words)))
            pc = target
            continue
        if sem == "ret":
            if not ret_stack:
                items.append((pc, spec, ops, ("terminal",)))
                break
            expected = ret_stack.pop()
            if expected in visited:
                items.append((pc, spec, ops, ("terminal",)))
                break
            items.append((pc, spec, ops, ("ret", expected)))
            pc = expected
            continue
        if sem in ("brbs", "brbc"):
            target = pc + 1 + sign_extend(ops["k"], 7)
            predicted_taken = target <= pc  # backward branches close loops
            cont = target if predicted_taken else pc + 1
            if cont in visited or cont < 0:
                items.append((pc, spec, ops, ("terminal",)))
                break
            items.append((pc, spec, ops,
                          ("branch", target, predicted_taken)))
            pc = cont
            continue
        if sem in ("cpse", "sbrc", "sbrs"):
            try:
                nword = prog.fetch(pc + 1)
            except IndexError:
                # Skipped slot outside flash: the terminal emission defers
                # the fetch (and its error) to runtime, exactly as the
                # fast engine does.
                key_words.append(-1)
                items.append((pc, spec, ops, ("terminal",)))
                break
            nwords = instruction_words(nword)
            if pc + 1 in visited:
                key_words.append(nword)
                skip_lookahead = nwords
                items.append((pc, spec, ops, ("terminal",)))
                break
            items.append((pc, spec, ops, ("skip", pc + 1 + nwords, nwords)))
            pc = pc + 1
            continue
        items.append((pc, spec, ops, ("line",)))
        pc += words

    return items, trailing_npc, skip_lookahead, key_words


# ---------------------------------------------------------------------------
# Superblock compilation
# ---------------------------------------------------------------------------


def _pre_body(g: _TraceGen, i: int, pc: int, spec: InstructionSpec,
              ops: dict) -> bool:
    """Shared pre-body emission for internally stitched control flow.

    Mirrors the opening of :func:`repro.avr.engine._emit_instruction`:
    the instruction mark, MAC hazard handling and the ISE accumulator
    flush for instructions that touch R0..R8 directly.
    """
    sem = spec.semantics
    g.mark(i)
    stalled = g.hazards(pc, spec, ops)
    if stalled and sem in _CONDITIONAL:
        g.extra("sx")  # condition evaluation cannot raise: cycles final
        stalled = False
    if g.ise and any(v <= 8 for v in _touched_regs(sem, ops)):
        g.mac_flush_low()
    return stalled


def _emit_internal_branch(g: _TraceGen, i: int, pc: int, ops: dict,
                          sem: str, target: int,
                          predicted_taken: bool) -> None:
    cond = f"sreg >> {ops['s']} & 1"
    taken_if = cond if sem == "brbs" else f"not ({cond})"
    fall_if = f"not ({cond})" if sem == "brbs" else cond
    if predicted_taken:
        snap = g.mac_snapshot()
        g.w(f"if {fall_if}:")
        g.ind += 1
        g.drains(1)
        g.side_exit(i + 1, pc + 1)
        g.ind -= 1
        g.mac_restore(snap)  # the exit arm's drains never happened here
        g.extra("1")
        g.drains(2)
    else:
        snap = g.mac_snapshot()
        g.w(f"if {taken_if}:")
        g.ind += 1
        g.extra("1")
        g.drains(2)
        g.side_exit(i + 1, target)
        g.ind -= 1
        g.mac_restore(snap)
        g.drains(1)


def _skip_cond(g: _TraceGen, ops: dict, sem: str) -> str:
    if sem == "cpse":
        return f"{g.reg(ops['d'])} == {g.reg(ops['r'])}"
    bit = f"{g.reg(ops['d'])} >> {ops['b']} & 1"
    return f"not ({bit})" if sem == "sbrc" else bit


def _emit_internal_skip(g: _TraceGen, i: int, ops: dict, sem: str,
                        skip_pc: int, skip_words: int) -> None:
    snap = g.mac_snapshot()
    g.w(f"if {_skip_cond(g, ops, sem)}:")
    g.ind += 1
    g.extra(str(skip_words))
    g.drains(1 + skip_words)
    g.side_exit(i + 1, skip_pc)
    g.ind -= 1
    g.mac_restore(snap)
    g.drains(1)


def _emit_terminal_branch(g: _TraceGen, pc: int, ops: dict,
                          sem: str) -> None:
    """Terminal BRBS/BRBC: both arms set ``npc``, exactly as the fast
    engine emits them — but each arm's static MAC drains start from the
    same pre-instruction state."""
    target = pc + 1 + sign_extend(ops["k"], 7)
    cond = f"sreg >> {ops['s']} & 1"
    snap = g.mac_snapshot()
    g.w(f"if {cond}:" if sem == "brbs" else f"if not ({cond}):")
    g.ind += 1
    g.extra("1")
    g.w(f"npc = {target}")
    g.drains(2)
    g.emit_exit_fixups()
    g.ind -= 1
    g.mac_restore(snap)
    g.w("else:")
    g.ind += 1
    g.w(f"npc = {pc + 1}")
    g.drains(1)
    g.emit_exit_fixups()
    g.ind -= 1


def _emit_terminal_skip(g: _TraceGen, pc: int, ops: dict, sem: str,
                        skip_lookahead: Optional[int]) -> None:
    """Terminal CPSE/SBRC/SBRS, mirroring the fast engine arm for arm."""
    snap = g.mac_snapshot()
    g.w(f"if {_skip_cond(g, ops, sem)}:")
    g.ind += 1
    if skip_lookahead is None:
        # The skipped slot lies outside flash: reproduce the reference
        # interpreter's fetch error from the same state (the fixups run
        # first, so the generic handler exports synchronised MAC state).
        g.emit_exit_fixups()
        g.w(f"prog.fetch({pc + 1})")
        g.w("raise AssertionError('unreachable')")
    else:
        g.extra(str(skip_lookahead))
        g.w(f"npc = {pc + 1 + skip_lookahead}")
        g.drains(1 + skip_lookahead)
        g.emit_exit_fixups()
    g.ind -= 1
    g.mac_restore(snap)
    g.w("else:")
    g.ind += 1
    g.w(f"npc = {pc + 1}")
    g.drains(1)
    g.emit_exit_fixups()
    g.ind -= 1


def _stmt_lines(stmts: List[str], indent: str, per_line: int = 8) -> str:
    """Join short statements into ``; ``-chained source lines."""
    out = []
    for i in range(0, len(stmts), per_line):
        out.append(indent + "; ".join(stmts[i:i + per_line]) + "\n")
    return "".join(out)


# Global superblock cache: key -> closure, shared across cores (the key
# covers everything the generated source depends on).
_TRACE_CACHE: Dict[tuple, Any] = {}
_TRACE_CACHE_MAX = 512


def _program_fingerprint(prog) -> tuple:
    """Cheap per-version identity of the loaded flash image.

    Keys the global superblock cache without re-scanning the path: the
    hash is computed once per ``ProgramMemory`` version and memoised on
    the instance, so a warm cache costs one attribute read per dispatch
    miss instead of a full decode walk.
    """
    fp = getattr(prog, "_trace_fp", None)
    if fp is None or fp[0] != prog.version:
        used = prog.used_words
        fp = (prog.version, hash(tuple(prog.words[:used])), used)
        prog._trace_fp = fp
    return fp[1], fp[2]


def compile_superblock(core, start_pc: int):
    """Compile (or fetch from the global cache) the superblock at *start_pc*.

    Returns ``None`` when the entry instruction itself is ineligible (an
    I/O escape or an undecodable word) — the dispatcher then takes one
    reference step instead.
    """
    mode, policy, size = core.mode, core.hazard_policy, core.data.size
    if mode is Mode.ISE:
        # The static MAC model specialises on the entry state — including
        # the 3-bit issue counter, so every drain's shift position is a
        # compile-time constant; the dispatcher keys its superblock table
        # the same way.
        mac_entry = (len(core.mac.pending), core.mac.counter,
                     core.mac.load_enabled, core.mac.swap_enabled)
    else:
        mac_entry = None
    key = (start_pc, mode, policy, size, mac_entry,
           _program_fingerprint(core.program))
    fn = _TRACE_CACHE.get(key)
    if fn is not None:
        _M_CACHE_HITS.inc()
        return fn

    items, trailing_npc, skip_lookahead, _ = _scan_superblock(
        core, start_pc)
    if not items:
        return None
    n = len(items)
    cycles = [base_cycles(spec, mode) for _, spec, _, _ in items]
    cyc_before = [0]
    for c in cycles:
        cyc_before.append(cyc_before[-1] + c)
    pcs = [pc for pc, _, _, _ in items]
    pcs.append(trailing_npc if trailing_npc is not None else 0)

    def emit(live: List[int]) -> _TraceGen:
        g = _TraceGen(mode, policy, size, pcs, live, mac_entry)
        for i, (pc, spec, ops, flow) in enumerate(items):
            kind = flow[0]
            sem = spec.semantics
            if kind == "terminal" and sem in ("brbs", "brbc"):
                _pre_body(g, i, pc, spec, ops)
                _emit_terminal_branch(g, pc, ops, sem)
                continue
            if kind == "terminal" and sem in ("cpse", "sbrc", "sbrs"):
                _pre_body(g, i, pc, spec, ops)
                _emit_terminal_skip(g, pc, ops, sem, skip_lookahead)
                continue
            if kind in ("line", "terminal"):
                _emit_instruction(g, i, pc, spec, ops, cycles[i],
                                  skip_lookahead if i == n - 1 else None)
                continue
            stalled = _pre_body(g, i, pc, spec, ops)
            if kind == "goto":
                pass  # the successor is compiled in; only cycles remain
            elif kind == "call":
                _emit_push_return(g, flow[2])
            elif kind == "ret":
                _emit_pop_return(g)
            elif kind == "branch":
                _emit_internal_branch(g, i, pc, ops, sem, flow[1], flow[2])
            elif kind == "skip":
                _emit_internal_skip(g, i, ops, sem, flow[1], flow[2])
            if kind in ("goto", "call", "ret"):
                if stalled:
                    g.extra("sx")
                g.drains(cycles[i])
                if kind == "ret":
                    g.w(f"if npc != {flow[1]}:")
                    g.ind += 1
                    g.side_exit(i + 1, "npc")
                    g.ind -= 1

        if items[-1][3][0] != "terminal":
            g.w(f"npc = {trailing_npc}")
        last_sem = items[-1][1].semantics
        if not (items[-1][3][0] == "terminal" and last_sem in (
                "brbs", "brbc", "cpse", "sbrc", "sbrs")):
            # Terminal branches/skips emitted their (arm-specific) fixups
            # already; every other trace end exports state here.
            g.emit_exit_fixups()
        g.finalize()
        return g

    # Two-pass flag liveness: the first pass assumes every prechecked
    # semantics exports SREG, then reports the exit sites it actually
    # emitted (most bounds tests hoist into a few epoch guards); liveness
    # recomputed against the real sites strips the flag materialisation
    # the memory traffic forced.  Exit-site placement does not depend on
    # liveness, so the second pass emits the same guard structure.
    live = _flag_liveness(items, mode)
    g = emit(live)
    refined = _flag_liveness(items, mode, exit_ics=g.exit_ics)
    if refined != live:
        g = emit(refined)

    ise = mode is Mode.ISE
    regs = sorted(g.rused | g.rwritten)
    wregs = sorted(g.rwritten)
    loads = [f"r{i} = m[{i}]" for i in regs]
    if g.sp_used:
        loads.append("sp = m[0x5D] | (m[0x5E] << 8)")
    stores = [f"m[{i}] = r{i}" for i in wregs]
    if g.sp_written:
        stores.append("m[0x5D] = sp & 0xFF")
        stores.append("m[0x5E] = sp >> 8")
    mac_sync = (
        "        if dirty:\n"
        f"            m[0:9] = (acc & {_ACC_MASK}).to_bytes(9, 'little')\n"
        "        mac.counter = mc\n"
        "        if mops:\n"
        "            mac.mac_ops += mops\n"
    ) if ise else ""

    header = (
        "    data = core.data\n"
        "    m = data._mem\n"
        "    sregobj = core.sreg\n"
        "    sreg = sregobj.value\n"
        "    prog = core.program\n"
        + ("    mac = core.mac\n"
           "    pend = mac.pending\n"
           "    mc = mac.counter\n"
           "    mops = 0\n"
           "    dirty = False\n" if ise else "")
        + _stmt_lines(loads, "    ")
        + "    x = 0\n"
    )
    body = "\n".join(g.lines)
    base_line = header.count("\n") + 3
    line_to_ic = [0] * len(g.lines)
    for (start, icv), (end, _) in zip(g.marks,
                                      g.marks[1:] + [(len(g.lines), 0)]):
        for j in range(start, end):
            line_to_ic[j] = icv
    sync8 = mac_sync + _stmt_lines(stores, "        ")
    sync4 = (mac_sync.replace("        ", "    ") if ise else "") \
        + _stmt_lines(stores, "    ")
    src = (
        "def _superblock(core):\n"
        + header
        + "    try:\n"
        f"{body}\n"
        "    except _SX:\n"
        + sync8
        + "        sregobj.value = sreg\n"
        "        core.pc = epc\n"
        "        core.cycles += _CYC[ei] + x\n"
        "        core.instructions_retired += ei\n"
        "        return\n"
        "    except Exception as e:\n"
        f"        ic = _L2I[e.__traceback__.tb_lineno - {base_line}]\n"
        + sync8
        + "        sregobj.value = sreg\n"
        "        core.pc = _PCS[ic]\n"
        "        core.cycles += _CYC[ic] + x\n"
        "        core.instructions_retired += ic\n"
        "        raise\n"
        + sync4
        + "    sregobj.value = sreg\n"
        "    core.pc = npc\n"
        f"    core.cycles += {cyc_before[-1]} + x\n"
        f"    core.instructions_retired += {n}\n"
    )
    gbl = {
        "MacHazardError": MacHazardError,
        "_SX": _SideExit,
        "_PCS": tuple(pcs),
        "_CYC": tuple(cyc_before),
        "_L2I": tuple(line_to_ic),
    }
    code = compile(src, f"<avr-superblock@{start_pc:#06x}>", "exec")
    exec(code, gbl)
    fn = gbl["_superblock"]
    fn._source = src
    fn._n_instructions = n
    _M_COMPILED.inc()
    if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
        _TRACE_CACHE.clear()
    _TRACE_CACHE[key] = fn
    return fn


class TraceEngine:
    """Guarded superblock dispatcher with a transparent fallback ladder.

    Per dispatch it checks the flash version (invalidating on any change)
    and the watchpoint set (handing the rest of the run to reference
    stepping when armed); profiled runs delegate wholly to the fast
    engine, whose closures carry exact tally bookkeeping.  Entry PCs that
    cannot head a superblock — and superblock executions that make no
    progress because the very first instruction side-exits (an indirect
    access landing in I/O space) — take a single reference step, so hook
    semantics are always the interpreter's.
    """

    def __init__(self, core):
        from .engine import FastEngine

        self.core = core
        if core._fast_engine is None:
            core._fast_engine = FastEngine(core)
        self.fast = core._fast_engine
        self.superblocks: Dict[int, Any] = {}
        self.version = -1

    def invalidate(self) -> None:
        """Drop all compiled superblocks (flash changed under us)."""
        self.superblocks.clear()

    def run(self, max_steps: int = 50_000_000) -> int:
        core = self.core
        if core.profiler is not None:
            # The fast engine's profiled closures reproduce the reference
            # tallies exactly; superblocks carry no tally bookkeeping.
            return self.fast.run(max_steps)
        sbs = self.superblocks
        sbs_get = sbs.get
        missing = _MISSING
        ise = core.mode is Mode.ISE
        mac = core.mac
        pending = mac.pending
        retired_start = core.instructions_retired
        while not core.halted:
            if core.program.version != self.version:
                self.invalidate()
                self.version = core.program.version
            if core.watchpoints:
                used = core.instructions_retired - retired_start
                return core.run_watched(max_steps - used)
            pc = core.pc
            if ise:
                # Superblocks are specialised on the MAC entry state; a
                # pathologically deep queue (only reachable under the
                # "ignore" hazard policy) drops to the fast tier.
                pl0 = len(pending)
                key = (pc, pl0, mac.counter,
                       mac.load_enabled, mac.swap_enabled)
            else:
                pl0 = 0
                key = pc
            if pl0 > 4:
                self.fast.step_block()
            else:
                fn = sbs_get(key, missing)
                if fn is missing:
                    fn = compile_superblock(core, pc)
                    sbs[key] = fn
                if fn is None:
                    core.step()  # ineligible entry: I/O escape, illegal word
                else:
                    before = core.instructions_retired
                    fn(core)
                    if (core.instructions_retired == before
                            and not core.halted):
                        # The entry instruction itself side-exited (indirect
                        # access into I/O space): reference-step it once.
                        core.step()
            if core.instructions_retired - retired_start > max_steps:
                from .core import ExecutionError

                raise ExecutionError(
                    f"step budget of {max_steps} exceeded"
                    f" at pc={core.pc:#06x}"
                )
        return core.cycles


_MISSING = object()
