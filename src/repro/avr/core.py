"""The JAAVR core: fetch-decode-execute with cycle accounting.

``AvrCore`` models the paper's ATmega128-compatible softcore in its three
modes (:class:`~repro.avr.timing.Mode`): CA (ATmega128 cycle timing), FAST
(improved load/store/multiply CPI) and ISE (FAST plus the (32 x 4)-bit MAC
unit of :mod:`repro.avr.mac`).

Decoded instructions are cached per flash address, so repeated kernel
executions pay the Python decode cost only once; the cache is keyed to
:attr:`ProgramMemory.version` and is dropped whenever the flash image
changes.  A program halts by executing ``BREAK`` (the convention all kernels
in :mod:`repro.kernels` follow) or when :meth:`run` hits its step budget (an
error).

Three execution engines share this architectural state:

* :meth:`step` — the reference interpreter: one fetch/decode/execute per
  call, the simplest possible statement of the semantics.
* :mod:`repro.avr.engine` — the block-compiling fast engine used by
  :meth:`run` by default: flash is predecoded into basic blocks and each
  block is compiled to a specialised Python closure with identical
  observable behaviour (registers, SRAM, SREG, PC, cycle count).
* :mod:`repro.avr.trace` — the superblock trace engine
  (``engine="trace"``): straight-line paths stitched across CALL/RET and
  fall-through boundaries are compiled ahead of time into single
  specialised functions (registers in locals, dead SREG flags elided),
  guarded per dispatch on the flash version and the watchpoint set, with
  transparent fallback to the fast engine and the interpreter.

``AvrCore(engine="reference")`` or the environment variable
``REPRO_AVR_ENGINE=reference`` forces the interpreter (e.g. for debugging a
suspected engine bug); ``engine="trace"`` / ``REPRO_AVR_ENGINE=trace``
selects the trace tier.  Profiling works on all engines: the interpreter
records every retired instruction directly, while the fast engine compiles
per-block tally bookkeeping into its closures and folds the raw counts into
the profiler when the run ends — the parity tests assert both producers
yield identical tallies.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from .instructions import EXECUTORS
from .isa import BY_NAME, InstructionSpec, decode_word
from .mac import MACCR_IO_ADDR, MacHazardError, MacUnit, conflicts_with_mac
from .memory import IO_SREG, DataSpace, ProgramMemory
from .profiler import CALL_SEMS, RET_SEMS
from .sreg import StatusRegister
from .timing import Mode, dynamic_cycles

_LOAD_NAMES = {
    "LDS", "LD_X", "LD_XP", "LD_MX", "LD_YP", "LD_MY", "LD_ZP", "LD_MZ",
    "LDD_Y", "LDD_Z", "POP",
}


class ExecutionError(RuntimeError):
    """Raised for illegal opcodes or exceeded step budgets."""


class AvrCore:
    """An ATmega128-compatible core with selectable timing mode."""

    def __init__(self, program: Optional[ProgramMemory] = None,
                 mode: Mode = Mode.CA, sram_size: int = 4096,
                 hazard_policy: str = "error", engine: Optional[str] = None):
        if hazard_policy not in ("error", "stall", "ignore"):
            raise ValueError(f"unknown hazard policy {hazard_policy!r}")
        if engine is None:
            engine = os.environ.get("REPRO_AVR_ENGINE", "fast")
        if engine not in ("fast", "reference", "trace"):
            raise ValueError(f"unknown execution engine {engine!r}")
        self.program = program or ProgramMemory()
        self.mode = mode
        self.hazard_policy = hazard_policy
        self.data = DataSpace(sram_size=sram_size)
        self.sreg = StatusRegister()
        self.pc = 0
        self.cycles = 0
        self.instructions_retired = 0
        self.halted = False
        self.mac = MacUnit()
        # Dynamic-timing scratch fields set by the executors.
        self.last_branch_taken = False
        self.last_skip_words = 0
        # Map SREG into the I/O space.
        self.data.io_read_hooks[IO_SREG] = lambda: self.sreg.value
        self.data.io_write_hooks[IO_SREG] = self._sreg_write
        if mode is Mode.ISE:
            self.data.io_read_hooks[MACCR_IO_ADDR] = self.mac.control_read
            self.data.io_write_hooks[MACCR_IO_ADDR] = self.mac.control_write
        # Stack pointer: top of SRAM.
        self.data.sp = self.data.size - 1
        # Decode cache: word address -> (spec, ops, words); valid only for
        # the flash image identified by ``_decode_version``.
        self._decode_cache: Dict[int, Tuple[InstructionSpec, dict, int]] = {}
        self._decode_version = self.program.version
        #: Which engine :meth:`run` uses: "fast" (block compiler),
        #: "trace" (superblock compiler) or "reference" (the :meth:`step`
        #: interpreter).
        self.engine = engine
        self._fast_engine = None  # lazily constructed repro.avr.engine
        self._trace_engine = None  # lazily constructed repro.avr.trace
        #: Data-space watchpoints: byte addresses whose writes should be
        #: recorded.  A non-empty set routes :meth:`run` to
        #: :meth:`run_watched` (reference stepping) regardless of the
        #: configured engine — the compiled tiers are not legal under
        #: watchpoints and fall back by construction.
        self.watchpoints: set = set()
        #: ``(pc, address, old, new)`` tuples recorded by
        #: :meth:`run_watched`; cleared on :meth:`reset`.
        self.watch_hits: list = []
        #: Optional profiler (attach with :meth:`attach_profiler`).
        self.profiler = None
        #: Raw per-block tallies while the fast engine runs profiled
        #: (:class:`repro.avr.profiler.EngineProfile`; lazily created).
        self._engine_profile = None

    # -- helpers ---------------------------------------------------------------

    def _sreg_write(self, value: int) -> None:
        self.sreg.value = value & 0xFF

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.avr.profiler.Profiler`.

        Works with both engines.  The fast engine keeps its speed: profiled
        runs dispatch to a parallel cache of closures that carry the tally
        bookkeeping inline (a couple of integer increments per *block*) and
        fold into the profiler at run end.
        """
        self.profiler = profiler

    def reset(self, pc: int = 0) -> None:
        """Reset PC, cycle counter, MAC state and the stack pointer.

        The stack pointer is restored to top-of-SRAM, exactly as after
        construction; the rest of the data space is preserved so operands
        staged for a kernel survive the reset.
        """
        self.pc = pc
        self.cycles = 0
        self.instructions_retired = 0
        self.halted = False
        self.mac.counter = 0
        self.mac.pending.clear()
        self.mac.mac_ops = 0
        self.data.sp = self.data.size - 1
        self.watch_hits.clear()

    # -- MAC notifications (called from instruction semantics) -------------------

    def notify_swap(self, reg: int, new_value: int) -> None:
        if self.mode is Mode.ISE:
            self.mac.on_swap(self.data, reg, new_value)

    def notify_load(self, reg: int) -> None:
        if self.mode is Mode.ISE:
            self.mac.on_load(self.data, reg)

    # -- execution --------------------------------------------------------------

    def decode_at(self, word_address: int) -> Tuple[InstructionSpec, dict, int]:
        if self._decode_version != self.program.version:
            self._decode_cache.clear()
            self._decode_version = self.program.version
        cached = self._decode_cache.get(word_address)
        if cached is not None:
            return cached
        word = self.program.fetch(word_address)
        spec = decode_word(word)
        if spec is None:
            raise ExecutionError(
                f"illegal opcode {word:#06x} at {word_address:#06x}"
            )
        second = (self.program.fetch(word_address + 1)
                  if spec.words == 2 else None)
        ops = spec.decode_operands(word, second)
        entry = (spec, ops, spec.words)
        self._decode_cache[word_address] = entry
        return entry

    def step(self) -> int:
        """Execute one instruction; returns the cycles it consumed."""
        if self.halted:
            raise ExecutionError("core is halted")
        pc = self.pc
        spec, ops, words = self.decode_at(pc)

        # MAC hazard handling: nibble MACs scheduled by a previous load are
        # still in flight during this instruction's cycles.
        pre_pending = len(self.mac.pending)
        stall_cycles = 0
        if pre_pending and conflicts_with_mac(spec.name, ops):
            is_trigger_load = spec.name in _LOAD_NAMES and ops.get("d") == 24
            if is_trigger_load and pre_pending > 1:
                # A new trigger load needs both following cycles for its own
                # MACs; more than one leftover nibble oversubscribes the unit
                # (Algorithm 2 issues a trigger at most every other cycle).
                if self.hazard_policy == "error":
                    raise MacHazardError(
                        f"MAC issue-rate exceeded at pc={self.pc:#06x}: "
                        f"{pre_pending} nibble MACs still pending"
                    )
                if self.hazard_policy == "stall":
                    while len(self.mac.pending) > 1:
                        self.mac.drain_one(self.data)
                        stall_cycles += 1
                    pre_pending = 1
            if not is_trigger_load:
                if self.hazard_policy == "error":
                    raise MacHazardError(
                        f"{spec.name} touches MAC-owned registers at "
                        f"pc={self.pc:#06x} while {pre_pending} MAC(s) pending"
                    )
                if self.hazard_policy == "stall":
                    while self.mac.pending:
                        self.mac.drain_one(self.data)
                        stall_cycles += 1
                    pre_pending = 0

        self.last_branch_taken = False
        self.last_skip_words = 0
        next_pc = EXECUTORS[spec.semantics](self, ops)
        cycles = dynamic_cycles(spec, self.mode, self.last_branch_taken,
                                self.last_skip_words) + stall_cycles

        # Drain previously scheduled MACs — one per elapsed cycle.
        for _ in range(min(cycles, pre_pending)):
            self.mac.drain_one(self.data)

        self.pc = next_pc if next_pc is not None else self.pc + words
        self.cycles += cycles
        self.instructions_retired += 1
        if self.profiler is not None:
            self.profiler.record(spec, cycles, pc)
            sem = spec.semantics
            if sem in CALL_SEMS:
                self.profiler.on_call(self.pc, pc + words, self.cycles)
            elif sem in RET_SEMS:
                self.profiler.on_ret(self.cycles)
        return cycles

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run until ``BREAK``; returns total cycles since the last reset.

        Dispatches to the block-compiling fast engine unless the core was
        built with ``engine="reference"`` (interpreter) or
        ``engine="trace"`` (superblock compiler).  Armed watchpoints route
        the run to :meth:`run_watched` regardless of engine.  An attached
        profiler rides along on every engine; frames still open when the
        program halts are closed at the final cycle count.
        """
        if self.watchpoints:
            cycles = self.run_watched(max_steps)
        elif self.engine == "trace":
            from .trace import TraceEngine

            if self._trace_engine is None:
                self._trace_engine = TraceEngine(self)
            cycles = self._trace_engine.run(max_steps)
        elif self.engine == "fast":
            from .engine import FastEngine

            if self._fast_engine is None:
                self._fast_engine = FastEngine(self)
            cycles = self._fast_engine.run(max_steps)
        else:
            cycles = self.run_reference(max_steps)
        if self.profiler is not None and self.halted:
            self.profiler.finish(self.cycles)
        return cycles

    def run_reference(self, max_steps: int = 50_000_000) -> int:
        """Run on the reference :meth:`step` interpreter until ``BREAK``."""
        steps = 0
        while not self.halted:
            self.step()
            steps += 1
            if steps > max_steps:
                raise ExecutionError(
                    f"step budget of {max_steps} exceeded at pc={self.pc:#06x}"
                )
        return self.cycles

    def run_watched(self, max_steps: int = 50_000_000) -> int:
        """Reference stepping that records writes to :attr:`watchpoints`.

        Every retired instruction that changes a watched data-space byte
        appends ``(pc, address, old, new)`` to :attr:`watch_hits` (*pc* is
        the address of the writing instruction).  The watchpoint set is
        snapshot at entry.  This is the bottom of the fallback ladder: the
        compiled engines hand a run over here as soon as the set becomes
        non-empty.
        """
        mem = self.data._mem
        watched = tuple(sorted(self.watchpoints))
        old = {a: mem[a] for a in watched}
        steps = 0
        while not self.halted:
            pc = self.pc
            self.step()
            for a in watched:
                v = mem[a]
                if v != old[a]:
                    self.watch_hits.append((pc, a, old[a], v))
                    old[a] = v
            steps += 1
            if steps > max_steps:
                raise ExecutionError(
                    f"step budget of {max_steps} exceeded at pc={self.pc:#06x}"
                )
        return self.cycles

    def call(self, word_address: int, max_steps: int = 50_000_000) -> int:
        """Run the subroutine at *word_address* until it halts (BREAK)."""
        self.reset(pc=word_address)
        return self.run(max_steps)
