"""Instruction-mix, hotspot and call-stack profiling.

The paper breaks its 552-cycle ISE multiplication down by instruction type
(204 loads of which 100 trigger MACs, 40 stores, 83 MOVW, 40 SWAP, 31 NOP).
Attaching a :class:`Profiler` to a core produces the same kind of breakdown
for our kernels — plus a per-PC hotspot table and CALL/RCALL/ICALL-RET
call-stack attribution (flat and cumulative cycles per assembly routine,
with flame-graph-shaped folded stacks).

Two producers feed the same :class:`Profiler`:

* the reference interpreter (:meth:`repro.avr.core.AvrCore.step`) records
  every retired instruction directly, and
* the block-compiling fast engine records per-*block* execution counts into
  an :class:`EngineProfile` (its compiled closures carry the bookkeeping as
  a couple of integer increments per block) which
  :meth:`EngineProfile.fold_into` expands into identical per-group,
  per-PC and per-routine tallies after the run.

The parity tests assert both producers yield the same numbers.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .isa import InstructionSpec

#: Collapse addressing-mode variants into the display groups the paper uses.
_GROUPS = {
    "LD_X": "LD", "LD_XP": "LD", "LD_MX": "LD",
    "LD_YP": "LD", "LD_MY": "LD", "LD_ZP": "LD", "LD_MZ": "LD",
    "LDD_Y": "LDD", "LDD_Z": "LDD", "LDS": "LDS",
    "ST_X": "ST", "ST_XP": "ST", "ST_MX": "ST",
    "ST_YP": "ST", "ST_MY": "ST", "ST_ZP": "ST", "ST_MZ": "ST",
    "STD_Y": "STD", "STD_Z": "STD", "STS": "STS",
    "BRBS": "BRANCH", "BRBC": "BRANCH",
}


def group_of(name: str) -> str:
    """The display group a mnemonic is tallied under."""
    return _GROUPS.get(name, name)


class SymbolIndex:
    """Nearest-symbol lookup over an assembler label table.

    Shared by the profiler's routine attribution and the constant-time
    checker's violation reports (:mod:`repro.avr.taint`): ``name_for``
    returns the nearest label at or below a PC (``name+0xN`` for interior
    addresses, ``sub_0x......`` when no table is installed).
    """

    def __init__(self, symbols: Optional[Dict[str, int]] = None):
        self._index: List[Tuple[int, str]] = []
        if symbols:
            self.set_symbols(symbols)

    def set_symbols(self, symbols: Dict[str, int]) -> None:
        self._index = sorted((addr, name) for name, addr in symbols.items())

    def name_for(self, pc: int) -> str:
        """Best label for *pc*: the nearest symbol at or below it."""
        if self._index:
            i = bisect.bisect_right(self._index, (pc, "￿")) - 1
            if i >= 0:
                addr, name = self._index[i]
                if addr == pc:
                    return name
                return f"{name}+{pc - addr:#x}"
        return f"sub_{pc:#06x}"


#: Instruction semantics that open / close a call frame.
CALL_SEMS = frozenset({"rcall", "call", "icall"})
RET_SEMS = frozenset({"ret", "reti"})

#: Upper bound on retained call frames (Chrome export memory safety); the
#: aggregate routine tables keep counting past it.
MAX_FRAMES = 200_000


@dataclass
class Profiler:
    """Counts retired instructions/cycles per group, PC and call frame."""

    instruction_counts: Counter = field(default_factory=Counter)
    cycle_counts: Counter = field(default_factory=Counter)
    total_instructions: int = 0
    total_cycles: int = 0
    #: Per-PC hotspot tallies (word address -> retired count / cycles).
    pc_counts: Counter = field(default_factory=Counter)
    pc_cycles: Counter = field(default_factory=Counter)
    #: Closed call frames as ``(entry_pc, start_cycle, end_cycle, depth)``,
    #: in close order, capped at :data:`MAX_FRAMES`.
    frames: List[Tuple[int, int, int, int]] = field(default_factory=list)
    frames_dropped: int = 0
    #: Label -> word address, used to name routines (set via
    #: :meth:`set_symbols`; kernel harnesses pass their assembler symbols).
    symbols: Optional[Dict[str, int]] = None

    def __post_init__(self) -> None:
        # Live call stack: [entry_pc, start_cycle, child_cycles].
        self._stack: List[List[int]] = []
        self._flat: Counter = Counter()       # entry_pc -> flat cycles
        self._cum: Counter = Counter()        # entry_pc -> cumulative cycles
        self._calls: Counter = Counter()      # entry_pc -> invocation count
        self._folded: Counter = Counter()     # tuple(entry pcs) -> flat cyc
        self._toplevel_cycles = 0             # cycles inside top-level calls
        self._index = SymbolIndex(self.symbols)

    # -- configuration -------------------------------------------------------

    def set_symbols(self, symbols: Dict[str, int]) -> None:
        """Install an assembler symbol table for routine naming."""
        self.symbols = dict(symbols)
        self._index.set_symbols(self.symbols)

    def name_for(self, pc: int) -> str:
        """Best label for *pc*: the nearest symbol at or below it."""
        return self._index.name_for(pc)

    # -- recording (reference interpreter and engine fold) -------------------

    def record(self, spec: InstructionSpec, cycles: int,
               pc: Optional[int] = None) -> None:
        group = _GROUPS.get(spec.name, spec.name)
        self.instruction_counts[group] += 1
        self.cycle_counts[group] += cycles
        self.total_instructions += 1
        self.total_cycles += cycles
        if pc is not None:
            self.pc_counts[pc] += 1
            self.pc_cycles[pc] += cycles

    def on_call(self, target_pc: int, return_pc: int, cycles: int) -> None:
        """A call instruction retired; *cycles* is the core's cycle count
        just after it (the callee's frame starts there)."""
        self._stack.append([target_pc, cycles, 0])

    def on_ret(self, cycles: int) -> None:
        """A return retired at core cycle count *cycles*."""
        if not self._stack:
            return  # RET without a profiled CALL (e.g. mid-run attach)
        entry_pc, start, child = self._stack.pop()
        total = max(0, cycles - start)
        flat = max(0, total - child)
        self._flat[entry_pc] += flat
        self._cum[entry_pc] += total
        self._calls[entry_pc] += 1
        path = tuple(f[0] for f in self._stack) + (entry_pc,)
        self._folded[path] += flat
        if self._stack:
            self._stack[-1][2] += total
        else:
            self._toplevel_cycles += total
        if len(self.frames) < MAX_FRAMES:
            self.frames.append((entry_pc, start, cycles, len(self._stack)))
        else:
            self.frames_dropped += 1

    def finish(self, cycles: int) -> None:
        """Close frames still open at the end of a run (e.g. after BREAK)."""
        while self._stack:
            self.on_ret(cycles)

    def reset(self) -> None:
        self.instruction_counts.clear()
        self.cycle_counts.clear()
        self.total_instructions = 0
        self.total_cycles = 0
        self.pc_counts.clear()
        self.pc_cycles.clear()
        self.frames.clear()
        self.frames_dropped = 0
        self._stack.clear()
        self._flat.clear()
        self._cum.clear()
        self._calls.clear()
        self._folded.clear()
        self._toplevel_cycles = 0

    # -- reports -------------------------------------------------------------

    def mix(self) -> Dict[str, int]:
        """Instruction counts sorted by frequency (descending)."""
        return dict(self.instruction_counts.most_common())

    def report(self) -> str:
        lines = [f"{'group':<8}{'count':>8}{'cycles':>8}"]
        for group, count in self.instruction_counts.most_common():
            lines.append(
                f"{group:<8}{count:>8}{self.cycle_counts[group]:>8}"
            )
        lines.append(
            f"{'total':<8}{self.total_instructions:>8}{self.total_cycles:>8}"
        )
        return "\n".join(lines)

    def hotspots(self, limit: int = 10) -> List[Tuple[int, int, int]]:
        """Top PCs by cycles as ``(pc, cycles, count)`` rows."""
        return [(pc, cyc, self.pc_counts[pc])
                for pc, cyc in self.pc_cycles.most_common(limit)]

    def routines(self) -> Dict[int, Dict[str, int]]:
        """Flat/cumulative cycle attribution per called routine.

        The implicit top-level frame (everything outside any CALL) appears
        under pc ``-1``; recursive routines double-count in ``cum`` (the
        classic gprof caveat — irrelevant for the non-recursive kernels).
        """
        table: Dict[int, Dict[str, int]] = {}
        for pc in self._cum:
            table[pc] = {"calls": self._calls[pc],
                         "flat": self._flat[pc],
                         "cum": self._cum[pc]}
        table[-1] = {"calls": 1,
                     "flat": max(0, self.total_cycles
                                 - self._toplevel_cycles),
                     "cum": self.total_cycles}
        return table

    def routine_report(self, limit: int = 20) -> str:
        """The flat+cumulative table, named through the symbol table."""
        rows = sorted(self.routines().items(),
                      key=lambda kv: kv[1]["cum"], reverse=True)
        lines = [f"{'routine':<24}{'calls':>8}{'flat cyc':>12}"
                 f"{'cum cyc':>12}{'cum %':>8}"]
        total = max(1, self.total_cycles)
        for pc, row in rows[:limit]:
            name = "(top)" if pc == -1 else self.name_for(pc)
            lines.append(f"{name:<24}{row['calls']:>8}{row['flat']:>12}"
                         f"{row['cum']:>12}{100 * row['cum'] / total:>7.1f}%")
        return "\n".join(lines)

    def folded_stacks(self) -> List[str]:
        """Flame-graph-shaped output: ``main;callee;... flat_cycles``.

        Feed directly to ``flamegraph.pl`` or any folded-stack renderer.
        """
        lines = []
        top_flat = max(0, self.total_cycles - self._toplevel_cycles)
        if top_flat:
            lines.append(f"main {top_flat}")
        for path, flat in sorted(self._folded.items()):
            if not flat:
                continue
            names = ";".join(self.name_for(pc) for pc in path)
            lines.append(f"main;{names} {flat}")
        return lines


# ---------------------------------------------------------------------------
# Fast-engine accumulation
# ---------------------------------------------------------------------------


class BlockStatic:
    """Compile-time profile of one basic block (shared via the block cache).

    ``instrs`` lists ``(pc, group, base_cycles)`` per instruction;
    ``sites`` maps each dynamic-extra site (taken branch, skip, MAC stall)
    to the index of the instruction it belongs to.  The per-group and
    per-PC aggregates are precomputed here so the per-run fold is a
    handful of ``Counter.update`` calls (C-speed dict merges) instead of
    a Python loop over every instruction — this is what keeps profiled
    runs of short, straight-line kernels within the documented 2x of the
    unprofiled fast engine.
    """

    __slots__ = ("instrs", "sites", "group_counts", "group_cycles",
                 "pc_counts", "pc_cycles", "n_instrs", "base_cycles")

    def __init__(self, instrs: Tuple[Tuple[int, str, int], ...],
                 sites: Tuple[int, ...]):
        self.instrs = instrs
        self.sites = sites
        group_counts: Dict[str, int] = {}
        group_cycles: Dict[str, int] = {}
        pc_counts: Dict[int, int] = {}
        pc_cycles: Dict[int, int] = {}
        total = 0
        for pc, group, cyc in instrs:
            group_counts[group] = group_counts.get(group, 0) + 1
            group_cycles[group] = group_cycles.get(group, 0) + cyc
            pc_counts[pc] = pc_counts.get(pc, 0) + 1
            pc_cycles[pc] = pc_cycles.get(pc, 0) + cyc
            total += cyc
        self.group_counts = group_counts
        self.group_cycles = group_cycles
        self.pc_counts = pc_counts
        self.pc_cycles = pc_cycles
        self.n_instrs = len(instrs)
        self.base_cycles = total


class EngineProfile:
    """Raw per-block tallies filled in by profiled compiled blocks.

    Per block start PC one mutable list ``[hits, ext_0, ext_1, ...]``: the
    closure bumps ``hits`` once per complete execution and adds dynamic
    extra *cycles* into its site slots inline.  Executions aborted by an
    exception append ``(start_pc, completed_instructions)`` to
    ``partials``; call/return terminators append ``(kind, target,
    return_pc, cycle)`` events.  :meth:`fold_into` expands everything into
    a :class:`Profiler` and re-arms the arrays, so folding is incremental
    across multiple ``run()`` calls.
    """

    def __init__(self):
        self.counts: Dict[int, List[int]] = {}
        self.statics: Dict[int, BlockStatic] = {}
        self.partials: List[Tuple[int, int]] = []
        #: (0=call, 1=ret, target_pc, return_pc, cycle_count) events.
        self.events: List[Tuple[int, int, int, int]] = []

    def register(self, start_pc: int, static: BlockStatic) -> None:
        """Arm the counters for a (re)compiled block."""
        self.statics[start_pc] = static
        self.counts[start_pc] = [0] * (1 + len(static.sites))

    def fold_into(self, profiler: Profiler) -> None:
        """Expand raw block tallies into *profiler* and zero them."""
        for start_pc, cnt in self.counts.items():
            static = self.statics[start_pc]
            hits = cnt[0]
            if hits:
                if hits == 1:
                    profiler.instruction_counts.update(static.group_counts)
                    profiler.cycle_counts.update(static.group_cycles)
                    profiler.pc_counts.update(static.pc_counts)
                    profiler.pc_cycles.update(static.pc_cycles)
                else:
                    profiler.instruction_counts.update(
                        {g: c * hits
                         for g, c in static.group_counts.items()})
                    profiler.cycle_counts.update(
                        {g: c * hits
                         for g, c in static.group_cycles.items()})
                    profiler.pc_counts.update(
                        {pc: c * hits
                         for pc, c in static.pc_counts.items()})
                    profiler.pc_cycles.update(
                        {pc: c * hits
                         for pc, c in static.pc_cycles.items()})
                profiler.total_instructions += static.n_instrs * hits
                profiler.total_cycles += static.base_cycles * hits
                cnt[0] = 0
            for j, instr_index in enumerate(static.sites):
                ext = cnt[1 + j]
                if ext:
                    pc, group, _ = static.instrs[instr_index]
                    profiler.cycle_counts[group] += ext
                    profiler.pc_cycles[pc] += ext
                    profiler.total_cycles += ext
                    cnt[1 + j] = 0
        for start_pc, completed in self.partials:
            static = self.statics.get(start_pc)
            if static is None:
                continue
            for pc, group, cyc in static.instrs[:completed]:
                profiler.instruction_counts[group] += 1
                profiler.cycle_counts[group] += cyc
                profiler.pc_counts[pc] += 1
                profiler.pc_cycles[pc] += cyc
                profiler.total_instructions += 1
                profiler.total_cycles += cyc
        self.partials.clear()
        for kind, target, return_pc, cycle in self.events:
            if kind == 0:
                profiler.on_call(target, return_pc, cycle)
            else:
                profiler.on_ret(cycle)
        self.events.clear()
