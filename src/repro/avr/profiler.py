"""Instruction-mix profiling.

The paper breaks its 552-cycle ISE multiplication down by instruction type
(204 loads of which 100 trigger MACs, 40 stores, 83 MOVW, 40 SWAP, 31 NOP).
Attaching a :class:`Profiler` to a core produces the same kind of breakdown
for our kernels, which the Table I / Fig. 1 benchmarks report next to the
paper's numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from .isa import InstructionSpec

#: Collapse addressing-mode variants into the display groups the paper uses.
_GROUPS = {
    "LD_X": "LD", "LD_XP": "LD", "LD_MX": "LD",
    "LD_YP": "LD", "LD_MY": "LD", "LD_ZP": "LD", "LD_MZ": "LD",
    "LDD_Y": "LDD", "LDD_Z": "LDD", "LDS": "LDS",
    "ST_X": "ST", "ST_XP": "ST", "ST_MX": "ST",
    "ST_YP": "ST", "ST_MY": "ST", "ST_ZP": "ST", "ST_MZ": "ST",
    "STD_Y": "STD", "STD_Z": "STD", "STS": "STS",
    "BRBS": "BRANCH", "BRBC": "BRANCH",
}


@dataclass
class Profiler:
    """Counts retired instructions and cycles per mnemonic group."""

    instruction_counts: Counter = field(default_factory=Counter)
    cycle_counts: Counter = field(default_factory=Counter)
    total_instructions: int = 0
    total_cycles: int = 0

    def record(self, spec: InstructionSpec, cycles: int) -> None:
        group = _GROUPS.get(spec.name, spec.name)
        self.instruction_counts[group] += 1
        self.cycle_counts[group] += cycles
        self.total_instructions += 1
        self.total_cycles += cycles

    def reset(self) -> None:
        self.instruction_counts.clear()
        self.cycle_counts.clear()
        self.total_instructions = 0
        self.total_cycles = 0

    def mix(self) -> Dict[str, int]:
        """Instruction counts sorted by frequency (descending)."""
        return dict(self.instruction_counts.most_common())

    def report(self) -> str:
        lines = [f"{'group':<8}{'count':>8}{'cycles':>8}"]
        for group, count in self.instruction_counts.most_common():
            lines.append(
                f"{group:<8}{count:>8}{self.cycle_counts[group]:>8}"
            )
        lines.append(
            f"{'total':<8}{self.total_instructions:>8}{self.total_cycles:>8}"
        )
        return "\n".join(lines)
