"""Instruction semantics.

Every executor is a function ``sem_<key>(core, ops) -> Optional[int]``.
It mutates the core's architectural state and returns the next program
counter (``None`` means fall through to the following instruction).  Dynamic
timing facts (branch taken, words skipped) are recorded on the core for the
timing model.

The functions implement the AVR instruction-set manual's register/flag
semantics byte-exactly; the test suite cross-checks them against
hand-computed vectors and against algebraic properties (e.g. multi-byte
ADD/ADC chains equal big-int addition).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from . import sreg as F
from .isa import instruction_words
from .memory import REG_X, REG_Y, REG_Z

Executor = Callable[["AvrCore", Dict[str, int]], Optional[int]]

EXECUTORS: Dict[str, Executor] = {}


def _executor(key: str) -> Callable[[Executor], Executor]:
    def register(fn: Executor) -> Executor:
        EXECUTORS[key] = fn
        return fn
    return register


# ---------------------------------------------------------------------------
# ALU: addition / subtraction
# ---------------------------------------------------------------------------


@_executor("add")
def sem_add(core, ops):
    rd, rr = core.data.reg(ops["d"]), core.data.reg(ops["r"])
    result = (rd + rr) & 0xFF
    F.flags_add(core.sreg, rd, rr, result)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("adc")
def sem_adc(core, ops):
    rd, rr = core.data.reg(ops["d"]), core.data.reg(ops["r"])
    carry = core.sreg[F.C]
    result = (rd + rr + carry) & 0xFF
    F.flags_add(core.sreg, rd, rr, result, carry)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("sub")
def sem_sub(core, ops):
    rd, rr = core.data.reg(ops["d"]), core.data.reg(ops["r"])
    result = (rd - rr) & 0xFF
    F.flags_sub(core.sreg, rd, rr, result)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("sbc")
def sem_sbc(core, ops):
    rd, rr = core.data.reg(ops["d"]), core.data.reg(ops["r"])
    carry = core.sreg[F.C]
    result = (rd - rr - carry) & 0xFF
    F.flags_sub(core.sreg, rd, rr, result, carry, keep_z=True)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("subi")
def sem_subi(core, ops):
    rd = core.data.reg(ops["d"])
    result = (rd - ops["K"]) & 0xFF
    F.flags_sub(core.sreg, rd, ops["K"], result)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("sbci")
def sem_sbci(core, ops):
    rd = core.data.reg(ops["d"])
    carry = core.sreg[F.C]
    result = (rd - ops["K"] - carry) & 0xFF
    F.flags_sub(core.sreg, rd, ops["K"], result, carry, keep_z=True)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("adiw")
def sem_adiw(core, ops):
    pair = core.data.reg_pair(ops["d"])
    result = (pair + ops["K"]) & 0xFFFF
    s = core.sreg
    s[F.C] = 1 if pair + ops["K"] > 0xFFFF else 0
    s[F.Z] = 1 if result == 0 else 0
    s[F.N] = result >> 15 & 1
    s[F.V] = 1 if (~pair & result & 0x8000) else 0
    s.set_sign()
    core.data.set_reg_pair(ops["d"], result)
    return None


@_executor("sbiw")
def sem_sbiw(core, ops):
    pair = core.data.reg_pair(ops["d"])
    result = (pair - ops["K"]) & 0xFFFF
    s = core.sreg
    s[F.C] = 1 if ops["K"] > pair else 0
    s[F.Z] = 1 if result == 0 else 0
    s[F.N] = result >> 15 & 1
    s[F.V] = 1 if (pair & ~result & 0x8000) else 0
    s.set_sign()
    core.data.set_reg_pair(ops["d"], result)
    return None


# ---------------------------------------------------------------------------
# ALU: logic
# ---------------------------------------------------------------------------


def _logic(core, d: int, result: int) -> None:
    F.flags_logic(core.sreg, result)
    core.data.set_reg(d, result & 0xFF)


@_executor("and")
def sem_and(core, ops):
    _logic(core, ops["d"], core.data.reg(ops["d"]) & core.data.reg(ops["r"]))
    return None


@_executor("andi")
def sem_andi(core, ops):
    _logic(core, ops["d"], core.data.reg(ops["d"]) & ops["K"])
    return None


@_executor("or")
def sem_or(core, ops):
    _logic(core, ops["d"], core.data.reg(ops["d"]) | core.data.reg(ops["r"]))
    return None


@_executor("ori")
def sem_ori(core, ops):
    _logic(core, ops["d"], core.data.reg(ops["d"]) | ops["K"])
    return None


@_executor("eor")
def sem_eor(core, ops):
    _logic(core, ops["d"], core.data.reg(ops["d"]) ^ core.data.reg(ops["r"]))
    return None


@_executor("com")
def sem_com(core, ops):
    result = (~core.data.reg(ops["d"])) & 0xFF
    F.flags_logic(core.sreg, result)
    core.sreg[F.C] = 1  # COM always sets carry
    core.sreg.set_sign()
    core.data.set_reg(ops["d"], result)
    return None


@_executor("neg")
def sem_neg(core, ops):
    rd = core.data.reg(ops["d"])
    result = (-rd) & 0xFF
    s = core.sreg
    s[F.H] = ((result >> 3) | (rd >> 3)) & 1  # H = R3 | Rd3 per the manual
    s[F.C] = 0 if result == 0 else 1
    s[F.Z] = 1 if result == 0 else 0
    s[F.N] = result >> 7 & 1
    s[F.V] = 1 if result == 0x80 else 0
    s.set_sign()
    core.data.set_reg(ops["d"], result)
    return None


@_executor("inc")
def sem_inc(core, ops):
    result = (core.data.reg(ops["d"]) + 1) & 0xFF
    s = core.sreg
    s[F.Z] = 1 if result == 0 else 0
    s[F.N] = result >> 7 & 1
    s[F.V] = 1 if result == 0x80 else 0
    s.set_sign()
    core.data.set_reg(ops["d"], result)
    return None


@_executor("dec")
def sem_dec(core, ops):
    result = (core.data.reg(ops["d"]) - 1) & 0xFF
    s = core.sreg
    s[F.Z] = 1 if result == 0 else 0
    s[F.N] = result >> 7 & 1
    s[F.V] = 1 if result == 0x7F else 0
    s.set_sign()
    core.data.set_reg(ops["d"], result)
    return None


# ---------------------------------------------------------------------------
# ALU: shifts, swap, bit transfer
# ---------------------------------------------------------------------------


@_executor("lsr")
def sem_lsr(core, ops):
    rd = core.data.reg(ops["d"])
    result = rd >> 1
    F.flags_shift_right(core.sreg, result, rd & 1)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("ror")
def sem_ror(core, ops):
    rd = core.data.reg(ops["d"])
    result = (rd >> 1) | (core.sreg[F.C] << 7)
    F.flags_shift_right(core.sreg, result, rd & 1)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("asr")
def sem_asr(core, ops):
    rd = core.data.reg(ops["d"])
    result = (rd >> 1) | (rd & 0x80)
    F.flags_shift_right(core.sreg, result, rd & 1)
    core.data.set_reg(ops["d"], result)
    return None


@_executor("swap")
def sem_swap(core, ops):
    rd = core.data.reg(ops["d"])
    result = ((rd << 4) | (rd >> 4)) & 0xFF
    core.data.set_reg(ops["d"], result)
    # No flags.  In ISE mode the MAC unit snoops this instruction (the
    # paper's Algorithm 1): the nibble fed to the multiplier is the register's
    # low nibble *before* the exchange, so a SWAP pair processes low-then-high.
    core.notify_swap(ops["d"], rd)
    return None


@_executor("bld")
def sem_bld(core, ops):
    rd = core.data.reg(ops["d"])
    if core.sreg[F.T]:
        rd |= 1 << ops["b"]
    else:
        rd &= ~(1 << ops["b"]) & 0xFF
    core.data.set_reg(ops["d"], rd)
    return None


@_executor("bst")
def sem_bst(core, ops):
    core.sreg[F.T] = (core.data.reg(ops["d"]) >> ops["b"]) & 1
    return None


@_executor("bset")
def sem_bset(core, ops):
    core.sreg[ops["s"]] = 1
    return None


@_executor("bclr")
def sem_bclr(core, ops):
    core.sreg[ops["s"]] = 0
    return None


# ---------------------------------------------------------------------------
# Compares and skips
# ---------------------------------------------------------------------------


@_executor("cp")
def sem_cp(core, ops):
    rd, rr = core.data.reg(ops["d"]), core.data.reg(ops["r"])
    F.flags_sub(core.sreg, rd, rr, (rd - rr) & 0xFF)
    return None


@_executor("cpc")
def sem_cpc(core, ops):
    rd, rr = core.data.reg(ops["d"]), core.data.reg(ops["r"])
    carry = core.sreg[F.C]
    F.flags_sub(core.sreg, rd, rr, (rd - rr - carry) & 0xFF, carry,
                keep_z=True)
    return None


@_executor("cpi")
def sem_cpi(core, ops):
    rd = core.data.reg(ops["d"])
    F.flags_sub(core.sreg, rd, ops["K"], (rd - ops["K"]) & 0xFF)
    return None


def _skip_next(core) -> int:
    """Return the PC after skipping the next instruction; records timing."""
    next_pc = core.pc + 1  # skips are all 1-word instructions
    words = instruction_words(core.program.fetch(next_pc))
    core.last_skip_words = words
    return next_pc + words


@_executor("cpse")
def sem_cpse(core, ops):
    if core.data.reg(ops["d"]) == core.data.reg(ops["r"]):
        return _skip_next(core)
    return None


@_executor("sbrc")
def sem_sbrc(core, ops):
    if not (core.data.reg(ops["d"]) >> ops["b"]) & 1:
        return _skip_next(core)
    return None


@_executor("sbrs")
def sem_sbrs(core, ops):
    if (core.data.reg(ops["d"]) >> ops["b"]) & 1:
        return _skip_next(core)
    return None


@_executor("sbic")
def sem_sbic(core, ops):
    if not (core.data.io_read(ops["A"]) >> ops["b"]) & 1:
        return _skip_next(core)
    return None


@_executor("sbis")
def sem_sbis(core, ops):
    if (core.data.io_read(ops["A"]) >> ops["b"]) & 1:
        return _skip_next(core)
    return None


# ---------------------------------------------------------------------------
# Multiplier group
# ---------------------------------------------------------------------------


def _mul_common(core, product: int) -> None:
    core.data.set_reg(0, product & 0xFF)
    core.data.set_reg(1, (product >> 8) & 0xFF)
    core.sreg[F.C] = (product >> 15) & 1
    core.sreg[F.Z] = 1 if (product & 0xFFFF) == 0 else 0


def _signed8(v: int) -> int:
    return v - 256 if v & 0x80 else v


@_executor("mul")
def sem_mul(core, ops):
    product = core.data.reg(ops["d"]) * core.data.reg(ops["r"])
    _mul_common(core, product)
    return None


@_executor("muls")
def sem_muls(core, ops):
    product = _signed8(core.data.reg(ops["d"])) * _signed8(core.data.reg(ops["r"]))
    _mul_common(core, product & 0xFFFF)
    return None


@_executor("mulsu")
def sem_mulsu(core, ops):
    product = _signed8(core.data.reg(ops["d"])) * core.data.reg(ops["r"])
    _mul_common(core, product & 0xFFFF)
    return None


@_executor("fmul")
def sem_fmul(core, ops):
    product = core.data.reg(ops["d"]) * core.data.reg(ops["r"])
    core.sreg[F.C] = (product >> 15) & 1
    product = (product << 1) & 0xFFFF
    core.data.set_reg(0, product & 0xFF)
    core.data.set_reg(1, (product >> 8) & 0xFF)
    core.sreg[F.Z] = 1 if product == 0 else 0
    return None


@_executor("fmuls")
def sem_fmuls(core, ops):
    product = _signed8(core.data.reg(ops["d"])) * _signed8(core.data.reg(ops["r"]))
    core.sreg[F.C] = (product >> 15) & 1
    product = (product << 1) & 0xFFFF
    core.data.set_reg(0, product & 0xFF)
    core.data.set_reg(1, (product >> 8) & 0xFF)
    core.sreg[F.Z] = 1 if product == 0 else 0
    return None


@_executor("fmulsu")
def sem_fmulsu(core, ops):
    product = _signed8(core.data.reg(ops["d"])) * core.data.reg(ops["r"])
    core.sreg[F.C] = (product >> 15) & 1
    product = (product << 1) & 0xFFFF
    core.data.set_reg(0, product & 0xFF)
    core.data.set_reg(1, (product >> 8) & 0xFF)
    core.sreg[F.Z] = 1 if product == 0 else 0
    return None


# ---------------------------------------------------------------------------
# Data transfer
# ---------------------------------------------------------------------------


@_executor("mov")
def sem_mov(core, ops):
    core.data.set_reg(ops["d"], core.data.reg(ops["r"]))
    return None


@_executor("movw")
def sem_movw(core, ops):
    core.data.set_reg(ops["d"], core.data.reg(ops["r"]))
    core.data.set_reg(ops["d"] + 1, core.data.reg(ops["r"] + 1))
    return None


@_executor("ldi")
def sem_ldi(core, ops):
    core.data.set_reg(ops["d"], ops["K"])
    return None


def _load(core, d: int, address: int) -> None:
    core.data.set_reg(d, core.data.read(address))
    core.notify_load(d)


@_executor("lds")
def sem_lds(core, ops):
    _load(core, ops["d"], ops["k"])
    return None


def _ld_indirect(core, ops, pointer: int, pre_dec: bool = False,
                 post_inc: bool = False) -> None:
    addr = core.data.reg_pair(pointer)
    if pre_dec:
        addr = (addr - 1) & 0xFFFF
        core.data.set_reg_pair(pointer, addr)
    _load(core, ops["d"], addr)
    if post_inc:
        core.data.set_reg_pair(pointer, (addr + 1) & 0xFFFF)


@_executor("ld_x")
def sem_ld_x(core, ops):
    _ld_indirect(core, ops, REG_X)
    return None


@_executor("ld_xp")
def sem_ld_xp(core, ops):
    _ld_indirect(core, ops, REG_X, post_inc=True)
    return None


@_executor("ld_mx")
def sem_ld_mx(core, ops):
    _ld_indirect(core, ops, REG_X, pre_dec=True)
    return None


@_executor("ld_yp")
def sem_ld_yp(core, ops):
    _ld_indirect(core, ops, REG_Y, post_inc=True)
    return None


@_executor("ld_my")
def sem_ld_my(core, ops):
    _ld_indirect(core, ops, REG_Y, pre_dec=True)
    return None


@_executor("ld_zp")
def sem_ld_zp(core, ops):
    _ld_indirect(core, ops, REG_Z, post_inc=True)
    return None


@_executor("ld_mz")
def sem_ld_mz(core, ops):
    _ld_indirect(core, ops, REG_Z, pre_dec=True)
    return None


@_executor("ldd_y")
def sem_ldd_y(core, ops):
    _load(core, ops["d"], (core.data.reg_pair(REG_Y) + ops["q"]) & 0xFFFF)
    return None


@_executor("ldd_z")
def sem_ldd_z(core, ops):
    _load(core, ops["d"], (core.data.reg_pair(REG_Z) + ops["q"]) & 0xFFFF)
    return None


def _store(core, address: int, d: int) -> None:
    core.data.write(address, core.data.reg(d))


@_executor("sts")
def sem_sts(core, ops):
    _store(core, ops["k"], ops["d"])
    return None


def _st_indirect(core, ops, pointer: int, pre_dec: bool = False,
                 post_inc: bool = False) -> None:
    addr = core.data.reg_pair(pointer)
    if pre_dec:
        addr = (addr - 1) & 0xFFFF
        core.data.set_reg_pair(pointer, addr)
    _store(core, addr, ops["d"])
    if post_inc:
        core.data.set_reg_pair(pointer, (addr + 1) & 0xFFFF)


@_executor("st_x")
def sem_st_x(core, ops):
    _st_indirect(core, ops, REG_X)
    return None


@_executor("st_xp")
def sem_st_xp(core, ops):
    _st_indirect(core, ops, REG_X, post_inc=True)
    return None


@_executor("st_mx")
def sem_st_mx(core, ops):
    _st_indirect(core, ops, REG_X, pre_dec=True)
    return None


@_executor("st_yp")
def sem_st_yp(core, ops):
    _st_indirect(core, ops, REG_Y, post_inc=True)
    return None


@_executor("st_my")
def sem_st_my(core, ops):
    _st_indirect(core, ops, REG_Y, pre_dec=True)
    return None


@_executor("st_zp")
def sem_st_zp(core, ops):
    _st_indirect(core, ops, REG_Z, post_inc=True)
    return None


@_executor("st_mz")
def sem_st_mz(core, ops):
    _st_indirect(core, ops, REG_Z, pre_dec=True)
    return None


@_executor("std_y")
def sem_std_y(core, ops):
    _store(core, (core.data.reg_pair(REG_Y) + ops["q"]) & 0xFFFF, ops["d"])
    return None


@_executor("std_z")
def sem_std_z(core, ops):
    _store(core, (core.data.reg_pair(REG_Z) + ops["q"]) & 0xFFFF, ops["d"])
    return None


@_executor("push")
def sem_push(core, ops):
    sp = core.data.sp
    core.data.write(sp, core.data.reg(ops["d"]))
    core.data.sp = (sp - 1) & 0xFFFF
    return None


@_executor("pop")
def sem_pop(core, ops):
    sp = (core.data.sp + 1) & 0xFFFF
    core.data.sp = sp
    core.data.set_reg(ops["d"], core.data.read(sp))
    return None


@_executor("in")
def sem_in(core, ops):
    core.data.set_reg(ops["d"], core.data.io_read(ops["A"]))
    return None


@_executor("out")
def sem_out(core, ops):
    core.data.io_write(ops["A"], core.data.reg(ops["d"]))
    return None


@_executor("sbi")
def sem_sbi(core, ops):
    core.data.io_write(ops["A"], core.data.io_read(ops["A"]) | (1 << ops["b"]))
    return None


@_executor("cbi")
def sem_cbi(core, ops):
    core.data.io_write(ops["A"],
                       core.data.io_read(ops["A"]) & ~(1 << ops["b"]) & 0xFF)
    return None


@_executor("lpm_r0")
def sem_lpm_r0(core, ops):
    core.data.set_reg(0, core.program.read_byte(core.data.reg_pair(REG_Z)))
    return None


@_executor("lpm_z")
def sem_lpm_z(core, ops):
    core.data.set_reg(ops["d"],
                      core.program.read_byte(core.data.reg_pair(REG_Z)))
    return None


@_executor("lpm_zp")
def sem_lpm_zp(core, ops):
    z = core.data.reg_pair(REG_Z)
    core.data.set_reg(ops["d"], core.program.read_byte(z))
    core.data.set_reg_pair(REG_Z, (z + 1) & 0xFFFF)
    return None


# ---------------------------------------------------------------------------
# Flow control
# ---------------------------------------------------------------------------


@_executor("rjmp")
def sem_rjmp(core, ops):
    from .encoding import sign_extend

    return core.pc + 1 + sign_extend(ops["k"], 12)


@_executor("jmp")
def sem_jmp(core, ops):
    return ops["k"]


@_executor("ijmp")
def sem_ijmp(core, ops):
    return core.data.reg_pair(REG_Z)


def _push_return(core, return_pc: int) -> None:
    """Push a 16-bit return address (big-endian high byte deeper)."""
    sp = core.data.sp
    core.data.write(sp, return_pc & 0xFF)
    core.data.write((sp - 1) & 0xFFFF, (return_pc >> 8) & 0xFF)
    core.data.sp = (sp - 2) & 0xFFFF


def _pop_return(core) -> int:
    sp = core.data.sp
    high = core.data.read((sp + 1) & 0xFFFF)
    low = core.data.read((sp + 2) & 0xFFFF)
    core.data.sp = (sp + 2) & 0xFFFF
    return (high << 8) | low


@_executor("rcall")
def sem_rcall(core, ops):
    from .encoding import sign_extend

    _push_return(core, core.pc + 1)
    return core.pc + 1 + sign_extend(ops["k"], 12)


@_executor("call")
def sem_call(core, ops):
    _push_return(core, core.pc + 2)
    return ops["k"]


@_executor("icall")
def sem_icall(core, ops):
    _push_return(core, core.pc + 1)
    return core.data.reg_pair(REG_Z)


@_executor("ret")
def sem_ret(core, ops):
    return _pop_return(core)


@_executor("reti")
def sem_reti(core, ops):
    core.sreg[F.I] = 1
    return _pop_return(core)


@_executor("brbs")
def sem_brbs(core, ops):
    from .encoding import sign_extend

    if core.sreg[ops["s"]]:
        core.last_branch_taken = True
        return core.pc + 1 + sign_extend(ops["k"], 7)
    return None


@_executor("brbc")
def sem_brbc(core, ops):
    from .encoding import sign_extend

    if not core.sreg[ops["s"]]:
        core.last_branch_taken = True
        return core.pc + 1 + sign_extend(ops["k"], 7)
    return None


@_executor("nop")
def sem_nop(core, ops):
    return None


@_executor("break")
def sem_break(core, ops):
    core.halted = True
    return core.pc  # stay put; the run loop stops on `halted`
