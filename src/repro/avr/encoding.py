"""Generic bit-pattern instruction encoding and decoding.

Instruction encodings are written as 16-character pattern strings (MSB
first), e.g. ``ADD`` is ``"000011rdddddrrrr"``: '0'/'1' are fixed bits and
each letter names an operand field.  Split fields (like the r/d operands of
the register-register ALU group) fall out naturally: a letter's occurrences
from left to right are the field's bits from most- to least-significant.

The same table drives both the assembler (encode) and the simulator/
disassembler (decode), so an encode→decode round trip is identity by
construction — a property the test suite checks exhaustively per opcode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BitPattern:
    """A compiled 16-bit pattern: fixed mask/value plus per-letter bit maps."""

    pattern: str
    fixed_mask: int
    fixed_value: int
    #: letter -> list of word bit positions, MSB of the field first.
    fields: Dict[str, Tuple[int, ...]]

    @classmethod
    def compile(cls, pattern: str) -> "BitPattern":
        bits = pattern.replace(" ", "").replace("_", "")
        if len(bits) != 16:
            raise ValueError(f"pattern must have 16 bits, got {len(bits)}: {pattern!r}")
        fixed_mask = 0
        fixed_value = 0
        fields: Dict[str, List[int]] = {}
        for i, ch in enumerate(bits):
            pos = 15 - i  # leftmost char is bit 15
            if ch == "0":
                fixed_mask |= 1 << pos
            elif ch == "1":
                fixed_mask |= 1 << pos
                fixed_value |= 1 << pos
            elif ch.isalpha():
                fields.setdefault(ch, []).append(pos)
            else:
                raise ValueError(f"bad pattern character {ch!r} in {pattern!r}")
        return cls(
            pattern=bits,
            fixed_mask=fixed_mask,
            fixed_value=fixed_value,
            fields={k: tuple(v) for k, v in fields.items()},
        )

    def field_width(self, letter: str) -> int:
        return len(self.fields[letter])

    def encode(self, field_values: Dict[str, int]) -> int:
        """Build the instruction word from per-letter field values."""
        word = self.fixed_value
        for letter, positions in self.fields.items():
            try:
                value = field_values[letter]
            except KeyError:
                raise KeyError(
                    f"missing field {letter!r} for pattern {self.pattern}"
                ) from None
            width = len(positions)
            if not 0 <= value < (1 << width):
                raise ValueError(
                    f"field {letter!r} value {value} does not fit in "
                    f"{width} bits (pattern {self.pattern})"
                )
            for i, pos in enumerate(positions):
                bit = (value >> (width - 1 - i)) & 1
                word |= bit << pos
        return word

    def matches(self, word: int) -> bool:
        return (word & self.fixed_mask) == self.fixed_value

    def decode(self, word: int) -> Dict[str, int]:
        """Extract per-letter field values (assumes :meth:`matches`)."""
        out: Dict[str, int] = {}
        for letter, positions in self.fields.items():
            value = 0
            for pos in positions:
                value = (value << 1) | ((word >> pos) & 1)
            out[letter] = value
        return out

    @property
    def specificity(self) -> int:
        """Number of fixed bits; decoders try more-specific patterns first."""
        return bin(self.fixed_mask).count("1")


def sign_extend(value: int, bits: int) -> int:
    """Interpret *value* as a signed two's-complement number of *bits* bits."""
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def to_twos_complement(value: int, bits: int) -> int:
    """Encode a signed value into *bits* bits (raises if out of range)."""
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"value {value} out of signed {bits}-bit range")
    return value & ((1 << bits) - 1)
