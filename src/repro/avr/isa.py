"""The AVR instruction-set table: encodings, operands, and metadata.

Each :class:`InstructionSpec` couples a canonical name, the display
mnemonic + operand syntax, the 16-bit encoding pattern, the operand
descriptors (with their register/immediate transforms), the word count, and
the key of its semantics function in :mod:`repro.avr.instructions`.

The table covers the ATmega128 instruction set as exercised by C compilers
and the paper's assembly kernels: the full ALU group, the multiplier group,
all load/store addressing modes, flow control, bit manipulation and MCU
control.  (Omitted: EEPROM/SPM store-to-flash and interrupt hardware, which
none of the paper's code paths touch.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .encoding import BitPattern

# Operand kinds and their (logical value -> field value) transforms.
REG5 = "reg5"        # R0..R31
REG4 = "reg4"        # R16..R31
REG3 = "reg3"        # R16..R23
REGPAIR = "regpair"  # even register, encoded /2 (MOVW)
REGW = "regw"        # R24/R26/R28/R30, encoded (r-24)/2 (ADIW/SBIW)
UIMM = "uimm"        # unsigned immediate, stored as-is
IOADDR = "io"        # I/O address 0..63 (or 0..31 for SBI group)
BITNUM = "bit"       # bit index 0..7
FLAGNUM = "flag"     # SREG flag index 0..7
DISP = "disp"        # LDD/STD displacement 0..63
REL = "rel"          # signed word displacement (branch/rjmp)
ABS = "abs"          # 16-bit absolute (second word: LDS/STS/JMP/CALL)


@dataclass(frozen=True)
class OperandSpec:
    name: str     # semantic name used by the executor ('d', 'r', 'K', ...)
    letter: str   # pattern letter; '' when carried by the second word
    kind: str

    def to_field(self, value: int) -> int:
        if self.kind == REG5:
            if not 0 <= value <= 31:
                raise ValueError(f"register R{value} out of range 0..31")
            return value
        if self.kind == REG4:
            if not 16 <= value <= 31:
                raise ValueError(f"register R{value} not in R16..R31")
            return value - 16
        if self.kind == REG3:
            if not 16 <= value <= 23:
                raise ValueError(f"register R{value} not in R16..R23")
            return value - 16
        if self.kind == REGPAIR:
            if value % 2 or not 0 <= value <= 30:
                raise ValueError(f"R{value} is not a valid even register pair")
            return value // 2
        if self.kind == REGW:
            if value not in (24, 26, 28, 30):
                raise ValueError(f"R{value} is not valid for ADIW/SBIW")
            return (value - 24) // 2
        return value  # UIMM/IOADDR/BITNUM/FLAGNUM/DISP/REL(pre-encoded)/ABS

    def from_field(self, field: int) -> int:
        if self.kind == REG4:
            return field + 16
        if self.kind == REG3:
            return field + 16
        if self.kind == REGPAIR:
            return field * 2
        if self.kind == REGW:
            return field * 2 + 24
        return field


@dataclass(frozen=True)
class InstructionSpec:
    name: str                      # canonical unique name, e.g. 'LD_XP'
    mnemonic: str                  # display mnemonic, e.g. 'LD'
    syntax: str                    # operand template, e.g. 'Rd, X+'
    pattern_str: str
    operands: Tuple[OperandSpec, ...]
    semantics: str                 # key into the executor table
    words: int = 1

    def __post_init__(self):
        object.__setattr__(self, "pattern", BitPattern.compile(self.pattern_str))

    def encode(self, values: Dict[str, int]) -> List[int]:
        """Encode logical operand values into 1 or 2 instruction words."""
        fields: Dict[str, int] = {}
        second: Optional[int] = None
        for op in self.operands:
            value = values[op.name]
            if op.kind == ABS and op.letter == "":
                if not 0 <= value <= 0xFFFF:
                    raise ValueError(f"absolute operand {value:#x} exceeds 16 bits")
                second = value
                continue
            fields[op.letter] = op.to_field(value)
        # Letters in the pattern but not bound (e.g. high bits of a 22-bit
        # address we keep at zero) default to 0.
        for letter in self.pattern.fields:
            fields.setdefault(letter, 0)
        words = [self.pattern.encode(fields)]
        if self.words == 2:
            words.append(second if second is not None else 0)
        return words

    def decode_operands(self, word: int, second: Optional[int] = None,
                        ) -> Dict[str, int]:
        fields = self.pattern.decode(word)
        out: Dict[str, int] = {}
        for op in self.operands:
            if op.kind == ABS and op.letter == "":
                if second is None:
                    raise ValueError(f"{self.name} needs its second word")
                out[op.name] = second
            else:
                out[op.name] = op.from_field(fields[op.letter])
        return out


def _op(name: str, letter: str, kind: str) -> OperandSpec:
    return OperandSpec(name, letter, kind)


def _spec(name, mnemonic, syntax, pattern, operands, semantics, words=1):
    return InstructionSpec(name, mnemonic, syntax, pattern,
                           tuple(operands), semantics, words)


def _build_table() -> List[InstructionSpec]:
    t: List[InstructionSpec] = []

    # -- two-register ALU group ------------------------------------------
    for name, pat, sem in [
        ("ADD", "000011rdddddrrrr", "add"),
        ("ADC", "000111rdddddrrrr", "adc"),
        ("SUB", "000110rdddddrrrr", "sub"),
        ("SBC", "000010rdddddrrrr", "sbc"),
        ("AND", "001000rdddddrrrr", "and"),
        ("EOR", "001001rdddddrrrr", "eor"),
        ("OR", "001010rdddddrrrr", "or"),
        ("MOV", "001011rdddddrrrr", "mov"),
        ("CP", "000101rdddddrrrr", "cp"),
        ("CPC", "000001rdddddrrrr", "cpc"),
        ("CPSE", "000100rdddddrrrr", "cpse"),
        ("MUL", "100111rdddddrrrr", "mul"),
    ]:
        t.append(_spec(name, name, "Rd, Rr", pat,
                       [_op("d", "d", REG5), _op("r", "r", REG5)], sem))

    t.append(_spec("MULS", "MULS", "Rd, Rr", "00000010ddddrrrr",
                   [_op("d", "d", REG4), _op("r", "r", REG4)], "muls"))
    for name, pat, sem in [
        ("MULSU", "000000110ddd0rrr", "mulsu"),
        ("FMUL", "000000110ddd1rrr", "fmul"),
        ("FMULS", "000000111ddd0rrr", "fmuls"),
        ("FMULSU", "000000111ddd1rrr", "fmulsu"),
    ]:
        t.append(_spec(name, name, "Rd, Rr", pat,
                       [_op("d", "d", REG3), _op("r", "r", REG3)], sem))
    t.append(_spec("MOVW", "MOVW", "Rd, Rr", "00000001ddddrrrr",
                   [_op("d", "d", REGPAIR), _op("r", "r", REGPAIR)], "movw"))

    # -- register-immediate group ------------------------------------------
    for name, pat, sem in [
        ("CPI", "0011KKKKddddKKKK", "cpi"),
        ("SBCI", "0100KKKKddddKKKK", "sbci"),
        ("SUBI", "0101KKKKddddKKKK", "subi"),
        ("ORI", "0110KKKKddddKKKK", "ori"),
        ("ANDI", "0111KKKKddddKKKK", "andi"),
        ("LDI", "1110KKKKddddKKKK", "ldi"),
    ]:
        t.append(_spec(name, name, "Rd, K", pat,
                       [_op("d", "d", REG4), _op("K", "K", UIMM)], sem))
    t.append(_spec("ADIW", "ADIW", "Rd, K", "10010110KKddKKKK",
                   [_op("d", "d", REGW), _op("K", "K", UIMM)], "adiw"))
    t.append(_spec("SBIW", "SBIW", "Rd, K", "10010111KKddKKKK",
                   [_op("d", "d", REGW), _op("K", "K", UIMM)], "sbiw"))

    # -- one-register group ----------------------------------------------------
    for name, suffix, sem in [
        ("COM", "0000", "com"),
        ("NEG", "0001", "neg"),
        ("SWAP", "0010", "swap"),
        ("INC", "0011", "inc"),
        ("ASR", "0101", "asr"),
        ("LSR", "0110", "lsr"),
        ("ROR", "0111", "ror"),
        ("DEC", "1010", "dec"),
    ]:
        t.append(_spec(name, name, "Rd", "1001010ddddd" + suffix,
                       [_op("d", "d", REG5)], sem))

    # -- SREG flag group ---------------------------------------------------------
    t.append(_spec("BSET", "BSET", "s", "100101000sss1000",
                   [_op("s", "s", FLAGNUM)], "bset"))
    t.append(_spec("BCLR", "BCLR", "s", "100101001sss1000",
                   [_op("s", "s", FLAGNUM)], "bclr"))

    # -- flow control --------------------------------------------------------------
    t.append(_spec("JMP", "JMP", "k", "1001010kkkkk110k",
                   [_op("k", "", ABS)], "jmp", words=2))
    t.append(_spec("CALL", "CALL", "k", "1001010kkkkk111k",
                   [_op("k", "", ABS)], "call", words=2))
    t.append(_spec("IJMP", "IJMP", "", "1001010000001001", [], "ijmp"))
    t.append(_spec("ICALL", "ICALL", "", "1001010100001001", [], "icall"))
    t.append(_spec("RET", "RET", "", "1001010100001000", [], "ret"))
    t.append(_spec("RETI", "RETI", "", "1001010100011000", [], "reti"))
    t.append(_spec("RJMP", "RJMP", "k", "1100kkkkkkkkkkkk",
                   [_op("k", "k", REL)], "rjmp"))
    t.append(_spec("RCALL", "RCALL", "k", "1101kkkkkkkkkkkk",
                   [_op("k", "k", REL)], "rcall"))
    t.append(_spec("BRBS", "BRBS", "s, k", "111100kkkkkkksss",
                   [_op("s", "s", FLAGNUM), _op("k", "k", REL)], "brbs"))
    t.append(_spec("BRBC", "BRBC", "s, k", "111101kkkkkkksss",
                   [_op("s", "s", FLAGNUM), _op("k", "k", REL)], "brbc"))

    # -- MCU control ------------------------------------------------------------------
    t.append(_spec("NOP", "NOP", "", "0000000000000000", [], "nop"))
    t.append(_spec("SLEEP", "SLEEP", "", "1001010110001000", [], "nop"))
    t.append(_spec("BREAK", "BREAK", "", "1001010110011000", [], "break"))
    t.append(_spec("WDR", "WDR", "", "1001010110101000", [], "nop"))

    # -- loads ----------------------------------------------------------------------
    t.append(_spec("LDS", "LDS", "Rd, k", "1001000ddddd0000",
                   [_op("d", "d", REG5), _op("k", "", ABS)], "lds", words=2))
    for name, pat, sem in [
        ("LD_X", "1001000ddddd1100", "ld_x"),
        ("LD_XP", "1001000ddddd1101", "ld_xp"),
        ("LD_MX", "1001000ddddd1110", "ld_mx"),
        ("LD_YP", "1001000ddddd1001", "ld_yp"),
        ("LD_MY", "1001000ddddd1010", "ld_my"),
        ("LD_ZP", "1001000ddddd0001", "ld_zp"),
        ("LD_MZ", "1001000ddddd0010", "ld_mz"),
    ]:
        t.append(_spec(name, "LD", "Rd, *", pat, [_op("d", "d", REG5)], sem))
    t.append(_spec("LDD_Y", "LDD", "Rd, Y+q", "10q0qq0ddddd1qqq",
                   [_op("d", "d", REG5), _op("q", "q", DISP)], "ldd_y"))
    t.append(_spec("LDD_Z", "LDD", "Rd, Z+q", "10q0qq0ddddd0qqq",
                   [_op("d", "d", REG5), _op("q", "q", DISP)], "ldd_z"))
    t.append(_spec("POP", "POP", "Rd", "1001000ddddd1111",
                   [_op("d", "d", REG5)], "pop"))
    t.append(_spec("LPM_R0", "LPM", "", "1001010111001000", [], "lpm_r0"))
    t.append(_spec("LPM_Z", "LPM", "Rd, Z", "1001000ddddd0100",
                   [_op("d", "d", REG5)], "lpm_z"))
    t.append(_spec("LPM_ZP", "LPM", "Rd, Z+", "1001000ddddd0101",
                   [_op("d", "d", REG5)], "lpm_zp"))

    # -- stores -----------------------------------------------------------------------
    t.append(_spec("STS", "STS", "k, Rd", "1001001ddddd0000",
                   [_op("k", "", ABS), _op("d", "d", REG5)], "sts", words=2))
    for name, pat, sem in [
        ("ST_X", "1001001ddddd1100", "st_x"),
        ("ST_XP", "1001001ddddd1101", "st_xp"),
        ("ST_MX", "1001001ddddd1110", "st_mx"),
        ("ST_YP", "1001001ddddd1001", "st_yp"),
        ("ST_MY", "1001001ddddd1010", "st_my"),
        ("ST_ZP", "1001001ddddd0001", "st_zp"),
        ("ST_MZ", "1001001ddddd0010", "st_mz"),
    ]:
        t.append(_spec(name, "ST", "*, Rr", pat, [_op("d", "d", REG5)], sem))
    t.append(_spec("STD_Y", "STD", "Y+q, Rr", "10q0qq1ddddd1qqq",
                   [_op("q", "q", DISP), _op("d", "d", REG5)], "std_y"))
    t.append(_spec("STD_Z", "STD", "Z+q, Rr", "10q0qq1ddddd0qqq",
                   [_op("q", "q", DISP), _op("d", "d", REG5)], "std_z"))
    t.append(_spec("PUSH", "PUSH", "Rr", "1001001ddddd1111",
                   [_op("d", "d", REG5)], "push"))

    # -- I/O and bit manipulation --------------------------------------------------------
    t.append(_spec("IN", "IN", "Rd, A", "10110AAdddddAAAA",
                   [_op("d", "d", REG5), _op("A", "A", IOADDR)], "in"))
    t.append(_spec("OUT", "OUT", "A, Rr", "10111AAdddddAAAA",
                   [_op("A", "A", IOADDR), _op("d", "d", REG5)], "out"))
    t.append(_spec("SBI", "SBI", "A, b", "10011010AAAAAbbb",
                   [_op("A", "A", IOADDR), _op("b", "b", BITNUM)], "sbi"))
    t.append(_spec("CBI", "CBI", "A, b", "10011000AAAAAbbb",
                   [_op("A", "A", IOADDR), _op("b", "b", BITNUM)], "cbi"))
    t.append(_spec("SBIC", "SBIC", "A, b", "10011001AAAAAbbb",
                   [_op("A", "A", IOADDR), _op("b", "b", BITNUM)], "sbic"))
    t.append(_spec("SBIS", "SBIS", "A, b", "10011011AAAAAbbb",
                   [_op("A", "A", IOADDR), _op("b", "b", BITNUM)], "sbis"))
    t.append(_spec("BLD", "BLD", "Rd, b", "1111100ddddd0bbb",
                   [_op("d", "d", REG5), _op("b", "b", BITNUM)], "bld"))
    t.append(_spec("BST", "BST", "Rd, b", "1111101ddddd0bbb",
                   [_op("d", "d", REG5), _op("b", "b", BITNUM)], "bst"))
    t.append(_spec("SBRC", "SBRC", "Rr, b", "1111110ddddd0bbb",
                   [_op("d", "d", REG5), _op("b", "b", BITNUM)], "sbrc"))
    t.append(_spec("SBRS", "SBRS", "Rr, b", "1111111ddddd0bbb",
                   [_op("d", "d", REG5), _op("b", "b", BITNUM)], "sbrs"))

    return t


#: The full instruction table.
TABLE: List[InstructionSpec] = _build_table()

#: name -> spec
BY_NAME: Dict[str, InstructionSpec] = {s.name: s for s in TABLE}

#: Decode order: most fixed bits first so specific encodings win.
DECODE_ORDER: List[InstructionSpec] = sorted(
    TABLE, key=lambda s: s.pattern.specificity, reverse=True
)


def decode_word(word: int) -> Optional[InstructionSpec]:
    """The spec whose pattern matches *word*, or None for an illegal opcode."""
    for spec in DECODE_ORDER:
        if spec.pattern.matches(word):
            return spec
    return None


def instruction_words(word: int) -> int:
    """Length in words of the instruction starting with *word* (1 or 2)."""
    spec = decode_word(word)
    return spec.words if spec is not None else 1
