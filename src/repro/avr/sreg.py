"""The AVR status register (SREG) and flag-computation helpers.

SREG layout (bit 7 → 0): I T H S V N Z C.  The arithmetic helpers implement
the exact flag equations from the AVR instruction-set manual; they are shared
by the instruction semantics in :mod:`repro.avr.instructions` and unit-tested
against hand-computed cases.
"""

from __future__ import annotations

C, Z, N, V, S, H, T, I = range(8)

FLAG_NAMES = "CZNVSHTI"


class StatusRegister:
    """An 8-bit status register with named flag accessors."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value & 0xFF

    def __getitem__(self, bit: int) -> int:
        return (self.value >> bit) & 1

    def __setitem__(self, bit: int, flag: int) -> None:
        if flag:
            self.value |= 1 << bit
        else:
            self.value &= ~(1 << bit) & 0xFF

    def set_sign(self) -> None:
        """S = N xor V (recomputed after N/V updates)."""
        self[S] = self[N] ^ self[V]

    def describe(self) -> str:
        """e.g. 'ItHSvNzC' — uppercase means the flag is set."""
        out = []
        for bit in range(7, -1, -1):
            name = FLAG_NAMES[bit]
            out.append(name.upper() if self[bit] else name.lower())
        return "".join(out)

    def __repr__(self) -> str:
        return f"StatusRegister({self.describe()})"


def flags_add(sreg: StatusRegister, rd: int, rr: int, result: int,
              carry_in: int = 0) -> None:
    """Flag update for ADD/ADC (result is the 8-bit truncated sum)."""
    full = rd + rr + carry_in
    r = result & 0xFF
    sreg[H] = ((rd & 0xF) + (rr & 0xF) + carry_in) >> 4 & 1
    sreg[C] = full >> 8 & 1
    sreg[Z] = 1 if r == 0 else 0
    sreg[N] = r >> 7 & 1
    sreg[V] = 1 if ((rd ^ r) & (rr ^ r) & 0x80) else 0
    sreg.set_sign()


def flags_sub(sreg: StatusRegister, rd: int, rr: int, result: int,
              carry_in: int = 0, keep_z: bool = False) -> None:
    """Flag update for SUB/SBC/CP/CPC (result = rd - rr - carry_in, 8-bit).

    With ``keep_z`` (SBC/CPC semantics) the Z flag is only ever *cleared*,
    never set — this is what makes multi-byte compares work on AVR.
    """
    r = result & 0xFF
    sreg[H] = 1 if ((rr & 0xF) + carry_in > (rd & 0xF)) else 0
    sreg[C] = 1 if (rr + carry_in > rd) else 0
    if keep_z:
        if r != 0:
            sreg[Z] = 0
    else:
        sreg[Z] = 1 if r == 0 else 0
    sreg[N] = r >> 7 & 1
    sreg[V] = 1 if ((rd ^ rr) & (rd ^ r) & 0x80) else 0
    sreg.set_sign()


def flags_logic(sreg: StatusRegister, result: int) -> None:
    """Flag update for AND/OR/EOR/COM-style logic results (V cleared)."""
    r = result & 0xFF
    sreg[Z] = 1 if r == 0 else 0
    sreg[N] = r >> 7 & 1
    sreg[V] = 0
    sreg.set_sign()


def flags_shift_right(sreg: StatusRegister, result: int,
                      carry_out: int) -> None:
    """Flag update for LSR/ROR/ASR: C from the shifted-out bit, V = N^C."""
    r = result & 0xFF
    sreg[C] = carry_out & 1
    sreg[Z] = 1 if r == 0 else 0
    sreg[N] = r >> 7 & 1
    sreg[V] = sreg[N] ^ sreg[C]
    sreg.set_sign()
