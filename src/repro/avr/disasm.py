"""AVR disassembler (for listings, debugging, and round-trip tests)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .encoding import sign_extend
from .isa import InstructionSpec, decode_word

_BRANCH_NAMES = {
    ("BRBS", 0): "BRCS", ("BRBC", 0): "BRCC",
    ("BRBS", 1): "BREQ", ("BRBC", 1): "BRNE",
    ("BRBS", 2): "BRMI", ("BRBC", 2): "BRPL",
    ("BRBS", 3): "BRVS", ("BRBC", 3): "BRVC",
    ("BRBS", 4): "BRLT", ("BRBC", 4): "BRGE",
    ("BRBS", 5): "BRHS", ("BRBC", 5): "BRHC",
    ("BRBS", 6): "BRTS", ("BRBC", 6): "BRTC",
    ("BRBS", 7): "BRIE", ("BRBC", 7): "BRID",
}

_MEM_SUFFIX = {
    "LD_X": "X", "LD_XP": "X+", "LD_MX": "-X",
    "LD_YP": "Y+", "LD_MY": "-Y", "LD_ZP": "Z+", "LD_MZ": "-Z",
    "ST_X": "X", "ST_XP": "X+", "ST_MX": "-X",
    "ST_YP": "Y+", "ST_MY": "-Y", "ST_ZP": "Z+", "ST_MZ": "-Z",
}


def disassemble_one(word: int, second: Optional[int] = None,
                    address: int = 0) -> Tuple[str, int]:
    """Disassemble one instruction; returns (text, words consumed)."""
    spec = decode_word(word)
    if spec is None:
        return f".dw {word:#06x}", 1
    ops = spec.decode_operands(word, second if spec.words == 2 else None)
    text = _format(spec, ops, address)
    return text, spec.words


def _format(spec: InstructionSpec, ops: dict, address: int) -> str:
    name = spec.name
    if name in ("BRBS", "BRBC"):
        alias = _BRANCH_NAMES[(name, ops["s"])]
        target = address + 1 + sign_extend(ops["k"], 7)
        return f"{alias} {target:#06x}"
    if name in ("RJMP", "RCALL"):
        target = address + 1 + sign_extend(ops["k"], 12)
        return f"{spec.mnemonic} {target:#06x}"
    if name in ("JMP", "CALL"):
        return f"{spec.mnemonic} {ops['k']:#06x}"
    if name in _MEM_SUFFIX:
        suffix = _MEM_SUFFIX[name]
        if name.startswith("LD"):
            return f"LD r{ops['d']}, {suffix}"
        return f"ST {suffix}, r{ops['d']}"
    if name in ("LDD_Y", "LDD_Z"):
        base = "Y" if name.endswith("Y") else "Z"
        return f"LDD r{ops['d']}, {base}+{ops['q']}"
    if name in ("STD_Y", "STD_Z"):
        base = "Y" if name.endswith("Y") else "Z"
        return f"STD {base}+{ops['q']}, r{ops['d']}"
    if name == "LPM_R0":
        return "LPM"
    if name == "LPM_Z":
        return f"LPM r{ops['d']}, Z"
    if name == "LPM_ZP":
        return f"LPM r{ops['d']}, Z+"
    if name == "LDS":
        return f"LDS r{ops['d']}, {ops['k']:#06x}"
    if name == "STS":
        return f"STS {ops['k']:#06x}, r{ops['d']}"
    if not spec.operands:
        return spec.mnemonic
    parts = []
    for op in spec.operands:
        value = ops[op.name]
        if op.kind in ("reg5", "reg4", "reg3", "regpair", "regw"):
            parts.append(f"r{value}")
        else:
            parts.append(str(value))
    return f"{spec.mnemonic} " + ", ".join(parts)


def disassemble(words: List[int], origin: int = 0) -> List[str]:
    """Disassemble a word array into annotated lines."""
    out = []
    i = 0
    while i < len(words):
        second = words[i + 1] if i + 1 < len(words) else None
        text, consumed = disassemble_one(words[i], second, origin + i)
        out.append(f"{origin + i:04x}:  {text}")
        i += consumed
    return out
