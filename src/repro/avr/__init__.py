"""The JAAVR substrate: an ATmega128-compatible instruction-set simulator.

* :class:`~repro.avr.core.AvrCore` — fetch/decode/execute with per-mode
  cycle accounting (CA / FAST / ISE, :class:`~repro.avr.timing.Mode`).
* :mod:`~repro.avr.assembler` / :mod:`~repro.avr.disasm` — two-pass
  assembler and disassembler over the shared encoding table.
* :class:`~repro.avr.mac.MacUnit` — the paper's (32 x 4)-bit MAC extension
  with both trigger mechanisms (SWAP re-interpretation and R24 loads).
* :class:`~repro.avr.engine.FastEngine` — the block-compiling fast engine
  behind ``AvrCore.run()`` (the ``step()`` interpreter stays the reference).
* :class:`~repro.avr.profiler.Profiler` — instruction-mix reporting.
* :class:`~repro.avr.taint.TaintTracker` — secret-taint shadow execution
  for constant-time verification (DESIGN.md §9, ``python -m repro
  ctcheck``).
"""

from .assembler import Assembler, AssemblyError, Program, assemble
from .core import AvrCore, ExecutionError
from .disasm import disassemble, disassemble_one
from .engine import FastEngine
from .mac import (
    MACCR_IO_ADDR,
    MACCR_LOAD_ENABLE,
    MACCR_RESET_COUNTER,
    MACCR_SWAP_ENABLE,
    MacHazardError,
    MacUnit,
)
from .memory import DataSpace, ProgramMemory, SRAM_BASE
from .profiler import Profiler, SymbolIndex
from .sreg import StatusRegister
from .taint import TAINT_RULES, TaintTracker, TaintViolation
from .timing import Mode

__all__ = [
    "Assembler",
    "AssemblyError",
    "AvrCore",
    "DataSpace",
    "ExecutionError",
    "FastEngine",
    "MACCR_IO_ADDR",
    "MACCR_LOAD_ENABLE",
    "MACCR_RESET_COUNTER",
    "MACCR_SWAP_ENABLE",
    "MacHazardError",
    "MacUnit",
    "Mode",
    "Profiler",
    "Program",
    "ProgramMemory",
    "SRAM_BASE",
    "StatusRegister",
    "SymbolIndex",
    "TAINT_RULES",
    "TaintTracker",
    "TaintViolation",
    "assemble",
    "disassemble",
    "disassemble_one",
]
