"""Dynamic secret-taint tracking over the ISS (DESIGN.md §9).

A :class:`TaintTracker` wraps an :class:`~repro.avr.core.AvrCore` and runs
it with a byte-granular taint shadow: callers mark secret bytes (e.g. the
scalar staged in SRAM), and every retired instruction propagates taint
through its destination registers, the SREG flags (tracked per flag bit)
and — in ISE mode — the (32 x 4)-bit MAC unit's accumulator and pending
nibble queue.  A **violation** is recorded whenever tainted data reaches

* a conditional-branch or skip decision (``BRBS``/``BRBC``/``CPSE``/
  ``SBRC``/``SBRS``/``SBIC``/``SBIS``, plus indirect jumps and tainted
  return addresses) — on this core every such decision also skews the
  cycle count, so each branch violation carries its ``cycle_skew``;
* a load/store address (including ``LPM`` program-memory table lookups
  and a tainted stack pointer).

This is the ctgrind/dudect tradition restated on the cycle-accurate ISS:
taint is an over-approximation (any tainted input taints the whole
output; constant results such as ``EOR d,d`` are recognised as public),
so a clean verdict is a strong constant-time argument for the exercised
trace, while each violation pinpoints PC, disassembly and the enclosing
CALL/RET routine.

Engine interaction: while any taint is live the tracker single-steps the
reference interpreter (the only place per-instruction propagation is
possible); whenever the shadow state is completely clean it executes
whole compiled blocks through the fast engine's
:meth:`~repro.avr.engine.FastEngine.step_block`.  Verdicts are therefore
bit-identical under both engines by construction — the parity tests
assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from . import sreg as F
from .disasm import disassemble_one
from .isa import instruction_words
from .mac import MACCR_IO_ADDR, MACCR_RESET_COUNTER
from .memory import IO_BASE, IO_SREG, REG_X, REG_Y, REG_Z
from .profiler import SymbolIndex
from .timing import Mode

__all__ = ["TaintTracker", "TaintViolation", "TAINT_RULES"]

# Per-flag taint bits, aligned with the SREG bit numbers.
_FC, _FZ, _FN, _FV, _FS, _FH, _FT, _FI = (1 << b for b in range(8))

_ARITH = _FC | _FZ | _FN | _FV | _FS | _FH   # ADD/SUB/NEG family
_WORD = _FC | _FZ | _FN | _FV | _FS          # ADIW/SBIW
_SHIFT = _FC | _FZ | _FN | _FV | _FS         # LSR/ROR/ASR
_LOGIC = _FZ | _FN | _FS                     # AND/OR/EOR (V cleared)
_INCDEC = _FZ | _FN | _FV | _FS

# Data-space addresses of the memory-mapped CPU registers.
_SPL_DATA = IO_BASE + 0x3D
_SPH_DATA = IO_BASE + 0x3E
_SREG_DATA = IO_BASE + IO_SREG
_MACCR_DATA = IO_BASE + MACCR_IO_ADDR

#: Semantics that schedule MACs on a load into R24 (mirrors the core's
#: ``notify_load`` sites; POP never notifies).
_MAC_LOAD_SEMS = frozenset({
    "lds", "ld_x", "ld_xp", "ld_mx", "ld_yp", "ld_my", "ld_zp", "ld_mz",
    "ldd_y", "ldd_z",
})


@dataclass
class TaintViolation:
    """One distinct (kind, pc) site where taint reached a decision/address.

    ``kind`` is ``"branch"`` (conditional branch/skip decision, indirect
    jump target or return address) or ``"addr"`` (load/store/LPM address,
    tainted stack pointer).  ``cycle_skew`` is the extra cycles the taken
    path costs over the not-taken path (every skewed site is also a
    data-dependent cycle count); ``count`` tallies repeat hits.
    """

    kind: str
    pc: int
    instruction: str
    routine: str
    location: str
    detail: str
    cycle_skew: int = 0
    count: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "instruction": self.instruction,
            "routine": self.routine,
            "location": self.location,
            "detail": self.detail,
            "cycle_skew": self.cycle_skew,
            "count": self.count,
        }


TaintRule = Callable[["TaintTracker", "AvrCore", Dict[str, int]], None]

#: Semantics key -> taint-propagation rule, run *before* the executor (a
#: test asserts this table covers every key in ``EXECUTORS``).
TAINT_RULES: Dict[str, TaintRule] = {}


def _rule(*keys: str) -> Callable[[TaintRule], TaintRule]:
    def register(fn: TaintRule) -> TaintRule:
        for key in keys:
            TAINT_RULES[key] = fn
        return fn
    return register


class TaintTracker:
    """Taint shadow + violation recorder driving an :class:`AvrCore`."""

    def __init__(self, core, symbols: Optional[Dict[str, int]] = None):
        self.core = core
        #: One shadow byte per data-space byte (registers, I/O, SRAM).
        self.mem = bytearray(core.data.size)
        #: Per-flag SREG taint bitmask (bit numbers match ``repro.avr.sreg``).
        self.flags = 0
        #: Taint of the MAC unit's pending nibble queue (ISE mode).
        self.mac_pending: List[int] = []
        self._ise = core.mode is Mode.ISE
        self.symbols = SymbolIndex(symbols)
        #: Call stack of routine entry PCs (violation attribution).
        self._frames: List[int] = []
        #: (kind, pc) -> violation, in first-occurrence order.
        self._violations: Dict[Tuple[str, int], TaintViolation] = {}

    # -- marking / inspection ------------------------------------------------

    def mark_data(self, address: int, length: int = 1) -> None:
        """Mark *length* data-space bytes starting at *address* as secret."""
        if address < 0 or address + length > len(self.mem):
            raise IndexError("taint mark exceeds the data space")
        for i in range(address, address + length):
            self.mem[i] = 1

    def mark_register(self, index: int, count: int = 1) -> None:
        """Mark general-purpose registers (data addresses 0..31)."""
        if index < 0 or index + count > 32:
            raise IndexError("register taint mark out of range")
        self.mark_data(index, count)

    def clear(self) -> None:
        """Drop all taint (shadow bytes, flag bits, MAC queue)."""
        for i in range(len(self.mem)):
            self.mem[i] = 0
        self.flags = 0
        self.mac_pending.clear()

    def data_tainted(self, address: int, length: int = 1) -> bool:
        return any(self.mem[address:address + length])

    def register_tainted(self, index: int, count: int = 1) -> bool:
        return self.data_tainted(index, count)

    def flag_tainted(self, bit: int) -> bool:
        return bool((self.flags >> bit) & 1)

    def live_taint_bytes(self) -> int:
        return len(self.mem) - self.mem.count(0)

    def any_live(self) -> bool:
        """Is any taint live (shadow, flags or MAC queue)?"""
        if self.flags or self.mac_pending:
            return True
        return self.mem.count(0) != len(self.mem)

    @property
    def violations(self) -> List[TaintViolation]:
        return list(self._violations.values())

    def summary(self) -> Dict[str, int]:
        """Violation tallies: distinct sites, total hits, per kind, skewed."""
        vs = self._violations.values()
        return {
            "sites": len(self._violations),
            "hits": sum(v.count for v in vs),
            "branch": sum(1 for v in vs if v.kind == "branch"),
            "addr": sum(1 for v in vs if v.kind == "addr"),
            "cycle_skew_sites": sum(1 for v in vs if v.cycle_skew),
        }

    # -- internal helpers ----------------------------------------------------

    def _set_flags(self, mask: int, tainted: int) -> None:
        if tainted:
            self.flags |= mask
        else:
            self.flags &= ~mask

    def _flag_taint(self, bit: int) -> int:
        return (self.flags >> bit) & 1

    def _sp_taint(self) -> int:
        return self.mem[_SPL_DATA] | self.mem[_SPH_DATA]

    def _read_taint(self, address: int) -> int:
        """Taint of a data-space read (SREG reads see the flag taints)."""
        if address == _SREG_DATA:
            return 1 if self.flags else 0
        if 0 <= address < len(self.mem):
            return self.mem[address]
        return 0

    def _write_taint(self, address: int, tainted: int, value: int) -> None:
        """Shadow a data-space write; *value* is the byte being written
        (needed to mirror MACCR side effects on the taint queue)."""
        if 0 <= address < len(self.mem):
            self.mem[address] = tainted
        if address == _SREG_DATA:
            self.flags = 0xFF if tainted else 0
        elif self._ise and address == _MACCR_DATA:
            if value & MACCR_RESET_COUNTER:
                self.mac_pending.clear()

    def _taint_mac_acc(self, extra: int) -> None:
        """OR *extra* taint into the MAC accumulator registers R0..R8."""
        if extra:
            for i in range(9):
                self.mem[i] = 1

    def _mult_taint(self) -> int:
        m = self.mem
        return m[16] | m[17] | m[18] | m[19]

    def _violate(self, kind: str, detail: str, cycle_skew: int = 0) -> None:
        pc = self.core.pc
        key = (kind, pc)
        existing = self._violations.get(key)
        if existing is not None:
            existing.count += 1
            return
        words = self.core.program.words
        second = words[pc + 1] if pc + 1 < len(words) else None
        try:
            text, _ = disassemble_one(words[pc], second, address=pc)
        except Exception:
            text = "?"
        routine = (self.symbols.name_for(self._frames[-1])
                   if self._frames else "(top)")
        self._violations[key] = TaintViolation(
            kind=kind, pc=pc, instruction=text, routine=routine,
            location=self.symbols.name_for(pc), detail=detail,
            cycle_skew=cycle_skew,
        )

    def _skip_skew(self) -> int:
        """Cycles a taken skip adds: the words of the skipped instruction."""
        try:
            return instruction_words(self.core.program.fetch(self.core.pc + 1))
        except IndexError:
            return 1

    # -- stepping ------------------------------------------------------------

    def step(self) -> int:
        """Propagate taint for the next instruction, then execute it."""
        core = self.core
        spec, ops, _ = core.decode_at(core.pc)
        rule = TAINT_RULES.get(spec.semantics)
        if rule is not None:
            rule(self, core, ops)
        cycles = core.step()
        if self._ise and self.mac_pending:
            self._resync_mac()
        return cycles

    def _resync_mac(self) -> None:
        """Mirror the MACs the core drained this step into the accumulator
        taint (drained = our queue length minus the core's)."""
        pend = len(self.core.mac.pending)
        mult = self._mult_taint()
        while len(self.mac_pending) > pend:
            nibble = self.mac_pending.pop(0)
            self._taint_mac_acc(nibble | mult)

    def run(self, max_steps: int = 200_000_000) -> int:
        """Run to ``BREAK``: stepped while taint is live, compiled blocks
        (fast-engine cores) while the shadow state is completely clean."""
        from .core import ExecutionError

        core = self.core
        engine = None
        steps = 0
        while not core.halted:
            if self.any_live():
                self.step()
                steps += 1
            elif core.engine in ("fast", "trace"):
                # Superblocks carry no taint hooks: a trace-engine core
                # drives the fast tier here, exactly as its dispatcher
                # would (see the fallback ladder in repro.avr.trace).
                if engine is None:
                    from .engine import FastEngine

                    if core._fast_engine is None:
                        core._fast_engine = FastEngine(core)
                    engine = core._fast_engine
                before = core.instructions_retired
                engine.step_block()
                steps += core.instructions_retired - before
            else:
                core.step()
                steps += 1
            if steps > max_steps:
                raise ExecutionError(
                    f"taint-run step budget of {max_steps} exceeded "
                    f"at pc={core.pc:#06x}"
                )
        return core.cycles


# ---------------------------------------------------------------------------
# Propagation rules (run before the executor; see DESIGN.md §9)
# ---------------------------------------------------------------------------


@_rule("add")
def _t_add(tr, core, ops):
    t = tr.mem[ops["d"]] | tr.mem[ops["r"]]
    tr._set_flags(_ARITH, t)
    tr.mem[ops["d"]] = t


@_rule("adc")
def _t_adc(tr, core, ops):
    t = tr.mem[ops["d"]] | tr.mem[ops["r"]] | tr._flag_taint(F.C)
    tr._set_flags(_ARITH, t)
    tr.mem[ops["d"]] = t


@_rule("sub")
def _t_sub(tr, core, ops):
    # SUB d,d yields the constant 0 with constant flags.
    t = 0 if ops["d"] == ops["r"] else tr.mem[ops["d"]] | tr.mem[ops["r"]]
    tr._set_flags(_ARITH, t)
    tr.mem[ops["d"]] = t


@_rule("sbc")
def _t_sbc(tr, core, ops):
    # SBC d,d is the branchless mask idiom: the result is -C, so the only
    # dependence is the carry flag.
    if ops["d"] == ops["r"]:
        t = tr._flag_taint(F.C)
    else:
        t = tr.mem[ops["d"]] | tr.mem[ops["r"]] | tr._flag_taint(F.C)
    z = t | tr._flag_taint(F.Z)   # keep_z: old Z participates
    tr._set_flags(_ARITH & ~_FZ, t)
    tr._set_flags(_FZ, z)
    tr.mem[ops["d"]] = t


@_rule("subi")
def _t_subi(tr, core, ops):
    t = tr.mem[ops["d"]]
    tr._set_flags(_ARITH, t)
    tr.mem[ops["d"]] = t


@_rule("sbci")
def _t_sbci(tr, core, ops):
    t = tr.mem[ops["d"]] | tr._flag_taint(F.C)
    z = t | tr._flag_taint(F.Z)
    tr._set_flags(_ARITH & ~_FZ, t)
    tr._set_flags(_FZ, z)
    tr.mem[ops["d"]] = t


@_rule("adiw", "sbiw")
def _t_adiw(tr, core, ops):
    d = ops["d"]
    t = tr.mem[d] | tr.mem[d + 1]
    tr._set_flags(_WORD, t)
    tr.mem[d] = tr.mem[d + 1] = t


@_rule("and", "or")
def _t_logic2(tr, core, ops):
    t = tr.mem[ops["d"]] | tr.mem[ops["r"]]
    tr._set_flags(_LOGIC, t)
    tr._set_flags(_FV, 0)
    tr.mem[ops["d"]] = t


@_rule("eor")
def _t_eor(tr, core, ops):
    # EOR d,d (the CLR alias) yields the constant 0: public.
    t = 0 if ops["d"] == ops["r"] else tr.mem[ops["d"]] | tr.mem[ops["r"]]
    tr._set_flags(_LOGIC, t)
    tr._set_flags(_FV, 0)
    tr.mem[ops["d"]] = t


@_rule("andi", "ori")
def _t_logici(tr, core, ops):
    t = tr.mem[ops["d"]]
    tr._set_flags(_LOGIC, t)
    tr._set_flags(_FV, 0)
    tr.mem[ops["d"]] = t


@_rule("com")
def _t_com(tr, core, ops):
    t = tr.mem[ops["d"]]
    tr._set_flags(_LOGIC, t)
    tr._set_flags(_FV | _FC, 0)   # V cleared, C always set
    tr.mem[ops["d"]] = t


@_rule("neg")
def _t_neg(tr, core, ops):
    t = tr.mem[ops["d"]]
    tr._set_flags(_ARITH, t)
    tr.mem[ops["d"]] = t


@_rule("inc", "dec")
def _t_incdec(tr, core, ops):
    t = tr.mem[ops["d"]]
    tr._set_flags(_INCDEC, t)
    tr.mem[ops["d"]] = t


@_rule("lsr", "asr")
def _t_shift(tr, core, ops):
    t = tr.mem[ops["d"]]
    tr._set_flags(_SHIFT, t)
    tr.mem[ops["d"]] = t


@_rule("ror")
def _t_ror(tr, core, ops):
    t = tr.mem[ops["d"]] | tr._flag_taint(F.C)
    tr._set_flags(_SHIFT, t)
    tr.mem[ops["d"]] = t


@_rule("swap")
def _t_swap(tr, core, ops):
    # Register taint unchanged (a nibble permutation); in ISE mode with
    # SWAP re-interpretation enabled this issues one MAC immediately.
    if tr._ise and core.mac.swap_enabled:
        tr._taint_mac_acc(tr.mem[ops["d"]] | tr._mult_taint())


@_rule("bld")
def _t_bld(tr, core, ops):
    tr.mem[ops["d"]] |= tr._flag_taint(F.T)


@_rule("bst")
def _t_bst(tr, core, ops):
    tr._set_flags(_FT, tr.mem[ops["d"]])


@_rule("bset", "bclr")
def _t_bsetclr(tr, core, ops):
    tr._set_flags(1 << ops["s"], 0)


@_rule("cp")
def _t_cp(tr, core, ops):
    tr._set_flags(_ARITH, tr.mem[ops["d"]] | tr.mem[ops["r"]])


@_rule("cpc")
def _t_cpc(tr, core, ops):
    t = tr.mem[ops["d"]] | tr.mem[ops["r"]] | tr._flag_taint(F.C)
    z = t | tr._flag_taint(F.Z)
    tr._set_flags(_ARITH & ~_FZ, t)
    tr._set_flags(_FZ, z)


@_rule("cpi")
def _t_cpi(tr, core, ops):
    tr._set_flags(_ARITH, tr.mem[ops["d"]])


@_rule("mul", "muls", "mulsu", "fmul", "fmuls", "fmulsu")
def _t_mul(tr, core, ops):
    t = tr.mem[ops["d"]] | tr.mem[ops["r"]]
    tr.mem[0] = tr.mem[1] = t
    tr._set_flags(_FC | _FZ, t)


@_rule("mov")
def _t_mov(tr, core, ops):
    tr.mem[ops["d"]] = tr.mem[ops["r"]]


@_rule("movw")
def _t_movw(tr, core, ops):
    tr.mem[ops["d"]] = tr.mem[ops["r"]]
    tr.mem[ops["d"] + 1] = tr.mem[ops["r"] + 1]


@_rule("ldi")
def _t_ldi(tr, core, ops):
    tr.mem[ops["d"]] = 0


def _load_common(tr, core, ops, sem: str, address: int,
                 address_taint: int) -> None:
    if address_taint:
        tr._violate("addr", "load address derived from secret data")
    t = tr._read_taint(address)
    d = ops["d"]
    tr.mem[d] = t
    if (tr._ise and core.mac.load_enabled and d == 24
            and sem in _MAC_LOAD_SEMS):
        # The trigger load schedules two nibble MACs (low, then high).
        tr.mac_pending.append(t)
        tr.mac_pending.append(t)


@_rule("lds")
def _t_lds(tr, core, ops):
    _load_common(tr, core, ops, "lds", ops["k"], 0)


def _indirect_addr(core, pointer: int, pre_dec: bool,
                   offset: int = 0) -> int:
    addr = core.data.reg_pair(pointer)
    if pre_dec:
        addr = (addr - 1) & 0xFFFF
    return (addr + offset) & 0xFFFF


def _make_ld_rule(sem: str, pointer: int, pre_dec: bool = False):
    @_rule(sem)
    def rule(tr, core, ops, _sem=sem, _p=pointer, _pre=pre_dec):
        at = tr.mem[_p] | tr.mem[_p + 1]
        _load_common(tr, core, ops, _sem, _indirect_addr(core, _p, _pre), at)
    return rule


_make_ld_rule("ld_x", REG_X)
_make_ld_rule("ld_xp", REG_X)
_make_ld_rule("ld_mx", REG_X, pre_dec=True)
_make_ld_rule("ld_yp", REG_Y)
_make_ld_rule("ld_my", REG_Y, pre_dec=True)
_make_ld_rule("ld_zp", REG_Z)
_make_ld_rule("ld_mz", REG_Z, pre_dec=True)


@_rule("ldd_y")
def _t_ldd_y(tr, core, ops):
    at = tr.mem[REG_Y] | tr.mem[REG_Y + 1]
    _load_common(tr, core, ops, "ldd_y",
                 _indirect_addr(core, REG_Y, False, ops["q"]), at)


@_rule("ldd_z")
def _t_ldd_z(tr, core, ops):
    at = tr.mem[REG_Z] | tr.mem[REG_Z + 1]
    _load_common(tr, core, ops, "ldd_z",
                 _indirect_addr(core, REG_Z, False, ops["q"]), at)


def _store_common(tr, core, ops, address: int, address_taint: int) -> None:
    if address_taint:
        tr._violate("addr", "store address derived from secret data")
    tr._write_taint(address, tr.mem[ops["d"]], core.data.reg(ops["d"]))


@_rule("sts")
def _t_sts(tr, core, ops):
    _store_common(tr, core, ops, ops["k"], 0)


def _make_st_rule(sem: str, pointer: int, pre_dec: bool = False):
    @_rule(sem)
    def rule(tr, core, ops, _p=pointer, _pre=pre_dec):
        at = tr.mem[_p] | tr.mem[_p + 1]
        _store_common(tr, core, ops, _indirect_addr(core, _p, _pre), at)
    return rule


_make_st_rule("st_x", REG_X)
_make_st_rule("st_xp", REG_X)
_make_st_rule("st_mx", REG_X, pre_dec=True)
_make_st_rule("st_yp", REG_Y)
_make_st_rule("st_my", REG_Y, pre_dec=True)
_make_st_rule("st_zp", REG_Z)
_make_st_rule("st_mz", REG_Z, pre_dec=True)


@_rule("std_y")
def _t_std_y(tr, core, ops):
    at = tr.mem[REG_Y] | tr.mem[REG_Y + 1]
    _store_common(tr, core, ops,
                  _indirect_addr(core, REG_Y, False, ops["q"]), at)


@_rule("std_z")
def _t_std_z(tr, core, ops):
    at = tr.mem[REG_Z] | tr.mem[REG_Z + 1]
    _store_common(tr, core, ops,
                  _indirect_addr(core, REG_Z, False, ops["q"]), at)


@_rule("push")
def _t_push(tr, core, ops):
    if tr._sp_taint():
        tr._violate("addr", "push through a tainted stack pointer")
    sp = core.data.sp
    if 0 <= sp < len(tr.mem):
        tr.mem[sp] = tr.mem[ops["d"]]


@_rule("pop")
def _t_pop(tr, core, ops):
    if tr._sp_taint():
        tr._violate("addr", "pop through a tainted stack pointer")
    sp = (core.data.sp + 1) & 0xFFFF
    tr.mem[ops["d"]] = tr._read_taint(sp)


@_rule("in")
def _t_in(tr, core, ops):
    a = ops["A"]
    if a == IO_SREG:
        t = 1 if tr.flags else 0
    else:
        t = tr.mem[IO_BASE + a]
    tr.mem[ops["d"]] = t


@_rule("out")
def _t_out(tr, core, ops):
    tr._write_taint(IO_BASE + ops["A"], tr.mem[ops["d"]],
                    core.data.reg(ops["d"]))


@_rule("sbi", "cbi")
def _t_sbicbi(tr, core, ops):
    # Constant-bit read-modify-write: the byte's taint is unchanged, but a
    # MACCR reset bit set via SBI still clears the pending queue.
    addr = IO_BASE + ops["A"]
    if tr._ise and addr == _MACCR_DATA:
        spec, _, _ = core.decode_at(core.pc)
        value = core.data.io_read(ops["A"])
        if spec.semantics == "sbi":
            value |= 1 << ops["b"]
        else:
            value &= ~(1 << ops["b"])
        tr._write_taint(addr, tr.mem[addr], value & 0xFF)


@_rule("lpm_r0")
def _t_lpm_r0(tr, core, ops):
    if tr.mem[REG_Z] | tr.mem[REG_Z + 1]:
        tr._violate("addr", "program-memory read indexed by secret data")
    tr.mem[0] = 0   # flash contents are public


@_rule("lpm_z", "lpm_zp")
def _t_lpm_z(tr, core, ops):
    if tr.mem[REG_Z] | tr.mem[REG_Z + 1]:
        tr._violate("addr", "program-memory read indexed by secret data")
    tr.mem[ops["d"]] = 0


@_rule("rjmp", "jmp", "nop", "break")
def _t_nop(tr, core, ops):
    pass


@_rule("ijmp")
def _t_ijmp(tr, core, ops):
    if tr.mem[REG_Z] | tr.mem[REG_Z + 1]:
        tr._violate("branch", "indirect jump through a tainted Z pointer")


def _call_target(tr, core, sem: str, ops) -> int:
    from .encoding import sign_extend

    if sem == "call":
        return ops["k"]
    if sem == "rcall":
        return core.pc + 1 + sign_extend(ops["k"], 12)
    return core.data.reg_pair(REG_Z)


@_rule("rcall", "call", "icall")
def _t_call(tr, core, ops):
    spec, _, _ = core.decode_at(core.pc)
    sem = spec.semantics
    if sem == "icall" and (tr.mem[REG_Z] | tr.mem[REG_Z + 1]):
        tr._violate("branch", "indirect call through a tainted Z pointer")
    if tr._sp_taint():
        tr._violate("addr", "call pushes through a tainted stack pointer")
    sp = core.data.sp
    for offset in (0, 1):   # the pushed return address is public
        addr = (sp - offset) & 0xFFFF
        if 0 <= addr < len(tr.mem):
            tr.mem[addr] = 0
    tr._frames.append(_call_target(tr, core, sem, ops))


@_rule("ret", "reti")
def _t_ret(tr, core, ops):
    sp = core.data.sp
    t = tr._read_taint((sp + 1) & 0xFFFF) | tr._read_taint((sp + 2) & 0xFFFF)
    if t:
        tr._violate("branch", "return through a tainted return address")
    if tr._frames:
        tr._frames.pop()
    spec, _, _ = core.decode_at(core.pc)
    if spec.semantics == "reti":
        tr._set_flags(_FI, 0)


@_rule("brbs", "brbc")
def _t_branch(tr, core, ops):
    if tr._flag_taint(ops["s"]):
        tr._violate(
            "branch",
            f"conditional branch on tainted {F.FLAG_NAMES[ops['s']]} flag",
            cycle_skew=1,
        )


@_rule("cpse")
def _t_cpse(tr, core, ops):
    t = tr.mem[ops["d"]] | tr.mem[ops["r"]]   # CPSE leaves SREG untouched
    if t:
        tr._violate("branch", "CPSE skip decided by tainted registers",
                    cycle_skew=tr._skip_skew())


@_rule("sbrc", "sbrs")
def _t_sbrcs(tr, core, ops):
    if tr.mem[ops["d"]]:
        tr._violate("branch", "register-bit skip decided by tainted data",
                    cycle_skew=tr._skip_skew())


@_rule("sbic", "sbis")
def _t_sbics(tr, core, ops):
    a = ops["A"]
    t = (1 if tr.flags else 0) if a == IO_SREG else tr.mem[IO_BASE + a]
    if t:
        tr._violate("branch", "I/O-bit skip decided by tainted data",
                    cycle_skew=tr._skip_skew())
