"""Instruction timing: the CA and FAST CPI models.

``CA`` (cycle accurate) reproduces the ATmega128's published cycles per
instruction.  ``FAST`` is JAAVR with the CYCLE_ACCURACY generic switched
off — the paper states that "the CPI-count of most load (resp. store) and
multiply instructions improves" and that a load then takes a single cycle;
concretely every SRAM access (LD/LDD/LDS/ST/STD/STS/PUSH/POP) and every
multiply drops to one cycle.

The model reproduces the paper's measured speed-ups: an unrolled 160-bit
OPF addition goes from 240 to 145 cycles (factor 1.65) and the looped OPF
multiplication from 3,314 to 2,537 cycles (factor 1.31) — see Table I and
the kernel benchmarks.

``ISE`` uses FAST timing; the MAC unit adds *no* cycles of its own (each
MAC issue rides on its triggering SWAP/load cycle, Fig. 1 discussion).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from .isa import InstructionSpec


class Mode(Enum):
    """JAAVR operating modes (paper Tables I and III)."""

    CA = "CA"      # cycle-accurate ATmega128 timing
    FAST = "FAST"  # improved load/store/multiply CPI
    ISE = "ISE"    # FAST plus the (32 x 4)-bit MAC unit


#: Instructions whose CA cycle count differs from 1.
_CA_CYCLES: Dict[str, int] = {
    # memory
    "LDS": 2, "LD_X": 2, "LD_XP": 2, "LD_MX": 2, "LD_YP": 2, "LD_MY": 2,
    "LD_ZP": 2, "LD_MZ": 2, "LDD_Y": 2, "LDD_Z": 2,
    "STS": 2, "ST_X": 2, "ST_XP": 2, "ST_MX": 2, "ST_YP": 2, "ST_MY": 2,
    "ST_ZP": 2, "ST_MZ": 2, "STD_Y": 2, "STD_Z": 2,
    "PUSH": 2, "POP": 2,
    "LPM_R0": 3, "LPM_Z": 3, "LPM_ZP": 3,
    # multiply
    "MUL": 2, "MULS": 2, "MULSU": 2, "FMUL": 2, "FMULS": 2, "FMULSU": 2,
    # 16-bit immediate arithmetic
    "ADIW": 2, "SBIW": 2,
    # bit set/clear in I/O space
    "SBI": 2, "CBI": 2,
    # flow control
    "RJMP": 2, "IJMP": 2, "JMP": 3,
    "RCALL": 3, "ICALL": 3, "CALL": 4,
    "RET": 4, "RETI": 4,
}

#: Instructions that drop to 1 cycle in FAST (and ISE) mode.
_FAST_SINGLE_CYCLE = {
    "LDS", "LD_X", "LD_XP", "LD_MX", "LD_YP", "LD_MY", "LD_ZP", "LD_MZ",
    "LDD_Y", "LDD_Z",
    "STS", "ST_X", "ST_XP", "ST_MX", "ST_YP", "ST_MY", "ST_ZP", "ST_MZ",
    "STD_Y", "STD_Z",
    "PUSH", "POP",
    "MUL", "MULS", "MULSU", "FMUL", "FMULS", "FMULSU",
}

_SKIP_NAMES = {"CPSE", "SBRC", "SBRS", "SBIC", "SBIS"}
_BRANCH_NAMES = {"BRBS", "BRBC"}


def base_cycles(spec: InstructionSpec, mode: Mode) -> int:
    """Static cycle count of an instruction (before dynamic adjustments)."""
    cycles = _CA_CYCLES.get(spec.name, 1)
    if mode is not Mode.CA and spec.name in _FAST_SINGLE_CYCLE:
        cycles = 1
    return cycles


def dynamic_cycles(spec: InstructionSpec, mode: Mode,
                   branch_taken: bool, skip_words: int) -> int:
    """Total cycles including branch/skip penalties.

    Conditional branches: 1 cycle, +1 when taken.
    Skips (CPSE/SBRC/SBRS/SBIC/SBIS): 1 cycle, +1 per skipped word.
    """
    cycles = base_cycles(spec, mode)
    if spec.name in _BRANCH_NAMES and branch_taken:
        cycles += 1
    if spec.name in _SKIP_NAMES and skip_words:
        cycles += skip_words
    return cycles
