"""The (32 x 4)-bit Multiply-Accumulate unit (paper Section IV-A, Fig. 1).

Datapath (Figure 1): a 32-bit multiplicand read from registers R16-R19, a
4-bit multiplier nibble, a (32 x 4)-bit multiplier producing a 36-bit
product, a barrel shifter placing that product at one of the offsets
0, 4, ..., 28, and a 72-bit adder accumulating into the register file
R0-R8.  An internal 3-bit counter supplies the shift offset; it increments
with every nibble MAC and wraps after eight, so eight MACs implement a full
(32 x 32)-bit multiply-accumulate.

Two software trigger mechanisms (selected through an I/O-mapped control
register):

* **SWAP re-interpretation** (Algorithm 1): executing ``SWAP Rr`` swaps the
  register's nibbles as usual *and* feeds the new low nibble (the previous
  high nibble) to the MAC unit.
* **R24-load trigger** (Algorithm 2): any ``LD``/``LDD`` with destination
  R24 schedules two nibble MACs — low nibble then high nibble of the loaded
  byte — in the two clock cycles that follow.  The ALU keeps executing
  instructions during those cycles as long as they do not touch the
  accumulator (R0-R8) or multiplicand/operand registers (R16-R19, R24).

The MAC consumes no extra cycles of its own — this is precisely how the
paper's 552-cycle OPF multiplication hides 100 MACs under its loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: I/O address of the MAC control register (a reserved slot on ATmega128).
MACCR_IO_ADDR = 0x28

#: MACCR bits.
MACCR_SWAP_ENABLE = 0x01   # Algorithm 1: re-interpret SWAP
MACCR_LOAD_ENABLE = 0x02   # Algorithm 2: trigger on loads into R24
MACCR_RESET_COUNTER = 0x80  # write-1: reset the nibble counter

#: Registers holding the 32-bit multiplicand.
MULTIPLICAND_REGS = (16, 17, 18, 19)
#: Register whose loads trigger the MAC in load mode.
TRIGGER_REG = 24
#: Registers forming the 72-bit accumulator.
ACC_REGS = tuple(range(9))

_ACC_MASK = (1 << 72) - 1


class MacHazardError(RuntimeError):
    """An instruction touched MAC-owned registers while a MAC was in flight."""


@dataclass
class MacUnit:
    """Architectural state and statistics of the MAC unit."""

    #: Value of the 3-bit shift counter (0..7); offset is 4 * counter.
    counter: int = 0
    swap_enabled: bool = False
    load_enabled: bool = False
    #: Number of nibble MAC operations performed.
    mac_ops: int = 0
    #: Pending nibble values scheduled by a load into R24 (drained one per
    #: following cycle by the core).
    pending: List[int] = field(default_factory=list)

    def control_write(self, value: int) -> None:
        """Handle a write to MACCR."""
        self.swap_enabled = bool(value & MACCR_SWAP_ENABLE)
        self.load_enabled = bool(value & MACCR_LOAD_ENABLE)
        if value & MACCR_RESET_COUNTER:
            self.counter = 0
            self.pending.clear()

    def control_read(self) -> int:
        value = 0
        if self.swap_enabled:
            value |= MACCR_SWAP_ENABLE
        if self.load_enabled:
            value |= MACCR_LOAD_ENABLE
        return value

    # -- datapath ------------------------------------------------------------

    def issue_nibble(self, data_space, nibble: int) -> None:
        """One (32 x 4) MAC: acc += (R16:R19 * nibble) << (4 * counter)."""
        if not 0 <= nibble <= 0xF:
            raise ValueError(f"nibble out of range: {nibble}")
        multiplicand = data_space.reg_window(MULTIPLICAND_REGS[0], 4)
        acc = data_space.reg_window(ACC_REGS[0], 9)
        acc = (acc + ((multiplicand * nibble) << (4 * self.counter))) & _ACC_MASK
        data_space.set_reg_window(ACC_REGS[0], 9, acc)
        self.counter = (self.counter + 1) & 7
        self.mac_ops += 1

    # -- trigger handling --------------------------------------------------------

    def on_swap(self, data_space, reg: int, pre_swap_value: int) -> bool:
        """SWAP executed; returns True if a MAC was issued.

        The multiplier nibble is the register's low nibble before the
        exchange — so the canonical SWAP/SWAP pair of Algorithm 1 feeds the
        byte's nibbles in low-then-high order, matching the ascending barrel
        shift offsets.
        """
        if not self.swap_enabled:
            return False
        self.issue_nibble(data_space, pre_swap_value & 0xF)
        return True

    def on_load(self, data_space, reg: int) -> bool:
        """A load completed; schedules two MACs if it targeted R24."""
        if not self.load_enabled or reg != TRIGGER_REG:
            return False
        value = data_space.reg(TRIGGER_REG)
        self.pending.append(value & 0xF)
        self.pending.append((value >> 4) & 0xF)
        return True

    def drain_one(self, data_space) -> bool:
        """Advance one clock: perform at most one pending nibble MAC."""
        if not self.pending:
            return False
        self.issue_nibble(data_space, self.pending.pop(0))
        return True

    @property
    def busy(self) -> bool:
        return bool(self.pending)


def conflicts_with_mac(spec_name: str, ops: dict) -> bool:
    """Does an instruction touch MAC-owned registers?

    Used for hazard checking while load-triggered MACs are in flight: the
    paper requires the parallel instructions "do not access any of the 13
    accumulator (resp. multiplicand) registers" (R0-R8, R16-R19); a new load
    into R24 is the *next* trigger and is also excluded while MACs are
    pending.
    """
    owned = set(ACC_REGS) | set(MULTIPLICAND_REGS) | {TRIGGER_REG}
    for key in ("d", "r"):
        if key in ops:
            reg = ops[key]
            if reg in owned:
                return True
            # Word-pair instructions also touch reg+1.
            if spec_name in ("MOVW", "ADIW", "SBIW") and reg + 1 in owned:
                return True
    if spec_name in ("MUL", "MULS", "MULSU", "FMUL", "FMULS", "FMULSU"):
        return True  # the hardware multiplier writes R1:R0
    if spec_name in ("LPM_R0",):
        return True
    return False
