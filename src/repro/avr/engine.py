"""The block-compiling fast execution engine.

The reference interpreter (:meth:`AvrCore.step`) pays the full Python toll —
decode-cache lookup, executor dispatch through a dict of closures, operand
dicts, a chain of :class:`StatusRegister` method calls per flag update and a
``dynamic_cycles()`` call — on every one of the millions of instructions a
single 160-bit ladder retires.  This module removes that toll without
changing a single observable bit:

* Flash is predecoded into **basic blocks**: maximal straight-line runs
  ending at a control transfer (branch, jump, call, return, skip, ``BREAK``)
  or at the block-length cap.
* Each block is compiled into **one Python closure** generated as source and
  ``exec``-ed once.  Operand dicts are flattened into integer literals,
  executors are inlined and specialised (an ``LDD r2, Y+3`` becomes three
  lines of direct ``bytearray`` indexing), SREG lives in a local integer
  with the exact flag equations of :mod:`repro.avr.sreg` folded in, and the
  block's cycle count is a compile-time constant plus the dynamically taken
  branch/skip/stall extras.
* The MAC/hazard machinery is compiled in **only when the core runs in ISE
  mode** — CA and FAST blocks carry no trace of it.  In ISE blocks the
  hazard verdict of :func:`repro.avr.mac.conflicts_with_mac` is evaluated at
  compile time (operands are constants), so non-conflicting instructions pay
  a single pending-count check.  The 72-bit accumulator is promoted from
  R0..R8 into a block-local integer while MACs are in flight — flushed back
  before any instruction that statically touches R0..R8, around every
  I/O-space escape, and at block exit — and the 32-bit multiplicand is
  cached until an instruction writes R16..R19, so a nibble MAC costs a
  handful of integer operations instead of a 9-byte pack/unpack.
* Compiled blocks are cached globally, keyed by the raw instruction words
  plus the compilation parameters, so a program assembled repeatedly (the
  test-suite pattern) compiles once per process.
* Every cache is keyed to :attr:`ProgramMemory.version`; reloading or
  self-modifying flash invalidates compiled blocks and decoded instructions
  alike.

Exactness contract: for any program, the engine produces the registers,
SRAM, SREG, PC, cycle count and retired-instruction count of the reference
interpreter — and raises the same exception type from the same architectural
state for MAC hazards, illegal opcodes and out-of-range memory traffic.
``tests/test_avr_fuzz.py`` enforces this differentially on random programs,
``tests/test_avr_engine.py`` on directed ones.

The engine assumes the I/O hook layout installed by :class:`AvrCore` (SREG
always, MACCR in ISE mode).  Additional hooks on other I/O addresses still
work: all I/O-region traffic funnels through ``DataSpace.read`` /
``DataSpace.write`` exactly as in the interpreter, with the SREG local
synchronised around every such call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.metrics import METRICS
from .encoding import sign_extend
from .isa import InstructionSpec, instruction_words
from .mac import MacHazardError, conflicts_with_mac
from .profiler import BlockStatic, EngineProfile, group_of
from .timing import Mode, base_cycles

__all__ = ["FastEngine", "compile_block", "MAX_BLOCK_INSTRUCTIONS"]

_M_COMPILED = METRICS.counter(
    "avr_blocks_compiled", "basic blocks compiled to closures")
_M_CACHE_HITS = METRICS.counter(
    "avr_block_cache_hits", "compiled blocks served from the global cache")

#: Block-length cap: bounds single-closure size (and compile latency) while
#: keeping the fully unrolled multiplication kernels to a handful of blocks.
MAX_BLOCK_INSTRUCTIONS = 320

#: Semantics keys that terminate a basic block.
_ENDERS = frozenset({
    "break", "ret", "reti", "rjmp", "jmp", "ijmp", "rcall", "call", "icall",
    "brbs", "brbc", "cpse", "sbrc", "sbrs", "sbic", "sbis",
})

#: Terminators whose cycle count depends on a runtime condition.
_CONDITIONAL = frozenset({
    "brbs", "brbc", "cpse", "sbrc", "sbrs", "sbic", "sbis",
})

#: Instruction names whose R24 destination is a MAC trigger (hazard-exempt).
_LOAD_NAMES = frozenset({
    "LDS", "LD_X", "LD_XP", "LD_MX", "LD_YP", "LD_MY", "LD_ZP", "LD_MZ",
    "LDD_Y", "LDD_Z", "POP",
})

#: Semantics that actually schedule MACs on a load into R24 (POP does not —
#: it is only hazard-classified as a trigger, matching ``AvrCore.step``).
_MAC_LOAD_SEMS = frozenset({
    "lds", "ld_x", "ld_xp", "ld_mx", "ld_yp", "ld_my", "ld_zp", "ld_mz",
    "ldd_y", "ldd_z",
})

# (pointer low register, pre-decrement, post-increment) per indirect mode.
_INDIRECT = {
    "ld_x": (26, False, False), "ld_xp": (26, False, True),
    "ld_mx": (26, True, False),
    "ld_yp": (28, False, True), "ld_my": (28, True, False),
    "ld_zp": (30, False, True), "ld_mz": (30, True, False),
    "st_x": (26, False, False), "st_xp": (26, False, True),
    "st_mx": (26, True, False),
    "st_yp": (28, False, True), "st_my": (28, True, False),
    "st_zp": (30, False, True), "st_mz": (30, True, False),
}

# 72-bit accumulator mask of the MAC unit.
_ACC_MASK = "0x" + "F" * 18

#: Semantics that write the register named by their ``d`` operand.
_WRITER_SEMS = frozenset({
    "add", "adc", "sub", "sbc", "subi", "sbci", "adiw", "sbiw",
    "and", "andi", "or", "ori", "eor", "com", "neg", "inc", "dec",
    "lsr", "ror", "asr", "swap", "bld", "mov", "movw", "ldi", "lds",
    "ld_x", "ld_xp", "ld_mx", "ld_yp", "ld_my", "ld_zp", "ld_mz",
    "ldd_y", "ldd_z", "pop", "in", "lpm_z", "lpm_zp",
})

_MUL_SEMS = frozenset({"mul", "muls", "mulsu", "fmul", "fmuls", "fmulsu"})


def _written_regs(sem: str, ops: dict) -> tuple:
    """Registers the instruction writes directly through ``m``.

    Pointer updates (R26..R31) are irrelevant to the MAC caches and are
    deliberately omitted; they can never alias R0..R8 or R16..R19.
    """
    if sem in _MUL_SEMS:
        return (0, 1)
    if sem == "lpm_r0":
        return (0,)
    if sem not in _WRITER_SEMS:
        return ()
    d = ops["d"]
    if sem in ("movw", "adiw", "sbiw"):
        return (d, d + 1)
    return (d,)


def _touched_regs(sem: str, ops: dict) -> list:
    """Registers the instruction reads or writes directly through ``m``."""
    regs = [v for k, v in ops.items() if k in ("d", "r")]
    if sem == "movw":
        regs += (ops["d"] + 1, ops["r"] + 1)
    regs.extend(_written_regs(sem, ops))
    return regs



# Global compiled-block cache: key -> closure.  Keyed by everything the
# generated source depends on, so it is shared safely across cores.
_CACHE: Dict[tuple, object] = {}
_CACHE_MAX = 4096


class _Gen:
    """Source accumulator with indentation tracking."""

    def __init__(self, mode: Mode, policy: str, size: int,
                 profiled: bool = False):
        self.mode = mode
        self.ise = mode is Mode.ISE
        self.policy = policy
        self.size = size
        self.profiled = profiled
        #: Dynamic-extra sites in emission order; each entry is the index
        #: of the instruction the site's cycles belong to (see
        #: :class:`repro.avr.profiler.BlockStatic`).
        self.sites: List[int] = []
        self.cur_ic = 0
        self.lines: List[str] = []
        self.ind = 2  # 4-space units; the body sits inside ``def`` + ``try``
        #: Whether the current instruction took the ``pp`` pending snapshot.
        self.have_pp = False
        #: Pointer-pair caches (base register -> local ``p26``/``p28``/``p30``
        #: holds the 16-bit pointer).  Validity is tracked at compile time:
        #: established on first use, maintained by the pre/post-update
        #: emitters, reloaded after I/O escapes and dropped when an
        #: instruction writes the pair directly.
        self.ptrs: Dict[int, bool] = {}
        #: ``(first line index, instruction index)`` markers; compiled into
        #: the line-number -> instruction map the exception sync uses, so
        #: instruction bodies carry no ``ic`` bookkeeping at all.
        self.marks: List[Tuple[int, int]] = []

    def mark(self, ic: int) -> None:
        self.marks.append((len(self.lines), ic))
        self.cur_ic = ic

    def extra(self, amount: str) -> None:
        """Emit a dynamic-extra cycle update (``x += amount``).

        In profiled blocks the same amount is also accumulated into this
        site's slot of the block's tally list, so the profiler can later
        attribute the extra cycles to the owning instruction's group/PC.
        """
        self.w(f"x += {amount}")
        if self.profiled:
            slot = len(self.sites) + 1  # slot 0 is the block hit counter
            self.sites.append(self.cur_ic)
            self.w(f"bp[{slot}] += {amount}")

    def ptr_use(self, base: int) -> str:
        var = f"p{base}"
        if not self.ptrs.get(base):
            self.w(f"{var} = m[{base}] | (m[{base + 1}] << 8)")
            self.ptrs[base] = True
        return var

    def w(self, line: str) -> None:
        self.lines.append("    " * self.ind + line)

    # -- state-access hooks -------------------------------------------------
    # Every emitter goes through these instead of hard-coding ``m[...]`` /
    # ``sreg = ...`` strings, so a subclass (the superblock compiler in
    # :mod:`repro.avr.trace`) can re-target registers to locals, elide dead
    # flag computations and turn the bounds check of a memory access into a
    # side exit.  The base implementations reproduce the historical fast
    # engine code exactly.

    def reg(self, i: int) -> str:
        """Expression reading register *i*."""
        return f"m[{i}]"

    def wreg(self, i: int, expr: str) -> None:
        """Statement writing *expr* to register *i*."""
        self.w(f"m[{i}] = {expr}")

    def sp_load(self) -> None:
        """Bring the stack pointer into the local ``sp``."""
        self.w("sp = m[0x5D] | (m[0x5E] << 8)")

    def sp_store(self) -> None:
        """Write the local ``sp`` back to the SPL/SPH bytes."""
        self.w("m[0x5D] = sp & 0xFF; m[0x5E] = sp >> 8")

    def ptr_sync(self, base: int) -> None:
        """Write a pointer-pair local back to its register bytes."""
        var = f"p{base}"
        self.w(f"m[{base}] = {var} & 0xFF; m[{base + 1}] = {var} >> 8")

    def ptr_invalidate(self, base: int) -> None:
        """An instruction wrote a pointer byte directly: drop the pair."""
        self.ptrs[base] = False

    def precheck(self, addr: str) -> None:
        """Hook before an instruction commits state around a memory access.

        No-op here: the base :meth:`mem_read`/:meth:`mem_write` carry their
        own bounds check with an I/O escape.  The superblock compiler emits
        a side exit instead, and it must fire *before* any architectural
        state (pre-decremented pointers, the pushed-to SP) is modified.
        """

    def flag_need(self, written: int) -> int:
        """Subset of the *written* SREG bits whose values must materialize.

        The base engine materializes every written flag.  The superblock
        compiler intersects with the liveness of the following code — a
        flag overwritten before any possible reader need not be computed.
        Emitting more bits than strictly needed is always correct.
        """
        return written

    def sreg_set(self, written: int, parts, need: int) -> None:
        """Assign SREG from *parts*: ``(bit_mask, expr)`` pairs.

        *written* is the union of bits the instruction architecturally
        writes; *need* (a subset, from :meth:`flag_need`) selects which are
        materialized.  An expr of ``None`` means the bit is forced to zero
        (covered by the keep-mask).  With ``need == 0`` no code is emitted.
        """
        if not need:
            return
        exprs = [e for bit, e in parts if (need & bit) and e is not None]
        keep = ~need & 0xFF
        if keep:
            exprs.insert(0, f"(sreg & {'0x%02X' % keep})")
        if len(exprs) == 1:
            self.w(f"sreg = {exprs[0]}")
        else:
            self.w("sreg = (" + " | ".join(exprs) + ")")

    def mac_sched(self, expr: str) -> None:
        """Append the two nibbles of loaded byte *expr* to the MAC queue."""
        self.w(f"pend += ({expr} & 0xF, {expr} >> 4)")
        self.w("pl += 2")

    def mac_load_trigger(self, expr: str) -> None:
        """Algorithm 2: a load into R24 schedules two nibble MACs."""
        self.w("if lden:")
        self.ind += 1
        self.mac_sched(expr)
        self.ind -= 1

    def mac_swap_snoop(self, expr: str) -> None:
        """Algorithm 1: the MAC snoops SWAP, multiplying by the low nibble."""
        self.w("if swen:")
        self.ind += 1
        self.mac_issue(expr)
        self.ind -= 1

    def mac_flush_low(self) -> None:
        """Flush the lazy accumulator before a direct R0..R8 access."""
        self.w("if dirty:")
        self.w(f"    m[0:9] = (acc & {_ACC_MASK}).to_bytes(9, 'little')")
        self.w("    dirty = False")

    def mac_invalidate_mulc(self) -> None:
        """An instruction wrote R16..R19: the cached multiplicand is stale."""
        self.w("mok = False")

    # -- shared fragments ---------------------------------------------------

    def escape(self, *calls: str) -> None:
        """Emit data/I-O-space call(s) with full machine-state sync.

        The interpreter's hooks observe the architectural state (the SREG
        byte, the MAC accumulator in R0..R8, MACCR control bits), and an OUT
        to MACCR may reset the MAC mid-block — so every block-local cache is
        flushed before the call and reloaded after it.
        """
        self.w("sregobj.value = sreg")
        if self.ise:
            self.w("if dirty:")
            self.w(f"    m[0:9] = (acc & {_ACC_MASK})"
                   ".to_bytes(9, 'little')")
            self.w("    dirty = False")
            self.w("mac.counter = mc")
            self.w("if mops:")
            self.w("    mac.mac_ops += mops")
            self.w("    mops = 0")
        for call in calls:
            self.w(call)
        self.w("sreg = sregobj.value")
        if self.ise:
            self.w("mc = mac.counter")
            self.w("pl = len(pend)")
            self.w("swen = mac.swap_enabled")
            self.w("lden = mac.load_enabled")
            self.w("mok = False")
        # A write into 0x00..0x1F may have retargeted a pointer pair; the
        # locals keep the pre-call values (which in-flight pointer updates
        # must use, as the interpreter fetches the pointer once), so only
        # the caches' compile-time validity is dropped.
        for base in self.ptrs:
            self.ptrs[base] = False

    def mem_read(self, dest: str, addr: str, wrap: bool = False) -> None:
        """``dest = data_space[addr]`` with the I/O/bounds fallback.

        With ``wrap``, *addr* may exceed 0xFFFF by a displacement; the
        wrapped address is then < 0x5F, so only the fallback re-masks.
        """
        mask = " & 0xFFFF" if wrap else ""
        self.w(f"if 0x5F < {addr} < {self.size}:")
        self.w(f"    {dest} = m[{addr}]")
        self.w("else:")
        self.ind += 1
        self.escape(f"{dest} = data.read({addr}{mask})")
        self.ind -= 1

    def mem_write(self, addr: str, value: str, wrap: bool = False) -> None:
        mask = " & 0xFFFF" if wrap else ""
        self.w(f"if 0x5F < {addr} < {self.size}:")
        self.w(f"    m[{addr}] = {value}")
        self.w("else:")
        self.ind += 1
        self.escape(f"data.write({addr}{mask}, {value})")
        self.ind -= 1

    def _mac_lazy(self) -> None:
        """Lazy-load the ``acc``/``dirty`` and ``mulc``/``mok`` caches."""
        self.w("if not dirty:")
        self.w("    acc = int.from_bytes(m[0:9], 'little')")
        self.w("    dirty = True")
        self.w("if not mok:")
        self.w(f"    mulc = {self.reg(16)} | ({self.reg(17)} << 8)"
               f" | ({self.reg(18)} << 16) | ({self.reg(19)} << 24)")
        self.w("    mok = True")

    def mac_issue(self, nibble_expr: str = "", from_pend: bool = False
                  ) -> None:
        """Inline ``MacUnit.issue_nibble`` (nibble already in 0..15).

        The accumulator lives in the block-local ``acc`` while ``dirty``
        (R0..R8 then hold the pre-load bytes); the multiplicand is cached in
        ``mulc`` while ``mok``.  Both load lazily so blocks with no MAC
        traffic never pay for them.  The 72-bit wrap is deferred to the
        flush sites (addition commutes with reduction mod 2**72), so an
        issue is adds and shifts only.  With *from_pend* the nibble is
        dequeued from the front of the pending queue.
        """
        self._mac_lazy()
        if from_pend:
            self.w("pl -= 1")
            nibble_expr = "pend.pop(0)"
        self.w(f"acc += (mulc * ({nibble_expr})) << (mc << 2)")
        self.w("mc = (mc + 1) & 7")
        self.w("mops += 1")

    def drains(self, cycles: int) -> None:
        """Post-execution drains: ``min(cycles, pre_pending)`` nibble MACs.

        The pre-execution pending count caps the drain: for instructions
        that cannot append (everything but a trigger load) it equals ``pl``
        at this point, so no snapshot is needed; trigger loads and hazard
        checks take the ``pp`` snapshot in :meth:`hazards`.  The ``pl``
        re-check mirrors ``drain_one``'s empty guard — an OUT to MACCR with
        the reset bit clears the pending queue mid-instruction.
        """
        if not self.ise:
            return
        cap = "pp" if self.have_pp else "pl"
        if cycles == 1:
            self.w(f"if pp and pl:" if self.have_pp else "if pl:")
            self.ind += 1
            self.mac_issue(from_pend=True)
            self.ind -= 1
        else:
            self.w(f"for _q in range(min({cycles}, {cap})):")
            self.ind += 1
            self.w("if not pl:")
            self.w("    break")
            self.mac_issue(from_pend=True)
            self.ind -= 1

    def hazards(self, pc: int, spec: InstructionSpec, ops: dict) -> bool:
        """Pre-execution MAC hazard handling; all verdicts compile-time.

        Returns True when stall-drain code was emitted: the caller must then
        emit ``x += sx`` once the instruction can no longer raise, so that an
        exception mid-instruction leaves ``cycles`` exactly as the reference
        interpreter does (it never counts a faulting instruction's cycles).
        """
        if not self.ise:
            return False
        self.have_pp = conflicts_with_mac(spec.name, ops)
        if not self.have_pp:
            return False
        self.w("pp = pl")
        trigger = spec.name in _LOAD_NAMES and ops.get("d") == 24
        if trigger:
            if self.policy == "error":
                self.w("if pp > 1:")
                self.w("    raise MacHazardError(")
                self.w(f"        f\"MAC issue-rate exceeded at pc={pc:#06x}:"
                       " {pp} nibble MACs still pending\")")
            elif self.policy == "stall":
                self.w("sx = 0")
                self.w("while pl > 1:")
                self.ind += 1
                self.mac_issue(from_pend=True)
                self.w("sx += 1")
                self.ind -= 1
                self.w("if sx:")
                self.w("    pp = 1")
                return True
        else:
            if self.policy == "error":
                self.w("if pp:")
                self.w("    raise MacHazardError(")
                self.w(f"        f\"{spec.name} touches MAC-owned registers"
                       f" at pc={pc:#06x} while "
                       "{pp} MAC(s) pending\")")
            elif self.policy == "stall":
                self.w("sx = 0")
                self.w("while pl:")
                self.ind += 1
                self.mac_issue(from_pend=True)
                self.w("sx += 1")
                self.ind -= 1
                self.w("if sx:")
                self.w("    pp = 0")
                return True
        return False


# ---------------------------------------------------------------------------
# Per-semantics emitters.  Each writes the exact state updates of the
# corresponding executor in repro.avr.instructions, with operands folded to
# constants.  SREG bit layout: C=0 Z=1 N=2 V=3 S=4 H=5 T=6 I=7.
# ---------------------------------------------------------------------------


def _emit_add(g, ops, carry: bool):
    d, r = ops["d"], ops["r"]
    g.w(f"a = {g.reg(d)}; b = {g.reg(r)}")
    if carry:
        g.w("c = sreg & 1")
        g.w("t = a + b + c")
    else:
        g.w("t = a + b")
    g.w("r_ = t & 0xFF")
    g.wreg(d, "r_")
    c = "c" if carry else "0"
    need = g.flag_need(0x3F)
    if need & 0x18:
        g.w("v = ((a ^ r_) & (b ^ r_) & 0x80) >> 7")
    if need & 0x1C:
        g.w("n = r_ >> 7")
    g.sreg_set(0x3F, [
        (0x20, f"((((a & 0xF) + (b & 0xF) + {c}) >> 4) & 1) << 5"),
        (0x10, "(n ^ v) << 4"),
        (0x08, "v << 3"),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
        (0x01, "t >> 8"),
    ], need)


def _emit_sub(g, ops, carry: bool, imm: bool, store: bool):
    # SUB/SBC/SUBI/SBCI/CP/CPC/CPI; the with-carry forms keep Z (only ever
    # clear it), which is what makes multi-byte compares work.
    d = ops["d"]
    b = str(ops["K"]) if imm else g.reg(ops["r"])
    g.w(f"a = {g.reg(d)}; b = {b}")
    if carry:
        g.w("c = sreg & 1")
        g.w("r_ = (a - b - c) & 0xFF")
    else:
        g.w("r_ = (a - b) & 0xFF")
    if store:
        g.wreg(d, "r_")
    c = "c" if carry else "0"
    z = "(0 if r_ else (sreg & 2))" if carry else "(0 if r_ else 2)"
    need = g.flag_need(0x3F)
    if need & 0x18:
        g.w("v = ((a ^ b) & (a ^ r_) & 0x80) >> 7")
    if need & 0x1C:
        g.w("n = r_ >> 7")
    g.sreg_set(0x3F, [
        (0x20, f"(1 if (b & 0xF) + {c} > (a & 0xF) else 0) << 5"),
        (0x10, "(n ^ v) << 4"),
        (0x08, "v << 3"),
        (0x04, "n << 2"),
        (0x02, z),
        (0x01, f"(1 if b + {c} > a else 0)"),
    ], need)


def _emit_adiw(g, ops, sub: bool):
    d, K = ops["d"], ops["K"]
    g.w(f"p = {g.reg(d)} | ({g.reg(d + 1)} << 8)")
    need = g.flag_need(0x1F)
    if sub:
        g.w(f"r_ = (p - {K}) & 0xFFFF")
        if need & 0x01:
            g.w(f"cf = 1 if {K} > p else 0")
        if need & 0x18:
            g.w("v = (p & ~r_ & 0x8000) >> 15")
    else:
        g.w(f"t = p + {K}")
        g.w("r_ = t & 0xFFFF")
        if need & 0x01:
            g.w("cf = 1 if t > 0xFFFF else 0")
        if need & 0x18:
            g.w("v = (~p & r_ & 0x8000) >> 15")
    g.wreg(d, "r_ & 0xFF")
    g.wreg(d + 1, "r_ >> 8")
    if need & 0x1C:
        g.w("n = r_ >> 15")
    g.sreg_set(0x1F, [
        (0x10, "(n ^ v) << 4"),
        (0x08, "v << 3"),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
        (0x01, "cf"),
    ], need)


def _emit_logic(g, ops, op: str, imm: bool):
    d = ops["d"]
    b = str(ops["K"]) if imm else g.reg(ops["r"])
    g.w(f"r_ = {g.reg(d)} {op} {b}")
    g.wreg(d, "r_")
    need = g.flag_need(0x1E)
    if need & 0x14:
        g.w("n = r_ >> 7")
    g.sreg_set(0x1E, [
        (0x10, "n << 4"),
        (0x08, None),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
    ], need)


def _emit_com(g, ops):
    d = ops["d"]
    g.w(f"r_ = ~{g.reg(d)} & 0xFF")
    g.wreg(d, "r_")
    need = g.flag_need(0x1F)
    if need & 0x14:
        g.w("n = r_ >> 7")
    g.sreg_set(0x1F, [
        (0x10, "n << 4"),
        (0x08, None),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
        (0x01, "1"),
    ], need)


def _emit_neg(g, ops):
    d = ops["d"]
    g.w(f"a = {g.reg(d)}")
    g.w("r_ = -a & 0xFF")
    g.wreg(d, "r_")
    need = g.flag_need(0x3F)
    if need & 0x1C:
        g.w("n = r_ >> 7")
    if need & 0x18:
        g.w("v = 1 if r_ == 0x80 else 0")
    g.sreg_set(0x3F, [
        (0x20, "(((r_ >> 3) | (a >> 3)) & 1) << 5"),
        (0x10, "(n ^ v) << 4"),
        (0x08, "v << 3"),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
        (0x01, "(1 if r_ else 0)"),
    ], need)


def _emit_incdec(g, ops, dec: bool):
    d = ops["d"]
    g.w(f"r_ = ({g.reg(d)} {'-' if dec else '+'} 1) & 0xFF")
    g.wreg(d, "r_")
    need = g.flag_need(0x1E)
    if need & 0x1C:
        g.w("n = r_ >> 7")
    if need & 0x18:
        g.w(f"v = 1 if r_ == {'0x7F' if dec else '0x80'} else 0")
    g.sreg_set(0x1E, [
        (0x10, "(n ^ v) << 4"),
        (0x08, "v << 3"),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
    ], need)


def _emit_shift(g, ops, kind: str):
    d = ops["d"]
    g.w(f"a = {g.reg(d)}")
    if kind == "lsr":
        g.w("r_ = a >> 1")
    elif kind == "ror":
        g.w("r_ = (a >> 1) | ((sreg & 1) << 7)")
    else:  # asr
        g.w("r_ = (a >> 1) | (a & 0x80)")
    need = g.flag_need(0x1F)
    if need & 0x0C:
        g.w("n = 0" if kind == "lsr" else "n = r_ >> 7")
    g.wreg(d, "r_")
    if need & 0x19:
        g.w("co = a & 1")
    # flags_shift_right: C = carry out, V = N ^ C, S = N ^ V = C.
    g.sreg_set(0x1F, [
        (0x10, "co << 4"),
        (0x08, "(n ^ co) << 3"),
        (0x04, "n << 2"),
        (0x02, "(0 if r_ else 2)"),
        (0x01, "co"),
    ], need)


def _emit_swap(g, ops):
    d = ops["d"]
    g.w(f"a = {g.reg(d)}")
    g.wreg(d, "(a << 4 | a >> 4) & 0xFF")
    if g.ise:
        # Algorithm 1: the MAC snoops SWAP and multiplies by the register's
        # low nibble *before* the exchange.
        g.mac_swap_snoop("a & 0xF")


def _emit_mul(g, ops, kind: str):
    d, r = ops["d"], ops["r"]
    rd, rr = g.reg(d), g.reg(r)
    sa = f"({rd} - 256 if {rd} & 0x80 else {rd})"
    sb = f"({rr} - 256 if {rr} & 0x80 else {rr})"
    if kind in ("mul", "fmul"):
        g.w(f"p = {rd} * {rr}")
    elif kind in ("muls", "fmuls"):
        g.w(f"p = ({sa} * {sb}) & 0xFFFF")
    else:  # mulsu, fmulsu
        g.w(f"p = ({sa} * {rr}) & 0xFFFF")
    need = g.flag_need(0x03)
    if kind.startswith("f"):
        if need & 0x01:
            g.w("cf = (p >> 15) & 1")
        g.w("p = (p << 1) & 0xFFFF")
        g.wreg(0, "p & 0xFF")
        g.wreg(1, "p >> 8")
        g.sreg_set(0x03, [(0x02, "(0 if p else 2)"), (0x01, "cf")], need)
    else:
        g.wreg(0, "p & 0xFF")
        g.wreg(1, "(p >> 8) & 0xFF")
        g.sreg_set(0x03, [(0x02, "(0 if p & 0xFFFF else 2)"),
                          (0x01, "((p >> 15) & 1)")], need)


def _emit_load_tail(g, ops, sem: str) -> None:
    """Common tail of every true load: write Rd, schedule MACs if R24."""
    d = ops["d"]
    g.wreg(d, "v")
    if g.ise and d == 24 and sem in _MAC_LOAD_SEMS:
        # Algorithm 2: a load into R24 schedules two nibble MACs, drained
        # one per cycle by the instructions that follow.
        g.mac_load_trigger("v")


def _emit_ld_indirect(g, ops, sem: str):
    ptr, pre_dec, post_inc = _INDIRECT[sem]
    pv = g.ptr_use(ptr)
    if pre_dec:
        # Address first: a superblock side exit must fire before the
        # pointer pair is architecturally modified.
        g.w(f"A = ({pv} - 1) & 0xFFFF")
        g.precheck("A")
        g.w(f"{pv} = A")
        g.ptr_sync(ptr)
        g.mem_read("v", pv)
    else:
        g.precheck(pv)
        g.mem_read("v", pv)
    _emit_load_tail(g, ops, sem)
    if post_inc:
        # After the destination write, so `ld r26, X+` matches step().
        g.w(f"{pv} = ({pv} + 1) & 0xFFFF")
        g.ptr_sync(ptr)


def _emit_ldd(g, ops, sem: str):
    ptr = 28 if sem == "ldd_y" else 30
    pv = g.ptr_use(ptr)
    if ops["q"]:
        # The unmasked sum only differs from the wrapped address when it
        # exceeds 0xFFFF — and then both land in the fallback (the wrapped
        # value is < 0x5F), which re-masks.
        g.w(f"A = {pv} + {ops['q']}")
        g.precheck("A")
        g.mem_read("v", "A", wrap=True)
    else:
        g.precheck(pv)
        g.mem_read("v", pv)
    _emit_load_tail(g, ops, sem)


def _emit_lds(g, ops):
    k = ops["k"]
    if 0x5F < k < g.size:
        g.w(f"v = m[{k}]")
    else:
        g.escape(f"v = data.read({k})")
    _emit_load_tail(g, ops, "lds")


def _emit_st_indirect(g, ops, sem: str):
    ptr, pre_dec, post_inc = _INDIRECT[sem]
    pv = g.ptr_use(ptr)
    if pre_dec:
        g.w(f"A = ({pv} - 1) & 0xFFFF")
        g.precheck("A")
        g.w(f"{pv} = A")
        g.ptr_sync(ptr)
    else:
        g.precheck(pv)
    g.mem_write(pv, g.reg(ops["d"]))
    if post_inc:
        g.w(f"{pv} = ({pv} + 1) & 0xFFFF")
        g.ptr_sync(ptr)


def _emit_std(g, ops, sem: str):
    ptr = 28 if sem == "std_y" else 30
    pv = g.ptr_use(ptr)
    if ops["q"]:
        g.w(f"A = {pv} + {ops['q']}")
        g.precheck("A")
        g.mem_write("A", g.reg(ops["d"]), wrap=True)
    else:
        g.precheck(pv)
        g.mem_write(pv, g.reg(ops["d"]))


def _emit_sts(g, ops):
    k = ops["k"]
    if 0x5F < k < g.size:
        g.w(f"m[{k}] = {g.reg(ops['d'])}")
    else:
        g.escape(f"data.write({k}, m[{ops['d']}])")


def _emit_push(g, ops):
    g.sp_load()
    g.precheck("sp")
    g.mem_write("sp", g.reg(ops["d"]))
    g.w("sp = (sp - 1) & 0xFFFF")
    g.sp_store()


def _emit_pop(g, ops):
    g.sp_load()
    g.w("A = (sp + 1) & 0xFFFF")
    g.precheck("A")
    g.w("sp = A")
    g.sp_store()
    g.mem_read("v", "A")
    g.wreg(ops["d"], "v")


def _emit_in(g, ops):
    if ops["A"] == 0x3F:  # SREG is served from the live local
        g.wreg(ops["d"], "sreg")
    else:
        g.escape(f"m[{ops['d']}] = data.io_read({ops['A']})")


def _emit_out(g, ops):
    if ops["A"] == 0x3F:
        g.w(f"v = {g.reg(ops['d'])}")
        g.w("m[0x5F] = v")
        g.w("sreg = v")
    else:
        g.escape(f"data.io_write({ops['A']}, m[{ops['d']}])")


def _emit_sbi_cbi(g, ops, set_bit: bool):
    A, b = ops["A"], ops["b"]
    if set_bit:
        g.escape(f"data.io_write({A}, data.io_read({A}) | {1 << b})")
    else:
        g.escape(
            f"data.io_write({A}, data.io_read({A}) & {~(1 << b) & 0xFF})")


def _emit_lpm(g, ops, sem: str):
    pv = g.ptr_use(30)
    dest = 0 if sem == "lpm_r0" else ops["d"]
    g.wreg(dest, f"prog.read_byte({pv})")
    if sem == "lpm_zp":
        g.w(f"{pv} = ({pv} + 1) & 0xFFFF")
        g.ptr_sync(30)


def _emit_push_return(g, return_pc: int) -> None:
    # Big-endian on the stack, high byte deeper, matching _push_return.
    # Both addresses are checked before either write commits, so a
    # superblock side exit cannot leave a half-pushed return address.
    g.sp_load()
    g.w("A = (sp - 1) & 0xFFFF")
    g.precheck("sp")
    g.precheck("A")
    g.mem_write("sp", str(return_pc & 0xFF))
    g.mem_write("A", str((return_pc >> 8) & 0xFF))
    g.w("sp = (sp - 2) & 0xFFFF")
    g.sp_store()


def _emit_pop_return(g) -> None:
    g.sp_load()
    g.w("A = (sp + 1) & 0xFFFF")
    g.precheck("A")
    g.mem_read("hi", "A")
    g.w("A = (sp + 2) & 0xFFFF")
    g.precheck("A")
    g.mem_read("lo", "A")
    g.w("sp = A")
    g.sp_store()
    g.w("npc = (hi << 8) | lo")


# ---------------------------------------------------------------------------
# Block scanning and compilation
# ---------------------------------------------------------------------------


def _scan(core, start_pc: int):
    """Collect the basic block at *start_pc*.

    Returns ``(instrs, next_pc, illegal, key_words)`` where *instrs* is a
    list of ``(pc, spec, ops)``, *next_pc* is the fall-through address and
    *illegal* marks a decode failure at *next_pc* (the block ends just
    before it and re-raises through ``decode_at`` at runtime).
    """
    prog = core.program
    instrs: List[Tuple[int, InstructionSpec, dict]] = []
    key_words: List[int] = []
    pc = start_pc
    illegal = False
    while len(instrs) < MAX_BLOCK_INSTRUCTIONS:
        try:
            spec, ops, words = core.decode_at(pc)
        except Exception:
            illegal = True
            break
        for w in range(words):
            key_words.append(prog.fetch(pc + w))
        instrs.append((pc, spec, ops))
        pc += words
        if spec.semantics in _ENDERS:
            break
    return instrs, pc, illegal, key_words


def _emit_instruction(g: _Gen, i: int, pc: int, spec: InstructionSpec,
                      ops: dict, cyc: int,
                      skip_lookahead: Optional[int]) -> None:
    """Emit one instruction: hazards, inlined semantics, MAC drains and (for
    terminators) the ``npc`` assignment plus dynamic cycle extras."""
    sem = spec.semantics
    g.mark(i)
    stalled = g.hazards(pc, spec, ops)
    if stalled and sem in _CONDITIONAL:
        # Condition evaluation cannot raise, so the stall cycles are final.
        g.extra("sx")
        stalled = False
    if g.ise and any(v <= 8 for v in _touched_regs(sem, ops)):
        # The instruction reads or writes accumulator registers directly:
        # R0..R8 must hold the truth before its body runs.  Writes are then
        # live in ``m``, so the cache stays invalid until the next MAC.
        g.mac_flush_low()

    if sem in ("add", "adc"):
        _emit_add(g, ops, carry=(sem == "adc"))
    elif sem in ("sub", "sbc", "cp", "cpc"):
        _emit_sub(g, ops, carry=sem in ("sbc", "cpc"), imm=False,
                  store=sem in ("sub", "sbc"))
    elif sem in ("subi", "sbci", "cpi"):
        _emit_sub(g, ops, carry=(sem == "sbci"), imm=True,
                  store=sem in ("subi", "sbci"))
    elif sem in ("adiw", "sbiw"):
        _emit_adiw(g, ops, sub=(sem == "sbiw"))
    elif sem in ("and", "andi"):
        _emit_logic(g, ops, "&", imm=sem.endswith("i"))
    elif sem in ("or", "ori"):
        _emit_logic(g, ops, "|", imm=sem.endswith("i"))
    elif sem == "eor":
        _emit_logic(g, ops, "^", imm=False)
    elif sem == "com":
        _emit_com(g, ops)
    elif sem == "neg":
        _emit_neg(g, ops)
    elif sem in ("inc", "dec"):
        _emit_incdec(g, ops, dec=(sem == "dec"))
    elif sem in ("lsr", "ror", "asr"):
        _emit_shift(g, ops, sem)
    elif sem == "swap":
        _emit_swap(g, ops)
    elif sem == "bld":
        d, b = ops["d"], ops["b"]
        rd = g.reg(d)
        g.wreg(d, f"({rd} | {1 << b}) if sreg & 0x40"
                  f" else {rd} & {~(1 << b) & 0xFF}")
    elif sem == "bst":
        if g.flag_need(0x40):
            g.w(f"sreg = (sreg | 0x40) if {g.reg(ops['d'])}"
                f" >> {ops['b']} & 1 else sreg & 0xBF")
    elif sem == "bset":
        if g.flag_need(1 << ops["s"]):
            g.w(f"sreg |= {1 << ops['s']}")
    elif sem == "bclr":
        if g.flag_need(1 << ops["s"]):
            g.w(f"sreg &= {~(1 << ops['s']) & 0xFF}")
    elif sem in ("mul", "muls", "mulsu", "fmul", "fmuls", "fmulsu"):
        _emit_mul(g, ops, sem)
    elif sem == "mov":
        g.wreg(ops["d"], g.reg(ops["r"]))
    elif sem == "movw":
        d, r = ops["d"], ops["r"]
        g.wreg(d, g.reg(r))
        g.wreg(d + 1, g.reg(r + 1))
    elif sem == "ldi":
        g.wreg(ops["d"], str(ops["K"]))
    elif sem == "lds":
        _emit_lds(g, ops)
    elif sem in _INDIRECT and sem.startswith("ld"):
        _emit_ld_indirect(g, ops, sem)
    elif sem in ("ldd_y", "ldd_z"):
        _emit_ldd(g, ops, sem)
    elif sem == "sts":
        _emit_sts(g, ops)
    elif sem in _INDIRECT:
        _emit_st_indirect(g, ops, sem)
    elif sem in ("std_y", "std_z"):
        _emit_std(g, ops, sem)
    elif sem == "push":
        _emit_push(g, ops)
    elif sem == "pop":
        _emit_pop(g, ops)
    elif sem == "in":
        _emit_in(g, ops)
    elif sem == "out":
        _emit_out(g, ops)
    elif sem == "sbi":
        _emit_sbi_cbi(g, ops, set_bit=True)
    elif sem == "cbi":
        _emit_sbi_cbi(g, ops, set_bit=False)
    elif sem in ("lpm_r0", "lpm_z", "lpm_zp"):
        _emit_lpm(g, ops, sem)
    elif sem == "nop":
        g.w("pass")
    elif sem == "break":
        g.w("core.halted = True")
        g.w(f"npc = {pc}")
    elif sem == "rjmp":
        g.w(f"npc = {pc + 1 + sign_extend(ops['k'], 12)}")
    elif sem == "jmp":
        g.w(f"npc = {ops['k']}")
    elif sem == "ijmp":
        g.w(f"npc = {g.reg(30)} | ({g.reg(31)} << 8)")
    elif sem == "rcall":
        _emit_push_return(g, pc + 1)
        g.w(f"npc = {pc + 1 + sign_extend(ops['k'], 12)}")
    elif sem == "call":
        _emit_push_return(g, pc + 2)
        g.w(f"npc = {ops['k']}")
    elif sem == "icall":
        _emit_push_return(g, pc + 1)
        g.w(f"npc = {g.reg(30)} | ({g.reg(31)} << 8)")
    elif sem in ("ret", "reti"):
        if sem == "reti":
            # step() sets I before the stack pops (exception-order parity).
            g.w("sreg |= 0x80")
        _emit_pop_return(g)
    elif sem in ("brbs", "brbc"):
        target = pc + 1 + sign_extend(ops["k"], 7)
        cond = f"sreg >> {ops['s']} & 1"
        g.w(f"if {cond}:" if sem == "brbs" else f"if not ({cond}):")
        g.ind += 1
        g.extra("1")
        g.w(f"npc = {target}")
        g.drains(2)
        g.ind -= 1
        g.w("else:")
        g.ind += 1
        g.w(f"npc = {pc + 1}")
        g.drains(1)
        g.ind -= 1
    elif sem in ("cpse", "sbrc", "sbrs", "sbic", "sbis"):
        if sem == "cpse":
            cond = f"{g.reg(ops['d'])} == {g.reg(ops['r'])}"
        elif sem in ("sbrc", "sbrs"):
            bit = f"{g.reg(ops['d'])} >> {ops['b']} & 1"
            cond = f"not ({bit})" if sem == "sbrc" else bit
        else:
            g.escape(f"v = data.io_read({ops['A']})")
            bit = f"v >> {ops['b']} & 1"
            cond = f"not ({bit})" if sem == "sbic" else bit
        g.w(f"if {cond}:")
        g.ind += 1
        if skip_lookahead is None:
            # The skipped slot lies outside flash: reproduce the reference
            # interpreter's fetch error from the same state.
            g.w(f"prog.fetch({pc + 1})")
            g.w("raise AssertionError('unreachable')")
        else:
            g.extra(str(skip_lookahead))
            g.w(f"npc = {pc + 1 + skip_lookahead}")
            g.drains(1 + skip_lookahead)
        g.ind -= 1
        g.w("else:")
        g.ind += 1
        g.w(f"npc = {pc + 1}")
        g.drains(1)
        g.ind -= 1
    else:  # pragma: no cover - the ISA table is closed
        raise NotImplementedError(f"no emitter for semantics {sem!r}")

    written = _written_regs(sem, ops)
    if g.ise and any(16 <= v <= 19 for v in written):
        g.mac_invalidate_mulc()
    if sem in ("adiw", "sbiw") and ops["d"] in (26, 28, 30):
        # Pointer arithmetic: ``r_`` is the new pair value — refresh the
        # cache rather than dropping it.
        g.w(f"p{ops['d']} = r_")
        g.ptrs[ops["d"]] = True
    else:
        for v in written:
            if 26 <= v <= 31:
                g.ptr_invalidate(v & ~1)
    if stalled:
        g.extra("sx")
    if sem not in _CONDITIONAL:
        g.drains(cyc)


def compile_block(core, start_pc: int, profiled: bool = False):
    """Compile (or fetch from the global cache) the block at *start_pc*.

    With *profiled*, the closure additionally bumps its hit counter and
    dynamic-extra site slots in ``core._engine_profile`` (one integer
    increment per block plus one per taken branch/skip/stall), records
    partial executions on exceptions, and stamps call/return events —
    everything :meth:`repro.avr.profiler.EngineProfile.fold_into` needs to
    reproduce the reference interpreter's tallies exactly.
    """
    instrs, next_pc, illegal, key_words = _scan(core, start_pc)
    mode, policy, size = core.mode, core.hazard_policy, core.data.size

    if not instrs:
        # Decode fails immediately: delegate to decode_at at runtime so the
        # exception type, message and architectural state match step().
        def _illegal_block(core):
            core.decode_at(start_pc)
            raise AssertionError(  # pragma: no cover - decode_at must raise
                f"stale illegal block at {start_pc:#06x}")

        _illegal_block._prof_static = None
        return _illegal_block

    # Skip terminators need the skipped instruction's word count; at the
    # flash boundary the fetch is deferred to runtime (it must raise there).
    skip_lookahead: Optional[int] = None
    last_pc, last_spec, _ = instrs[-1]
    if last_spec.semantics in ("cpse", "sbrc", "sbrs", "sbic", "sbis"):
        try:
            word = core.program.fetch(last_pc + 1)
        except IndexError:
            key_words.append(-1)
        else:
            skip_lookahead = instruction_words(word)
            key_words.append(word)

    key = (start_pc, mode, policy, size, illegal, profiled, tuple(key_words))
    fn = _CACHE.get(key)
    if fn is not None:
        _M_CACHE_HITS.inc()
        return fn

    g = _Gen(mode, policy, size, profiled)
    cycles = [base_cycles(spec, mode) for _, spec, _ in instrs]
    cyc_before = [0]
    for c in cycles:
        cyc_before.append(cyc_before[-1] + c)
    pcs = [pc for pc, _, _ in instrs] + [next_pc]

    for i, (pc, spec, ops) in enumerate(instrs):
        _emit_instruction(g, i, pc, spec, ops, cycles[i], skip_lookahead)
    last_sem = instrs[-1][1].semantics
    if profiled and last_sem in ("rcall", "call", "icall", "ret", "reti"):
        # Call/return terminators stamp a frame event with the core's cycle
        # count *after* this block retires — exactly the value the reference
        # interpreter passes to on_call/on_ret (both paths stamp post-retire,
        # so the attribution is cycle-identical).
        stamp = f"core.cycles + {cyc_before[-1]} + x"
        if last_sem in ("ret", "reti"):
            g.w(f"ep.events.append((1, 0, 0, {stamp}))")
        else:
            ret_pc = last_pc + (2 if last_sem == "call" else 1)
            g.w(f"ep.events.append((0, npc, {ret_pc}, {stamp}))")
    if last_sem not in _ENDERS:
        # Length-capped block or an illegal decode just past it.
        g.w(f"npc = {next_pc}")
        if illegal:
            # All emitted instructions completed: account for them in the
            # exception sync, then re-raise the exact decode error.
            g.mark(len(instrs))
            g.w(f"core.decode_at({next_pc})")

    # The ISE header/footer promote the MAC state into locals: ``mc`` (the
    # 3-bit counter), ``pl`` (pending-queue length), ``swen``/``lden``
    # (control bits), ``mops`` (nibble-MAC tally) and the lazily-loaded
    # ``acc``/``dirty`` and ``mulc``/``mok`` caches (see ``_Gen.mac_issue``).
    ise = mode is Mode.ISE
    mac_sync = (
        "        if dirty:\n"
        f"            m[0:9] = (acc & {_ACC_MASK}).to_bytes(9, 'little')\n"
        "        mac.counter = mc\n"
        "        if mops:\n"
        "            mac.mac_ops += mops\n"
    )
    body = "\n".join(g.lines)
    header = (
        "    data = core.data\n"
        "    m = data._mem\n"
        "    sregobj = core.sreg\n"
        "    sreg = sregobj.value\n"
        "    prog = core.program\n"
        + ("    mac = core.mac\n"
           "    pend = mac.pending\n"
           "    mc = mac.counter\n"
           "    pl = len(pend)\n"
           "    swen = mac.swap_enabled\n"
           "    lden = mac.load_enabled\n"
           "    mops = 0\n"
           "    dirty = False\n"
           "    mok = False\n" if ise else "")
        + ("    ep = core._engine_profile\n"
           f"    bp = ep.counts[{start_pc}]\n" if profiled else "")
        + "    x = 0\n"
    )
    # Instruction bodies carry no index bookkeeping; the exception sync
    # recovers the faulting instruction from the raise site's line number.
    # The first body line sits at ``def`` + header + ``try:`` + 1.
    base_line = header.count("\n") + 3
    line_to_ic = [0] * len(g.lines)
    for (start, icv), (end, _) in zip(g.marks,
                                      g.marks[1:] + [(len(g.lines), 0)]):
        for j in range(start, end):
            line_to_ic[j] = icv
    src = (
        "def _block(core):\n"
        + header
        + "    try:\n"
        f"{body}\n"
        "    except Exception as e:\n"
        f"        ic = _L2I[e.__traceback__.tb_lineno - {base_line}]\n"
        + (mac_sync if ise else "")
        + ("        ep.partials.append((" f"{start_pc}" ", ic))\n"
           if profiled else "")
        + "        sregobj.value = sreg\n"
        "        core.pc = _PCS[ic]\n"
        "        core.cycles += _CYC[ic] + x\n"
        "        core.instructions_retired += ic\n"
        "        raise\n"
        + (mac_sync.replace("        ", "    ") if ise else "")
        + ("    bp[0] += 1\n" if profiled else "")
        + "    sregobj.value = sreg\n"
        "    core.pc = npc\n"
        f"    core.cycles += {cyc_before[-1]} + x\n"
        f"    core.instructions_retired += {len(instrs)}\n"
    )
    gbl = {
        "MacHazardError": MacHazardError,
        "_PCS": tuple(pcs),
        "_CYC": tuple(cyc_before),
        "_L2I": tuple(line_to_ic),
    }
    code = compile(src, f"<avr-block@{start_pc:#06x}>", "exec")
    exec(code, gbl)
    fn = gbl["_block"]
    fn._source = src
    fn._n_instructions = len(instrs)
    if profiled:
        fn._prof_static = BlockStatic(
            tuple((pc, group_of(spec.name), cycles[i])
                  for i, (pc, spec, _) in enumerate(instrs)),
            tuple(g.sites))
    else:
        fn._prof_static = None
    _M_COMPILED.inc()
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.clear()
    _CACHE[key] = fn
    return fn


class FastEngine:
    """Per-core block dispatcher with version-keyed invalidation.

    With a profiler attached to the core, dispatch switches to a separate
    cache of *profiled* closures (same semantics, plus tally bookkeeping)
    and folds the raw block counts into the profiler when the run ends —
    including on exceptions, so a faulted run still reports every retired
    instruction.
    """

    def __init__(self, core):
        self.core = core
        self.blocks: Dict[int, object] = {}
        self.profiled_blocks: Dict[int, object] = {}
        self.version = -1

    def invalidate(self) -> None:
        """Drop all compiled blocks (flash changed under us)."""
        self.blocks.clear()
        self.profiled_blocks.clear()

    def step_block(self) -> None:
        """Execute exactly one compiled block from the current PC.

        The fault injector's stride: it advances in block units while a
        fault trigger is provably more than one block away, then switches
        to the reference :meth:`~repro.avr.core.AvrCore.step` for the
        final approach, so faults land on the same instruction boundary
        under either engine.  Unlike :meth:`run`, the flash version is
        re-checked on *every* call — a transient opcode corruption between
        blocks must invalidate before the next dispatch.  Unprofiled only
        (the injector rejects profiled cores).
        """
        core = self.core
        if core.program.version != self.version:
            self.invalidate()
            self.version = core.program.version
        pc = core.pc
        fn = self.blocks.get(pc)
        if fn is None:
            fn = compile_block(core, pc, False)
            self.blocks[pc] = fn
        fn(core)

    def run(self, max_steps: int = 50_000_000) -> int:
        core = self.core
        if core.program.version != self.version:
            self.invalidate()
            self.version = core.program.version
        profiler = core.profiler
        profiled = profiler is not None
        if profiled:
            ep = core._engine_profile
            if ep is None:
                ep = core._engine_profile = EngineProfile()
            blocks = self.profiled_blocks
        else:
            ep = None
            blocks = self.blocks
        blocks_get = blocks.get
        retired_start = core.instructions_retired
        try:
            while not core.halted:
                pc = core.pc
                fn = blocks_get(pc)
                if fn is None:
                    fn = compile_block(core, pc, profiled)
                    if profiled and fn._prof_static is not None:
                        ep.register(pc, fn._prof_static)
                    blocks[pc] = fn
                fn(core)
                if core.instructions_retired - retired_start > max_steps:
                    from .core import ExecutionError

                    raise ExecutionError(
                        f"step budget of {max_steps} exceeded"
                        f" at pc={core.pc:#06x}"
                    )
        finally:
            if profiled:
                ep.fold_into(profiler)
        return core.cycles
